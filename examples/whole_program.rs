//! Closing an open component into a whole-program process (paper §3.1,
//! Table 4's (Sep)CompCert row): load, call `main`, answer externals through
//! the χ parameter, observe the event trace and exit status.
//!
//! ```sh
//! cargo run --example whole_program
//! ```

use compcerto::compiler::{compile_all, run_closed, Closed, CompilerOptions, ExtLib};
use compcerto::core::hcomp::HComp;

const UNIT_A: &str = "
    extern int inc(int);
    extern int collatz_len(int);

    int main() {
        int len; int out;
        len = collatz_len(27);
        out = inc(len);
        return out;
    }
";

const UNIT_B: &str = "
    int collatz_len(int n) {
        int steps;
        steps = 0;
        while (n != 1) {
            if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
            steps = steps + 1;
        }
        return steps;
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (units, symtab) = compile_all(&[UNIT_A, UNIT_B], CompilerOptions::default())?;
    let chi = ExtLib::demo(symtab.clone());

    // The process model of paper §3.1: the ⊕-composition of the translation
    // units, closed over χ and entered at `main`.
    let composed = HComp::new(
        units[0].clight_sem(&symtab).with_label("Clight(A.c)"),
        units[1].clight_sem(&symtab).with_label("Clight(B.c)"),
    );
    let process = Closed::new(composed, symtab.clone(), "main", chi);
    let (exit, trace) = run_closed(&process, 10_000_000)?;

    println!("process trace (observable events, paper §2.2):");
    for ev in &trace {
        println!("  {ev}");
    }
    println!("exit status: {exit}");
    // collatz_len(27) = 111; inc -> 112. The cross-unit call to collatz_len
    // is internal (no event); only the χ call to `inc` is observable.
    assert_eq!(exit, 112);
    assert_eq!(trace.len(), 1);
    println!();
    println!("note: the cross-unit call resolved inside ⊕ — only the χ call");
    println!("appears in the trace, exactly the (Sep)CompCert observable model.");
    Ok(())
}
