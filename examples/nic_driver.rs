//! Paper Fig. 7: the NIC-driver heterogeneous scenario.
//!
//! A driver written in C is compiled by CompCertO-rs and stacked over the
//! device-I/O primitives and the NIC model with sequential composition `∘`;
//! the whole stack talks to the network medium. The example runs both the
//! source stack (`Clight` components over `σ_io`) and checks the Fig. 7
//! simulation against the target stack (`Asm` over `σ'_io`).
//!
//! ```sh
//! cargo run --example nic_driver
//! ```

use compcerto::nic::{build, expected, LoopbackNet};

fn double_and_mark(frame: i64) -> i64 {
    frame * 2 + 1_000_000
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = build()?;
    println!("driver source:\n{}", compcerto::nic::DRIVER_SRC);
    println!("client source:\n{}", compcerto::nic::CLIENT_SRC);

    // Run the source stack against a loopback network.
    let mut net = LoopbackNet::new(double_and_mark);
    let x = 17;
    let got = scenario.run_source(x, &mut net);
    println!("(Clight(client) ⊕ Clight(driver)) ∘ σ_io ∘ σ_NIC  on client_main({x}) = {got}");
    assert_eq!(got, expected(x, double_and_mark));

    // Eqn. (7): the I/O primitives at C and at A are related by id ↠ C.
    scenario.check_eqn7(42)?;
    println!("Eqn. (7) checked: σ_io ≤ σ'_io under id ↠ C ✓");

    // The Fig. 7 bottom line: the compiled stack simulates the source stack.
    for x in [0, 17, -9] {
        let report = scenario.check_fig7(x, double_and_mark)?;
        println!(
            "Fig. 7 checked for client_main({x}): {} wire operations, answers C-related ✓",
            report.external_calls
        );
    }
    Ok(())
}
