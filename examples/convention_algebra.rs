//! The simulation-convention algebra in action (paper §5, Figs. 10/11):
//! compose the per-pass conventions of Table 3 and derive the uniform
//! whole-compiler convention `C = R* · wt · CA · vainj`, printing every
//! law-justified rewriting step.
//!
//! ```sh
//! cargo run --example convention_algebra
//! ```

use compcerto::compiler::registry::{composed_incoming, composed_outgoing, pass_registry};
use compcerto::core::algebra::{derive, goal_convention};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("per-pass conventions (paper Table 3):");
    for p in pass_registry() {
        let marker = if p.optional { "†" } else { " " };
        println!(
            "  {:<14}{marker} {:<11} -> {:<11} {} ↠ {}",
            p.name, p.source, p.target, p.outgoing, p.incoming
        );
    }

    println!("\ncomposed incoming convention:");
    println!("  {}", composed_incoming());

    println!("\nderivation to the goal `{}`:", goal_convention());
    let derivation = derive(composed_incoming())?;
    print!("{}", derivation.render());
    derivation.verify()?;
    println!("derivation verified: every step justified by its cited law ✓");

    println!("\noutgoing side:");
    let derivation = derive(composed_outgoing())?;
    println!(
        "  {} steps, result {} ✓",
        derivation.steps.len(),
        derivation.current()
    );
    derivation.verify()?;
    Ok(())
}
