//! Paper Fig. 1: two translation units, `A.c` defining `mult` and `B.c`
//! defining `sqr` in terms of it, compiled separately and composed.
//!
//! Reproduces the play of paper Eqn. (2) — `sqr(3) · mult(3,3) · 9 · 9` —
//! by running `Clight(B.c)` as an *open* component whose external call is
//! answered by `Clight(A.c)` through horizontal composition, then checks
//! separate compilation (Cor. 3.9) on the same interaction.
//!
//! ```sh
//! cargo run --example fig1_mult_sqr
//! ```

use compcerto::compiler::{
    c_query, check_cor39, check_thm35, compile_all, CompilerOptions, ExtLib,
};
use compcerto::core::cc::Ca;
use compcerto::core::conv::SimConv;
use compcerto::core::hcomp::HComp;
use compcerto::core::lts::run;
use compcerto::mem::Val;

const A_C: &str = "int mult(int n, int p) { return n * p; }";
const B_C: &str = "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("A.c: {A_C}");
    println!("B.c: {B_C}\n");

    let (units, symtab) = compile_all(&[B_C, A_C], CompilerOptions::default())?;
    let (b_unit, a_unit) = (&units[0], &units[1]);

    // The open component B alone: its call to `mult` escapes to the
    // environment — the play of Eqn. (2).
    let q = c_query(&symtab, b_unit, "sqr", vec![Val::Int(3)]);
    let b_sem = b_unit.clight_sem(&symtab);
    let reply = run(
        &b_sem,
        &q,
        &mut |m| {
            println!("  external question: mult({}, {})", m.args[0], m.args[1]);
            let v = m.args[0].mul(m.args[1]);
            println!("  environment answer: {v}");
            Some(compcerto::core::iface::CReply {
                retval: v,
                mem: m.mem.clone(),
            })
        },
        10_000,
    )
    .expect_complete();
    println!("play: sqr(3) · mult(3,3) · 9 · {}\n", reply.retval);

    // Horizontal composition B ⊕ A: the call resolves internally (Fig. 5's
    // push/pop rules).
    let composed = HComp::new(
        b_unit.clight_sem(&symtab).with_label("Clight(B.c)"),
        a_unit.clight_sem(&symtab).with_label("Clight(A.c)"),
    );
    let reply = run(&composed, &q, &mut |_m| None, 10_000).expect_complete();
    println!("(Clight(B.c) ⊕ Clight(A.c))(sqr(3)) = {}", reply.retval);

    // Corollary 3.9: the composition is simulated by the compiled-and-linked
    // assembly program under the convention C.
    let lib = ExtLib::demo(symtab.clone());
    check_cor39(b_unit, a_unit, &symtab, &lib, &q)?;
    println!("Cor 3.9 checked: Clight(B) ⊕ Clight(A) ≤_C Asm(B.s + A.s) ✓");

    // Theorem 3.5: semantic composition of the Asm components is implemented
    // by syntactic linking.
    let (_, qa) = Ca::new(symtab.len() as u32).transport_query(&q).unwrap();
    check_thm35(&b_unit.asm, &a_unit.asm, &symtab, &lib, &qa)?;
    println!("Thm 3.5 checked: Asm(B.s) ⊕ Asm(A.s) ≤_id Asm(B.s + A.s) ✓");

    // Show the generated assembly for Fig. 1's flavor.
    println!("\ngenerated assembly for sqr:");
    print!("{}", b_unit.asm.function("sqr").unwrap().dump());
    Ok(())
}
