//! Quickstart: compile a C component, run it at both ends of the pipeline,
//! and check the compiler-correctness statement on the execution.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use compcerto::compiler::{c_query, check_thm38, compile_all, CompilerOptions, ExtLib};
use compcerto::core::lts::run;
use compcerto::mem::Val;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small translation unit: greatest common divisor.
    let src = "
        int gcd(int a, int b) {
            int t;
            while (b != 0) { t = b; b = a % b; a = t; }
            return a;
        }
    ";

    // Compile it through the full 18-pass pipeline.
    let (units, symtab) = compile_all(&[src], CompilerOptions::default())?;
    let unit = &units[0];
    println!("compiled `gcd` through {} passes:", 18);
    println!(
        "  Clight -> ... -> RTL ({} nodes) -> ... -> Asm ({} instructions)",
        unit.rtl_opt.functions[0].code.len(),
        unit.asm.functions[0].code.len(),
    );

    // Run the *source* semantics: an open component answering a C-level call.
    let q = c_query(&symtab, unit, "gcd", vec![Val::Int(252), Val::Int(105)]);
    let src_sem = unit.clight_sem(&symtab);
    let reply = run(&src_sem, &q, &mut |_q| None, 1_000_000).expect_complete();
    println!("Clight(gcd)(252, 105) = {}", reply.retval);

    // Check Theorem 3.8 on this execution: the compiled component, activated
    // through the calling convention `C`, answers equivalently.
    let lib = ExtLib::demo(symtab.clone());
    let report = check_thm38(unit, &symtab, &lib, &q)?;
    println!(
        "Thm 3.8 checked: source {} steps, target {} steps, answers C-related ✓",
        report.source_steps, report.target_steps
    );
    Ok(())
}
