//! # compcerto — an executable reproduction of CompCertO
//!
//! This umbrella crate re-exports the whole CompCertO-rs workspace:
//!
//! * [`mem`] — the CompCert-style memory model (values, blocks, injections);
//! * `core` ([`compcerto_core`]) — language interfaces, open labeled transition
//!   systems, horizontal/sequential composition, simulation conventions,
//!   CKLRs and the simulation-convention algebra (the paper's contribution);
//! * [`clight`] — the Clight-mini source language (parser, type checker,
//!   semantics) and the `SimplLocals` pass;
//! * [`minor`] — Csharpminor / Cminor / CminorSel and their passes;
//! * [`rtl`] — the RTL register-transfer language and its optimizations;
//! * [`backend`] — LTL / Linear / Mach / Asm and the back-end passes;
//! * [`compiler`] — the pass pipeline, convention derivation and the
//!   Theorem 3.8 / Corollary 3.9 correctness harnesses;
//! * [`nic`] — the heterogeneous NIC-driver scenario of paper Fig. 7.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full inventory.

pub use backend;
pub use clight;
pub use compcerto_core as core;
pub use compiler;
pub use mem;
pub use minor;
pub use nic;
pub use rtl;
