#!/bin/sh
# Offline CI: build, test, and lint-gate the workspace.
#
# Everything here runs without network/registry access (no registry
# dependencies; randomness comes from the in-repo SplitMix64). The clippy
# gate enforces the panic-free policy on the library crates hardened in
# DESIGN.md §6: no unwrap/expect on library code paths. Linting
# `compcerto-core`, `mem`, `compiler` and `compcerto-validate` transitively
# covers the `clight`/`rtl`/`backend` path dependencies in their build
# graph.
set -eu

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== clippy unwrap/expect gate (library paths) =="
cargo clippy -p compcerto-core -p mem -p rtl -p compiler -p compcerto-validate --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used

echo "== bin unwrap/expect audit (ISSUE 6: no panicking shortcuts in drivers) =="
# The evaluation/driver bins must fail gracefully (exit 1/2 with a
# message), never unwind. A plain text audit keeps the gate independent of
# clippy's transitive-lint behavior.
! grep -n '\.unwrap()\|\.expect(' crates/bench/src/bin/*.rs crates/compiler/src/bin/*.rs

echo "== fault-injection campaign (determinism smoke) =="
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 > /tmp/ci_camp_1.txt
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 > /tmp/ci_camp_2.txt
cmp /tmp/ci_camp_1.txt /tmp/ci_camp_2.txt
cat /tmp/ci_camp_1.txt

echo "== static validation gate (honest battery clean, matrix deterministic) =="
# Phase 1 compiles the example/workload battery with the validation layer
# on and fails on any diagnostic; phase 2 requires ALL 10 mutation classes
# to be caught statically (the abstract-interpretation validators closed
# the rtl-constant-drift gap — DESIGN.md §12). Two runs must be
# byte-identical.
cargo run -q -p bench --bin validate_campaign -- --seed 42 --per-class 5 > /tmp/ci_val_1.txt
cargo run -q -p bench --bin validate_campaign -- --seed 42 --per-class 5 > /tmp/ci_val_2.txt
cmp /tmp/ci_val_1.txt /tmp/ci_val_2.txt
cat /tmp/ci_val_1.txt

echo "== abstract-interpretation gate (validated opt passes + fact export) =="
# DESIGN.md §12 / EXPERIMENTS.md row B11: the golden corpus must compile
# cleanly with the full default pipeline (vprop/ndce on) under the static
# validators — ccomp-o exits nonzero on any diagnostic or degradation, so
# `set -e` is the gate, per file and linked as one program.
for f in crates/compiler/tests/golden/*.c; do
    cargo run -q --release -p compiler --bin ccomp-o -- --validate "$f" > /dev/null
done
cargo run -q --release -p compiler --bin ccomp-o -- --validate \
    crates/compiler/tests/golden/*.c > /dev/null
# The analysis fact export must be schema-tagged and byte-deterministic.
cargo run -q --release -p compiler --bin ccomp-o -- --analyze-json \
    crates/compiler/tests/golden/*.c > /tmp/ci_analyze_1.json
cargo run -q --release -p compiler --bin ccomp-o -- --analyze-json \
    crates/compiler/tests/golden/*.c > /tmp/ci_analyze_2.json
cmp /tmp/ci_analyze_1.json /tmp/ci_analyze_2.json
grep -q '"schema": "compcerto-analysis/1"' /tmp/ci_analyze_1.json
grep -q '"needed"' /tmp/ci_analyze_1.json

echo "== perf smoke (serial/parallel determinism + BENCH schema) =="
# The quick profile of the B7 baseline (EXPERIMENTS.md): times each hot
# path serial vs parallel and *fails itself* on any output-checksum
# mismatch. We re-check the emitted JSON here so a regression in the
# emitter (not just the workloads) also fails CI. Timings are not gated —
# only determinism and well-formedness are.
cargo run -q --release -p bench --bin perf_campaign -- --quick --out /tmp/ci_bench.json
grep -q '"schema": "compcerto-perf/1"' /tmp/ci_bench.json
grep -q '"checksums_match": true' /tmp/ci_bench.json
# Every workload row must carry matching serial/parallel checksums.
awk '/"checksum_serial"/ {
    if (match($0, /"checksum_serial": "[0-9a-f]+"/)) s = substr($0, RSTART+20, RLENGTH-21);
    if (match($0, /"checksum_parallel": "[0-9a-f]+"/)) p = substr($0, RSTART+22, RLENGTH-23);
    if (s != p) { print "checksum mismatch: " $0; exit 1 }
}' /tmp/ci_bench.json
# The committed baseline must be well-formed too.
grep -q '"schema": "compcerto-perf/1"' BENCH_PR3.json
grep -q '"checksums_match": true' BENCH_PR3.json

echo "== interp-throughput smoke (arena/fused dispatch) =="
# DESIGN.md §13 / EXPERIMENTS.md row B12: re-measure the fixed 64-seed
# interpretation sweep and gate against the committed BENCH_PR8.json. The
# verdict checksum must match exactly — the batched interpreters are
# required to be observationally invisible. The throughput floor (default
# 4x vs the committed pre-change measurement) is enforced only on boxes
# with >= 4 cores; below that the bin reports the ratio as advisory.
cargo run -q --release -p bench --bin interp_campaign -- --check BENCH_PR8.json
grep -q '"schema": "compcerto-interp/1"' BENCH_PR8.json

echo "== compile-server gate (cache cold/warm byte-identity) =="
# ISSUE 9 / DESIGN.md §14: the same golden batch is served twice against a
# fresh cache directory by two separate `ccomp-o serve` processes. The
# first run must miss for every unit, the second must hit for every unit
# (the cache is on disk, not in the process), and the compiled artifacts
# must be byte-identical once the cache-status tags — the only intended
# difference — are stripped. The corruption/protocol/identity batteries
# behind this gate run as integration tests under `cargo test` above.
rm -rf /tmp/ci_serve_cache
printf '%s\n' \
    '{"schema":"compcerto-serve/1","op":"compile","id":1,"units":[{"source":"int add(int x, int y) { return x + y; }"},{"source":"extern int add(int, int); int twice(int n) { int r; r = add(n, n); return r; }"}]}' \
    '{"schema":"compcerto-serve/1","op":"stats","id":2}' \
    > /tmp/ci_serve_batch.txt
cargo run -q --release -p compiler --bin ccomp-o -- serve --cache-dir /tmp/ci_serve_cache \
    < /tmp/ci_serve_batch.txt > /tmp/ci_serve_1.txt
cargo run -q --release -p compiler --bin ccomp-o -- serve --cache-dir /tmp/ci_serve_cache \
    < /tmp/ci_serve_batch.txt > /tmp/ci_serve_2.txt
grep -q '"cache":{"hit":0,"miss":2,"evict":0}' /tmp/ci_serve_1.txt
grep -q '"cache":{"hit":2,"miss":0,"evict":0}' /tmp/ci_serve_2.txt
sed 's/"cache":"miss",//g; s/"cache":"hit",//g; s/"cache":{[^}]*}//g' /tmp/ci_serve_1.txt | head -1 > /tmp/ci_serve_1.norm
sed 's/"cache":"miss",//g; s/"cache":"hit",//g; s/"cache":{[^}]*}//g' /tmp/ci_serve_2.txt | head -1 > /tmp/ci_serve_2.norm
cmp /tmp/ci_serve_1.norm /tmp/ci_serve_2.norm

echo "== serve-cache bench gate (warm speedup baseline) =="
# EXPERIMENTS.md row B13: re-run the 24-batch cold/warm campaign with its
# in-process identity assertions (jobs matrix, restart, partial hit) and
# gate the artifact checksum against the committed BENCH_PR9.json. The
# warm-speedup floor (5x) is enforced only on boxes with >= 4 cores;
# below that the ratio is reported as advisory.
cargo run -q --release -p bench --bin serve_campaign -- --check BENCH_PR9.json
grep -q '"schema": "compcerto-serve-bench/1"' BENCH_PR9.json

echo "== differential-testing campaign (quick oracle sweep) =="
# EXPERIMENTS.md row B8: the seeded generator → cross-stage oracle over a
# fixed seed block. The bin exits nonzero on any finding (disagreement,
# stuck state, validator rejection, link mismatch) and on any reducer
# panic, so `set -e` is the gate. The report is required to be
# byte-identical across --jobs settings, and its JSON summary is checked
# for schema and a clean finding count.
cargo run -q --release -p bench --bin difftest_campaign -- --quick --jobs 1 --out /tmp/ci_difftest_1.json
cargo run -q --release -p bench --bin difftest_campaign -- --quick --jobs auto --out /tmp/ci_difftest_2.json
cmp /tmp/ci_difftest_1.json /tmp/ci_difftest_2.json
# ISSUE 9: `--check` against a matching baseline must exit 0; the
# flag-mismatch exit-2 contract is covered by bench/tests/difftest_check.
cargo run -q --release -p bench --bin difftest_campaign -- --quick --jobs auto --check /tmp/ci_difftest_1.json
grep -q '"schema": "compcerto-difftest/1"' /tmp/ci_difftest_1.json
grep -q '"findings": 0,' /tmp/ci_difftest_1.json
# The committed 500-seed baseline must be well-formed and clean too.
grep -q '"schema": "compcerto-difftest/1"' DIFFTEST.json
grep -q '"findings": 0,' DIFFTEST.json
# PR 6: the report now carries a deterministic observability section.
grep -q '"obs"' DIFFTEST.json
grep -q '"stage_pairs": "6/6"' DIFFTEST.json

echo "== observability gate (counter baseline + overhead) =="
# EXPERIMENTS.md row B9 / DESIGN.md §10: recompute the deterministic
# counter baseline and compare against the committed OBS.json *after*
# normalization (the schema-aware normalizer strips the volatile
# pool/timings sections — wall-clock is reported, never gated). The same
# invocation asserts grammar coverage is complete, the difftest sweep is
# finding-free, and metrics-on compilation stays within 5% (+ absolute
# slack) of metrics-off.
cargo run -q --release -p bench --bin obs_campaign -- --check OBS.json --max-overhead 5
# The committed baseline itself must be schema-valid and fully covered.
grep -q '"schema": "compcerto-obs/1"' OBS.json
grep -q '"complete": true' OBS.json
grep -q '"stage_pairs": "6/6"' OBS.json

echo "== resilience gate (fault sweep deterministic, no aborts) =="
# ISSUE 6 / DESIGN.md §11: 240 injections across the four environment-fault
# classes must produce the committed outcome table byte-for-byte under both
# a serial and a parallel pool (thread-local arming makes the sweep
# jobs-invariant), and the process must never abort (`aborts` is emitted
# only when every injection returned).
cargo run -q --release -p bench --bin resilience_campaign -- --jobs 1 --out /tmp/ci_resil_1.json
cargo run -q --release -p bench --bin resilience_campaign -- --jobs 4 --out /tmp/ci_resil_2.json
cmp /tmp/ci_resil_1.json /tmp/ci_resil_2.json
cargo run -q --release -p bench --bin resilience_campaign -- --jobs 4 --check RESIL.json
grep -q '"schema": "compcerto-resil/1"' RESIL.json
grep -q '"aborts": 0,' RESIL.json

echo "== schedule-exploration gate (threaded N x M oracle) =="
# ISSUE 10 / EXPERIMENTS.md row B14: the thread-aware open semantics.
# Re-run the committed 64-seed x 8-schedule campaign and gate against
# SCHED.json — any cross-stage disagreement under any interleaving, or any
# drift in the per-schedule verdict checksums, fails the build. The report
# must be byte-identical across worker-pool widths (per-seed verdicts are
# pure; the FNV chains fold in seed order).
cargo run -q --release -p bench --bin sched_campaign -- --seeds 64 --jobs 1 --check SCHED.json
cargo run -q --release -p bench --bin sched_campaign -- --seeds 64 --jobs 4 --check SCHED.json
cargo run -q --release -p bench --bin sched_campaign -- --seeds 64 --jobs 16 --check SCHED.json
grep -q '"schema": "compcerto-sched/1"' SCHED.json
grep -q '"findings": 0,' SCHED.json
grep -q '"schedules_budget_skipped": 0,' SCHED.json

echo "== kill-and-resume smoke (checkpointed campaigns) =="
# A campaign stopped at a block boundary and resumed in a fresh process
# must produce a final report byte-identical to the uninterrupted run, and
# must clean up its checkpoint afterwards.
cargo run -q --release -p bench --bin difftest_campaign -- --quick --jobs auto --block 5 --max-blocks 1 \
    --out /tmp/ci_resume.json --ckpt /tmp/ci_resume.ckpt
test -f /tmp/ci_resume.ckpt
cargo run -q --release -p bench --bin difftest_campaign -- --quick --jobs auto --block 5 --resume \
    --out /tmp/ci_resume.json --ckpt /tmp/ci_resume.ckpt
cmp /tmp/ci_difftest_1.json /tmp/ci_resume.json
test ! -f /tmp/ci_resume.ckpt
# Same for the fault-injection campaign (per-class checkpoints).
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 \
    --ckpt /tmp/ci_fi.ckpt --max-classes 4 > /tmp/ci_fi_paused.txt
test -f /tmp/ci_fi.ckpt
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 \
    --ckpt /tmp/ci_fi.ckpt --resume > /tmp/ci_fi_resumed.txt 2>/dev/null
cmp /tmp/ci_camp_1.txt /tmp/ci_fi_resumed.txt
test ! -f /tmp/ci_fi.ckpt
# Same for the schedule campaign: pause after one block, resume, and the
# final report must still byte-match the committed baseline.
cargo run -q --release -p bench --bin sched_campaign -- --seeds 64 --jobs auto --block 16 --max-blocks 1 \
    --out /tmp/ci_sched_resume.json --ckpt /tmp/ci_sched.ckpt
test -f /tmp/ci_sched.ckpt
cargo run -q --release -p bench --bin sched_campaign -- --seeds 64 --jobs auto --block 16 --resume \
    --out /tmp/ci_sched_resume.json --ckpt /tmp/ci_sched.ckpt
cmp SCHED.json /tmp/ci_sched_resume.json
test ! -f /tmp/ci_sched.ckpt

echo "== ci ok =="
