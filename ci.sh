#!/bin/sh
# Offline CI: build, test, and lint-gate the workspace.
#
# Everything here runs without network/registry access (no registry
# dependencies; randomness comes from the in-repo SplitMix64). The clippy
# gate enforces the panic-free policy on the library crates hardened in
# DESIGN.md §6: no unwrap/expect on library code paths. Linting
# `compcerto-core`, `mem`, `compiler` and `compcerto-validate` transitively
# covers the `clight`/`rtl`/`backend` path dependencies in their build
# graph.
set -eu

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== clippy unwrap/expect gate (library paths) =="
cargo clippy -p compcerto-core -p mem -p compiler -p compcerto-validate --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used

echo "== fault-injection campaign (determinism smoke) =="
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 > /tmp/ci_camp_1.txt
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 > /tmp/ci_camp_2.txt
cmp /tmp/ci_camp_1.txt /tmp/ci_camp_2.txt
cat /tmp/ci_camp_1.txt

echo "== static validation gate (honest battery clean, matrix deterministic) =="
# Phase 1 compiles the example/workload battery with the validation layer
# on and fails on any diagnostic; phase 2 requires at least 4 of the 10
# mutation classes to be caught statically. Two runs must be byte-identical.
cargo run -q -p bench --bin validate_campaign -- --seed 42 --per-class 5 > /tmp/ci_val_1.txt
cargo run -q -p bench --bin validate_campaign -- --seed 42 --per-class 5 > /tmp/ci_val_2.txt
cmp /tmp/ci_val_1.txt /tmp/ci_val_2.txt
cat /tmp/ci_val_1.txt

echo "== ci ok =="
