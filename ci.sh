#!/bin/sh
# Offline CI: build, test, and lint-gate the workspace.
#
# Everything here runs without network/registry access (no registry
# dependencies; randomness comes from the in-repo SplitMix64). The clippy
# gate enforces the panic-free policy on the library crates hardened in
# DESIGN.md §6: no unwrap/expect on library code paths. Linting
# `compcerto-core`, `mem`, `compiler` and `compcerto-validate` transitively
# covers the `clight`/`rtl`/`backend` path dependencies in their build
# graph.
set -eu

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== clippy unwrap/expect gate (library paths) =="
cargo clippy -p compcerto-core -p mem -p rtl -p compiler -p compcerto-validate --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used

echo "== fault-injection campaign (determinism smoke) =="
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 > /tmp/ci_camp_1.txt
cargo run -q -p bench --bin faultinj_campaign -- --seed 42 --per-class 5 > /tmp/ci_camp_2.txt
cmp /tmp/ci_camp_1.txt /tmp/ci_camp_2.txt
cat /tmp/ci_camp_1.txt

echo "== static validation gate (honest battery clean, matrix deterministic) =="
# Phase 1 compiles the example/workload battery with the validation layer
# on and fails on any diagnostic; phase 2 requires at least 4 of the 10
# mutation classes to be caught statically. Two runs must be byte-identical.
cargo run -q -p bench --bin validate_campaign -- --seed 42 --per-class 5 > /tmp/ci_val_1.txt
cargo run -q -p bench --bin validate_campaign -- --seed 42 --per-class 5 > /tmp/ci_val_2.txt
cmp /tmp/ci_val_1.txt /tmp/ci_val_2.txt
cat /tmp/ci_val_1.txt

echo "== perf smoke (serial/parallel determinism + BENCH schema) =="
# The quick profile of the B7 baseline (EXPERIMENTS.md): times each hot
# path serial vs parallel and *fails itself* on any output-checksum
# mismatch. We re-check the emitted JSON here so a regression in the
# emitter (not just the workloads) also fails CI. Timings are not gated —
# only determinism and well-formedness are.
cargo run -q --release -p bench --bin perf_campaign -- --quick --out /tmp/ci_bench.json
grep -q '"schema": "compcerto-perf/1"' /tmp/ci_bench.json
grep -q '"checksums_match": true' /tmp/ci_bench.json
# Every workload row must carry matching serial/parallel checksums.
awk '/"checksum_serial"/ {
    if (match($0, /"checksum_serial": "[0-9a-f]+"/)) s = substr($0, RSTART+20, RLENGTH-21);
    if (match($0, /"checksum_parallel": "[0-9a-f]+"/)) p = substr($0, RSTART+22, RLENGTH-23);
    if (s != p) { print "checksum mismatch: " $0; exit 1 }
}' /tmp/ci_bench.json
# The committed baseline must be well-formed too.
grep -q '"schema": "compcerto-perf/1"' BENCH_PR3.json
grep -q '"checksums_match": true' BENCH_PR3.json

echo "== differential-testing campaign (quick oracle sweep) =="
# EXPERIMENTS.md row B8: the seeded generator → cross-stage oracle over a
# fixed seed block. The bin exits nonzero on any finding (disagreement,
# stuck state, validator rejection, link mismatch) and on any reducer
# panic, so `set -e` is the gate. The report is required to be
# byte-identical across --jobs settings, and its JSON summary is checked
# for schema and a clean finding count.
cargo run -q --release -p bench --bin difftest_campaign -- --quick --jobs 1 --out /tmp/ci_difftest_1.json
cargo run -q --release -p bench --bin difftest_campaign -- --quick --jobs auto --out /tmp/ci_difftest_2.json
cmp /tmp/ci_difftest_1.json /tmp/ci_difftest_2.json
grep -q '"schema": "compcerto-difftest/1"' /tmp/ci_difftest_1.json
grep -q '"findings": 0,' /tmp/ci_difftest_1.json
# The committed 500-seed baseline must be well-formed and clean too.
grep -q '"schema": "compcerto-difftest/1"' DIFFTEST.json
grep -q '"findings": 0,' DIFFTEST.json
# PR 6: the report now carries a deterministic observability section.
grep -q '"obs"' DIFFTEST.json
grep -q '"stage_pairs": "6/6"' DIFFTEST.json

echo "== observability gate (counter baseline + overhead) =="
# EXPERIMENTS.md row B9 / DESIGN.md §10: recompute the deterministic
# counter baseline and compare against the committed OBS.json *after*
# normalization (the schema-aware normalizer strips the volatile
# pool/timings sections — wall-clock is reported, never gated). The same
# invocation asserts grammar coverage is complete, the difftest sweep is
# finding-free, and metrics-on compilation stays within 5% (+ absolute
# slack) of metrics-off.
cargo run -q --release -p bench --bin obs_campaign -- --check OBS.json --max-overhead 5
# The committed baseline itself must be schema-valid and fully covered.
grep -q '"schema": "compcerto-obs/1"' OBS.json
grep -q '"complete": true' OBS.json
grep -q '"stage_pairs": "6/6"' OBS.json

echo "== ci ok =="
