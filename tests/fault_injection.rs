//! Fault injection: the value of a translation-validation harness is its
//! *sensitivity*. These tests mutate compiled programs in targeted ways —
//! each mutation violating a specific clause of the calling convention `C` —
//! and assert the Theorem 3.8 checker rejects the mutant with the right
//! class of error.
//!
//! The hand-written mutations below are the seed of the
//! `compiler::faultinj` subsystem, which generalizes them into seeded
//! operators; the tests at the bottom drive the subsystem itself.

use compcerto::backend::AsmInst;
use compcerto::compiler::faultinj::{mutate, run_campaign, CampaignCfg, CAMPAIGN_SRC};
use compcerto::compiler::{
    c_query, check_thm38, compile_all, CompiledUnit, CompilerOptions, ExtLib, MUTATION_CLASSES,
};
use compcerto::core::rng::SplitMix64;
use compcerto::core::regs::Mreg;
use compcerto::core::sim::SimCheckError;
use compcerto::mem::Val;
use compcerto::minor::MBinop;

const SRC: &str = "
    extern int inc(int);
    int helper(int x) { return x * 3; }
    int entry(int a) {
        int b; int c;
        b = helper(a + 1);
        c = inc(b);
        return b + c;
    }";

fn compile() -> (CompiledUnit, compcerto::core::symtab::SymbolTable, ExtLib) {
    let (mut units, tbl) = compile_all(&[SRC], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    (units.remove(0), tbl, lib)
}

fn check(unit: &CompiledUnit) -> Result<(), SimCheckError> {
    let (_, tbl, lib) = compile();
    let q = c_query(&tbl, unit, "entry", vec![Val::Int(5)]);
    check_thm38(unit, &tbl, &lib, &q).map(|_| ())
}

/// Apply `mutate` to the Asm code of `fname` in a fresh compilation.
fn mutate_asm(fname: &str, mutate: impl Fn(&mut Vec<AsmInst>)) -> CompiledUnit {
    let (mut unit, _, _) = compile();
    let f = unit
        .asm
        .functions
        .iter_mut()
        .find(|f| f.name == fname)
        .expect("function exists");
    mutate(&mut f.code);
    unit
}

#[test]
fn baseline_passes() {
    let (unit, _, _) = compile();
    check(&unit).expect("unmutated program satisfies Thm 3.8");
}

#[test]
fn detects_wrong_result() {
    // Corrupt the computed result: an extra increment before returning.
    let unit = mutate_asm("entry", |code| {
        let ret = code
            .iter()
            .rposition(|i| matches!(i, AsmInst::Ret))
            .unwrap();
        code.insert(
            ret,
            AsmInst::BinopImm(MBinop::Add32, Mreg(0), Mreg(0), Val::Int(1)),
        );
    });
    let err = check(&unit).unwrap_err();
    assert!(matches!(err, SimCheckError::FinalNotRelated), "got {err}");
}

#[test]
fn detects_clobbered_callee_save() {
    // Write a callee-save register without saving it.
    let unit = mutate_asm("entry", |code| {
        let ret = code
            .iter()
            .rposition(|i| matches!(i, AsmInst::Ret))
            .unwrap();
        code.insert(ret, AsmInst::MovImm64(Mreg(13), 0xDEAD));
    });
    let err = check(&unit).unwrap_err();
    assert!(matches!(err, SimCheckError::FinalNotRelated), "got {err}");
}

#[test]
fn detects_wrong_external_argument() {
    // Corrupt the argument register right before the external call.
    let unit = mutate_asm("entry", |code| {
        let call = code
            .iter()
            .position(|i| matches!(i, AsmInst::Call(f) if f == "inc"))
            .expect("external call present");
        code.insert(
            call,
            AsmInst::BinopImm(MBinop::Add32, Mreg(0), Mreg(0), Val::Int(7)),
        );
    });
    let err = check(&unit).unwrap_err();
    // The mismatch surfaces at the external boundary (Fig. 6c edge) — the
    // external questions are no longer CA-related.
    assert!(
        matches!(err, SimCheckError::ExternalNotRelated { .. }),
        "got {err}"
    );
}

#[test]
fn detects_skipped_external_call() {
    // Remove the external call entirely: interaction structures diverge.
    let unit = mutate_asm("entry", |code| {
        let call = code
            .iter()
            .position(|i| matches!(i, AsmInst::Call(f) if f == "inc"))
            .unwrap();
        code[call] = AsmInst::MovImm32(Mreg(0), 99);
    });
    let err = check(&unit).unwrap_err();
    assert!(
        matches!(
            err,
            SimCheckError::InteractionMismatch { .. } | SimCheckError::FinalNotRelated
        ),
        "got {err}"
    );
}

#[test]
fn detects_unrestored_stack_pointer() {
    // Skip FreeFrame: sp comes back pointing at the (leaked) frame.
    let unit = mutate_asm("entry", |code| {
        let ff = code
            .iter()
            .rposition(|i| matches!(i, AsmInst::FreeFrame(_)))
            .unwrap();
        code[ff] = AsmInst::AddSp(0);
    });
    let err = check(&unit).unwrap_err();
    // Without FreeFrame, `ra` is fine (restored earlier) but `sp` differs
    // and the frame block is still allocated.
    assert!(
        matches!(
            err,
            SimCheckError::FinalNotRelated | SimCheckError::Wrong { .. }
        ),
        "got {err}"
    );
}

#[test]
fn detects_memory_corruption() {
    // Scribble over a global variable through a mutated store.
    let src_with_global = "
        int shared = 11;
        int entry(int a) {
            shared = shared + a;
            return shared;
        }";
    let (mut units, tbl) = compile_all(&[src_with_global], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    let unit = &mut units[0];
    // Make the compiled store write a different value: find the Store to the
    // global and add a corruption just before it.
    let f = unit
        .asm
        .functions
        .iter_mut()
        .find(|f| f.name == "entry")
        .unwrap();
    let store = f
        .code
        .iter()
        .position(|i| matches!(i, AsmInst::Store(_, _, _, _)))
        .expect("store to the global present");
    let corrupt = match &f.code[store] {
        AsmInst::Store(_, src, _, _) => AsmInst::BinopImm(MBinop::Add32, *src, *src, Val::Int(100)),
        _ => unreachable!(),
    };
    f.code.insert(store, corrupt);
    let q = c_query(&tbl, &units[0], "entry", vec![Val::Int(1)]);
    let err = check_thm38(&units[0], &tbl, &lib, &q).unwrap_err();
    // Either the result or the global's memory image betrays the corruption.
    assert!(matches!(err, SimCheckError::FinalNotRelated), "got {err}");
}

#[test]
fn detects_source_level_miscompilation_pattern() {
    // Simulate a "wrong constant" bug by patching an immediate. (`helper`
    // is inlined into `entry`, so the live copy of the multiply is there.)
    let unit = mutate_asm("entry", |code| {
        for inst in code.iter_mut() {
            if let AsmInst::BinopImm(MBinop::Mul32, d, s, Val::Int(3)) = inst {
                *inst = AsmInst::BinopImm(MBinop::Mul32, *d, *s, Val::Int(4));
                return;
            }
        }
        panic!("expected a mul-immediate in helper:\n{code:?}");
    });
    let err = check(&unit).unwrap_err();
    assert!(
        matches!(
            err,
            SimCheckError::ExternalNotRelated { .. } | SimCheckError::FinalNotRelated
        ),
        "got {err}"
    );
}

// ---------------------------------------------------------------------------
// The promoted subsystem: seeded operators + campaign runner.
// ---------------------------------------------------------------------------

#[test]
fn subsystem_operators_detected_with_expected_error() {
    // Every mutation class, applied with two different seeds to the campaign
    // workload, is rejected by the checker with the error class keyed to the
    // violated convention clause.
    let (mut units, tbl) =
        compile_all(&[CAMPAIGN_SRC], CompilerOptions::default()).expect("campaign src compiles");
    let baseline = units.remove(0);
    let lib = ExtLib::demo(tbl.clone());
    for &class in &MUTATION_CLASSES {
        for seed in [1u64, 2] {
            let mut rng = SplitMix64::new(seed);
            let m = mutate(&baseline, "entry", class, &mut rng)
                .unwrap_or_else(|| panic!("{class}: no applicable site"));
            // Probe a few arguments; at least one must expose the fault.
            let err = [0, 3, 7].iter().find_map(|&x| {
                let q = c_query(&tbl, &m.unit, "entry", vec![Val::Int(x)]);
                check_thm38(&m.unit, &tbl, &lib, &q).err()
            });
            let err = err.unwrap_or_else(|| {
                panic!("{class} (seed {seed}) escaped: {}", m.mutation.desc)
            });
            assert!(
                class.matches_expected(&err),
                "{class} (seed {seed}): unexpected error {err} for {}",
                m.mutation.desc
            );
        }
    }
}

#[test]
fn subsystem_campaign_is_deterministic_and_escape_free() {
    let cfg = CampaignCfg {
        seed: 42,
        per_class: 2,
        fuel: 200_000,
        probe_args: vec![0, 3, 7],
        ..CampaignCfg::default()
    };
    let r1 = run_campaign(&cfg).expect("campaign runs");
    let r2 = run_campaign(&cfg).expect("campaign runs");
    assert_eq!(r1.to_string(), r2.to_string(), "campaign must be seed-deterministic");
    assert_eq!(r1.total_escapes(), 0, "silent escapes:\n{r1}");
    assert!(r1.stats.len() >= 8, "fewer than 8 mutation classes");
    for s in &r1.stats {
        assert_eq!(s.generated, cfg.per_class, "{}: generation shortfall", s.class);
        assert_eq!(s.expected_class, s.detected, "{}: unexpected classes {:?}", s.class, s.errors);
    }
}
