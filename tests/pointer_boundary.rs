//! Pointers crossing the component boundary: the hardest corner of the
//! calling convention. A stack-allocated array's address is passed to an
//! external function that reads through it. At the Clight level the pointer
//! names a dedicated local block; at the Asm level it points *into the Mach
//! frame* at the stack-data offset — the two are related by a non-trivial
//! memory injection (non-zero delta), which the checker must infer from the
//! exchanged pointer (paper §4.2, and the `injp` discipline of §4.5).

use compcerto::compiler::{c_query, check_thm38, compile_all, CompilerOptions, ExtLib};
use compcerto::core::sim::SimCheckError;
use compcerto::mem::Val;

const SRC: &str = "
    extern long sum2(long*);

    long entry(long a, long b) {
        long buf[2];
        long r;
        buf[0] = a;
        buf[1] = b;
        r = sum2(buf);
        return r + buf[0];
    }";

#[test]
fn stack_pointer_crosses_the_boundary() {
    let (units, tbl) = compile_all(&[SRC], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    for (a, b) in [(3i64, 4i64), (0, 0), (-100, 100)] {
        let q = c_query(&tbl, &units[0], "entry", vec![Val::Long(a), Val::Long(b)]);
        let report =
            check_thm38(&units[0], &tbl, &lib, &q).unwrap_or_else(|e| panic!("sum2({a},{b}): {e}"));
        assert_eq!(report.external_calls, 1);
    }
}

#[test]
fn global_pointer_crosses_the_boundary() {
    let src = "
        extern long sum2(long*);
        long pair[2];
        long entry(long a) {
            long r;
            pair[0] = a;
            pair[1] = a * 2L;
            r = sum2(pair);
            return r;
        }";
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    let q = c_query(&tbl, &units[0], "entry", vec![Val::Long(7)]);
    check_thm38(&units[0], &tbl, &lib, &q).expect("Thm 3.8 with global pointer");
}

#[test]
fn nested_pointer_to_pointer() {
    // A pointer stored *in memory* and read back before the call: the
    // injection inference must follow the fragment chain.
    let src = "
        extern long sum2(long*);
        long entry(long a) {
            long buf[2];
            long* stash[1];
            long* p;
            long r;
            buf[0] = a;
            buf[1] = a + 1L;
            stash[0] = buf;
            p = stash[0];
            r = sum2(p);
            return r;
        }";
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    let q = c_query(&tbl, &units[0], "entry", vec![Val::Long(20)]);
    let report = check_thm38(&units[0], &tbl, &lib, &q).expect("pointer-to-pointer");
    assert_eq!(report.external_calls, 1);
}

#[test]
fn corrupting_pointed_to_data_is_detected() {
    // Mutate the compiled code to store a wrong value into the array before
    // the call: the external questions' memories are no longer related at
    // the exchanged pointer.
    let (mut units, tbl) = compile_all(&[SRC], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    let f = units[0]
        .asm
        .functions
        .iter_mut()
        .find(|f| f.name == "entry")
        .unwrap();
    // Find the first 8-byte store (buf[0] := a) and corrupt the stored reg.
    let store = f
        .code
        .iter()
        .position(|i| {
            matches!(
                i,
                compcerto::backend::AsmInst::Store(mem::Chunk::I64, _, _, _)
            )
        })
        .expect("I64 store present");
    let corrupt = match &f.code[store] {
        compcerto::backend::AsmInst::Store(_, src, _, _) => compcerto::backend::AsmInst::BinopImm(
            compcerto::minor::MBinop::Add64,
            *src,
            *src,
            Val::Long(1),
        ),
        _ => unreachable!(),
    };
    f.code.insert(store, corrupt);
    let q = c_query(&tbl, &units[0], "entry", vec![Val::Long(10), Val::Long(20)]);
    let err = check_thm38(&units[0], &tbl, &lib, &q).unwrap_err();
    assert!(
        matches!(
            err,
            SimCheckError::ExternalNotRelated { .. } | SimCheckError::FinalNotRelated
        ),
        "got {err}"
    );
}
