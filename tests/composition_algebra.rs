//! Structural properties of the composition operators at workspace level:
//! associativity and commutativity of `⊕` up to observable behaviour, and
//! the interplay between semantic composition, syntactic linking and
//! closing.

use compcerto::clight::ClightSem;
use compcerto::compiler::{c_query, compile_all, CompilerOptions};
use compcerto::core::hcomp::HComp;
use compcerto::core::iface::{CQuery, CReply};
use compcerto::core::lts::run;
use compcerto::mem::Val;

const U1: &str = "extern int u2(int); int u1(int x) { int r; r = u2(x + 1); return r * 2; }";
const U2: &str = "extern int u3(int); int u2(int x) { int r; r = u3(x * 3); return r + 5; }";
const U3: &str = "int u3(int x) { return x - 7; }";

fn setup() -> (
    Vec<compcerto::compiler::CompiledUnit>,
    compcerto::core::symtab::SymbolTable,
) {
    compile_all(&[U1, U2, U3], CompilerOptions::default()).unwrap()
}

fn run_u1<L>(sem: &L, q: &CQuery) -> Val
where
    L: compcerto::core::lts::Lts<I = compcerto::core::iface::C, O = compcerto::core::iface::C>,
{
    run(sem, q, &mut |_m: &CQuery| None::<CReply>, 1_000_000)
        .expect_complete()
        .retval
}

/// u1(3) = 2*(u2(4)) = 2*(u3(12)+5) = 2*(5+5) = 20.
const EXPECTED: Val = Val::Int(20);

#[test]
fn hcomp_is_associative_observationally() {
    let (units, tbl) = setup();
    let q = c_query(&tbl, &units[0], "u1", vec![Val::Int(3)]);
    let s = |i: usize| ClightSem::new(units[i].clight.clone(), tbl.clone());

    let left = HComp::new(HComp::new(s(0), s(1)), s(2));
    let right = HComp::new(s(0), HComp::new(s(1), s(2)));
    assert_eq!(run_u1(&left, &q), EXPECTED);
    assert_eq!(run_u1(&right, &q), EXPECTED);
}

#[test]
fn hcomp_is_commutative_observationally() {
    let (units, tbl) = setup();
    let q = c_query(&tbl, &units[0], "u1", vec![Val::Int(3)]);
    let s = |i: usize| ClightSem::new(units[i].clight.clone(), tbl.clone());

    let ab = HComp::new(HComp::new(s(0), s(1)), s(2));
    let ba = HComp::new(s(2), HComp::new(s(1), s(0)));
    assert_eq!(run_u1(&ab, &q), EXPECTED);
    assert_eq!(run_u1(&ba, &q), EXPECTED);
}

#[test]
fn semantic_composition_agrees_with_source_linking() {
    let (units, tbl) = setup();
    let q = c_query(&tbl, &units[0], "u1", vec![Val::Int(3)]);
    // ⊕ of the three units…
    let s = |i: usize| ClightSem::new(units[i].clight.clone(), tbl.clone());
    let composed = HComp::new(s(0), HComp::new(s(1), s(2)));
    // …versus the linked single unit.
    let linked = compcerto::clight::link(
        &compcerto::clight::link(&units[0].clight, &units[1].clight).unwrap(),
        &units[2].clight,
    )
    .unwrap();
    let whole = ClightSem::new(linked, tbl.clone());
    assert_eq!(run_u1(&composed, &q), EXPECTED);
    assert_eq!(run_u1(&whole, &q), EXPECTED);
}

#[test]
fn partial_composition_escapes_to_environment() {
    // Composing only u1 and u2 leaves u3 external: the composite is a
    // genuinely open component (paper §1.2's point about component
    // boundaries).
    let (units, tbl) = setup();
    let q = c_query(&tbl, &units[0], "u1", vec![Val::Int(3)]);
    let s = |i: usize| ClightSem::new(units[i].clight.clone(), tbl.clone());
    let partial = HComp::new(s(0), s(1));
    let mut seen = Vec::new();
    let reply = run(
        &partial,
        &q,
        &mut |m: &CQuery| {
            seen.push(m.args[0]);
            Some(CReply {
                retval: m.args[0].sub(Val::Int(7)),
                mem: m.mem.clone(),
            })
        },
        1_000_000,
    )
    .expect_complete();
    assert_eq!(reply.retval, EXPECTED);
    assert_eq!(seen, vec![Val::Int(12)]); // the u3 call escaped, once
}
