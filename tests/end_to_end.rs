//! Workspace-level integration tests: the theorems of the paper checked
//! across crates on hand-written and randomly generated programs.

use compcerto::compiler::{
    c_query, check_cor39, check_thm35, check_thm38, compile_all, CompilerOptions, ExtLib,
    WorkloadCfg, WorkloadGen,
};
use compcerto::core::cc::Ca;
use compcerto::core::conv::SimConv;
use compcerto::core::lts::run;
use compcerto::mem::Val;

/// A realistic multi-function program: fixed-point arithmetic routines.
const FIXED_POINT: &str = "
    const int scale = 1000;

    int fx_mul(int a, int b) {
        long wide;
        wide = (long) a * (long) b;
        return (int) (wide / 1000L);
    }

    int fx_div(int a, int b) {
        long wide;
        if (b == 0) { return 0; }
        wide = (long) a * 1000L;
        return (int) (wide / (long) b);
    }

    int fx_poly(int x) {
        int x2; int x3; int r;
        x2 = fx_mul(x, x);
        x3 = fx_mul(x2, x);
        r = x3 - 2 * x2 + 3 * x - 500;
        return r;
    }
";

#[test]
fn thm38_on_fixed_point_arithmetic() {
    let (units, tbl) = compile_all(&[FIXED_POINT], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    for x in [0, 1500, -2750, 10_000] {
        let q = c_query(&tbl, &units[0], "fx_poly", vec![Val::Int(x)]);
        check_thm38(&units[0], &tbl, &lib, &q).unwrap_or_else(|e| panic!("fx_poly({x}): {e}"));
    }
}

#[test]
fn thm38_holds_with_and_without_optimizations() {
    // Paper §3.4: the convention C is insensitive to the optional passes.
    let src = "
        const int k = 6;
        int f(int a) {
            int x; int y;
            x = a * 1 + 0;
            y = x * k;
            return y / 2 + x % 3;
        }";
    for opts in [CompilerOptions::default(), CompilerOptions::none()] {
        let (units, tbl) = compile_all(&[src], opts).unwrap();
        let lib = ExtLib::demo(tbl.clone());
        let q = c_query(&tbl, &units[0], "f", vec![Val::Int(9)]);
        check_thm38(&units[0], &tbl, &lib, &q).unwrap();
    }
}

#[test]
fn separate_compilation_three_units() {
    // Cor. 3.9 flavor with three translation units linked pairwise.
    let m1 = "extern int g(int); int f(int x) { int r; r = g(x + 1); return r * 2; }";
    let m2 = "extern int h(int); int g(int x) { int r; r = h(x); return r + 10; }";
    let m3 = "int h(int x) { return x * x; }";
    let (units, tbl) = compile_all(&[m1, m2, m3], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());

    // Source: f ⊕ (g ⊕ h) computed by running the Clight composition.
    let q = c_query(&tbl, &units[0], "f", vec![Val::Int(3)]);
    let composed = compcerto::core::hcomp::HComp::new(
        units[0].clight_sem(&tbl),
        compcerto::core::hcomp::HComp::new(units[1].clight_sem(&tbl), units[2].clight_sem(&tbl)),
    );
    let r = run(&composed, &q, &mut |_q| None, 1_000_000).expect_complete();
    // f(3) = 2*(g(4)) = 2*(h(4)+10) = 2*26 = 52.
    assert_eq!(r.retval, Val::Int(52));

    // Target: link all three Asm units and check against the source pair
    // composition (unit 0 vs units 1+2 pre-linked).
    let linked12 = compcerto::backend::link_asm(&units[1].asm, &units[2].asm).unwrap();
    let merged_unit = {
        let mut u = units[1].clone();
        u.asm = linked12;
        u
    };
    // Cor 3.9 checker composes Clight(0) ⊕ Clight(1+2's clight)… but unit 1's
    // clight only holds g; link the Clight programs too.
    let linked_clight = compcerto::clight::link(&units[1].clight, &units[2].clight).unwrap();
    let mut merged_unit = merged_unit;
    merged_unit.clight = linked_clight;
    check_cor39(&units[0], &merged_unit, &tbl, &lib, &q).expect("three-unit Cor 3.9");
}

#[test]
fn thm35_chain_of_asm_links() {
    let a = "extern int b_fn(int); int a_fn(int x) { int r; r = b_fn(x); return r + 1; }";
    let b = "int b_fn(int x) { return x * 3; }";
    let (units, tbl) = compile_all(&[a, b], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    let q = c_query(&tbl, &units[0], "a_fn", vec![Val::Int(5)]);
    let (_, qa) = Ca::new(tbl.len() as u32).transport_query(&q).unwrap();
    check_thm35(&units[0].asm, &units[1].asm, &tbl, &lib, &qa).expect("Thm 3.5");
}

#[test]
fn random_program_sweep() {
    // The headline sweep at integration scale: generated programs × queries,
    // every execution checked against the end-to-end convention.
    let mut g = WorkloadGen::new(0xC011u64);
    let cfg = WorkloadCfg::default();
    for round in 0..6 {
        let (src, arity) = g.gen_program(&cfg);
        let (units, tbl) = compile_all(&[&src], CompilerOptions::default())
            .unwrap_or_else(|e| panic!("round {round} does not compile: {e}\n{src}"));
        let lib = ExtLib::demo(tbl.clone());
        for args in g.gen_queries(arity, 2) {
            let q = c_query(&tbl, &units[0], "entry", args.clone());
            check_thm38(&units[0], &tbl, &lib, &q)
                .unwrap_or_else(|e| panic!("round {round} args {args:?}: {e}\n{src}"));
        }
    }
}

#[test]
fn nic_scenario_is_reachable_from_the_workspace_root() {
    let sc = compcerto::nic::build().unwrap();
    let mut net = compcerto::nic::LoopbackNet::new(|f| f ^ 0x5A5A);
    let got = sc.run_source(3, &mut net);
    assert_eq!(got, (6 ^ 0x5A5A) + 1);
    sc.check_fig7(3, |f| f ^ 0x5A5A).expect("Fig. 7");
}
