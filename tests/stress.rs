//! Long-running stress sweeps, ignored by default:
//!
//! ```sh
//! cargo test --test stress -- --ignored
//! ```

use compcerto::compiler::{
    c_query, check_thm38, compile_all, CompilerOptions, ExtLib, WorkloadCfg, WorkloadGen,
};

/// 64 random programs × 4 queries × both optimization configurations — a
/// deeper version of the Thm 3.8 sweep (the workload that caught the CSE
/// bug recorded in EXPERIMENTS.md).
#[test]
#[ignore = "long-running stress sweep; run with --ignored"]
fn thm38_stress_sweep() {
    for (seed, opts) in [
        (1u64, CompilerOptions::default()),
        (1u64, CompilerOptions::none()),
        (2u64, CompilerOptions::default()),
        (2u64, CompilerOptions::none()),
    ] {
        let mut g = WorkloadGen::new(seed);
        let cfg = WorkloadCfg {
            functions: 4,
            stmts_per_fn: 12,
            ..WorkloadCfg::default()
        };
        for round in 0..32 {
            let (src, arity) = g.gen_program(&cfg);
            let (units, tbl) = compile_all(&[&src], opts)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));
            let lib = ExtLib::demo(tbl.clone());
            for args in g.gen_queries(arity, 4) {
                let q = c_query(&tbl, &units[0], "entry", args.clone());
                check_thm38(&units[0], &tbl, &lib, &q).unwrap_or_else(|e| {
                    panic!("seed {seed} round {round} args {args:?}: {e}\n{src}")
                });
            }
        }
    }
}

/// Deep mutual recursion through ⊕ stays linear after the persistent-stack
/// optimization (would time out quadratically otherwise).
#[test]
#[ignore = "long-running stress sweep; run with --ignored"]
fn hcomp_deep_recursion_stress() {
    let even = "extern int is_odd(int); int is_even(int n) { int r; if (n == 0) { return 1; } r = is_odd(n - 1); return r; }";
    let odd = "extern int is_even(int); int is_odd(int n) { int r; if (n == 0) { return 0; } r = is_even(n - 1); return r; }";
    let (units, tbl) = compile_all(&[even, odd], CompilerOptions::default()).unwrap();
    let composed =
        compcerto::core::hcomp::HComp::new(units[0].clight_sem(&tbl), units[1].clight_sem(&tbl));
    let q = c_query(
        &tbl,
        &units[0],
        "is_even",
        vec![compcerto::mem::Val::Int(20_000)],
    );
    let r = compcerto::core::lts::run(&composed, &q, &mut |_m| None, 100_000_000).expect_complete();
    assert_eq!(r.retval, compcerto::mem::Val::Int(1));
}
