//! Budget exhaustion end to end: adversarial programs (infinite loop,
//! unbounded recursion, allocation bomb) run under a [`RunBudget`] and are
//! cut off with the matching typed outcome — never a panic — and each
//! outcome carries a non-empty step trace naming the last states visited.

use compcerto::compiler::{c_query, compile_all, CompilerOptions, ExtLib};
use compcerto::core::lts::{run_budgeted, RunBudget, RunOutcome};
use compcerto::mem::Val;

fn outcome(src: &str, arg: i32, budget: &RunBudget) -> RunOutcome<compcerto::core::iface::CReply> {
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).expect("compiles");
    let lib = ExtLib::demo(tbl.clone());
    let sem = units[0].clight_sem(&tbl);
    let q = c_query(&tbl, &units[0], "entry", vec![Val::Int(arg)]);
    run_budgeted(&sem, &q, &mut |m| lib.answer_c(m), budget)
}

#[test]
fn infinite_loop_runs_out_of_fuel_with_trace() {
    let src = "
        int entry(int a) {
            while (0 < 1) { a = a + 1; }
            return a;
        }";
    let out = outcome(src, 0, &RunBudget::with_fuel(10_000));
    let RunOutcome::OutOfFuel { trace } = out else {
        panic!("expected OutOfFuel, got {:?}", out.into_answer().err());
    };
    assert!(!trace.is_empty(), "OutOfFuel must carry a step trace");
    // The trace names real steps near the cutoff, not the beginning.
    assert!(trace.to_string().contains("#"), "trace renders steps: {trace}");
}

#[test]
fn unbounded_recursion_exceeds_the_depth_quota() {
    let src = "
        int entry(int a) {
            int r;
            if (a < 0) { return 0; }
            r = entry(a + 1);
            return r + 1;
        }";
    let budget = RunBudget::with_fuel(10_000_000).depth_limit(25);
    let out = outcome(src, 0, &budget);
    let RunOutcome::DepthExceeded { depth, limit, trace } = out else {
        panic!("expected DepthExceeded, got {:?}", out.into_answer().err());
    };
    assert!(depth > limit, "reported depth {depth} exceeds limit {limit}");
    assert_eq!(limit, 25);
    assert!(!trace.is_empty(), "DepthExceeded must carry a step trace");
}

#[test]
fn allocation_bomb_exceeds_the_memory_quota() {
    // Every activation allocates a 64-entry long array (512 bytes of
    // locals); unbounded recursion is an allocation bomb.
    let src = "
        int entry(int a) {
            long buf[64];
            int r;
            buf[0] = (long) a;
            if (a < 0) { return 0; }
            r = entry(a + 1);
            return r + (int) buf[0];
        }";
    let budget = RunBudget::with_fuel(10_000_000).mem_limit(64 * 1024);
    let out = outcome(src, 0, &budget);
    let RunOutcome::OutOfMemory { used, limit, trace } = out else {
        panic!("expected OutOfMemory, got {:?}", out.into_answer().err());
    };
    assert!(used > limit, "reported usage {used} exceeds limit {limit}");
    assert_eq!(limit, 64 * 1024);
    assert!(!trace.is_empty(), "OutOfMemory must carry a step trace");
}

#[test]
fn budgets_do_not_cut_off_honest_programs() {
    let src = "
        int entry(int a) {
            int i; int acc;
            acc = 0;
            i = 0;
            while (i < a) { acc = acc + i; i = i + 1; }
            return acc;
        }";
    let budget = RunBudget::with_fuel(1_000_000)
        .mem_limit(1 << 20)
        .depth_limit(64);
    let out = outcome(src, 10, &budget);
    let r = out.into_answer().expect("honest program completes");
    assert_eq!(r.retval, Val::Int(45));
}
