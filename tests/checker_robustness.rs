//! Checker robustness: the Theorem 3.8 checker is library code and must
//! *never panic*, no matter how mangled the compiled program it is handed.
//! This suite throws ~300 seeded random instruction-level mutations — not
//! the targeted convention violations of `compiler::faultinj`, but
//! unstructured chaos (deletions, duplications, swaps, random inserts,
//! calls to unknown symbols, wild jumps) — at `check_thm38_budgeted` and
//! requires every run to come back as a clean `Ok` or `SimCheckError`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use compcerto::backend::AsmInst;
use compcerto::compiler::{
    check_thm38_budgeted, compile_all, try_c_query, CompiledUnit, CompilerOptions, ExtLib,
};
use compcerto::core::lts::RunBudget;
use compcerto::core::regs::Mreg;
use compcerto::core::rng::SplitMix64;
use compcerto::mem::Val;
use compcerto::minor::MBinop;

const SRC: &str = "
    extern int inc(int);
    int shared = 7;
    int helper(int x) { return x * 3; }
    int entry(int a) {
        int b; int c; int i;
        i = 0;
        while (i < a) { shared = shared + i; i = i + 1; }
        b = helper(a + 1);
        c = inc(b);
        return b + c + shared;
    }";

/// A random instruction: mostly well-formed, sometimes nonsense (wild
/// registers, unknown callees, far jumps).
fn random_inst(rng: &mut SplitMix64, code_len: usize) -> AsmInst {
    let r = |rng: &mut SplitMix64| Mreg(rng.range_i32(0, 15) as u8);
    match rng.below(10) {
        0 => AsmInst::MovImm32(r(rng), rng.range_i32(-1000, 1000)),
        1 => AsmInst::MovImm64(r(rng), rng.next_u32() as i64),
        2 => AsmInst::Mov(r(rng), r(rng)),
        3 => {
            let d = r(rng);
            let s = r(rng);
            AsmInst::BinopImm(MBinop::Add32, d, s, Val::Int(rng.range_i32(-50, 50)))
        }
        4 => AsmInst::AddSp(rng.range_i64(-64, 64)),
        5 => AsmInst::Ret,
        6 => AsmInst::Call("no_such_symbol".to_string()),
        7 => AsmInst::Call("inc".to_string()),
        8 => AsmInst::Jmp(rng.range_usize(0, code_len.saturating_mul(2)) as u32),
        _ => AsmInst::LeaSp(r(rng), rng.range_i64(-32, 128)),
    }
}

/// Apply 1–3 random edits to the live `entry` function of the unit.
fn scramble(unit: &CompiledUnit, rng: &mut SplitMix64) -> CompiledUnit {
    let mut unit = unit.clone();
    let f = unit
        .asm
        .functions
        .iter_mut()
        .find(|f| f.name == "entry")
        .expect("entry exists");
    let edits = rng.range_usize(1, 4);
    for _ in 0..edits {
        if f.code.is_empty() {
            break;
        }
        let at = rng.range_usize(0, f.code.len());
        match rng.below(5) {
            0 => {
                f.code.remove(at);
            }
            1 => {
                let dup = f.code[at].clone();
                f.code.insert(at, dup);
            }
            2 => {
                let other = rng.range_usize(0, f.code.len());
                f.code.swap(at, other);
            }
            3 => {
                let inst = random_inst(rng, f.code.len());
                f.code.insert(at, inst);
            }
            _ => {
                f.code[at] = random_inst(rng, f.code.len());
            }
        }
    }
    unit
}

#[test]
fn checker_never_panics_on_scrambled_asm() {
    let (mut units, tbl) = compile_all(&[SRC], CompilerOptions::default()).expect("compiles");
    let baseline = units.remove(0);
    let lib = ExtLib::demo(tbl.clone());
    // Modest fuel: wild jumps loop forever; the budget cuts them off as a
    // typed OutOfFuel, which is a perfectly clean outcome.
    let budget = RunBudget::with_fuel(50_000);

    let mut master = SplitMix64::new(0xC0FFEE);
    let (mut ok, mut rejected) = (0usize, 0usize);
    for i in 0..300u64 {
        let mut rng = master.split();
        let mutant = scramble(&baseline, &mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let q = try_c_query(&tbl, &mutant, "entry", vec![Val::Int(3)]).ok()?;
            Some(check_thm38_budgeted(&mutant, &tbl, &lib, &q, &budget))
        }));
        match outcome {
            Ok(Some(Ok(_))) | Ok(None) => ok += 1,
            Ok(Some(Err(_))) => rejected += 1,
            Err(_) => panic!("checker panicked on scrambled mutant #{i}"),
        }
    }
    // The exact split is seed-dependent; what matters is that all 300 runs
    // terminated cleanly and the vast majority of scrambles are rejected.
    assert_eq!(ok + rejected, 300);
    assert!(
        rejected > 200,
        "suspiciously many scrambles accepted: {ok} ok / {rejected} rejected"
    );
}
