//! Grammar-coverage accounting for generated programs (observability
//! layer, DESIGN.md §10).
//!
//! The differential-testing campaign claims its seed block "exercises the
//! grammar" — this module makes that claim checkable. [`Coverage`] counts,
//! per statement and expression *constructor*, how many times each appears
//! in a program; [`Coverage::missing`] names the constructors a seed block
//! never reached (sorted, so drift reports are stable). The coverage of a
//! program is a pure function of the program, and merging per-seed
//! coverages in seed order is commutative counting — so campaign coverage
//! tables are byte-deterministic and jobs-invariant like every other
//! counter in the layer.

use std::collections::BTreeMap;

use crate::program::{GExpr, GProgram, GStmt};

/// Every [`GStmt`] constructor, in declaration order.
pub const STMT_CONSTRUCTORS: [&str; 8] = [
    "Assign",
    "IfElse",
    "Loop",
    "BufStore",
    "AccAdd",
    "Call",
    "ExtCall",
    "ExtPtrCall",
];

/// Every [`GExpr`] constructor, in declaration order.
pub const EXPR_CONSTRUCTORS: [&str; 13] = [
    "Param", "Local", "Const", "Add", "Sub", "Mul", "And", "Xor", "DivC", "ModC", "ShlC", "ShrC",
    "LtPlus",
];

fn stmt_name(s: &GStmt) -> &'static str {
    match s {
        GStmt::Assign { .. } => "Assign",
        GStmt::IfElse { .. } => "IfElse",
        GStmt::Loop { .. } => "Loop",
        GStmt::BufStore { .. } => "BufStore",
        GStmt::AccAdd { .. } => "AccAdd",
        GStmt::Call { .. } => "Call",
        GStmt::ExtCall { .. } => "ExtCall",
        GStmt::ExtPtrCall { .. } => "ExtPtrCall",
    }
}

fn expr_name(e: &GExpr) -> &'static str {
    match e {
        GExpr::Param(_) => "Param",
        GExpr::Local(_) => "Local",
        GExpr::Const(_) => "Const",
        GExpr::Add(_, _) => "Add",
        GExpr::Sub(_, _) => "Sub",
        GExpr::Mul(_, _) => "Mul",
        GExpr::And(_, _) => "And",
        GExpr::Xor(_, _) => "Xor",
        GExpr::DivC(_, _) => "DivC",
        GExpr::ModC(_, _) => "ModC",
        GExpr::ShlC(_, _) => "ShlC",
        GExpr::ShrC(_, _) => "ShrC",
        GExpr::LtPlus(_, _) => "LtPlus",
    }
}

/// Per-constructor occurrence counts for the statement and expression
/// grammars. Keys are exactly [`STMT_CONSTRUCTORS`] / [`EXPR_CONSTRUCTORS`]
/// (zero entries included — the key set is stable by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Statement-constructor counts.
    pub stmts: BTreeMap<&'static str, u64>,
    /// Expression-constructor counts.
    pub exprs: BTreeMap<&'static str, u64>,
}

impl Default for Coverage {
    fn default() -> Coverage {
        Coverage {
            stmts: STMT_CONSTRUCTORS.iter().map(|n| (*n, 0)).collect(),
            exprs: EXPR_CONSTRUCTORS.iter().map(|n| (*n, 0)).collect(),
        }
    }
}

impl Coverage {
    /// Coverage of one generated program.
    #[must_use]
    pub fn of_program(p: &GProgram) -> Coverage {
        let mut c = Coverage::default();
        for unit in &p.units {
            for f in &unit.funcs {
                for s in &f.stmts {
                    c.record_stmt(s);
                }
                f.ret.for_each(&mut |sub| {
                    *c.exprs.entry(expr_name(sub)).or_insert(0) += 1;
                });
            }
        }
        c
    }

    fn record_stmt(&mut self, s: &GStmt) {
        *self.stmts.entry(stmt_name(s)).or_insert(0) += 1;
        let mut record_expr = |e: &GExpr| {
            e.for_each(&mut |sub| {
                *self.exprs.entry(expr_name(sub)).or_insert(0) += 1;
            });
        };
        match s {
            GStmt::Assign { e, .. } | GStmt::AccAdd { e, .. } | GStmt::ExtCall { e, .. } => {
                record_expr(e);
            }
            GStmt::BufStore { idx, e, .. } => {
                record_expr(idx);
                record_expr(e);
            }
            GStmt::ExtPtrCall { a, b, .. } => {
                record_expr(a);
                record_expr(b);
            }
            GStmt::Call { args, .. } => {
                for a in args {
                    record_expr(a);
                }
            }
            GStmt::IfElse { c, then_s, else_s } => {
                record_expr(c);
                for t in then_s {
                    self.record_stmt(t);
                }
                for t in else_s {
                    self.record_stmt(t);
                }
            }
            GStmt::Loop { body, .. } => {
                for t in body {
                    self.record_stmt(t);
                }
            }
        }
    }

    /// Pointwise sum (commutative: seed-block coverage is order- and
    /// jobs-invariant).
    pub fn merge(&mut self, other: &Coverage) {
        for (k, v) in &other.stmts {
            *self.stmts.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.exprs {
            *self.exprs.entry(k).or_insert(0) += v;
        }
    }

    /// The constructors never reached, sorted, each tagged with its
    /// grammar (`stmt:IfElse`, `expr:ShrC`). An empty vector means 100%
    /// constructor coverage.
    #[must_use]
    pub fn missing(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .stmts
            .iter()
            .filter(|(_, v)| **v == 0)
            .map(|(k, _)| format!("stmt:{k}"))
            .chain(
                self.exprs
                    .iter()
                    .filter(|(_, v)| **v == 0)
                    .map(|(k, _)| format!("expr:{k}")),
            )
            .collect();
        out.sort();
        out
    }

    /// True when every statement and expression constructor was reached.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.missing().is_empty()
    }

    /// Render as two JSON objects `"gen_stmts": {...}, "gen_exprs": {...}`
    /// worth of flat counter entries with a `gen.` prefix — the shape the
    /// campaign reports fold into their deterministic counter bags.
    #[must_use]
    pub fn counter_entries(&self) -> Vec<(String, u64)> {
        self.stmts
            .iter()
            .map(|(k, v)| (format!("gen.stmt.{k}"), *v))
            .chain(self.exprs.iter().map(|(k, v)| (format!("gen.expr.{k}"), *v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenCfg};

    #[test]
    fn empty_coverage_reports_all_constructors_missing() {
        let c = Coverage::default();
        assert!(!c.complete());
        assert_eq!(
            c.missing().len(),
            STMT_CONSTRUCTORS.len() + EXPR_CONSTRUCTORS.len()
        );
        // Sorted output: exprs before stmts lexicographically.
        let m = c.missing();
        assert!(m[0].starts_with("expr:"));
        assert!(m.last().map(String::as_str) == Some("stmt:Loop") || m.last().is_some());
    }

    #[test]
    fn single_seed_coverage_is_deterministic_and_merge_commutes() {
        let cfg = GenCfg::default();
        let p1 = generate(7, &cfg);
        let p2 = generate(7, &cfg);
        assert_eq!(Coverage::of_program(&p1), Coverage::of_program(&p2));
        let q = generate(8, &cfg);
        let mut ab = Coverage::of_program(&p1);
        ab.merge(&Coverage::of_program(&q));
        let mut ba = Coverage::of_program(&q);
        ba.merge(&Coverage::of_program(&p1));
        assert_eq!(ab, ba);
    }

    #[test]
    fn nested_statements_and_exprs_are_counted() {
        use crate::program::GExpr as E;
        use crate::program::GStmt as S;
        let s = S::IfElse {
            c: E::LtPlus(Box::new(E::Param(0)), Box::new(E::Const(3))),
            then_s: vec![S::Assign {
                v: 0,
                e: E::ShrC(Box::new(E::Local(0)), 2),
            }],
            else_s: vec![],
        };
        let mut c = Coverage::default();
        c.record_stmt(&s);
        assert_eq!(c.stmts["IfElse"], 1);
        assert_eq!(c.stmts["Assign"], 1);
        assert_eq!(c.exprs["LtPlus"], 1);
        assert_eq!(c.exprs["Param"], 1);
        assert_eq!(c.exprs["Const"], 1);
        assert_eq!(c.exprs["ShrC"], 1);
        assert_eq!(c.exprs["Local"], 1);
    }
}
