//! The seeded generator: `seed → GProgram`, a pure function.
//!
//! Programs are well-defined by construction (see the [`crate::program`]
//! module docs), span up to [`GenCfg::units`] translation units, and build a
//! DAG call graph: a function may only call functions generated *before* it
//! (in any earlier unit or earlier in its own unit), so recursion is
//! impossible and every execution terminates within a small fuel budget.
//!
//! The designated entry point is the last function of the last unit; its
//! arity drives query generation ([`gen_queries`]).

use compcerto_core::rng::SplitMix64;

use crate::program::{GExpr, GFn, GProgram, GStmt, GUnit};

/// Shape parameters for generated programs.
#[derive(Debug, Clone)]
pub struct GenCfg {
    /// Translation units per program (`1..=4`; unit 0 owns the globals).
    pub units: usize,
    /// Functions per unit (`>= 1`).
    pub fns_per_unit: usize,
    /// Top-level statements per function body.
    pub stmts_per_fn: usize,
    /// Maximum parameters per function (`1..=6`; more than 4 spills onto
    /// the stack under the ABI, which is exactly the point).
    pub max_params: usize,
    /// `int` locals per function.
    pub nlocals: usize,
    /// Emit outgoing questions (`inc`, `sum2`) to the environment.
    pub external_calls: bool,
    /// Let external calls render as the scheduler's `yield` (a coin per
    /// `ExtCall` site). Off by default — and when off the generator draws
    /// nothing extra, so default-config programs are byte-identical to
    /// pre-yield releases (the committed campaign baselines depend on it).
    pub yield_calls: bool,
    /// Let unit 0 define and use the globals `acc` / `buf` / `lim`.
    pub use_memory: bool,
    /// Maximum expression depth.
    pub expr_depth: u32,
}

impl Default for GenCfg {
    fn default() -> Self {
        GenCfg {
            units: 2,
            fns_per_unit: 2,
            stmts_per_fn: 5,
            max_params: 6,
            nlocals: 3,
            external_calls: true,
            yield_calls: false,
            use_memory: true,
            expr_depth: 2,
        }
    }
}

impl GenCfg {
    /// A smaller profile for high-volume campaigns.
    pub fn quick() -> GenCfg {
        GenCfg {
            units: 2,
            fns_per_unit: 2,
            stmts_per_fn: 4,
            ..GenCfg::default()
        }
    }
}

/// Context for statement generation within one function.
struct FnCtx<'a> {
    nparams: u32,
    nlocals: u32,
    /// Functions callable from here: `(name, arity)`, DAG order.
    callees: &'a [(String, u32)],
    /// Whether memory statements are allowed (unit 0 only).
    memory: bool,
    external: bool,
    /// Whether `ExtCall` sites may flip to `yield` (see [`GenCfg::yield_calls`]).
    yield_calls: bool,
    /// Next loop-counter index to allocate.
    next_counter: u32,
}

/// Generate a program from a seed. Equal seeds give equal programs on every
/// platform — the program is a pure function of `(seed, cfg)`.
pub fn generate(seed: u64, cfg: &GenCfg) -> GProgram {
    let mut rng = SplitMix64::new(seed ^ 0x6466_7465_7374_2101); // domain-separate from other seed users
    let nunits = cfg.units.clamp(1, 4);
    let mut units = Vec::with_capacity(nunits);
    let mut defined: Vec<(String, u32)> = Vec::new();
    for u in 0..nunits {
        let uses_memory = cfg.use_memory && u == 0;
        let mut funcs = Vec::with_capacity(cfg.fns_per_unit);
        for i in 0..cfg.fns_per_unit.max(1) {
            let name = format!("u{u}f{i}");
            let nparams = 1 + rng.below(cfg.max_params.clamp(1, 6) as u64) as u32;
            let f = gen_fn(&mut rng, name.clone(), nparams, uses_memory, cfg, &defined);
            defined.push((name, nparams));
            funcs.push(f);
        }
        units.push(GUnit { uses_memory, funcs });
    }
    let p = GProgram { seed, units };
    debug_assert!(p.check_invariants().is_ok());
    p
}

fn gen_fn(
    rng: &mut SplitMix64,
    name: String,
    nparams: u32,
    memory: bool,
    cfg: &GenCfg,
    defined: &[(String, u32)],
) -> GFn {
    let mut cx = FnCtx {
        nparams,
        nlocals: cfg.nlocals.max(1) as u32,
        callees: defined,
        memory,
        external: cfg.external_calls,
        yield_calls: cfg.yield_calls,
        next_counter: 0,
    };
    let mut stmts = Vec::with_capacity(cfg.stmts_per_fn);
    for _ in 0..cfg.stmts_per_fn {
        stmts.push(gen_stmt(rng, &mut cx, cfg.expr_depth, 0));
    }
    let ret = gen_expr(rng, &cx, cfg.expr_depth);
    GFn {
        name,
        nparams,
        nlocals: cx.nlocals,
        stmts,
        ret,
    }
}

/// Generate one statement. `nesting` bounds compound-statement depth so
/// loop trip counts stay small (≤ 8 × 8 iterations when nested twice).
fn gen_stmt(rng: &mut SplitMix64, cx: &mut FnCtx<'_>, depth: u32, nesting: u32) -> GStmt {
    let v = rng.below(u64::from(cx.nlocals)) as u32;
    match rng.below(12) {
        0..=2 => GStmt::Assign {
            v,
            e: gen_expr(rng, cx, depth),
        },
        3 if nesting < 2 => {
            let c = gen_expr(rng, cx, depth.saturating_sub(1));
            let nt = 1 + rng.below(2) as usize;
            let ne = rng.below(2) as usize;
            let then_s = (0..nt)
                .map(|_| gen_stmt(rng, cx, depth.saturating_sub(1), nesting + 1))
                .collect();
            let else_s = (0..ne)
                .map(|_| gen_stmt(rng, cx, depth.saturating_sub(1), nesting + 1))
                .collect();
            GStmt::IfElse { c, then_s, else_s }
        }
        4 if nesting < 2 => {
            let counter = cx.next_counter;
            cx.next_counter += 1;
            let n = 1 + rng.range_i64(0, 8);
            let nb = 1 + rng.below(2) as usize;
            let body = (0..nb)
                .map(|_| gen_stmt(rng, cx, depth.saturating_sub(1), nesting + 1))
                .collect();
            GStmt::Loop { counter, n, body }
        }
        5 if cx.memory => GStmt::BufStore {
            idx: gen_expr(rng, cx, 1),
            e: gen_expr(rng, cx, depth),
            v,
        },
        6 if cx.memory => GStmt::AccAdd {
            v,
            e: gen_expr(rng, cx, depth.saturating_sub(1)),
        },
        7 | 8 if !cx.callees.is_empty() => {
            let pick = rng.below(cx.callees.len() as u64) as usize;
            let (callee, k) = &cx.callees[pick];
            let args = (0..*k).map(|_| gen_expr(rng, cx, 1)).collect();
            GStmt::Call {
                v,
                callee: callee.clone(),
                args,
            }
        }
        9 if cx.external => {
            let e = gen_expr(rng, cx, 1);
            // Short-circuit keeps the rng stream untouched when the knob is
            // off, so default-config programs match pre-yield releases.
            let yld = cx.yield_calls && rng.coin();
            GStmt::ExtCall { v, e, yld }
        }
        10 if cx.external => GStmt::ExtPtrCall {
            v,
            a: gen_expr(rng, cx, 1),
            b: gen_expr(rng, cx, 1),
        },
        _ => {
            // Fallback: a mixing assignment.
            let e = gen_expr(rng, cx, depth);
            GStmt::Assign {
                v,
                e: GExpr::Xor(Box::new(e), Box::new(GExpr::Local(v))),
            }
        }
    }
}

fn gen_expr(rng: &mut SplitMix64, cx: &FnCtx<'_>, depth: u32) -> GExpr {
    if depth == 0 {
        return match rng.below(3) {
            0 => GExpr::Param(rng.below(u64::from(cx.nparams)) as u32),
            1 => GExpr::Local(rng.below(u64::from(cx.nlocals)) as u32),
            _ => GExpr::Const(rng.range_i32(-20, 40)),
        };
    }
    let a = Box::new(gen_expr(rng, cx, depth - 1));
    match rng.below(10) {
        0 => GExpr::Add(a, Box::new(gen_expr(rng, cx, depth - 1))),
        1 => GExpr::Sub(a, Box::new(gen_expr(rng, cx, depth - 1))),
        2 => GExpr::Mul(a, Box::new(gen_expr(rng, cx, depth - 1))),
        3 => GExpr::And(a, Box::new(gen_expr(rng, cx, depth - 1))),
        4 => GExpr::Xor(a, Box::new(gen_expr(rng, cx, depth - 1))),
        5 => GExpr::DivC(a, 1 + rng.range_i64(0, 8)),
        6 => GExpr::ModC(a, 1 + rng.range_i64(0, 8)),
        7 => GExpr::ShlC(a, rng.range_i64(0, 6)),
        8 => GExpr::ShrC(a, rng.range_i64(0, 6)),
        _ => GExpr::LtPlus(a, Box::new(gen_expr(rng, cx, depth - 1))),
    }
}

/// Generate `n` query argument vectors of `arity` small ints for the entry
/// point of the program with this seed. A distinct rng domain keeps queries
/// independent of program structure draws.
pub fn gen_queries(seed: u64, arity: usize, n: usize) -> Vec<Vec<i32>> {
    let mut rng = SplitMix64::new(seed ^ 0x7175_6572_7969_6e67);
    (0..n)
        .map(|_| (0..arity).map(|_| rng.range_i32(-50, 100)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = GenCfg::default();
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
            assert_eq!(gen_queries(seed, 4, 3), gen_queries(seed, 4, 3));
        }
    }

    #[test]
    fn seeds_differ() {
        let cfg = GenCfg::default();
        assert_ne!(generate(1, &cfg), generate(2, &cfg));
    }

    #[test]
    fn invariants_hold_over_a_sweep() {
        let cfg = GenCfg::default();
        for seed in 0..200u64 {
            let p = generate(seed, &cfg);
            p.check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(p.units.len(), cfg.units);
            // Entry is the last function of the last unit.
            let (u, f) = p.entry();
            assert_eq!(u, p.units.len() - 1);
            assert!(f.name.starts_with(&format!("u{u}f")));
        }
    }

    #[test]
    fn memory_statements_confined_to_unit_zero() {
        let cfg = GenCfg {
            units: 3,
            ..GenCfg::default()
        };
        for seed in 0..50u64 {
            let p = generate(seed, &cfg);
            for (i, unit) in p.units.iter().enumerate() {
                assert_eq!(unit.uses_memory, i == 0, "seed {seed}");
            }
            let srcs = p.render();
            for (i, s) in srcs.iter().enumerate().skip(1) {
                assert!(!s.contains("acc"), "seed {seed} unit {i}:\n{s}");
                assert!(!s.contains("buf["), "seed {seed} unit {i}:\n{s}");
            }
        }
    }

    #[test]
    fn yield_knob_gates_yield_sites_and_decls() {
        let base = GenCfg::default();
        let ycfg = GenCfg {
            yield_calls: true,
            ..GenCfg::default()
        };
        let mut saw_yield = false;
        for seed in 0..50u64 {
            // Off (the default): no yield anywhere — committed baselines
            // depend on default-config programs staying untouched.
            for s in generate(seed, &base).render() {
                assert!(!s.contains("yield"), "seed {seed}:\n{s}");
            }
            let p = generate(seed, &ycfg);
            p.check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for s in p.render() {
                if s.contains("= yield(") {
                    saw_yield = true;
                    assert!(s.contains("extern int yield(int);"), "seed {seed}:\n{s}");
                }
                if s.contains("= inc(") {
                    assert!(s.contains("extern int inc(int);"), "seed {seed}:\n{s}");
                }
            }
        }
        assert!(saw_yield, "50 seeds with yield_calls on produced no yield site");
    }

    #[test]
    fn queries_in_declared_range() {
        for q in gen_queries(9, 6, 50) {
            assert_eq!(q.len(), 6);
            for a in q {
                assert!((-50..100).contains(&a));
            }
        }
    }
}
