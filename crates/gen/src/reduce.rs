//! Greedy delta-debugging reduction of failing programs.
//!
//! Given a [`GProgram`] and a predicate `still_fails` (supplied by the
//! differential oracle: "does this candidate still exhibit the finding?"),
//! [`reduce`] repeatedly tries structural simplifications and keeps each one
//! the predicate accepts, until a fixpoint (or the check budget runs out):
//!
//! * drop whole translation units, then whole functions — calls to removed
//!   functions are rewritten to `v = 0;` so candidates always compile;
//! * delete individual statements (recursing into `if`/loop bodies);
//! * flatten compound statements (splice an `if`'s branches or a loop's
//!   body into the enclosing sequence);
//! * replace expressions by a child subexpression, then by `0`;
//! * halve every literal and loop trip count.
//!
//! Because the renderer zero-initializes all locals and loop counters are
//! unwritable by generated statements (see [`crate::program`]), every
//! candidate is a *well-defined* program: reduction can change what a
//! program computes, never make it undefined. The predicate is the sole
//! judge of which candidates to keep, so the reducer needs no semantic
//! knowledge — and the whole process is deterministic, making shrunk
//! reproducers stable across runs and `--jobs` levels.

use crate::program::{GExpr, GProgram, GStmt};

/// Counters describing one reduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceStats {
    /// Predicate invocations.
    pub checks: usize,
    /// Simplifications accepted.
    pub applied: usize,
    /// Full passes over the candidate space.
    pub rounds: usize,
    /// Statement count before reduction.
    pub from_stmts: usize,
    /// Statement count after reduction.
    pub to_stmts: usize,
}

/// Shrink `prog` while `still_fails` keeps returning `true`, spending at
/// most `max_checks` predicate calls. Returns the smallest program found
/// and the run statistics. `prog` itself is expected to satisfy the
/// predicate; if it does not, it is returned unchanged.
pub fn reduce(
    prog: &GProgram,
    mut still_fails: impl FnMut(&GProgram) -> bool,
    max_checks: usize,
) -> (GProgram, ReduceStats) {
    let mut stats = ReduceStats {
        from_stmts: prog.stmt_count(),
        ..ReduceStats::default()
    };
    let mut best = prog.clone();
    loop {
        stats.rounds += 1;
        let mut progress = false;
        for pass in [
            Pass::DropUnit,
            Pass::DropFn,
            Pass::DeleteStmt,
            Pass::Flatten,
            Pass::ExprChild,
            Pass::ExprZero,
            Pass::ShrinkNumbers,
        ] {
            progress |= run_pass(&mut best, pass, &mut still_fails, max_checks, &mut stats);
            if stats.checks >= max_checks {
                stats.to_stmts = best.stmt_count();
                return (best, stats);
            }
        }
        if !progress {
            break;
        }
    }
    stats.to_stmts = best.stmt_count();
    (best, stats)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    DropUnit,
    DropFn,
    DeleteStmt,
    Flatten,
    ExprChild,
    ExprZero,
    ShrinkNumbers,
}

/// Run one pass to its own fixpoint; true if anything was applied.
fn run_pass(
    best: &mut GProgram,
    pass: Pass,
    still_fails: &mut impl FnMut(&GProgram) -> bool,
    max_checks: usize,
    stats: &mut ReduceStats,
) -> bool {
    let mut applied_any = false;
    loop {
        let mut applied_this_scan = false;
        let n = candidate_count(best, pass);
        // Scan back-to-front so accepting candidate k does not shift the
        // numbering of candidates < k we have yet to try.
        for k in (0..n).rev() {
            if stats.checks >= max_checks {
                return applied_any;
            }
            let Some(cand) = make_candidate(best, pass, k) else {
                continue;
            };
            debug_assert!(cand.check_invariants().is_ok(), "{pass:?} candidate {k}");
            stats.checks += 1;
            if still_fails(&cand) {
                *best = cand;
                stats.applied += 1;
                applied_this_scan = true;
                applied_any = true;
            }
        }
        // ShrinkNumbers is a single whole-program candidate; its fixpoint
        // is reached when the predicate rejects it or nothing changes.
        if !applied_this_scan {
            return applied_any;
        }
    }
}

fn candidate_count(p: &GProgram, pass: Pass) -> usize {
    match pass {
        Pass::DropUnit => p.units.len(),
        Pass::DropFn => p.units.iter().map(|u| u.funcs.len()).sum(),
        Pass::DeleteStmt | Pass::Flatten => p.stmt_count(),
        Pass::ExprChild | Pass::ExprZero => expr_slot_count(p),
        Pass::ShrinkNumbers => 1,
    }
}

/// Build candidate `k` of `pass`, or `None` when the edit does not apply
/// (e.g. the slot is already a leaf, or removal would empty the program).
fn make_candidate(p: &GProgram, pass: Pass, k: usize) -> Option<GProgram> {
    match pass {
        Pass::DropUnit => {
            if p.units.len() <= 1 {
                return None;
            }
            let mut q = p.clone();
            let removed: Vec<String> = q.units[k].funcs.iter().map(|f| f.name.clone()).collect();
            q.units.remove(k);
            rewrite_removed_calls(&mut q, &removed);
            Some(q)
        }
        Pass::DropFn => {
            let mut q = p.clone();
            let mut idx = k;
            for u in 0..q.units.len() {
                if idx < q.units[u].funcs.len() {
                    if q.units[u].funcs.len() <= 1 {
                        return None; // unit removal handles this case
                    }
                    let removed = vec![q.units[u].funcs[idx].name.clone()];
                    q.units[u].funcs.remove(idx);
                    rewrite_removed_calls(&mut q, &removed);
                    return Some(q);
                }
                idx -= q.units[u].funcs.len();
            }
            None
        }
        Pass::DeleteStmt => {
            let mut q = p.clone();
            let mut cur = 0usize;
            let mut hit = false;
            for f in q.units.iter_mut().flat_map(|u| u.funcs.iter_mut()) {
                if remove_stmt(&mut f.stmts, &mut cur, k) {
                    hit = true;
                    break;
                }
            }
            hit.then_some(q)
        }
        Pass::Flatten => {
            let mut q = p.clone();
            let mut cur = 0usize;
            let mut res = None;
            for f in q.units.iter_mut().flat_map(|u| u.funcs.iter_mut()) {
                if let Some(r) = flatten_stmt(&mut f.stmts, &mut cur, k) {
                    res = Some(r);
                    break;
                }
            }
            (res == Some(true)).then_some(q)
        }
        Pass::ExprChild => edit_expr_slot(p, k, |e| child_of(e)),
        Pass::ExprZero => edit_expr_slot(p, k, |e| {
            if matches!(e, GExpr::Const(0)) {
                None
            } else {
                Some(GExpr::Const(0))
            }
        }),
        Pass::ShrinkNumbers => {
            let mut q = p.clone();
            let mut changed = false;
            for f in q.units.iter_mut().flat_map(|u| u.funcs.iter_mut()) {
                for s in &mut f.stmts {
                    shrink_numbers_stmt(s, &mut changed);
                }
                shrink_numbers_expr(&mut f.ret, &mut changed);
            }
            changed.then_some(q)
        }
    }
}

/// Replace calls to removed functions by `v = 0;` so the candidate still
/// compiles and links.
fn rewrite_removed_calls(p: &mut GProgram, removed: &[String]) {
    fn walk(stmts: &mut [GStmt], removed: &[String]) {
        for s in stmts.iter_mut() {
            match s {
                GStmt::Call { v, callee, .. } if removed.contains(callee) => {
                    *s = GStmt::Assign {
                        v: *v,
                        e: GExpr::Const(0),
                    };
                }
                GStmt::IfElse { then_s, else_s, .. } => {
                    walk(then_s, removed);
                    walk(else_s, removed);
                }
                GStmt::Loop { body, .. } => walk(body, removed),
                _ => {}
            }
        }
    }
    for f in p.units.iter_mut().flat_map(|u| u.funcs.iter_mut()) {
        walk(&mut f.stmts, removed);
    }
}

/// Remove the statement with pre-order index `target`; `cur` threads the
/// running index. True once removed.
fn remove_stmt(stmts: &mut Vec<GStmt>, cur: &mut usize, target: usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *cur == target {
            stmts.remove(i);
            return true;
        }
        *cur += 1;
        match &mut stmts[i] {
            GStmt::IfElse { then_s, else_s, .. } => {
                if remove_stmt(then_s, cur, target) || remove_stmt(else_s, cur, target) {
                    return true;
                }
            }
            GStmt::Loop { body, .. } => {
                if remove_stmt(body, cur, target) {
                    return true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Splice the children of the compound statement at pre-order index
/// `target` into its place (an `if`'s branches concatenated, a loop's body
/// once). `Some(true)` = applied, `Some(false)` = target reached but it was
/// a leaf (candidate inapplicable), `None` = target not in this subtree.
fn flatten_stmt(stmts: &mut Vec<GStmt>, cur: &mut usize, target: usize) -> Option<bool> {
    let mut i = 0;
    while i < stmts.len() {
        if *cur == target {
            return Some(match stmts[i].clone() {
                GStmt::IfElse { then_s, else_s, .. } => {
                    stmts.splice(i..=i, then_s.into_iter().chain(else_s));
                    true
                }
                GStmt::Loop { body, .. } => {
                    stmts.splice(i..=i, body);
                    true
                }
                _ => false,
            });
        }
        *cur += 1;
        match &mut stmts[i] {
            GStmt::IfElse { then_s, else_s, .. } => {
                if let Some(r) = flatten_stmt(then_s, cur, target) {
                    return Some(r);
                }
                if let Some(r) = flatten_stmt(else_s, cur, target) {
                    return Some(r);
                }
            }
            GStmt::Loop { body, .. } => {
                if let Some(r) = flatten_stmt(body, cur, target) {
                    return Some(r);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The immediate left child of a compound expression.
fn child_of(e: &GExpr) -> Option<GExpr> {
    match e {
        GExpr::Param(_) | GExpr::Local(_) | GExpr::Const(_) => None,
        GExpr::Add(a, _)
        | GExpr::Sub(a, _)
        | GExpr::Mul(a, _)
        | GExpr::And(a, _)
        | GExpr::Xor(a, _)
        | GExpr::LtPlus(a, _)
        | GExpr::DivC(a, _)
        | GExpr::ModC(a, _)
        | GExpr::ShlC(a, _)
        | GExpr::ShrC(a, _) => Some((**a).clone()),
    }
}

/// Enumerate the program's *expression slots* (every statement's expression
/// fields plus each function's return expression) in a fixed pre-order.
fn expr_slot_count(p: &GProgram) -> usize {
    let mut n = 0;
    for f in p.units.iter().flat_map(|u| u.funcs.iter()) {
        for s in &f.stmts {
            n += stmt_expr_slots(s);
        }
        n += 1; // ret
    }
    n
}

fn stmt_expr_slots(s: &GStmt) -> usize {
    match s {
        GStmt::Assign { .. } | GStmt::AccAdd { .. } | GStmt::ExtCall { .. } => 1,
        GStmt::IfElse { then_s, else_s, .. } => {
            1 + then_s.iter().map(stmt_expr_slots).sum::<usize>()
                + else_s.iter().map(stmt_expr_slots).sum::<usize>()
        }
        GStmt::Loop { body, .. } => body.iter().map(stmt_expr_slots).sum(),
        GStmt::BufStore { .. } | GStmt::ExtPtrCall { .. } => 2,
        GStmt::Call { args, .. } => args.len(),
    }
}

/// Apply `edit` to the `target`-th expression slot; `None` when the edit
/// does not apply there.
fn edit_expr_slot(
    p: &GProgram,
    target: usize,
    edit: impl Fn(&GExpr) -> Option<GExpr>,
) -> Option<GProgram> {
    let mut q = p.clone();
    let mut cur = 0usize;
    let mut done = false;
    'outer: for f in q.units.iter_mut().flat_map(|u| u.funcs.iter_mut()) {
        for s in &mut f.stmts {
            if edit_stmt_slot(s, &mut cur, target, &edit, &mut done) {
                break 'outer;
            }
        }
        if cur == target {
            if let Some(e) = edit(&f.ret) {
                f.ret = e;
                done = true;
            }
            break 'outer;
        }
        cur += 1;
    }
    done.then_some(q)
}

/// Visit the expression slots of `s` in order; on reaching `target`, apply
/// the edit. Returns true when `target` was reached (whether or not the
/// edit applied — `done` distinguishes).
fn edit_stmt_slot(
    s: &mut GStmt,
    cur: &mut usize,
    target: usize,
    edit: &impl Fn(&GExpr) -> Option<GExpr>,
    done: &mut bool,
) -> bool {
    let mut hit = |e: &mut GExpr, cur: &mut usize| -> bool {
        if *cur == target {
            if let Some(new) = edit(e) {
                *e = new;
                *done = true;
            }
            true
        } else {
            *cur += 1;
            false
        }
    };
    match s {
        GStmt::Assign { e, .. } | GStmt::AccAdd { e, .. } | GStmt::ExtCall { e, .. } => {
            hit(e, cur)
        }
        GStmt::IfElse { c, then_s, else_s } => {
            if hit(c, cur) {
                return true;
            }
            for t in then_s.iter_mut().chain(else_s.iter_mut()) {
                if edit_stmt_slot(t, cur, target, edit, done) {
                    return true;
                }
            }
            false
        }
        GStmt::Loop { body, .. } => {
            for t in body.iter_mut() {
                if edit_stmt_slot(t, cur, target, edit, done) {
                    return true;
                }
            }
            false
        }
        GStmt::BufStore { idx, e, .. } => hit(idx, cur) || hit(e, cur),
        GStmt::ExtPtrCall { a, b, .. } => hit(a, cur) || hit(b, cur),
        GStmt::Call { args, .. } => {
            for a in args.iter_mut() {
                if hit(a, cur) {
                    return true;
                }
            }
            false
        }
    }
}

fn shrink_numbers_stmt(s: &mut GStmt, changed: &mut bool) {
    match s {
        GStmt::Assign { e, .. } | GStmt::AccAdd { e, .. } | GStmt::ExtCall { e, .. } => {
            shrink_numbers_expr(e, changed)
        }
        GStmt::IfElse { c, then_s, else_s } => {
            shrink_numbers_expr(c, changed);
            for t in then_s.iter_mut().chain(else_s.iter_mut()) {
                shrink_numbers_stmt(t, changed);
            }
        }
        GStmt::Loop { n, body, .. } => {
            if *n > 1 {
                *n /= 2;
                *changed = true;
            }
            for t in body.iter_mut() {
                shrink_numbers_stmt(t, changed);
            }
        }
        GStmt::BufStore { idx, e, .. } => {
            shrink_numbers_expr(idx, changed);
            shrink_numbers_expr(e, changed);
        }
        GStmt::ExtPtrCall { a, b, .. } => {
            shrink_numbers_expr(a, changed);
            shrink_numbers_expr(b, changed);
        }
        GStmt::Call { args, .. } => {
            for a in args.iter_mut() {
                shrink_numbers_expr(a, changed);
            }
        }
    }
}

fn shrink_numbers_expr(e: &mut GExpr, changed: &mut bool) {
    match e {
        GExpr::Const(k) => {
            if *k != 0 {
                *k /= 2;
                *changed = true;
            }
        }
        GExpr::Param(_) | GExpr::Local(_) => {}
        GExpr::Add(a, b)
        | GExpr::Sub(a, b)
        | GExpr::Mul(a, b)
        | GExpr::And(a, b)
        | GExpr::Xor(a, b)
        | GExpr::LtPlus(a, b) => {
            shrink_numbers_expr(a, changed);
            shrink_numbers_expr(b, changed);
        }
        GExpr::DivC(a, _) | GExpr::ModC(a, _) | GExpr::ShlC(a, _) | GExpr::ShrC(a, _) => {
            shrink_numbers_expr(a, changed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenCfg};

    /// Reduction with an always-true predicate must reach a tiny fixpoint:
    /// one unit, one function, no statements, `return 0`.
    #[test]
    fn always_failing_reduces_to_minimum() {
        for seed in [3u64, 17, 99] {
            let p = generate(seed, &GenCfg::default());
            let (small, stats) = reduce(&p, |_| true, 50_000);
            assert!(small.check_invariants().is_ok());
            assert_eq!(small.units.len(), 1, "seed {seed}");
            assert_eq!(small.units[0].funcs.len(), 1, "seed {seed}");
            assert_eq!(small.stmt_count(), 0, "seed {seed}");
            assert_eq!(small.entry().1.ret, GExpr::Const(0), "seed {seed}");
            assert!(stats.applied > 0 && stats.to_stmts == 0);
        }
    }

    /// A predicate that latches onto one marker statement must preserve it
    /// while stripping everything else.
    #[test]
    fn marker_statement_survives() {
        let p = generate(7, &GenCfg::default());
        // Marker: the program still contains an external pointer call.
        let has_ptr = |q: &GProgram| q.to_annotated_source().contains("sum2(");
        if !has_ptr(&p) {
            return; // this seed has no marker; covered by other seeds in CI sweeps
        }
        let (small, _) = reduce(&p, has_ptr, 50_000);
        assert!(has_ptr(&small));
        assert!(small.stmt_count() <= p.stmt_count());
        assert!(small.check_invariants().is_ok());
    }

    /// The reducer is deterministic: same input and predicate, same output.
    #[test]
    fn reduction_is_deterministic() {
        let p = generate(11, &GenCfg::default());
        let pred = |q: &GProgram| q.stmt_count() > 2;
        let (a, sa) = reduce(&p, pred, 10_000);
        let (b, sb) = reduce(&p, pred, 10_000);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    /// The check budget is honored.
    #[test]
    fn budget_is_respected() {
        let p = generate(13, &GenCfg::default());
        let (_, stats) = reduce(&p, |_| true, 25);
        assert!(stats.checks <= 25);
    }
}
