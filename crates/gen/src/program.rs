//! Structured program representation and deterministic renderer.
//!
//! The generator and reducer both work on [`GProgram`] values — trees of
//! units, functions, statements and expressions — and only at the very end
//! render them into the Clight-mini surface syntax. Two invariants make
//! every *rendered* program well-defined regardless of what the reducer has
//! deleted:
//!
//! 1. **All locals are zero-initialized** by the renderer before the first
//!    generated statement, so deleting an `Assign` can never expose an
//!    uninitialized read.
//! 2. **Loop counters live in their own namespace** (`c0`, `c1`, …) that no
//!    generated statement can write, so every loop provably terminates with
//!    its constant trip count.
//!
//! Divisions and shifts carry their (checked-range) constants structurally
//! ([`GExpr::DivC`], [`GExpr::ShlC`]), and array stores render with an `& 7`
//! mask, so arithmetic is defined by construction.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A whole multi-unit program, plus the seed that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GProgram {
    /// Seed recorded for reproducer emission (not consulted by rendering).
    pub seed: u64,
    /// Translation units, compiled separately and linked.
    pub units: Vec<GUnit>,
}

/// One translation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GUnit {
    /// Whether this unit defines (and its functions may touch) the globals
    /// `acc`, `buf` and `lim`. At most one unit per program sets this:
    /// Clight-mini has no `extern` variable declarations, so globals are
    /// only usable from their defining unit.
    pub uses_memory: bool,
    /// Functions, in definition order (callees precede callers program-wide).
    pub funcs: Vec<GFn>,
}

/// One function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GFn {
    /// Unique program-wide name (`u{unit}f{index}` by convention).
    pub name: String,
    /// Number of `int` parameters (`p0..`).
    pub nparams: u32,
    /// Number of `int` locals (`v0..`), all zero-initialized by the renderer.
    pub nlocals: u32,
    /// Body statements.
    pub stmts: Vec<GStmt>,
    /// The `return` expression.
    pub ret: GExpr,
}

/// A statement. Memory statements ([`GStmt::BufStore`], [`GStmt::AccAdd`])
/// are only valid inside the `uses_memory` unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GStmt {
    /// `v{v} = e;`
    Assign { v: u32, e: GExpr },
    /// `if (c > 0) { then_s } else { else_s }`
    IfElse {
        c: GExpr,
        then_s: Vec<GStmt>,
        else_s: Vec<GStmt>,
    },
    /// `c{counter} = 0; while (c{counter} < n) { body; c{counter} += 1; }`
    ///
    /// Counters are never written by generated statements, so the trip
    /// count is exactly `n` (kept in `1..=8` by the generator).
    Loop {
        counter: u32,
        n: i64,
        body: Vec<GStmt>,
    },
    /// `buf[(idx) & 7] = (long)(e); v{v} = (int) buf[(idx) & 7];`
    BufStore { idx: GExpr, e: GExpr, v: u32 },
    /// `acc = acc + (e); v{v} = acc;`
    AccAdd { v: u32, e: GExpr },
    /// `v{v} = callee(args);` — an internal (possibly cross-unit) call.
    Call {
        v: u32,
        callee: String,
        args: Vec<GExpr>,
    },
    /// `v{v} = inc(e);` — an outgoing question to the environment; with
    /// `yld` set it renders as `v{v} = yield(e);`, the semantically inert
    /// external the threaded scheduler uses as an explicit interleaving
    /// point (both forms are the same constructor so grammar coverage and
    /// the committed campaign baselines are unaffected).
    ExtCall { v: u32, e: GExpr, yld: bool },
    /// `w[0] = (long)(a); w[1] = (long)(b); ws = sum2(w); v{v} = (int) ws;`
    ///
    /// Passes a pointer to a stack array across the open boundary — the
    /// hardest calling-convention corner (non-trivial memory injection).
    ExtPtrCall { v: u32, a: GExpr, b: GExpr },
}

/// A well-defined integer expression over `p0..`, `v0..` and literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GExpr {
    /// Parameter `p{i}`.
    Param(u32),
    /// Local `v{i}`.
    Local(u32),
    /// Literal (kept well inside `i32` range by generator and reducer).
    Const(i32),
    Add(Box<GExpr>, Box<GExpr>),
    Sub(Box<GExpr>, Box<GExpr>),
    Mul(Box<GExpr>, Box<GExpr>),
    And(Box<GExpr>, Box<GExpr>),
    Xor(Box<GExpr>, Box<GExpr>),
    /// Division by a constant in `1..=8` — never by zero.
    DivC(Box<GExpr>, i64),
    /// Remainder by a constant in `1..=8`.
    ModC(Box<GExpr>, i64),
    /// Left shift by a constant in `0..=5` — always below the width.
    ShlC(Box<GExpr>, i64),
    /// Arithmetic right shift by a constant in `0..=5`.
    ShrC(Box<GExpr>, i64),
    /// `((a < b) + a)` — a comparison used as a value.
    LtPlus(Box<GExpr>, Box<GExpr>),
}

impl GExpr {
    /// Render into surface syntax (fully parenthesized).
    pub fn render(&self) -> String {
        match self {
            GExpr::Param(i) => format!("p{i}"),
            GExpr::Local(i) => format!("v{i}"),
            GExpr::Const(k) => {
                if *k < 0 {
                    format!("(- {})", k.unsigned_abs())
                } else {
                    format!("{k}")
                }
            }
            GExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            GExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            GExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            GExpr::And(a, b) => format!("({} & {})", a.render(), b.render()),
            GExpr::Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
            GExpr::DivC(a, k) => format!("({} / {k})", a.render()),
            GExpr::ModC(a, k) => format!("({} % {k})", a.render()),
            GExpr::ShlC(a, k) => format!("({} << {k})", a.render()),
            GExpr::ShrC(a, k) => format!("({} >> {k})", a.render()),
            GExpr::LtPlus(a, b) => {
                format!("(({} < {}) + {})", a.render(), b.render(), a.render())
            }
        }
    }

    /// Visit every sub-expression (including `self`), depth-first.
    pub fn for_each(&self, f: &mut impl FnMut(&GExpr)) {
        f(self);
        match self {
            GExpr::Param(_) | GExpr::Local(_) | GExpr::Const(_) => {}
            GExpr::Add(a, b)
            | GExpr::Sub(a, b)
            | GExpr::Mul(a, b)
            | GExpr::And(a, b)
            | GExpr::Xor(a, b)
            | GExpr::LtPlus(a, b) => {
                a.for_each(f);
                b.for_each(f);
            }
            GExpr::DivC(a, _) | GExpr::ModC(a, _) | GExpr::ShlC(a, _) | GExpr::ShrC(a, _) => {
                a.for_each(f)
            }
        }
    }
}

impl GStmt {
    /// Number of statements in this subtree (compound statements count as 1
    /// plus their bodies). This is the size metric for shrunk reproducers.
    pub fn count(&self) -> usize {
        match self {
            GStmt::IfElse { then_s, else_s, .. } => {
                1 + then_s.iter().map(GStmt::count).sum::<usize>()
                    + else_s.iter().map(GStmt::count).sum::<usize>()
            }
            GStmt::Loop { body, .. } => 1 + body.iter().map(GStmt::count).sum::<usize>(),
            _ => 1,
        }
    }

    fn uses_memory(&self) -> bool {
        match self {
            GStmt::BufStore { .. } | GStmt::AccAdd { .. } => true,
            GStmt::IfElse { then_s, else_s, .. } => {
                then_s.iter().any(GStmt::uses_memory) || else_s.iter().any(GStmt::uses_memory)
            }
            GStmt::Loop { body, .. } => body.iter().any(GStmt::uses_memory),
            _ => false,
        }
    }

    fn uses_scratch(&self) -> bool {
        match self {
            GStmt::ExtPtrCall { .. } => true,
            GStmt::IfElse { then_s, else_s, .. } => {
                then_s.iter().any(GStmt::uses_scratch) || else_s.iter().any(GStmt::uses_scratch)
            }
            GStmt::Loop { body, .. } => body.iter().any(GStmt::uses_scratch),
            _ => false,
        }
    }

    fn uses_inc(&self) -> bool {
        match self {
            GStmt::ExtCall { yld, .. } => !*yld,
            GStmt::IfElse { then_s, else_s, .. } => {
                then_s.iter().any(GStmt::uses_inc) || else_s.iter().any(GStmt::uses_inc)
            }
            GStmt::Loop { body, .. } => body.iter().any(GStmt::uses_inc),
            _ => false,
        }
    }

    fn uses_yield(&self) -> bool {
        match self {
            GStmt::ExtCall { yld, .. } => *yld,
            GStmt::IfElse { then_s, else_s, .. } => {
                then_s.iter().any(GStmt::uses_yield) || else_s.iter().any(GStmt::uses_yield)
            }
            GStmt::Loop { body, .. } => body.iter().any(GStmt::uses_yield),
            _ => false,
        }
    }

    fn max_counter(&self) -> Option<u32> {
        match self {
            GStmt::Loop { counter, body, .. } => Some(
                body.iter()
                    .filter_map(GStmt::max_counter)
                    .max()
                    .map_or(*counter, |m| m.max(*counter)),
            ),
            GStmt::IfElse { then_s, else_s, .. } => then_s
                .iter()
                .chain(else_s.iter())
                .filter_map(GStmt::max_counter)
                .max(),
            _ => None,
        }
    }

    /// Collect the names of internally called functions.
    fn callees(&self, out: &mut Vec<String>) {
        match self {
            GStmt::Call { callee, .. } => out.push(callee.clone()),
            GStmt::IfElse { then_s, else_s, .. } => {
                for s in then_s.iter().chain(else_s.iter()) {
                    s.callees(out);
                }
            }
            GStmt::Loop { body, .. } => {
                for s in body {
                    s.callees(out);
                }
            }
            _ => {}
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            GStmt::Assign { v, e } => {
                let _ = writeln!(out, "{pad}v{v} = {};", e.render());
            }
            GStmt::IfElse { c, then_s, else_s } => {
                let _ = writeln!(out, "{pad}if ({} > 0) {{", c.render());
                for s in then_s {
                    s.render_into(out, indent + 1);
                }
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_s {
                    s.render_into(out, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            GStmt::Loop { counter, n, body } => {
                let _ = writeln!(out, "{pad}c{counter} = 0;");
                let _ = writeln!(out, "{pad}while (c{counter} < {n}) {{");
                for s in body {
                    s.render_into(out, indent + 1);
                }
                let _ = writeln!(out, "{pad}  c{counter} = c{counter} + 1;");
                let _ = writeln!(out, "{pad}}}");
            }
            GStmt::BufStore { idx, e, v } => {
                let ix = format!("({} & 7)", idx.render());
                let _ = writeln!(out, "{pad}buf[{ix}] = (long) ({});", e.render());
                let _ = writeln!(out, "{pad}v{v} = (int) buf[{ix}];");
            }
            GStmt::AccAdd { v, e } => {
                let _ = writeln!(out, "{pad}acc = acc + ({});", e.render());
                let _ = writeln!(out, "{pad}v{v} = acc;");
            }
            GStmt::Call { v, callee, args } => {
                let args: Vec<String> = args.iter().map(GExpr::render).collect();
                let _ = writeln!(out, "{pad}v{v} = {callee}({});", args.join(", "));
            }
            GStmt::ExtCall { v, e, yld } => {
                let f = if *yld { "yield" } else { "inc" };
                let _ = writeln!(out, "{pad}v{v} = {f}({});", e.render());
            }
            GStmt::ExtPtrCall { v, a, b } => {
                let _ = writeln!(out, "{pad}w[0] = (long) ({});", a.render());
                let _ = writeln!(out, "{pad}w[1] = (long) ({});", b.render());
                let _ = writeln!(out, "{pad}ws = sum2(w);");
                let _ = writeln!(out, "{pad}v{v} = (int) ws;");
            }
        }
    }
}

impl GFn {
    /// Statements in this function, counted recursively.
    pub fn stmt_count(&self) -> usize {
        self.stmts.iter().map(GStmt::count).sum()
    }

    fn uses_memory(&self) -> bool {
        self.stmts.iter().any(GStmt::uses_memory)
    }

    fn render_into(&self, out: &mut String) {
        let params: Vec<String> = (0..self.nparams).map(|i| format!("int p{i}")).collect();
        let params = if params.is_empty() {
            "void".to_string()
        } else {
            params.join(", ")
        };
        let _ = writeln!(out, "int {}({params}) {{", self.name);
        for i in 0..self.nlocals {
            let _ = writeln!(out, "  int v{i};");
        }
        let ncounters = self
            .stmts
            .iter()
            .filter_map(GStmt::max_counter)
            .max()
            .map_or(0, |m| m + 1);
        for i in 0..ncounters {
            let _ = writeln!(out, "  int c{i};");
        }
        if self.stmts.iter().any(GStmt::uses_scratch) {
            let _ = writeln!(out, "  long w[2];");
            let _ = writeln!(out, "  long ws;");
        }
        // Zero-initialize every local so statement deletion can never
        // expose an uninitialized read.
        for i in 0..self.nlocals {
            let _ = writeln!(out, "  v{i} = 0;");
        }
        for s in &self.stmts {
            s.render_into(out, 1);
        }
        let _ = writeln!(out, "  return {};", self.ret.render());
        let _ = writeln!(out, "}}");
    }
}

impl GProgram {
    /// The designated entry point: the last function of the last unit.
    /// Returns `(unit_index, function)`.
    ///
    /// # Panics
    /// Panics if the program is empty (generator and reducer both maintain
    /// non-emptiness).
    pub fn entry(&self) -> (usize, &GFn) {
        let u = self.units.len() - 1;
        match self.units[u].funcs.last() {
            Some(f) => (u, f),
            None => unreachable!("generator and reducer maintain non-empty units"),
        }
    }

    /// Total statements across all functions (the reproducer size metric).
    pub fn stmt_count(&self) -> usize {
        self.units
            .iter()
            .flat_map(|u| u.funcs.iter())
            .map(GFn::stmt_count)
            .sum()
    }

    /// Arity map of every defined function.
    fn arity_map(&self) -> BTreeMap<&str, u32> {
        self.units
            .iter()
            .flat_map(|u| u.funcs.iter())
            .map(|f| (f.name.as_str(), f.nparams))
            .collect()
    }

    /// Render each unit into compilable Clight-mini source.
    pub fn render(&self) -> Vec<String> {
        let arity = self.arity_map();
        self.units
            .iter()
            .map(|unit| {
                let mut out = String::new();
                let defined: Vec<&str> = unit.funcs.iter().map(|f| f.name.as_str()).collect();
                // Extern declarations: the environment's functions, then any
                // cross-unit callee.
                let uses_inc = unit
                    .funcs
                    .iter()
                    .any(|f| f.stmts.iter().any(GStmt::uses_inc));
                let uses_sum2 = unit
                    .funcs
                    .iter()
                    .any(|f| f.stmts.iter().any(GStmt::uses_scratch));
                let uses_yield = unit
                    .funcs
                    .iter()
                    .any(|f| f.stmts.iter().any(GStmt::uses_yield));
                if uses_inc {
                    out.push_str("extern int inc(int);\n");
                }
                if uses_yield {
                    out.push_str("extern int yield(int);\n");
                }
                if uses_sum2 {
                    out.push_str("extern long sum2(long*);\n");
                }
                let mut cross: Vec<String> = Vec::new();
                for f in &unit.funcs {
                    for s in &f.stmts {
                        s.callees(&mut cross);
                    }
                }
                cross.sort();
                cross.dedup();
                for callee in &cross {
                    if defined.contains(&callee.as_str()) {
                        continue;
                    }
                    let k = *arity.get(callee.as_str()).unwrap_or(&0);
                    let sig: Vec<&str> = (0..k).map(|_| "int").collect();
                    let sig = if sig.is_empty() {
                        "void".to_string()
                    } else {
                        sig.join(", ")
                    };
                    let _ = writeln!(out, "extern int {callee}({sig});");
                }
                if unit.uses_memory {
                    out.push_str("const int lim = 17;\n");
                    out.push_str("int acc = 0;\n");
                    out.push_str("long buf[8];\n");
                }
                for f in &unit.funcs {
                    f.render_into(&mut out);
                }
                out
            })
            .collect()
    }

    /// Render the whole program as one annotated, self-contained source
    /// listing — the form findings are reported in. Each unit is delimited
    /// by a comment banner; the seed comes first.
    pub fn to_annotated_source(&self) -> String {
        let mut out = format!("// compcerto-gen seed {}\n", self.seed);
        for (i, src) in self.render().iter().enumerate() {
            let _ = writeln!(out, "// ---- unit {i} ----");
            out.push_str(src);
        }
        out
    }

    /// Check structural invariants: memory statements only inside the
    /// `uses_memory` unit, every callee defined or external, entry exists.
    /// Used by generator tests and as a reducer sanity net.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.units.is_empty() || self.units.iter().any(|u| u.funcs.is_empty()) {
            return Err("empty unit or program".into());
        }
        let arity = self.arity_map();
        if arity.len() != self.units.iter().map(|u| u.funcs.len()).sum::<usize>() {
            return Err("duplicate function names".into());
        }
        for unit in &self.units {
            for f in &unit.funcs {
                if !unit.uses_memory && f.uses_memory() {
                    return Err(format!("{}: memory statement outside memory unit", f.name));
                }
                let mut callees = Vec::new();
                for s in &f.stmts {
                    s.callees(&mut callees);
                }
                for c in &callees {
                    let Some(k) = arity.get(c.as_str()) else {
                        return Err(format!("{}: call to undefined {c}", f.name));
                    };
                    let _ = k;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_prog() -> GProgram {
        GProgram {
            seed: 1,
            units: vec![GUnit {
                uses_memory: true,
                funcs: vec![GFn {
                    name: "u0f0".into(),
                    nparams: 2,
                    nlocals: 2,
                    stmts: vec![
                        GStmt::Assign {
                            v: 0,
                            e: GExpr::Add(
                                Box::new(GExpr::Param(0)),
                                Box::new(GExpr::Const(-3)),
                            ),
                        },
                        GStmt::Loop {
                            counter: 0,
                            n: 3,
                            body: vec![GStmt::AccAdd {
                                v: 1,
                                e: GExpr::Local(0),
                            }],
                        },
                    ],
                    ret: GExpr::Local(1),
                }],
            }],
        }
    }

    #[test]
    fn renders_expected_shape() {
        let p = small_prog();
        let srcs = p.render();
        assert_eq!(srcs.len(), 1);
        let s = &srcs[0];
        assert!(s.contains("int acc = 0;"), "{s}");
        assert!(s.contains("v0 = (p0 + (- 3));"), "{s}");
        assert!(s.contains("while (c0 < 3)"), "{s}");
        assert!(s.contains("return v1;"), "{s}");
        // Locals zero-initialized before the body.
        let init = s.find("v0 = 0;").unwrap();
        let body = s.find("v0 = (p0").unwrap();
        assert!(init < body, "{s}");
    }

    #[test]
    fn stmt_count_counts_nested() {
        let p = small_prog();
        assert_eq!(p.stmt_count(), 3); // Assign + Loop + AccAdd
    }

    #[test]
    fn invariants_hold_and_detect_violations() {
        let mut p = small_prog();
        assert!(p.check_invariants().is_ok());
        p.units[0].uses_memory = false;
        assert!(p.check_invariants().is_err());
    }
}
