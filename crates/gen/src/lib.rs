//! # `compcerto-gen` — seeded program generation and counterexample reduction
//!
//! A Csmith-lite for the Clight-mini front end of CompCertO-rs, feeding the
//! differential-testing oracle (`compiler::difftest`):
//!
//! * [`program`] — a *structured* program representation ([`GProgram`]):
//!   translation units, functions, statements and expressions as data, with
//!   a deterministic renderer into the surface syntax the parser accepts.
//!   Keeping the structure (instead of strings) is what makes reduction
//!   tractable.
//! * [`generate`] — the seeded generator ([`generate`](generate::generate)):
//!   SplitMix64-driven, emits only programs whose executions are defined for
//!   every generated query (division/remainder by non-zero constants only,
//!   shift amounts below the width, in-bounds masked array indices, bounded
//!   loop trip counts, initialized locals, call graphs that form a DAG).
//!   Programs span several translation units and call external functions
//!   (`inc`, `sum2`) so the *open* C interface of the paper — incoming and
//!   outgoing questions — is exercised, including pointer passing across
//!   the boundary.
//! * [`reduce`] — a delta-debugging reducer ([`reduce`](reduce::reduce)):
//!   given a failing program and a "still fails?" predicate, greedily
//!   removes units, functions and statements, flattens control structure
//!   and shrinks constants until a fixpoint, returning a minimal
//!   reproducer.
//!
//! The crate depends only on `compcerto-core` (for the in-repo SplitMix64),
//! so the generator stays decoupled from the compiler: the oracle plugs in
//! as an ordinary predicate.

pub mod coverage;
pub mod generate;
pub mod program;
pub mod reduce;

pub use coverage::{Coverage, EXPR_CONSTRUCTORS, STMT_CONSTRUCTORS};
pub use generate::{generate, GenCfg};
pub use program::{GExpr, GFn, GProgram, GStmt, GUnit};
pub use reduce::{reduce, ReduceStats};
