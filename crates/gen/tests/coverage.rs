//! Coverage audit of the committed 200-seed block (DESIGN.md §10): the
//! differential-testing campaign claims its seed block "exercises the
//! grammar and every stage pair" — this test makes the claim checkable and
//! keeps it true under generator drift.
//!
//! * **Constructor coverage** is syntactic and cheap: fold
//!   [`Coverage::of_program`] over the 200 generated programs (both the CI
//!   `quick` shape and the default campaign shape) and demand that every
//!   statement and expression constructor occurs. On failure the assert
//!   prints the *sorted* unreached-constructor list
//!   ([`Coverage::missing`]), so drift reports are stable.
//! * **Stage-pair coverage** needs the oracle: run seeds from the block
//!   through [`compiler::run_seed_obs`] until all six non-baseline stages
//!   (`simpl-locals`, `rtl`, `rtl-opt`, `linear`, `mach`, `asm`) have been
//!   compared against the Clight baseline at least once. Covering a prefix
//!   covers the block; failing to cover it with the *whole* block fails
//!   the test with the sorted missing-pair list.
//!
//! This is a dev-dependency cycle (gen → compiler for tests only), which
//! Cargo permits and the workspace already uses for cross-layer audits.

use std::collections::BTreeSet;

use compcerto_gen::{generate, Coverage, GenCfg};
use compiler::{run_seed_obs, DifftestCfg, SeedOutcome, STAGES};

/// The committed campaign seed block: seeds `0..200` (the prefix of the
/// 500-seed `DIFFTEST.json` sweep and the whole of the `differential.rs`
/// regression block).
const BLOCK: u64 = 200;

fn block_coverage(cfg: &GenCfg) -> Coverage {
    let mut cov = Coverage::default();
    for seed in 0..BLOCK {
        cov.merge(&Coverage::of_program(&generate(seed, cfg)));
    }
    cov
}

#[test]
fn quick_block_reaches_every_constructor() {
    let cov = block_coverage(&GenCfg::quick());
    assert!(
        cov.complete(),
        "200-seed quick block misses constructors (sorted): {:?}",
        cov.missing()
    );
}

#[test]
fn default_block_reaches_every_constructor() {
    let cov = block_coverage(&GenCfg::default());
    assert!(
        cov.complete(),
        "200-seed default block misses constructors (sorted): {:?}",
        cov.missing()
    );
}

#[test]
fn missing_list_is_sorted_and_exhaustive_on_a_trivial_program() {
    // A single-seed "block" cannot cover the grammar; the report must name
    // what is missing, sorted, so two drift reports diff cleanly.
    let cov = Coverage::of_program(&generate(0, &GenCfg::quick()));
    let missing = cov.missing();
    let mut sorted = missing.clone();
    sorted.sort();
    assert_eq!(missing, sorted, "missing() must return a sorted list");
    // And merging the full block erases the deficit.
    let full = block_coverage(&GenCfg::quick());
    for m in &full.missing() {
        panic!("constructor never generated across the whole block: {m}");
    }
}

#[test]
fn block_compares_every_stage_pair() {
    let cfg = DifftestCfg {
        reduce: false, // nothing to reduce when auditing coverage
        ..DifftestCfg::quick()
    };
    let want: BTreeSet<&'static str> = STAGES[1..].iter().copied().collect();
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    for seed in 0..BLOCK {
        let (report, obs) = run_seed_obs(seed, &cfg);
        assert!(
            !matches!(report.outcome, SeedOutcome::Finding { .. }),
            "seed {seed} produced a finding during the coverage audit"
        );
        seen.extend(obs.stages_compared.iter().copied());
        if seen == want {
            return; // a prefix of the block covers all six stage pairs
        }
    }
    let missing: Vec<&&str> = want.difference(&seen).collect();
    panic!("stage pairs never compared by the 200-seed block (sorted): {missing:?}");
}
