//! CompCert Kripke logical relations (paper §4.4, Fig. 8) as executable
//! checkers.
//!
//! A CKLR provides a Kripke frame `⟨W, {⟩` and, for each type of the memory
//! model, a `W`-indexed relation. The laws of Fig. 8 ("loads from related
//! memories yield related values", etc.) are validated by the property tests
//! in `tests/cklr_laws.rs`.
//!
//! Provided instances:
//!
//! * [`Ext`] — memory extensions (`W = 1`, paper §4.1);
//! * [`Inj`] — memory injections (`W = meminj`, frame `⊆`, paper §4.2);
//! * [`Injp`] — injections with protection of unmapped/out-of-reach regions
//!   across calls (`W = meminj × mem × mem`, paper §4.5 / Fig. 9);
//! * [`VaExt`], [`VaInj`] — `ext`/`inj` strengthened with the read-only
//!   globals part of the value-analysis invariant (paper Lemma 5.8);
//! * [`RSum`] — the sum `R = injp + inj + ext + vainj + vaext` used by the
//!   final convention `C = R* · wt · CA · vainj` (paper §5).
//!
//! Because these are *checkers* rather than relations-with-proofs, the reply
//! side of the `^` modality (paper §4.4) is handled by synthesizing a
//! candidate accessible world with [`extend_parallel`]: blocks allocated
//! during a call are paired up in allocation order. Our interpreters allocate
//! in lock-step between source and target, so the heuristic is exact on every
//! execution the differential harness produces (see DESIGN.md §1).

use std::fmt;

use mem::{extends, mem_inject, val_inject, BlockId, InjpWorld, Mem, MemInj, Val};

use crate::symtab::SymbolTable;

/// An executable CompCert Kripke logical relation (paper §4.4).
pub trait Cklr: Clone + fmt::Debug {
    /// The Kripke worlds of the relation.
    type World: Clone + fmt::Debug;

    /// Display name (`ext`, `inj`, `injp`, …) used in derivations.
    fn name(&self) -> String;

    /// Candidate worlds relating `m1` and `m2` at a call boundary; empty when
    /// the memories cannot be related.
    fn match_mem(&self, m1: &Mem, m2: &Mem) -> Vec<Self::World>;

    /// Candidate worlds relating `m1` and `m2`, *seeded* with the value
    /// pairs the two sides exchanged (function addresses, arguments) — the
    /// information a simulation proof's relation would provide. The default
    /// ignores the seeds; injection-flavoured CKLRs use them to reconstruct
    /// the injection ([`infer_injection`]).
    fn infer_world(&self, m1: &Mem, m2: &Mem, seeds: &[(Val, Val)]) -> Vec<Self::World> {
        let _ = seeds;
        self.match_mem(m1, m2)
    }

    /// Are `v1` and `v2` related at `w`?
    fn match_val(&self, w: &Self::World, v1: &Val, v2: &Val) -> bool;

    /// Reply side (the `^R` modality): find a world accessible from `w`
    /// relating the post-call memories, or `None` when the call broke the
    /// relation.
    fn match_reply_mem(&self, w: &Self::World, m1: &Mem, m2: &Mem) -> Option<Self::World>;

    /// Reply side with seeds: like [`Cklr::match_reply_mem`] but additionally
    /// given the value pairs of the reply (return values), letting
    /// injection-flavoured CKLRs extend the world by exactly the blocks the
    /// reply makes reachable — unmapped private blocks stay unmapped, as the
    /// relations permit.
    fn infer_reply_world(
        &self,
        w: &Self::World,
        m1: &Mem,
        m2: &Mem,
        seeds: &[(Val, Val)],
    ) -> Option<Self::World> {
        let _ = seeds;
        self.match_reply_mem(w, m1, m2)
    }

    /// Functional direction: the canonical image of `v` under the world's
    /// memory transformation (identity for `ext`, pointer relocation for
    /// injections). `None` when `v` mentions an unmapped block.
    fn transport_val(&self, w: &Self::World, v: &Val) -> Option<Val>;

    /// Pointwise [`Cklr::match_val`] on argument lists.
    fn match_vals(&self, w: &Self::World, vs1: &[Val], vs2: &[Val]) -> bool {
        vs1.len() == vs2.len()
            && vs1
                .iter()
                .zip(vs2.iter())
                .all(|(a, b)| self.match_val(w, a, b))
    }
}

/// Extend `f` by pairing, in ascending identifier order, the valid source
/// blocks outside `f`'s domain with the valid target blocks outside `f`'s
/// range (at offset 0).
///
/// This synthesizes the evolved injection after a call: both sides of a
/// correctly-compiled execution allocate corresponding blocks in the same
/// order, so the pairing recovers exactly the injection a simulation proof
/// would construct.
pub fn extend_parallel(f: &MemInj, m1: &Mem, m2: &Mem) -> MemInj {
    let mut out = f.clone();
    let in_range = |b: BlockId| f.iter().any(|(_, (tb, _))| tb == b);
    let fresh_src: Vec<BlockId> = m1.blocks().filter(|b| f.get(*b).is_none()).collect();
    let fresh_tgt: Vec<BlockId> = m2.blocks().filter(|b| !in_range(*b)).collect();
    for (s, t) in fresh_src.into_iter().zip(fresh_tgt) {
        out.insert(s, t, 0);
    }
    out
}

/// Infer the injection a simulation proof would provide, from the values the
/// two sides actually exchanged.
///
/// Starts from the identity on the shared global blocks (`0..globals`),
/// seeds entries from corresponding pointer pairs (function addresses,
/// arguments), and closes under pointer fragments reachable through mapped
/// memory: if `b1 ↦ (b2, δ)` and the byte at `(b1, o)` is a fragment of
/// `Ptr(c1, _)` while `(b2, o+δ)` holds a fragment of `Ptr(c2, _)`, then
/// `c1 ↦ c2` is added. Returns `None` on conflicting constraints (no
/// injection can relate the data).
///
/// This reconstructs exactly the footprint-relevant part of the injection:
/// blocks never reachable from exchanged values stay unmapped, which the
/// `inj`/`injp` relations permit (paper §4.2).
pub fn infer_injection(
    globals: BlockId,
    m1: &Mem,
    m2: &Mem,
    seeds: &[(Val, Val)],
) -> Option<MemInj> {
    let mut f = MemInj::new();
    for b in 0..globals {
        if m1.valid_block(b) && m2.valid_block(b) {
            f.insert(b, b, 0);
        }
    }
    let mut work: Vec<(Val, Val)> = seeds.to_vec();
    let mut scanned: Vec<BlockId> = Vec::new();
    loop {
        // Absorb pending value pairs.
        while let Some((v1, v2)) = work.pop() {
            if let (Val::Ptr(b1, o1), Val::Ptr(b2, o2)) = (v1, v2) {
                let delta = o2 - o1;
                match f.get(b1) {
                    Some((tb, d)) => {
                        if (tb, d) != (b2, delta) {
                            return None; // conflicting constraint
                        }
                    }
                    None => f.insert(b1, b2, delta),
                }
            }
        }
        // Propagate through the contents of newly mapped blocks.
        let mut progressed = false;
        let entries: Vec<(BlockId, (BlockId, i64))> = f.iter().collect();
        for (b1, (b2, delta)) in entries {
            if scanned.contains(&b1) || !m1.valid_block(b1) {
                continue;
            }
            scanned.push(b1);
            progressed = true;
            let Ok((lo, hi)) = m1.bounds(b1) else {
                continue;
            };
            for o in lo..hi {
                if let (Some(p1), Some(p2)) = (frag_at(m1, b1, o), frag_at(m2, b2, o + delta)) {
                    work.push((p1, p2));
                }
            }
        }
        if work.is_empty() && !progressed {
            break;
        }
    }
    Some(f)
}

/// The leading fragment value stored at a byte, if any (helper for
/// [`infer_injection`]).
fn frag_at(m: &Mem, b: BlockId, o: i64) -> Option<Val> {
    match m.content(b, o) {
        Some(mem::MemVal::Fragment(v, 0)) => Some(v),
        _ => None,
    }
}

/// Guess an injection relating `m1` to `m2`: identity on every block of `m1`
/// that is also valid in `m2`. Used by `match_mem` when a pair of memories is
/// checked without a transported witness.
fn guess_identity_injection(m1: &Mem, m2: &Mem) -> MemInj {
    let mut f = MemInj::new();
    for b in m1.blocks() {
        if m2.valid_block(b) {
            f.insert(b, b, 0);
        }
    }
    f
}

// ---------------------------------------------------------------------------
// ext
// ---------------------------------------------------------------------------

/// The `ext` CKLR: memory extensions with value refinement (paper §4.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ext;

impl Cklr for Ext {
    type World = ();

    fn name(&self) -> String {
        "ext".into()
    }

    fn match_mem(&self, m1: &Mem, m2: &Mem) -> Vec<()> {
        if extends(m1, m2) {
            vec![()]
        } else {
            vec![]
        }
    }

    fn match_val(&self, _w: &(), v1: &Val, v2: &Val) -> bool {
        v1.lessdef(v2)
    }

    fn match_reply_mem(&self, _w: &(), m1: &Mem, m2: &Mem) -> Option<()> {
        if extends(m1, m2) {
            Some(())
        } else {
            None
        }
    }

    fn transport_val(&self, _w: &(), v: &Val) -> Option<Val> {
        Some(*v)
    }
}

// ---------------------------------------------------------------------------
// inj
// ---------------------------------------------------------------------------

/// The `inj` CKLR: memory injections, Kripke frame `⟨meminj, ⊆⟩`
/// (paper §4.2, Example 4.2). `globals` is the number of shared global
/// blocks, identity-mapped when inferring injections from seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inj {
    /// Number of shared global blocks.
    pub globals: BlockId,
}

impl Inj {
    /// An `inj` CKLR for a program with `globals` global blocks.
    pub fn new(globals: BlockId) -> Inj {
        Inj { globals }
    }
}

impl Cklr for Inj {
    type World = MemInj;

    fn name(&self) -> String {
        "inj".into()
    }

    fn match_mem(&self, m1: &Mem, m2: &Mem) -> Vec<MemInj> {
        let f = guess_identity_injection(m1, m2);
        if mem_inject(&f, m1, m2).is_ok() {
            vec![f]
        } else {
            vec![]
        }
    }

    fn infer_world(&self, m1: &Mem, m2: &Mem, seeds: &[(Val, Val)]) -> Vec<MemInj> {
        match infer_injection(self.globals, m1, m2, seeds) {
            Some(f) if mem_inject(&f, m1, m2).is_ok() => vec![f],
            _ => self.match_mem(m1, m2),
        }
    }

    fn match_val(&self, w: &MemInj, v1: &Val, v2: &Val) -> bool {
        val_inject(w, v1, v2)
    }

    fn match_reply_mem(&self, w: &MemInj, m1: &Mem, m2: &Mem) -> Option<MemInj> {
        self.infer_reply_world(w, m1, m2, &[])
    }

    fn infer_reply_world(
        &self,
        w: &MemInj,
        m1: &Mem,
        m2: &Mem,
        seeds: &[(Val, Val)],
    ) -> Option<MemInj> {
        // The evolved world: the old entries (as pointer-pair seeds) plus
        // whatever the reply values connect.
        let mut all: Vec<(Val, Val)> = w
            .iter()
            .map(|(b, (tb, d))| (Val::Ptr(b, 0), Val::Ptr(tb, d)))
            .collect();
        all.extend_from_slice(seeds);
        let f = infer_injection(self.globals, m1, m2, &all)?;
        if w.included_in(&f) && mem_inject(&f, m1, m2).is_ok() {
            Some(f)
        } else {
            // Fallback: lock-step parallel extension (exact for the
            // compiled executions the harness produces).
            let f = extend_parallel(w, m1, m2);
            (w.included_in(&f) && mem_inject(&f, m1, m2).is_ok()).then_some(f)
        }
    }

    fn transport_val(&self, w: &MemInj, v: &Val) -> Option<Val> {
        w.apply(*v)
    }
}

// ---------------------------------------------------------------------------
// injp
// ---------------------------------------------------------------------------

/// The `injp` CKLR: injections plus protection of unmapped source regions and
/// out-of-reach target regions across calls (paper §4.5, Fig. 9). `globals`
/// as in [`Inj`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Injp {
    /// Number of shared global blocks.
    pub globals: BlockId,
}

impl Injp {
    /// An `injp` CKLR for a program with `globals` global blocks.
    pub fn new(globals: BlockId) -> Injp {
        Injp { globals }
    }
}

impl Cklr for Injp {
    type World = InjpWorld;

    fn name(&self) -> String {
        "injp".into()
    }

    fn match_mem(&self, m1: &Mem, m2: &Mem) -> Vec<InjpWorld> {
        let f = guess_identity_injection(m1, m2);
        match InjpWorld::new(f, m1.clone(), m2.clone()) {
            Ok(w) => vec![w],
            Err(_) => vec![],
        }
    }

    fn infer_world(&self, m1: &Mem, m2: &Mem, seeds: &[(Val, Val)]) -> Vec<InjpWorld> {
        if let Some(f) = infer_injection(self.globals, m1, m2, seeds) {
            if let Ok(w) = InjpWorld::new(f, m1.clone(), m2.clone()) {
                return vec![w];
            }
        }
        self.match_mem(m1, m2)
    }

    fn match_val(&self, w: &InjpWorld, v1: &Val, v2: &Val) -> bool {
        val_inject(&w.inj, v1, v2)
    }

    fn match_reply_mem(&self, w: &InjpWorld, m1: &Mem, m2: &Mem) -> Option<InjpWorld> {
        self.infer_reply_world(w, m1, m2, &[])
    }

    fn infer_reply_world(
        &self,
        w: &InjpWorld,
        m1: &Mem,
        m2: &Mem,
        seeds: &[(Val, Val)],
    ) -> Option<InjpWorld> {
        let mut all: Vec<(Val, Val)> = w
            .inj
            .iter()
            .map(|(b, (tb, d))| (Val::Ptr(b, 0), Val::Ptr(tb, d)))
            .collect();
        all.extend_from_slice(seeds);
        let candidate = infer_injection(self.globals, m1, m2, &all)
            .filter(|f| w.inj.included_in(f))
            .and_then(|f| InjpWorld::new(f, m1.clone(), m2.clone()).ok())
            .filter(|w2| w.accessible_to(w2).is_ok());
        candidate.or_else(|| {
            let f = extend_parallel(&w.inj, m1, m2);
            let w2 = InjpWorld::new(f, m1.clone(), m2.clone()).ok()?;
            w.accessible_to(&w2).ok()?;
            Some(w2)
        })
    }

    fn transport_val(&self, w: &InjpWorld, v: &Val) -> Option<Val> {
        w.inj.apply(*v)
    }
}

// ---------------------------------------------------------------------------
// vaext / vainj
// ---------------------------------------------------------------------------

/// `vaext ≡ va · ext` (paper Lemma 5.8): memory extension strengthened with
/// the interface-level value-analysis invariant — read-only globals hold
/// their initialization data in the source memory.
#[derive(Debug, Clone)]
pub struct VaExt {
    /// Symbol table defining the read-only globals to check.
    pub symtab: SymbolTable,
}

impl Cklr for VaExt {
    type World = ();

    fn name(&self) -> String {
        "vaext".into()
    }

    fn match_mem(&self, m1: &Mem, m2: &Mem) -> Vec<()> {
        if self.symtab.romem_consistent(m1) {
            Ext.match_mem(m1, m2)
        } else {
            vec![]
        }
    }

    fn match_val(&self, w: &(), v1: &Val, v2: &Val) -> bool {
        Ext.match_val(w, v1, v2)
    }

    fn match_reply_mem(&self, w: &(), m1: &Mem, m2: &Mem) -> Option<()> {
        Ext.match_reply_mem(w, m1, m2)
    }

    fn transport_val(&self, w: &(), v: &Val) -> Option<Val> {
        Ext.transport_val(w, v)
    }
}

/// `vainj ≡ va · inj` (paper Lemma 5.8): memory injection strengthened with
/// the read-only-globals invariant on the source memory.
#[derive(Debug, Clone)]
pub struct VaInj {
    /// Symbol table defining the read-only globals to check.
    pub symtab: SymbolTable,
}

impl VaInj {
    fn inj(&self) -> Inj {
        Inj::new(self.symtab.len() as BlockId)
    }
}

impl Cklr for VaInj {
    type World = MemInj;

    fn name(&self) -> String {
        "vainj".into()
    }

    fn match_mem(&self, m1: &Mem, m2: &Mem) -> Vec<MemInj> {
        if self.symtab.romem_consistent(m1) {
            self.inj().match_mem(m1, m2)
        } else {
            vec![]
        }
    }

    fn infer_world(&self, m1: &Mem, m2: &Mem, seeds: &[(Val, Val)]) -> Vec<MemInj> {
        if self.symtab.romem_consistent(m1) {
            self.inj().infer_world(m1, m2, seeds)
        } else {
            vec![]
        }
    }

    fn match_val(&self, w: &MemInj, v1: &Val, v2: &Val) -> bool {
        self.inj().match_val(w, v1, v2)
    }

    fn match_reply_mem(&self, w: &MemInj, m1: &Mem, m2: &Mem) -> Option<MemInj> {
        self.inj().match_reply_mem(w, m1, m2)
    }

    fn transport_val(&self, w: &MemInj, v: &Val) -> Option<Val> {
        self.inj().transport_val(w, v)
    }
}

// ---------------------------------------------------------------------------
// The sum R = injp + inj + ext + vainj + vaext
// ---------------------------------------------------------------------------

/// Worlds of [`RSum`]: the tagged union of the component CKLRs' worlds
/// (paper Def. 5.5).
#[derive(Debug, Clone)]
pub enum RWorld {
    /// World of [`Injp`].
    Injp(Box<InjpWorld>),
    /// World of [`Inj`].
    Inj(MemInj),
    /// World of [`Ext`].
    Ext,
    /// World of [`VaInj`].
    VaInj(MemInj),
    /// World of [`VaExt`].
    VaExt,
}

/// The sum `R := injp + inj + ext + vainj + vaext` of paper §5: the caller
/// may choose any of the component CKLRs; the chosen component (recorded in
/// the world tag) governs the answers.
#[derive(Debug, Clone)]
pub struct RSum {
    /// Symbol table used by the `va`-flavored components.
    pub symtab: SymbolTable,
}

impl Cklr for RSum {
    type World = RWorld;

    fn name(&self) -> String {
        "injp+inj+ext+vainj+vaext".into()
    }

    fn match_mem(&self, m1: &Mem, m2: &Mem) -> Vec<RWorld> {
        let g = self.symtab.len() as BlockId;
        let mut ws: Vec<RWorld> = Vec::new();
        ws.extend(
            Injp::new(g)
                .match_mem(m1, m2)
                .into_iter()
                .map(|w| RWorld::Injp(Box::new(w))),
        );
        ws.extend(Inj::new(g).match_mem(m1, m2).into_iter().map(RWorld::Inj));
        ws.extend(Ext.match_mem(m1, m2).into_iter().map(|()| RWorld::Ext));
        let vainj = VaInj {
            symtab: self.symtab.clone(),
        };
        ws.extend(vainj.match_mem(m1, m2).into_iter().map(RWorld::VaInj));
        let vaext = VaExt {
            symtab: self.symtab.clone(),
        };
        ws.extend(vaext.match_mem(m1, m2).into_iter().map(|()| RWorld::VaExt));
        ws
    }

    fn match_val(&self, w: &RWorld, v1: &Val, v2: &Val) -> bool {
        match w {
            RWorld::Injp(w) => Injp::default().match_val(w, v1, v2),
            RWorld::Inj(f) | RWorld::VaInj(f) => Inj::default().match_val(f, v1, v2),
            RWorld::Ext | RWorld::VaExt => Ext.match_val(&(), v1, v2),
        }
    }

    fn match_reply_mem(&self, w: &RWorld, m1: &Mem, m2: &Mem) -> Option<RWorld> {
        match w {
            RWorld::Injp(w) => Injp::default()
                .match_reply_mem(w, m1, m2)
                .map(|x| RWorld::Injp(Box::new(x))),
            RWorld::Inj(f) => Inj::default().match_reply_mem(f, m1, m2).map(RWorld::Inj),
            RWorld::VaInj(f) => Inj::default().match_reply_mem(f, m1, m2).map(RWorld::VaInj),
            RWorld::Ext => Ext.match_reply_mem(&(), m1, m2).map(|()| RWorld::Ext),
            RWorld::VaExt => Ext.match_reply_mem(&(), m1, m2).map(|()| RWorld::VaExt),
        }
    }

    fn transport_val(&self, w: &RWorld, v: &Val) -> Option<Val> {
        match w {
            RWorld::Injp(w) => Injp::default().transport_val(w, v),
            RWorld::Inj(f) | RWorld::VaInj(f) => Inj::default().transport_val(f, v),
            RWorld::Ext | RWorld::VaExt => Ext.transport_val(&(), v),
        }
    }
}

// ---------------------------------------------------------------------------
// Promotion of a CKLR to a simulation convention at a language interface
// ---------------------------------------------------------------------------

/// Promotion `R_X : X ⇔ X` of a CKLR to the C interface (paper §4.4):
/// questions related iff `vf`, arguments and memory are related at a common
/// world; replies related iff return value and memory are related at an
/// accessible world (the `^` modality).
#[derive(Debug, Clone)]
pub struct CklrC<K> {
    /// Underlying CKLR.
    pub k: K,
}

impl<K: Cklr> crate::conv::SimConv for CklrC<K> {
    type Left = crate::iface::C;
    type Right = crate::iface::C;
    type World = K::World;

    fn name(&self) -> String {
        self.k.name()
    }

    fn match_query(&self, q1: &crate::iface::CQuery, q2: &crate::iface::CQuery) -> Vec<K::World> {
        if q1.sig != q2.sig {
            return vec![];
        }
        let mut seeds: Vec<(Val, Val)> = vec![(q1.vf, q2.vf)];
        seeds.extend(q1.args.iter().copied().zip(q2.args.iter().copied()));
        self.k
            .infer_world(&q1.mem, &q2.mem, &seeds)
            .into_iter()
            .filter(|w| {
                self.k.match_val(w, &q1.vf, &q2.vf) && self.k.match_vals(w, &q1.args, &q2.args)
            })
            .collect()
    }

    fn match_reply(
        &self,
        w: &K::World,
        r1: &crate::iface::CReply,
        r2: &crate::iface::CReply,
    ) -> bool {
        let seeds = [(r1.retval, r2.retval)];
        match self.k.infer_reply_world(w, &r1.mem, &r2.mem, &seeds) {
            Some(w2) => self.k.match_val(&w2, &r1.retval, &r2.retval),
            None => false,
        }
    }

    fn transport_query(
        &self,
        q1: &crate::iface::CQuery,
    ) -> Option<(K::World, crate::iface::CQuery)> {
        // Canonical target: the same question (identity transformation); the
        // world is whichever world relates the memory to itself.
        let w = self.k.match_mem(&q1.mem, &q1.mem).into_iter().next()?;
        let vf = self.k.transport_val(&w, &q1.vf)?;
        let args = q1
            .args
            .iter()
            .map(|v| self.k.transport_val(&w, v))
            .collect::<Option<Vec<_>>>()?;
        Some((
            w,
            crate::iface::CQuery {
                vf,
                sig: q1.sig.clone(),
                args,
                mem: q1.mem.clone(),
            },
        ))
    }

    fn transport_reply(
        &self,
        w: &K::World,
        r1: &crate::iface::CReply,
        _q2: &crate::iface::CQuery,
    ) -> Option<crate::iface::CReply> {
        let w2 = self.k.match_reply_mem(w, &r1.mem, &r1.mem)?;
        let retval = self.k.transport_val(&w2, &r1.retval)?;
        Some(crate::iface::CReply {
            retval,
            mem: r1.mem.clone(),
        })
    }
}

/// Promotion of a CKLR to the L interface (used by the `Tunneling` pass's
/// `ext` convention, paper Table 3): the location maps are related pointwise
/// and the memories by the CKLR.
#[derive(Debug, Clone)]
pub struct CklrL<K> {
    /// Underlying CKLR.
    pub k: K,
}

impl<K: Cklr> crate::conv::SimConv for CklrL<K> {
    type Left = crate::iface::L;
    type Right = crate::iface::L;
    type World = K::World;

    fn name(&self) -> String {
        format!("{}@L", self.k.name())
    }

    fn match_query(&self, q1: &crate::iface::LQuery, q2: &crate::iface::LQuery) -> Vec<K::World> {
        if q1.sig != q2.sig {
            return vec![];
        }
        let mut seeds: Vec<(Val, Val)> = vec![(q1.vf, q2.vf)];
        for (l, v1) in q1.ls.iter() {
            seeds.push((v1, q2.ls.get(l)));
        }
        self.k
            .infer_world(&q1.mem, &q2.mem, &seeds)
            .into_iter()
            .filter(|w| {
                self.k.match_val(w, &q1.vf, &q2.vf)
                    && q1
                        .ls
                        .iter()
                        .all(|(l, v1)| self.k.match_val(w, &v1, &q2.ls.get(l)))
            })
            .collect()
    }

    fn match_reply(
        &self,
        w: &K::World,
        r1: &crate::iface::LReply,
        r2: &crate::iface::LReply,
    ) -> bool {
        let seeds: Vec<(Val, Val)> = r1.ls.iter().map(|(l, v1)| (v1, r2.ls.get(l))).collect();
        match self.k.infer_reply_world(w, &r1.mem, &r2.mem, &seeds) {
            Some(w2) => r1
                .ls
                .iter()
                .all(|(l, v1)| self.k.match_val(&w2, &v1, &r2.ls.get(l))),
            None => false,
        }
    }

    fn transport_query(
        &self,
        q1: &crate::iface::LQuery,
    ) -> Option<(K::World, crate::iface::LQuery)> {
        let w = self.k.match_mem(&q1.mem, &q1.mem).into_iter().next()?;
        Some((w, q1.clone()))
    }

    fn transport_reply(
        &self,
        _w: &K::World,
        r1: &crate::iface::LReply,
        _q2: &crate::iface::LQuery,
    ) -> Option<crate::iface::LReply> {
        Some(r1.clone())
    }
}

/// Promotion of a CKLR to the A interface (`vainj_A` in the final convention
/// `C = R* · wt · CA · vainj`, paper §5): all registers related pointwise,
/// memories related.
#[derive(Debug, Clone)]
pub struct CklrA<K> {
    /// Underlying CKLR.
    pub k: K,
}

impl<K: Cklr> crate::conv::SimConv for CklrA<K> {
    type Left = crate::iface::A;
    type Right = crate::iface::A;
    type World = K::World;

    fn name(&self) -> String {
        format!("{}@A", self.k.name())
    }

    fn match_query(&self, q1: &crate::iface::ARegs, q2: &crate::iface::ARegs) -> Vec<K::World> {
        self.k
            .match_mem(&q1.mem, &q2.mem)
            .into_iter()
            .filter(|w| {
                self.k.match_val(w, &q1.rs.pc, &q2.rs.pc)
                    && self.k.match_val(w, &q1.rs.sp, &q2.rs.sp)
                    && self.k.match_val(w, &q1.rs.ra, &q2.rs.ra)
                    && q1
                        .rs
                        .regs
                        .iter()
                        .zip(q2.rs.regs.iter())
                        .all(|(a, b)| self.k.match_val(w, a, b))
            })
            .collect()
    }

    fn match_reply(
        &self,
        w: &K::World,
        r1: &crate::iface::ARegs,
        r2: &crate::iface::ARegs,
    ) -> bool {
        match self.k.match_reply_mem(w, &r1.mem, &r2.mem) {
            Some(w2) => {
                self.k.match_val(&w2, &r1.rs.pc, &r2.rs.pc)
                    && self.k.match_val(&w2, &r1.rs.sp, &r2.rs.sp)
                    && r1
                        .rs
                        .regs
                        .iter()
                        .zip(r2.rs.regs.iter())
                        .all(|(a, b)| self.k.match_val(&w2, a, b))
            }
            None => false,
        }
    }

    fn transport_query(&self, q1: &crate::iface::ARegs) -> Option<(K::World, crate::iface::ARegs)> {
        let w = self.k.match_mem(&q1.mem, &q1.mem).into_iter().next()?;
        Some((w, q1.clone()))
    }

    fn transport_reply(
        &self,
        _w: &K::World,
        r1: &crate::iface::ARegs,
        _q2: &crate::iface::ARegs,
    ) -> Option<crate::iface::ARegs> {
        Some(r1.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::Chunk;

    #[test]
    fn ext_matches_extended_memories() {
        let mut m1 = Mem::new();
        let b = m1.alloc(0, 8);
        let mut m2 = m1.clone();
        m2.store(Chunk::I32, b, 0, Val::Int(1)).unwrap();
        assert_eq!(Ext.match_mem(&m1, &m2).len(), 1);
        assert!(Ext.match_mem(&m2, &m1).is_empty());
    }

    #[test]
    fn inj_identity_guess() {
        let mut m = Mem::new();
        m.alloc(0, 8);
        let ws = Inj::default().match_mem(&m, &m);
        assert_eq!(ws.len(), 1);
        assert!(Inj::default().match_val(&ws[0], &Val::Ptr(0, 4), &Val::Ptr(0, 4)));
    }

    #[test]
    fn inj_reply_world_evolves_monotonically() {
        let mut m = Mem::new();
        m.alloc(0, 8);
        let w = Inj::default().match_mem(&m, &m).remove(0);
        // Both sides allocate one new block during the call.
        let mut m1 = m.clone();
        let mut m2 = m.clone();
        let nb1 = m1.alloc(0, 4);
        let nb2 = m2.alloc(0, 4);
        // Without seeds the new blocks stay unmapped (permitted by inj)…
        let w2 = Inj::default()
            .match_reply_mem(&w, &m1, &m2)
            .expect("reply related");
        assert!(w.included_in(&w2));
        // …but when the reply exchanges pointers into them, the inferred
        // world maps them (the ^ modality: w ⊆ w').
        let seeds = [(Val::Ptr(nb1, 0), Val::Ptr(nb2, 0))];
        let w3 = Inj::default()
            .infer_reply_world(&w, &m1, &m2, &seeds)
            .expect("seeded reply related");
        assert_eq!(w3.get(nb1), Some((nb2, 0)));
        assert!(w.included_in(&w3));
    }

    #[test]
    fn injp_detects_protection_violation() {
        // Source has a private block; the "call" modifies it.
        let mut m1 = Mem::new();
        let private = m1.alloc(0, 8);
        let shared = m1.alloc(0, 8);
        let mut m2 = Mem::new();
        let tgt = m2.alloc(0, 8);
        let mut f = MemInj::new();
        f.insert(shared, tgt, 0);
        let w = InjpWorld::new(f, m1.clone(), m2.clone()).unwrap();
        let mut m1b = m1.clone();
        m1b.store(Chunk::I32, private, 0, Val::Int(3)).unwrap();
        assert!(Injp::default().match_reply_mem(&w, &m1b, &m2).is_none());
        // An untouched memory is fine.
        assert!(Injp::default().match_reply_mem(&w, &m1, &m2).is_some());
    }

    #[test]
    fn rsum_offers_multiple_worlds() {
        let m = Mem::new();
        let r = RSum {
            symtab: SymbolTable::new(),
        };
        // Equal empty memories are related by every component.
        let ws = r.match_mem(&m, &m);
        assert!(ws.len() >= 5);
    }

    #[test]
    fn vainj_requires_romem_consistency() {
        use crate::symtab::{GlobKind, InitDatum};
        let mut t = SymbolTable::new();
        t.define(
            "k".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(7)],
                readonly: true,
            },
        );
        let m = t.build_init_mem().unwrap();
        let vainj = VaInj { symtab: t.clone() };
        assert_eq!(vainj.match_mem(&m, &m).len(), 1);
        // A memory where the constant is wrong is rejected. Build a fresh
        // table whose init differs to simulate corruption.
        let mut t2 = SymbolTable::new();
        t2.define(
            "k".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(8)],
                readonly: true,
            },
        );
        let m_bad = t2.build_init_mem().unwrap();
        assert!(vainj.match_mem(&m_bad, &m_bad).is_empty());
    }
}
