//! Deterministic symbol interning for the interpreter hot paths
//! (DESIGN.md §13).
//!
//! Every per-stage program mentions a small, fixed set of identifiers —
//! function names, global names, extern names. The legacy interpreters keyed
//! their per-step lookups on `String`s (map probes with full string
//! comparisons, clones into call states). The prepared fast interpreters
//! intern every identifier into a [`Sym`] — a dense `u32` — once at
//! *prepare* time, so the step loop only ever moves and compares machine
//! words. Strings survive solely at the edges: stuck reports, external-call
//! observations, and anything else a human or a baseline file reads.
//!
//! Determinism contract: [`Sym`] assignment is a pure function of the
//! *insertion order* (first-come, first-served, starting at 0). Every
//! prepare pass walks its program in a deterministic order (declaration
//! order, then symbol-table order), so the same program yields the same
//! `Sym` ids on every run, every thread, and every `--jobs` setting — the
//! interner contains no hashing, no randomized state, and no global
//! counters.

use std::collections::BTreeMap;
use std::fmt;

/// An interned symbol: a dense index into one [`Interner`]'s table.
///
/// `Sym`s from different interners are not comparable; each prepared
/// program carries the interner its ids live in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

impl Sym {
    /// The dense index, for direct use as a `Vec` subscript.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deterministic string interner: insertion-order `u32` ids, `BTreeMap`
/// reverse index (no hashing anywhere — ids are schedule- and
/// platform-invariant by construction).
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    index: BTreeMap<String, Sym>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `name`, returning its existing [`Sym`] or assigning the next
    /// dense id.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), s);
        s
    }

    /// The [`Sym`] of an already-interned name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The name behind `s` (`None` for a foreign or out-of-range id).
    #[must_use]
    pub fn name(&self, s: Sym) -> Option<&str> {
        self.names.get(s.index()).map(String::as_str)
    }

    /// Number of interned symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All `(Sym, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_insertion_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("f"), Sym(0));
        assert_eq!(i.intern("g"), Sym(1));
        assert_eq!(i.intern("f"), Sym(0), "re-interning is idempotent");
        assert_eq!(i.intern("h"), Sym(2));
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn roundtrip_and_lookup() {
        let mut i = Interner::new();
        let names = ["entry", "buf", "acc", "inc", "entry"];
        let syms: Vec<Sym> = names.iter().map(|n| i.intern(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(i.lookup(n), Some(*s));
            assert_eq!(i.name(*s), Some(*n));
        }
        assert_eq!(syms[0], syms[4], "same name, same id");
        assert_eq!(i.name(Sym(99)), None, "foreign ids resolve to nothing");
        assert_eq!(i.lookup("missing"), None);
    }

    #[test]
    fn distinct_names_never_collide() {
        // 1000 distinct names -> 1000 distinct dense ids covering 0..1000.
        let mut i = Interner::new();
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..1000u32 {
            let s = i.intern(&format!("sym_{k}"));
            assert!(seen.insert(s), "id {s:?} assigned twice");
        }
        assert_eq!(i.len(), 1000);
        assert_eq!(seen.iter().next_back(), Some(&Sym(999)));
    }

    #[test]
    fn assignment_is_a_pure_function_of_insertion_order() {
        let build = || {
            let mut i = Interner::new();
            for n in ["main", "f", "g", "buf", "f", "main"] {
                i.intern(n);
            }
            i
        };
        let a = build();
        let b = build();
        assert_eq!(a.len(), b.len());
        for (s, n) in a.iter() {
            assert_eq!(b.name(s), Some(n));
            assert_eq!(b.lookup(n), Some(s));
        }
    }
}
