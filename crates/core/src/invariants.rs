//! Invariants as simulation conventions (paper Appendix B).
//!
//! An invariant `P = ⟨W, P∘, P•⟩` constrains questions and answers of a
//! single interface; promoting it to a simulation convention `P̂` relates a
//! question/answer to *itself* when the invariant holds (paper Def. B.3).
//!
//! Two invariants matter for the compiler:
//!
//! * [`Wt`] — well-typedness of C-level calls (paper Example B.2), used by
//!   the `Selection` and `Allocation` passes;
//! * [`Va`] — the interface-level value-analysis invariant (read-only global
//!   constants hold their initialization data), used by `Constprop`, `CSE`
//!   and `Deadcode`.

use crate::conv::SimConv;
use crate::iface::{CQuery, CReply, Signature, C};
use crate::symtab::SymbolTable;
use mem::Val;

/// The typing invariant `wt` (paper Example B.2): arguments match the
/// signature's parameter types, the result matches its return type. The
/// world remembers the signature.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wt;

/// Does a question satisfy `wt`'s question predicate `P∘_wt`?
pub fn wt_query(q: &CQuery) -> bool {
    q.args.len() == q.sig.params.len()
        && q.args
            .iter()
            .zip(q.sig.params.iter())
            .all(|(v, t)| v.has_type(*t))
}

/// Does a reply satisfy `wt`'s answer predicate `P•_wt` for signature `sig`?
pub fn wt_reply(sig: &Signature, r: &CReply) -> bool {
    match sig.ret {
        Some(t) => r.retval.has_type(t),
        None => true,
    }
}

impl SimConv for Wt {
    type Left = C;
    type Right = C;
    type World = Signature;

    fn name(&self) -> String {
        "wt".into()
    }

    fn match_query(&self, q1: &CQuery, q2: &CQuery) -> Vec<Signature> {
        if q1 == q2 && wt_query(q1) {
            vec![q1.sig.clone()]
        } else {
            vec![]
        }
    }

    fn match_reply(&self, sig: &Signature, r1: &CReply, r2: &CReply) -> bool {
        r1 == r2 && wt_reply(sig, r1)
    }

    fn transport_query(&self, q1: &CQuery) -> Option<(Signature, CQuery)> {
        if wt_query(q1) {
            Some((q1.sig.clone(), q1.clone()))
        } else {
            None
        }
    }

    fn transport_reply(&self, sig: &Signature, r1: &CReply, _q2: &CQuery) -> Option<CReply> {
        // Normalize the result to the signature type, mirroring how the
        // semantics establishes the invariant on the way out.
        let retval = match sig.ret {
            Some(t) => r1.retval.ensure_type(t),
            None => Val::Undef,
        };
        Some(CReply {
            retval,
            mem: r1.mem.clone(),
        })
    }
}

/// The interface-level value-analysis invariant `va` (paper App. B.3): the
/// memory is consistent with the static analysis — at the interface, this
/// means read-only globals hold their prescribed constants.
#[derive(Debug, Clone)]
pub struct Va {
    /// Symbol table defining the read-only globals.
    pub symtab: SymbolTable,
}

impl SimConv for Va {
    type Left = C;
    type Right = C;
    type World = ();

    fn name(&self) -> String {
        "va".into()
    }

    fn match_query(&self, q1: &CQuery, q2: &CQuery) -> Vec<()> {
        if q1 == q2 && self.symtab.romem_consistent(&q1.mem) {
            vec![()]
        } else {
            vec![]
        }
    }

    fn match_reply(&self, _w: &(), r1: &CReply, r2: &CReply) -> bool {
        r1 == r2
    }

    fn transport_query(&self, q1: &CQuery) -> Option<((), CQuery)> {
        if self.symtab.romem_consistent(&q1.mem) {
            Some(((), q1.clone()))
        } else {
            None
        }
    }

    fn transport_reply(&self, _w: &(), r1: &CReply, _q2: &CQuery) -> Option<CReply> {
        Some(r1.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::{Mem, Typ};

    fn q(args: Vec<Val>, sig: Signature) -> CQuery {
        CQuery {
            vf: Val::Ptr(0, 0),
            sig,
            args,
            mem: Mem::new(),
        }
    }

    #[test]
    fn wt_accepts_well_typed_calls() {
        let sig = Signature::new(vec![Typ::I32, Typ::I64], Some(Typ::I32));
        let good = q(vec![Val::Int(1), Val::Long(2)], sig.clone());
        assert_eq!(Wt.match_query(&good, &good).len(), 1);
        let bad = q(vec![Val::Long(1), Val::Long(2)], sig.clone());
        assert!(Wt.match_query(&bad, &bad).is_empty());
        let wrong_arity = q(vec![Val::Int(1)], sig);
        assert!(Wt.match_query(&wrong_arity, &wrong_arity).is_empty());
    }

    #[test]
    fn wt_checks_result_type() {
        let sig = Signature::int_fn(0);
        let r_ok = CReply {
            retval: Val::Int(1),
            mem: Mem::new(),
        };
        let r_bad = CReply {
            retval: Val::Long(1),
            mem: Mem::new(),
        };
        assert!(Wt.match_reply(&sig, &r_ok, &r_ok));
        assert!(!Wt.match_reply(&sig, &r_bad, &r_bad));
        // Undef has every type.
        let r_undef = CReply {
            retval: Val::Undef,
            mem: Mem::new(),
        };
        assert!(Wt.match_reply(&sig, &r_undef, &r_undef));
    }

    #[test]
    fn va_checks_romem() {
        use crate::symtab::{GlobKind, InitDatum};
        let mut t = SymbolTable::new();
        t.define(
            "k".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(3)],
                readonly: true,
            },
        );
        let m = t.build_init_mem().unwrap();
        let va = Va { symtab: t };
        let good = CQuery {
            vf: Val::Ptr(0, 0),
            sig: Signature::int_fn(0),
            args: vec![],
            mem: m,
        };
        assert_eq!(va.match_query(&good, &good).len(), 1);
        let bad = CQuery {
            mem: Mem::new(), // constant block missing entirely
            ..good
        };
        assert!(va.match_query(&bad, &bad).is_empty());
    }
}
