//! # CompCertO semantic framework
//!
//! This crate is the Rust counterpart of the paper's contribution
//! (*CompCertO: Compiling Certified Open C Components*, PLDI 2021): a
//! semantic framework in which program components are open labeled transition
//! systems interacting through *language interfaces*, and compilers are
//! described by *simulation conventions* between those interfaces.
//!
//! * [`iface`] — language interfaces `C`, `L`, `M`, `A`, `W`, `1`
//!   (paper Def. 2.1, Table 2) and the ABI constants;
//! * [`regs`] — machine registers, abstract locations, register files;
//! * [`symtab`] — the global symbol table and initial memory;
//! * [`lts`] — open LTSs `L : A ↠ B` (paper Def. 3.1) and a runner;
//! * [`hcomp`] — horizontal composition `⊕` (paper Def. 3.2, Fig. 5);
//! * [`seqcomp`] — layered composition `∘` (paper §3.5);
//! * [`conv`] — simulation conventions, identity and composition
//!   (paper Defs. 2.6, 3.6);
//! * [`cklr`] — CompCert Kripke logical relations `ext`, `inj`, `injp`,
//!   `vaext`, `vainj` and the sum `R` (paper §4);
//! * [`cc`] — the structural conventions `CL`, `LM`, `MA`, `CA`
//!   (paper App. C);
//! * [`cconv`] — the whole-compiler convention `C = R*·wt·CA·vainj`
//!   (paper §5) as one checker;
//! * [`invariants`] — `wt` and `va` (paper App. B);
//! * [`algebra`] — the simulation convention algebra: symbolic convention
//!   expressions, refinement laws, and the rewriting engine that derives the
//!   whole-compiler convention (paper §5, Figs. 10–11);
//! * [`sim`] — the differential forward-simulation checker (the executable
//!   analog of paper Fig. 6);
//! * [`threaded`] — the thread-aware composition operator: component
//!   instances sharing global memory under an explicit deterministic
//!   [`threaded::Schedule`] (CompCertOC, Zhang et al. PLDI 2025).
//!
//! # Quickstart
//!
//! ```
//! use compcerto_core::iface::{CQuery, Signature};
//! use compcerto_core::conv::SimConv;
//! use compcerto_core::cc::Ca;
//! use mem::{Mem, Val};
//!
//! // Marshal a C-level call into an assembly-level activation per the
//! // calling convention (paper §5).
//! let q = CQuery {
//!     vf: Val::Ptr(0, 0),
//!     sig: Signature::int_fn(2),
//!     args: vec![Val::Int(3), Val::Int(4)],
//!     mem: Mem::new(),
//! };
//! let (_world, aq) = Ca::default().transport_query(&q).expect("marshaling succeeds");
//! assert_eq!(aq.rs.pc, Val::Ptr(0, 0));
//! ```

pub mod algebra;
pub mod cc;
pub mod cconv;
pub mod cklr;
pub mod conv;
pub mod envfault;
pub mod hcomp;
pub mod iface;
pub mod intern;
pub mod invariants;
pub mod lts;
pub mod obs;
pub mod regs;
pub mod rng;
pub mod seqcomp;
pub mod sim;
pub mod symtab;
pub mod threaded;
