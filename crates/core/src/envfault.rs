//! Deterministic environment-fault injection points for the LTS runtime
//! (resilience layer, DESIGN.md §11).
//!
//! Two fault classes live in this crate because their victims do:
//!
//! * **Trace-sink write faults** — the JSON-lines sink in [`crate::obs`] is
//!   a stand-in for a log file or pipe, and real sinks fail. An armed sink
//!   fault makes the *n*-th subsequent sink append fail; the sink *degrades
//!   gracefully*: the line is dropped, a per-thread drop counter is bumped,
//!   and the run continues. Callers that care (campaign bins) read
//!   [`take_sink_dropped`] after the run.
//! * **Deadline jitter** — the budgeted runner checks wall-clock deadlines
//!   at a fixed stride. An armed jitter fault makes the *n*-th subsequent
//!   deadline check behave as if the clock had jumped past the deadline,
//!   forcing a `TimedOut` outcome at a deterministic step count (the stride
//!   schedule is a pure function of the run). This turns the one
//!   wall-clock-dependent outcome in the system into something a campaign
//!   can exercise reproducibly.
//!
//! All state is thread-local; arming inside a pool work item is
//! `--jobs`-invariant because each item runs entirely on one worker thread.

use std::cell::Cell;

thread_local! {
    static SINK_ARMED: Cell<Option<u64>> = const { Cell::new(None) };
    static SINK_DROPPED: Cell<u64> = const { Cell::new(0) };
    static DEADLINE_ARMED: Cell<Option<u64>> = const { Cell::new(None) };
    static DEADLINE_FIRED: Cell<bool> = const { Cell::new(false) };
}

/// Arm a sink-write fault on this thread: the `nth` next trace-sink append
/// (1-based) is dropped. Re-arming overwrites the countdown.
pub fn arm_sink_fault(nth: u64) {
    SINK_ARMED.with(|a| a.set(Some(nth.max(1))));
}

/// Arm a deadline-jitter fault: the `nth` next strided deadline check in
/// the budgeted runner (1-based) reports the deadline as exceeded.
pub fn arm_deadline_jitter(nth: u64) {
    DEADLINE_ARMED.with(|a| a.set(Some(nth.max(1))));
    DEADLINE_FIRED.with(|f| f.set(false));
}

/// Disarm all faults owned by this crate on this thread.
pub fn disarm() {
    SINK_ARMED.with(|a| a.set(None));
    DEADLINE_ARMED.with(|a| a.set(None));
}

/// Lines dropped by sink-write faults on this thread since the last call;
/// clears the counter.
pub fn take_sink_dropped() -> u64 {
    SINK_DROPPED.with(|c| c.replace(0))
}

/// Whether the most recently armed deadline jitter fired; clears the flag.
pub fn take_deadline_fired() -> bool {
    DEADLINE_FIRED.with(|f| f.replace(false))
}

/// Hook for the sink: returns true when this append must be dropped.
pub(crate) fn sink_write_fails() -> bool {
    let fire = SINK_ARMED.with(|a| match a.get() {
        None => false,
        Some(1) => {
            a.set(None);
            true
        }
        Some(n) => {
            a.set(Some(n - 1));
            false
        }
    });
    if fire {
        SINK_DROPPED.with(|c| c.set(c.get() + 1));
    }
    fire
}

/// Hook for the budgeted runner's strided deadline check: returns true when
/// the clock must be treated as past the deadline.
pub(crate) fn deadline_jitter_fires() -> bool {
    let fire = DEADLINE_ARMED.with(|a| match a.get() {
        None => false,
        Some(1) => {
            a.set(None);
            true
        }
        Some(n) => {
            a.set(Some(n - 1));
            false
        }
    });
    if fire {
        DEADLINE_FIRED.with(|f| f.set(true));
    }
    fire
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_fault_counts_down_and_drops_once() {
        disarm();
        let _ = take_sink_dropped();
        arm_sink_fault(2);
        assert!(!sink_write_fails());
        assert!(sink_write_fails());
        assert!(!sink_write_fails()); // disarmed after firing
        assert_eq!(take_sink_dropped(), 1);
    }

    #[test]
    fn deadline_jitter_fires_once_then_disarms() {
        disarm();
        arm_deadline_jitter(1);
        assert!(deadline_jitter_fires());
        assert!(take_deadline_fired());
        assert!(!deadline_jitter_fires());
    }
}
