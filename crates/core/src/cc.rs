//! Structural calling-convention conventions (paper §5 and Appendix C).
//!
//! These conventions bridge adjacent language interfaces:
//!
//! * [`Cl`]`: C ⇔ L` — marshal argument *values* into abstract locations
//!   (used by the `Allocation` pass, App. C.1);
//! * [`Lm`]`: L ⇔ M` — concretize locations into machine registers and
//!   in-memory stack slots, protecting the argument region (App. C.2,
//!   Fig. 13);
//! * [`Ma`]`: M ⇔ A` — move `sp`/`ra`/`pc` into their architectural
//!   registers (App. C.3);
//! * [`Ca`]`: C ⇔ A` — the fused convention `inj · CL · LM · MA` used by the
//!   end-to-end Theorem 3.8 harness. Its decomposition into the three
//!   structural pieces is validated symbolically by [`crate::algebra`].

use mem::{mem_inject, val_inject, Chunk, Mem, MemInj, Perm, Val};

use crate::cklr::{extend_parallel, infer_injection};
use crate::conv::SimConv;
use crate::iface::{
    abi, ARegs, CQuery, CReply, LQuery, LReply, MQuery, MReply, Signature, A, C, L, M,
};
use crate::regs::{Loc, Locset, Mreg, Regset, NREGS};

/// Remove all permissions on the argument region `[sp, sp+size_arguments)`
/// (CompCert's `free_args`, paper App. C.2): the L-level view of the M-level
/// memory, ensuring the source execution cannot touch stack-passed arguments.
pub fn free_args(sig: &Signature, m: &Mem, sp: &Val) -> Option<Mem> {
    let size = abi::size_arguments(sig);
    if size == 0 {
        return Some(m.clone());
    }
    let Val::Ptr(b, ofs) = sp else { return None };
    let mut out = m.clone();
    out.drop_perm(*b, *ofs, *ofs + size, Perm::None).ok()?;
    Some(out)
}

/// Restore the argument region of `outer` into `inner` (CompCert's `mix`,
/// paper App. C.2): the M-level post-call memory is the L-level post-call
/// memory with the argument region taken from the pre-call M-level memory.
pub fn mix_args(sig: &Signature, sp: &Val, outer: &Mem, inner: &Mem) -> Option<Mem> {
    let size = abi::size_arguments(sig);
    if size == 0 {
        return Some(inner.clone());
    }
    let Val::Ptr(b, ofs) = sp else { return None };
    let mut out = inner.clone();
    // Restore the bytes and permissions of the argument region from the
    // outer (M-level, pre-call) memory.
    out.copy_range_from(outer, *b, *ofs, *ofs + size).ok()?;
    Some(out)
}

/// Synthesize a location map from machine state (CompCert's `make_locset`,
/// paper App. C.2): registers from `rs`, `Outgoing` slots loaded from the
/// argument region at `sp`.
pub fn make_locset(sig: &Signature, rs: &[Val; NREGS], m: &Mem, sp: &Val) -> Locset {
    let mut ls = Locset::new();
    for r in Mreg::all() {
        ls.set(Loc::Reg(r), rs[r.index()]);
    }
    for loc in abi::loc_arguments(sig) {
        if let Loc::Outgoing(ofs) = loc {
            // Stack-argument slots are untyped 8-byte slots (Chunk::Any64).
            let v = match sp {
                Val::Ptr(b, base) => m.load(Chunk::Any64, *b, base + ofs).unwrap_or(Val::Undef),
                _ => Val::Undef,
            };
            ls.set(Loc::Outgoing(ofs), v);
        }
    }
    ls
}

/// Read argument values out of a location map (CompCert's `args(sg, ls)`,
/// paper App. C.1).
pub fn args_of_locset(sig: &Signature, ls: &Locset) -> Vec<Val> {
    abi::loc_arguments(sig).iter().map(|l| ls.get(*l)).collect()
}

// ---------------------------------------------------------------------------
// CL : C ⇔ L
// ---------------------------------------------------------------------------

/// The convention `CL : C ⇔ L` (paper App. C.1): the world remembers the
/// signature; arguments are read from the locations prescribed by
/// `loc_arguments`, the result from `loc_result`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cl;

impl SimConv for Cl {
    type Left = C;
    type Right = L;
    type World = Signature;

    fn name(&self) -> String {
        "CL".into()
    }

    fn match_query(&self, q1: &CQuery, q2: &LQuery) -> Vec<Signature> {
        let ok = q1.vf == q2.vf
            && q1.sig == q2.sig
            && q1.mem == q2.mem
            && q1.args == args_of_locset(&q1.sig, &q2.ls);
        if ok {
            vec![q1.sig.clone()]
        } else {
            vec![]
        }
    }

    fn match_reply(&self, sig: &Signature, r1: &CReply, r2: &LReply) -> bool {
        let res_ok = match sig.ret {
            Some(_) => r2.ls.get(Loc::Reg(abi::loc_result(sig))) == r1.retval,
            None => true,
        };
        res_ok && r1.mem == r2.mem
    }

    fn transport_query(&self, q1: &CQuery) -> Option<(Signature, LQuery)> {
        let mut ls = Locset::new();
        for (v, l) in q1.args.iter().zip(abi::loc_arguments(&q1.sig)) {
            ls.set(l, *v);
        }
        Some((
            q1.sig.clone(),
            LQuery {
                vf: q1.vf,
                sig: q1.sig.clone(),
                ls,
                mem: q1.mem.clone(),
            },
        ))
    }

    fn transport_reply(&self, sig: &Signature, r1: &CReply, q2: &LQuery) -> Option<LReply> {
        // Result in the result register; callee-save locations preserved from
        // the query; caller-save registers clobbered to Undef.
        let mut ls = Locset::new();
        for r in Mreg::all() {
            if abi::is_callee_save(r) {
                ls.set(Loc::Reg(r), q2.ls.get(Loc::Reg(r)));
            } else {
                ls.set(Loc::Reg(r), Val::Undef);
            }
        }
        if sig.ret.is_some() {
            ls.set(Loc::Reg(abi::loc_result(sig)), r1.retval);
        }
        Some(LReply {
            ls,
            mem: r1.mem.clone(),
        })
    }
}

// ---------------------------------------------------------------------------
// LM : L ⇔ M
// ---------------------------------------------------------------------------

/// The world of [`Lm`]: `signature × regset × mem × val` (paper App. C.2).
#[derive(Debug, Clone)]
pub struct LmWorld {
    /// Signature of the call.
    pub sig: Signature,
    /// Machine registers at the call.
    pub rs: [Val; NREGS],
    /// M-level memory at the call (with the argument region intact).
    pub mem: Mem,
    /// Stack pointer at the call.
    pub sp: Val,
}

/// The convention `LM : L ⇔ M` (paper App. C.2, Fig. 13): the L-level
/// location map is synthesized from the M-level machine state, and the
/// L-level memory is the M-level memory with the argument region's
/// permissions removed — encoding the separation property that previous
/// CompCert extensions needed heavyweight machinery for.
///
/// This convention has no canonical *forward* marshaling (the M-level stack
/// layout cannot be invented from an L-level query alone); use
/// [`Lm::source_of_with_sig`] to derive the L-level view of an M-level question.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lm;

impl Lm {
    /// Derive the L-level question for an M-level question whose signature is
    /// known (signatures travel in LM worlds, not in M-level questions).
    /// This is the functional, target-to-source direction of the convention.
    pub fn source_of_with_sig(&self, sig: &Signature, q2: &MQuery) -> Option<(LmWorld, LQuery)> {
        let ls = make_locset(sig, &q2.rs, &q2.mem, &q2.sp);
        let mem = free_args(sig, &q2.mem, &q2.sp)?;
        let w = LmWorld {
            sig: sig.clone(),
            rs: q2.rs,
            mem: q2.mem.clone(),
            sp: q2.sp,
        };
        Some((
            w,
            LQuery {
                vf: q2.vf,
                sig: sig.clone(),
                ls,
                mem,
            },
        ))
    }

    /// Derive the M-level reply corresponding to an L-level reply (used by
    /// checking environments): result/callee-save registers from the L-level
    /// location map, memory mixed per App. C.2.
    pub fn target_reply_of(&self, w: &LmWorld, r1: &LReply) -> Option<MReply> {
        let mut rs = [Val::Undef; NREGS];
        for r in Mreg::all() {
            rs[r.index()] = r1.ls.get(Loc::Reg(r));
        }
        let mem = mix_args(&w.sig, &w.sp, &w.mem, &r1.mem)?;
        Some(MReply { rs, mem })
    }
}

impl SimConv for Lm {
    type Left = L;
    type Right = M;
    type World = LmWorld;

    fn name(&self) -> String {
        "LM".into()
    }

    fn match_query(&self, q1: &LQuery, q2: &MQuery) -> Vec<LmWorld> {
        match self.source_of_with_sig(&q1.sig, q2) {
            Some((w, derived)) => {
                // Compare only the locations that matter: argument locations
                // and registers (the derived locset defines all registers).
                let args_ok =
                    args_of_locset(&q1.sig, &q1.ls) == args_of_locset(&q1.sig, &derived.ls);
                let regs_ok =
                    Mreg::all().all(|r| q1.ls.get(Loc::Reg(r)) == derived.ls.get(Loc::Reg(r)));
                if q1.vf == q2.vf && q1.mem == derived.mem && args_ok && regs_ok {
                    vec![w]
                } else {
                    vec![]
                }
            }
            None => vec![],
        }
    }

    fn match_reply(&self, w: &LmWorld, r1: &LReply, r2: &MReply) -> bool {
        // rs' ≡R ls': result registers agree.
        let res_ok = match w.sig.ret {
            Some(_) => {
                let r = abi::loc_result(&w.sig);
                r2.rs[r.index()] == r1.ls.get(Loc::Reg(r))
            }
            None => true,
        };
        // rs' ≡CS rs: callee-save registers preserved from the call.
        let cs_ok = abi::CALLEE_SAVE
            .iter()
            .all(|r| r2.rs[r.index()] == w.rs[r.index()]);
        // m' = mix(sg, sp, m, m̄').
        let mem_ok = match mix_args(&w.sig, &w.sp, &w.mem, &r1.mem) {
            Some(mixed) => mixed == r2.mem,
            None => false,
        };
        res_ok && cs_ok && mem_ok
    }
}

// ---------------------------------------------------------------------------
// MA : M ⇔ A
// ---------------------------------------------------------------------------

/// The world of [`Ma`]: the `(sp, ra)` pair (paper App. C.3).
#[derive(Debug, Clone, PartialEq)]
pub struct MaWorld {
    /// Stack pointer at the call.
    pub sp: Val,
    /// Return address at the call.
    pub ra: Val,
}

/// The convention `MA : M ⇔ A` (paper App. C.3): `sp`, `ra` and the function
/// address move into the architectural `sp`/`ra`/`pc` registers; the answer
/// must restore `sp` and jump to `ra`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ma;

impl SimConv for Ma {
    type Left = M;
    type Right = A;
    type World = MaWorld;

    fn name(&self) -> String {
        "MA".into()
    }

    fn match_query(&self, q1: &MQuery, q2: &ARegs) -> Vec<MaWorld> {
        let ok = q2.rs.pc == q1.vf
            && q2.rs.sp == q1.sp
            && q2.rs.ra == q1.ra
            && q2.rs.regs == q1.rs
            && q2.mem == q1.mem;
        if ok {
            vec![MaWorld {
                sp: q1.sp,
                ra: q1.ra,
            }]
        } else {
            vec![]
        }
    }

    fn match_reply(&self, w: &MaWorld, r1: &MReply, r2: &ARegs) -> bool {
        r2.rs.pc == w.ra && r2.rs.sp == w.sp && r2.rs.regs == r1.rs && r2.mem == r1.mem
    }

    fn transport_query(&self, q1: &MQuery) -> Option<(MaWorld, ARegs)> {
        let rs = Regset {
            regs: q1.rs,
            pc: q1.vf,
            sp: q1.sp,
            ra: q1.ra,
        };
        Some((
            MaWorld {
                sp: q1.sp,
                ra: q1.ra,
            },
            ARegs {
                rs,
                mem: q1.mem.clone(),
            },
        ))
    }

    fn transport_reply(&self, w: &MaWorld, r1: &MReply, q2: &ARegs) -> Option<ARegs> {
        let rs = Regset {
            regs: r1.rs,
            pc: w.ra,
            sp: w.sp,
            ra: q2.rs.ra,
        };
        Some(ARegs {
            rs,
            mem: r1.mem.clone(),
        })
    }
}

// ---------------------------------------------------------------------------
// CA : C ⇔ A (fused, with the injection step folded in)
// ---------------------------------------------------------------------------

/// The world of [`Ca`].
#[derive(Debug, Clone)]
pub struct CaWorld {
    /// Signature of the call.
    pub sig: Signature,
    /// Injection from C-level memory into A-level memory at the call.
    pub inj: MemInj,
    /// A-level register file at the call (for callee-save checking).
    pub rs: Regset,
    /// A-level memory at the call.
    pub mem: Mem,
}

/// The fused end-to-end convention `CA ≈ inj · CL · LM · MA : C ⇔ A` used by
/// the Theorem 3.8 harness: it marshals a C-level question directly into an
/// assembly-level question (allocating the stack-argument region and a
/// return-address sentinel), and checks assembly-level answers against
/// C-level answers (result register, callee-save preservation, `pc = ra`,
/// `sp` restored, memories injection-related).
///
/// `globals` is the number of shared global blocks (the symbol-table size):
/// the injection relating independently-evolved memories is *inferred* from
/// it plus the exchanged values ([`infer_injection`]).
///
/// The decomposition of the paper's `C = R* · wt · CA · vainj` into these
/// pieces is established symbolically by the [`crate::algebra`] engine; this
/// type is its executable counterpart.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ca {
    /// Number of shared global blocks (identity-mapped by the injection).
    pub globals: u32,
}

impl Ca {
    /// Offset stride of stack-passed arguments.
    const ARG_STRIDE: i64 = 8;

    /// A `CA` convention for a program with `globals` global blocks.
    pub fn new(globals: u32) -> Ca {
        Ca { globals }
    }
}

impl SimConv for Ca {
    type Left = C;
    type Right = A;
    type World = CaWorld;

    fn name(&self) -> String {
        "CA".into()
    }

    fn match_query(&self, q1: &CQuery, q2: &ARegs) -> Vec<CaWorld> {
        // Collect the corresponding value pairs exchanged by the call.
        let mut seeds: Vec<(Val, Val)> = vec![(q1.vf, q2.rs.pc)];
        let Val::Ptr(spb, spofs) = q2.rs.sp else {
            return vec![];
        };
        let mut target_args: Vec<Val> = Vec::with_capacity(q1.args.len());
        for i in 0..q1.args.len() {
            if i < abi::PARAM_REGS.len() {
                target_args.push(q2.rs.get(abi::PARAM_REGS[i]));
            } else {
                let ofs = spofs + ((i - abi::PARAM_REGS.len()) as i64) * Self::ARG_STRIDE;
                match q2.mem.load(Chunk::Any64, spb, ofs) {
                    Ok(v) => target_args.push(v),
                    Err(_) => return vec![],
                }
            }
        }
        seeds.extend(q1.args.iter().copied().zip(target_args.iter().copied()));
        // Infer the injection from the globals and the exchanged pointers.
        let Some(inj) = infer_injection(self.globals, &q1.mem, &q2.mem, &seeds) else {
            return vec![];
        };
        if mem_inject(&inj, &q1.mem, &q2.mem).is_err() {
            return vec![];
        }
        if !val_inject(&inj, &q1.vf, &q2.rs.pc) {
            return vec![];
        }
        for (v1, v2) in q1.args.iter().zip(&target_args) {
            if !val_inject(&inj, v1, v2) {
                return vec![];
            }
        }
        vec![CaWorld {
            sig: q1.sig.clone(),
            inj,
            rs: q2.rs.clone(),
            mem: q2.mem.clone(),
        }]
    }

    fn match_reply(&self, w: &CaWorld, r1: &CReply, r2: &ARegs) -> bool {
        // Control returned to the caller with the stack restored.
        if r2.rs.pc != w.rs.ra || r2.rs.sp != w.rs.sp {
            return false;
        }
        // Callee-save registers preserved.
        for r in abi::CALLEE_SAVE {
            if r2.rs.get(r) != w.rs.get(r) {
                return false;
            }
        }
        // Memories related at an evolved injection (the world's injection
        // extended by whatever the return value connects); result register
        // carries the (injected) return value.
        let mut seeds: Vec<(Val, Val)> = w
            .inj
            .iter()
            .map(|(b, (tb, d))| (Val::Ptr(b, 0), Val::Ptr(tb, d)))
            .collect();
        if w.sig.ret.is_some() {
            seeds.push((r1.retval, r2.rs.get(abi::RESULT_REG)));
        }
        let Some(f) = infer_injection(0, &r1.mem, &r2.mem, &seeds) else {
            return false;
        };
        if !w.inj.included_in(&f) {
            return false;
        }
        if mem_inject(&f, &r1.mem, &r2.mem).is_err() {
            return false;
        }
        match w.sig.ret {
            Some(_) => val_inject(&f, &r1.retval, &r2.rs.get(abi::RESULT_REG)),
            None => true,
        }
    }

    fn transport_query(&self, q1: &CQuery) -> Option<(CaWorld, ARegs)> {
        let mut m2 = q1.mem.clone();
        let asize = abi::size_arguments(&q1.sig);
        // Argument region (even when empty we allocate it so `sp` is a real
        // pointer, as the Asm semantics requires).
        let spb = m2.alloc(0, asize.max(0));
        // Return-address sentinel: a fresh empty block; the Asm semantics
        // recognizes `pc = ra` as the final state.
        let rab = m2.alloc(0, 0);
        let sp = Val::Ptr(spb, 0);
        let ra = Val::Ptr(rab, 0);
        let inj = MemInj::identity_below(q1.mem.next_block());

        let mut rs = Regset::new();
        rs.pc = q1.vf;
        rs.sp = sp;
        rs.ra = ra;
        for (i, v) in q1.args.iter().enumerate() {
            if i < abi::PARAM_REGS.len() {
                rs.set(abi::PARAM_REGS[i], *v);
            } else {
                let ofs = ((i - abi::PARAM_REGS.len()) as i64) * Self::ARG_STRIDE;
                m2.store(Chunk::Any64, spb, ofs, *v).ok()?;
            }
        }
        let w = CaWorld {
            sig: q1.sig.clone(),
            inj,
            rs: rs.clone(),
            mem: m2.clone(),
        };
        Some((w, ARegs { rs, mem: m2 }))
    }

    fn transport_reply(&self, w: &CaWorld, r1: &CReply, q2: &ARegs) -> Option<ARegs> {
        let f = extend_parallel(&w.inj, &r1.mem, &r1.mem);
        let mut rs = q2.rs.clone();
        rs.pc = w.rs.ra;
        rs.sp = w.rs.sp;
        for r in Mreg::all() {
            if abi::is_callee_save(r) {
                rs.set(r, w.rs.get(r));
            } else {
                rs.set(r, Val::Undef);
            }
        }
        if w.sig.ret.is_some() {
            let rv = f.apply(r1.retval)?;
            rs.set(abi::RESULT_REG, rv);
        }
        Some(ARegs {
            rs,
            mem: r1.mem.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cquery(nargs: usize) -> CQuery {
        let mut m = Mem::new();
        m.alloc(0, 1); // a pretend function block
        CQuery {
            vf: Val::Ptr(0, 0),
            sig: Signature::int_fn(nargs),
            args: (0..nargs as i32).map(Val::Int).collect(),
            mem: m,
        }
    }

    #[test]
    fn cl_marshals_register_and_stack_args() {
        let q1 = sample_cquery(6);
        let (w, q2) = Cl.transport_query(&q1).unwrap();
        assert_eq!(q2.ls.get(Loc::Reg(Mreg(0))), Val::Int(0));
        assert_eq!(q2.ls.get(Loc::Reg(Mreg(3))), Val::Int(3));
        assert_eq!(q2.ls.get(Loc::Outgoing(0)), Val::Int(4));
        assert_eq!(q2.ls.get(Loc::Outgoing(8)), Val::Int(5));
        assert_eq!(Cl.match_query(&q1, &q2).len(), 1);
        // Reply transport puts the result in r0.
        let r1 = CReply {
            retval: Val::Int(42),
            mem: q1.mem.clone(),
        };
        let r2 = Cl.transport_reply(&w, &r1, &q2).unwrap();
        assert!(Cl.match_reply(&w, &r1, &r2));
        assert_eq!(r2.ls.get(Loc::Reg(abi::RESULT_REG)), Val::Int(42));
    }

    #[test]
    fn ma_moves_control_registers() {
        let mut m = Mem::new();
        m.alloc(0, 1);
        let q1 = MQuery {
            vf: Val::Ptr(0, 0),
            sp: Val::Ptr(0, 0),
            ra: Val::Int(9),
            rs: [Val::Undef; NREGS],
            mem: m.clone(),
        };
        let (w, q2) = Ma.transport_query(&q1).unwrap();
        assert_eq!(q2.rs.pc, q1.vf);
        assert_eq!(Ma.match_query(&q1, &q2).len(), 1);
        let r1 = MReply {
            rs: [Val::Undef; NREGS],
            mem: m,
        };
        let r2 = Ma.transport_reply(&w, &r1, &q2).unwrap();
        assert!(Ma.match_reply(&w, &r1, &r2));
        assert_eq!(r2.rs.pc, q1.ra);
        assert_eq!(r2.rs.sp, q1.sp);
    }

    #[test]
    fn ca_roundtrip_with_stack_args() {
        let q1 = sample_cquery(6);
        let (w, q2) = Ca::default().transport_query(&q1).unwrap();
        // Register args in place.
        assert_eq!(q2.rs.get(Mreg(2)), Val::Int(2));
        // Stack args stored at sp.
        let Val::Ptr(spb, 0) = q2.rs.sp else { panic!() };
        assert_eq!(q2.mem.load(Chunk::Any64, spb, 0), Ok(Val::Int(4)));
        assert_eq!(q2.mem.load(Chunk::Any64, spb, 8), Ok(Val::Int(5)));
        // The constructed pair is indeed CA-related.
        assert_eq!(Ca::default().match_query(&q1, &q2).len(), 1);
        // And a well-behaved reply passes.
        let r1 = CReply {
            retval: Val::Int(7),
            mem: q1.mem.clone(),
        };
        let mut rs = q2.rs.clone();
        rs.pc = q2.rs.ra;
        rs.set(abi::RESULT_REG, Val::Int(7));
        let r2 = ARegs {
            rs,
            mem: q2.mem.clone(),
        };
        assert!(Ca::default().match_reply(&w, &r1, &r2));
    }

    #[test]
    fn ca_rejects_clobbered_callee_save() {
        let q1 = sample_cquery(1);
        let (w, mut q2) = Ca::default().transport_query(&q1).unwrap();
        q2.rs.set(Mreg(8), Val::Int(1234)); // callee-save now holds a value
        let w = CaWorld {
            rs: q2.rs.clone(),
            ..w
        };
        let r1 = CReply {
            retval: Val::Int(0),
            mem: q1.mem.clone(),
        };
        let mut rs = q2.rs.clone();
        rs.pc = q2.rs.ra;
        rs.set(abi::RESULT_REG, Val::Int(0));
        rs.set(Mreg(8), Val::Int(9999)); // clobbered!
        let r2 = ARegs {
            rs,
            mem: q2.mem.clone(),
        };
        assert!(!Ca::default().match_reply(&w, &r1, &r2));
    }

    #[test]
    fn ca_rejects_unrestored_sp() {
        let q1 = sample_cquery(1);
        let (w, q2) = Ca::default().transport_query(&q1).unwrap();
        let r1 = CReply {
            retval: Val::Int(0),
            mem: q1.mem.clone(),
        };
        let mut rs = q2.rs.clone();
        rs.pc = q2.rs.ra;
        rs.sp = Val::Int(0); // stack pointer trashed
        rs.set(abi::RESULT_REG, Val::Int(0));
        let r2 = ARegs {
            rs,
            mem: q2.mem.clone(),
        };
        assert!(!Ca::default().match_reply(&w, &r1, &r2));
    }

    #[test]
    fn lm_source_view_protects_argument_region() {
        // Build an M-level query with one stack argument.
        let sig = Signature::int_fn(5);
        let mut m = Mem::new();
        m.alloc(0, 1); // function block
        let spb = m.alloc(0, 8);
        m.store(Chunk::Any64, spb, 0, Val::Int(44)).unwrap();
        let mut rs = [Val::Undef; NREGS];
        for i in 0..4 {
            rs[i] = Val::Int(i as i32);
        }
        let q2 = MQuery {
            vf: Val::Ptr(0, 0),
            sp: Val::Ptr(spb, 0),
            ra: Val::Int(0),
            rs,
            mem: m,
        };
        let (w, q1) = Lm.source_of_with_sig(&sig, &q2).unwrap();
        // The stack argument shows up as an Outgoing location.
        assert_eq!(q1.ls.get(Loc::Outgoing(0)), Val::Int(44));
        // The L-level memory cannot touch the argument region (Fig. 13).
        assert!(q1.mem.load(Chunk::Any64, spb, 0).is_err());
        // The derived pair is LM-related.
        assert_eq!(Lm.match_query(&q1, &q2).len(), 1);
        // A reply that preserves callee-saves and mixes memory back passes.
        let mut ls = Locset::new();
        for r in Mreg::all() {
            if abi::is_callee_save(r) {
                ls.set(Loc::Reg(r), w.rs[r.index()]);
            }
        }
        ls.set(Loc::Reg(abi::RESULT_REG), Val::Int(99));
        let r1 = LReply {
            ls,
            mem: q1.mem.clone(),
        };
        let r2 = Lm.target_reply_of(&w, &r1).unwrap();
        assert!(Lm.match_reply(&w, &r1, &r2));
        // The argument region is intact in the M-level reply memory.
        assert_eq!(r2.mem.load(Chunk::Any64, spb, 0), Ok(Val::Int(44)));
    }
}
