//! Open labeled transition systems (paper Def. 3.1) and a deterministic
//! runner.
//!
//! An LTS `L : A ↠ B` describes a strategy for the game `A × E → B`: it is
//! activated by questions of `B`, takes internal steps emitting events of
//! `E`, may suspend on outgoing questions of `A` to be resumed by answers of
//! `A`, and eventually produces an answer of `B`.
//!
//! CompCert semantics are deterministic, so this trait exposes deterministic
//! transition *functions*; the relational Def. 3.1 specializes to this shape
//! (the runner's environment closure plays the role of the ∀-quantified
//! environment).

use std::fmt;

use mem::Val;

use crate::iface::{Answer, LanguageInterface, Question};

/// An observable event (CompCert's `E`): system calls and annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A system call with its arguments and result.
    Syscall {
        /// Name of the primitive.
        name: String,
        /// Integer arguments.
        args: Vec<Val>,
        /// Result value.
        result: Val,
    },
    /// A source-level annotation (used for tracing/debug).
    Annot(String),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Syscall { name, args, result } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") -> {result}")
            }
            Event::Annot(s) => write!(f, "@{s}"),
        }
    }
}

/// Why a semantics got stuck ("went wrong" in CompCert terminology).
#[derive(Debug, Clone, PartialEq)]
pub struct Stuck {
    /// Human-readable reason.
    pub reason: String,
}

impl Stuck {
    /// Build a stuck marker.
    pub fn new(reason: impl Into<String>) -> Stuck {
        Stuck {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Stuck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stuck: {}", self.reason)
    }
}

impl std::error::Error for Stuck {}

/// Result of one transition of an open LTS.
#[derive(Debug, Clone)]
pub enum Step<S, OQ, IA> {
    /// An internal step to a new state, emitting events.
    Internal(S, Vec<Event>),
    /// The state is final, with an incoming-interface answer (the `F`
    /// component of Def. 3.1).
    Final(IA),
    /// The state is external: it asks the outgoing question (the `X`
    /// component); the runner must later call
    /// [`Lts::resume`] on this same state with the environment's answer (the
    /// `Y` component).
    External(OQ),
    /// No transition applies: undefined behaviour.
    Stuck(Stuck),
}

/// An open labeled transition system for the game `O ↠ I`
/// (paper Def. 3.1; `I` is the incoming interface `B`, `O` the outgoing
/// interface `A`).
pub trait Lts {
    /// Incoming language interface (`B` in the paper).
    type I: LanguageInterface;
    /// Outgoing language interface (`A` in the paper).
    type O: LanguageInterface;
    /// Internal states.
    type State: Clone + fmt::Debug;

    /// Display name for diagnostics.
    fn name(&self) -> String;

    /// The domain `D ⊆ B∘`: which incoming questions this component accepts.
    fn accepts(&self, q: &Question<Self::I>) -> bool;

    /// Initial state for an accepted question (the `I` component).
    ///
    /// # Errors
    /// Returns [`Stuck`] when the question is outside the domain or malformed.
    fn initial(&self, q: &Question<Self::I>) -> Result<Self::State, Stuck>;

    /// One transition out of `s`.
    fn step(&self, s: &Self::State) -> Step<Self::State, Question<Self::O>, Answer<Self::I>>;

    /// Resume a suspended external state with the environment's answer.
    ///
    /// # Errors
    /// Returns [`Stuck`] if the answer is unacceptable (e.g. ill-typed).
    fn resume(&self, s: &Self::State, a: Answer<Self::O>) -> Result<Self::State, Stuck>;
}

/// Outcome of running an LTS to completion under an environment.
#[derive(Debug, Clone)]
pub enum RunOutcome<IA> {
    /// The component answered its incoming question.
    Complete {
        /// The answer.
        answer: IA,
        /// Events emitted along the way.
        trace: Vec<Event>,
        /// Number of internal steps taken.
        steps: u64,
    },
    /// The component went wrong.
    Wrong(Stuck),
    /// The environment declined to answer an outgoing question.
    EnvRefused(String),
    /// The fuel bound was exhausted (possibly silent divergence).
    OutOfFuel,
}

impl<IA> RunOutcome<IA> {
    /// Extract the answer of a [`RunOutcome::Complete`] outcome.
    ///
    /// # Panics
    /// Panics (with the failure reason) on any other outcome; intended for
    /// tests and examples.
    pub fn expect_complete(self) -> IA {
        match self {
            RunOutcome::Complete { answer, .. } => answer,
            RunOutcome::Wrong(s) => panic!("component went wrong: {s}"),
            RunOutcome::EnvRefused(q) => panic!("environment refused question: {q}"),
            RunOutcome::OutOfFuel => panic!("out of fuel"),
        }
    }
}

/// An environment for running an open LTS: answers the component's outgoing
/// questions. Returning `None` refuses the question (the run aborts with
/// [`RunOutcome::EnvRefused`]).
pub type Env<'e, OQ, OA> = dyn FnMut(&OQ) -> Option<OA> + 'e;

/// Run `lts` on incoming question `q`, answering outgoing questions with
/// `env`, for at most `fuel` internal steps.
///
/// This is the analog of closing a strategy against an environment strategy;
/// with an always-refusing `env` it runs closed components.
pub fn run<Sem: Lts>(
    lts: &Sem,
    q: &Question<Sem::I>,
    env: &mut Env<'_, Question<Sem::O>, Answer<Sem::O>>,
    fuel: u64,
) -> RunOutcome<Answer<Sem::I>> {
    if !lts.accepts(q) {
        return RunOutcome::Wrong(Stuck::new(format!(
            "{}: question not in domain",
            lts.name()
        )));
    }
    let mut state = match lts.initial(q) {
        Ok(s) => s,
        Err(stuck) => return RunOutcome::Wrong(stuck),
    };
    let mut trace = Vec::new();
    let mut steps = 0u64;
    loop {
        if steps >= fuel {
            return RunOutcome::OutOfFuel;
        }
        match lts.step(&state) {
            Step::Internal(s, mut evs) => {
                trace.append(&mut evs);
                state = s;
                steps += 1;
            }
            Step::Final(a) => {
                return RunOutcome::Complete {
                    answer: a,
                    trace,
                    steps,
                }
            }
            Step::External(oq) => match env(&oq) {
                Some(ans) => match lts.resume(&state, ans) {
                    Ok(s) => {
                        state = s;
                        steps += 1;
                    }
                    Err(stuck) => return RunOutcome::Wrong(stuck),
                },
                None => return RunOutcome::EnvRefused(format!("{oq:?}")),
            },
            Step::Stuck(stuck) => return RunOutcome::Wrong(stuck),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{CQuery, CReply, C};
    use mem::Mem;

    /// A toy LTS over `C ↠ C`: doubles its single argument, calling out to
    /// an external `inc` function first.
    struct Doubler;

    #[derive(Debug, Clone)]
    enum DState {
        Start(Val, Mem),
        Waiting(Val, Mem),
        Done(Val, Mem),
    }

    impl Lts for Doubler {
        type I = C;
        type O = C;
        type State = DState;

        fn name(&self) -> String {
            "doubler".into()
        }

        fn accepts(&self, q: &CQuery) -> bool {
            q.vf == Val::Ptr(100, 0)
        }

        fn initial(&self, q: &CQuery) -> Result<DState, Stuck> {
            Ok(DState::Start(q.args[0], q.mem.clone()))
        }

        fn step(&self, s: &DState) -> Step<DState, CQuery, CReply> {
            match s {
                DState::Start(v, m) => Step::External(CQuery {
                    vf: Val::Ptr(200, 0),
                    sig: crate::iface::Signature::int_fn(1),
                    args: vec![*v],
                    mem: m.clone(),
                }),
                DState::Waiting(v, m) => Step::Internal(DState::Done(v.add(*v), m.clone()), vec![]),
                DState::Done(v, m) => Step::Final(CReply {
                    retval: *v,
                    mem: m.clone(),
                }),
            }
        }

        fn resume(&self, s: &DState, a: CReply) -> Result<DState, Stuck> {
            match s {
                DState::Start(_, _) => Ok(DState::Waiting(a.retval, a.mem)),
                _ => Err(Stuck::new("resume in non-external state")),
            }
        }
    }

    fn query(n: i32) -> CQuery {
        CQuery {
            vf: Val::Ptr(100, 0),
            sig: crate::iface::Signature::int_fn(1),
            args: vec![Val::Int(n)],
            mem: Mem::new(),
        }
    }

    #[test]
    fn run_with_environment() {
        let out = run(
            &Doubler,
            &query(5),
            &mut |q: &CQuery| {
                Some(CReply {
                    retval: q.args[0].add(Val::Int(1)),
                    mem: q.mem.clone(),
                })
            },
            100,
        );
        // inc(5) = 6, doubled = 12.
        assert_eq!(out.expect_complete().retval, Val::Int(12));
    }

    #[test]
    fn refusing_environment_aborts() {
        let out = run(&Doubler, &query(5), &mut |_q: &CQuery| None, 100);
        assert!(matches!(out, RunOutcome::EnvRefused(_)));
    }

    #[test]
    fn question_outside_domain_is_wrong() {
        let mut q = query(5);
        q.vf = Val::Ptr(999, 0);
        let out = run(&Doubler, &q, &mut |_q: &CQuery| None, 100);
        assert!(matches!(out, RunOutcome::Wrong(_)));
    }
}
