//! Open labeled transition systems (paper Def. 3.1) and a deterministic
//! runner with hardened execution budgets.
//!
//! An LTS `L : A ↠ B` describes a strategy for the game `A × E → B`: it is
//! activated by questions of `B`, takes internal steps emitting events of
//! `E`, may suspend on outgoing questions of `A` to be resumed by answers of
//! `A`, and eventually produces an answer of `B`.
//!
//! CompCert semantics are deterministic, so this trait exposes deterministic
//! transition *functions*; the relational Def. 3.1 specializes to this shape
//! (the runner's environment closure plays the role of the ∀-quantified
//! environment).
//!
//! # Budgets
//!
//! Every run is bounded by a [`RunBudget`]: a fuel bound (internal steps), an
//! optional live-memory quota, an optional call-depth quota, and an optional
//! wall-clock deadline. Exceeding a budget is an *outcome*
//! ([`RunOutcome::OutOfFuel`], [`RunOutcome::OutOfMemory`],
//! [`RunOutcome::DepthExceeded`], [`RunOutcome::TimedOut`]), never a panic —
//! the fault-injection campaign and the robustness suites rely on this to
//! survive arbitrarily corrupted components. Each failing outcome carries a
//! bounded [`StepTrace`] of the last states visited, so a stuck or diverging
//! run can be diagnosed without re-running under a debugger.

use std::borrow::Cow;
use std::fmt;
use std::time::{Duration, Instant};

use mem::Val;

use crate::iface::{Answer, LanguageInterface, Question};

/// An observable event (CompCert's `E`): system calls and annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A system call with its arguments and result.
    Syscall {
        /// Name of the primitive.
        name: String,
        /// Integer arguments.
        args: Vec<Val>,
        /// Result value.
        result: Val,
    },
    /// A source-level annotation (used for tracing/debug).
    Annot(String),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Syscall { name, args, result } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") -> {result}")
            }
            Event::Annot(s) => write!(f, "@{s}"),
        }
    }
}

/// Why a semantics got stuck ("went wrong" in CompCert terminology).
///
/// The reason is `Cow<'static, str>`-backed so hot interpreter loops can
/// report fixed conditions (`Stuck::new("division by zero")`) without any
/// formatting or allocation; diagnostic-rich sites keep using
/// `Stuck::new(format!(...))` unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Stuck {
    /// Human-readable reason.
    pub reason: Cow<'static, str>,
}

impl Stuck {
    /// Build a stuck marker from a `&'static str` (allocation-free) or an
    /// owned `String`.
    pub fn new(reason: impl Into<Cow<'static, str>>) -> Stuck {
        Stuck {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Stuck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stuck: {}", self.reason)
    }
}

impl std::error::Error for Stuck {}

/// Result of one transition of an open LTS.
#[derive(Debug, Clone)]
pub enum Step<S, OQ, IA> {
    /// An internal step to a new state, emitting events.
    Internal(S, Vec<Event>),
    /// The state is final, with an incoming-interface answer (the `F`
    /// component of Def. 3.1).
    Final(IA),
    /// The state is external: it asks the outgoing question (the `X`
    /// component); the runner must later call
    /// [`Lts::resume`] on this same state with the environment's answer (the
    /// `Y` component).
    External(OQ),
    /// No transition applies: undefined behaviour.
    Stuck(Stuck),
}

/// Result of a *batched* stretch of transitions ([`Lts::step_batch`]).
///
/// A batch mutates the state in place and reports how many internal steps it
/// took, so the runner's fast loop pays one virtual call for many steps
/// instead of one per step. The step count `n` is what keeps fuel accounting
/// bit-for-bit identical to single-stepping:
///
/// * `Ran(n)` — `n` internal steps were taken, `1 <= n <= fuel_left`; the
///   state is mid-execution and the runner will call again.
/// * `Final(n, a)` / `External(n, q)` / `Stuck(n, s)` — `n` internal steps
///   (`n < fuel_left`, strictly) were taken *before* the terminal condition
///   was discovered. Discovery itself costs no fuel, exactly like the
///   classic loop — and because that loop checks fuel *before* looking at
///   the next transition, a batch that used up all of `fuel_left` must
///   report `Ran(fuel_left)` even if the very next transition would be
///   final: the runner then returns out-of-fuel, as single-stepping would.
///
/// For `External(n, q)` the state left behind must be the suspended external
/// state that [`Lts::resume`] accepts.
#[derive(Debug, Clone)]
pub enum Batch<OQ, IA> {
    /// `n` internal steps taken; more work remains.
    Ran(u64),
    /// `n` internal steps, then a final answer was discovered.
    Final(u64, IA),
    /// `n` internal steps, then the component suspended on an outgoing
    /// question.
    External(u64, OQ),
    /// `n` internal steps, then no transition applied.
    Stuck(u64, Stuck),
}

/// Resource usage of one LTS state, as reported by [`Lts::measure`].
///
/// The runner compares this against the [`RunBudget`] quotas after every
/// internal step. The default is the zero measure (no resource tracked), so
/// existing LTSs are budget-transparent until they opt in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateMeasure {
    /// Live allocated memory, in bytes.
    pub mem_bytes: u64,
    /// Current call/continuation depth.
    pub call_depth: u64,
}

impl StateMeasure {
    /// Pointwise sum (used by composite LTSs: `⊕`, `∘`).
    pub fn combine(self, other: StateMeasure) -> StateMeasure {
        StateMeasure {
            mem_bytes: self.mem_bytes.saturating_add(other.mem_bytes),
            call_depth: self.call_depth.saturating_add(other.call_depth),
        }
    }
}

/// An open labeled transition system for the game `O ↠ I`
/// (paper Def. 3.1; `I` is the incoming interface `B`, `O` the outgoing
/// interface `A`).
pub trait Lts {
    /// Incoming language interface (`B` in the paper).
    type I: LanguageInterface;
    /// Outgoing language interface (`A` in the paper).
    type O: LanguageInterface;
    /// Internal states.
    type State: Clone + fmt::Debug;

    /// Display name for diagnostics.
    fn name(&self) -> String;

    /// The domain `D ⊆ B∘`: which incoming questions this component accepts.
    fn accepts(&self, q: &Question<Self::I>) -> bool;

    /// Initial state for an accepted question (the `I` component).
    ///
    /// # Errors
    /// Returns [`Stuck`] when the question is outside the domain or malformed.
    fn initial(&self, q: &Question<Self::I>) -> Result<Self::State, Stuck>;

    /// One transition out of `s`.
    fn step(&self, s: &Self::State) -> Step<Self::State, Question<Self::O>, Answer<Self::I>>;

    /// One transition out of `s`, appending any emitted events to a
    /// caller-provided buffer instead of returning a fresh `Vec`.
    ///
    /// This is the runner's entry point ([`run_budgeted`] keeps one event
    /// buffer for the whole run): the returned [`Step::Internal`] always
    /// carries an empty event vector (`Vec::new()` does not allocate), so
    /// the per-step allocation of event-emitting semantics is amortized into
    /// the shared buffer. The default delegates to [`Lts::step`]; semantics
    /// with event-heavy steps can override it to write into `events`
    /// directly.
    fn step_into(
        &self,
        s: &Self::State,
        events: &mut Vec<Event>,
    ) -> Step<Self::State, Question<Self::O>, Answer<Self::I>> {
        match self.step(s) {
            Step::Internal(s2, mut evs) => {
                events.append(&mut evs);
                Step::Internal(s2, Vec::new())
            }
            other => other,
        }
    }

    /// Take up to `fuel_left` internal steps *in place*, returning how many
    /// were taken and what (if anything) ended the batch — see [`Batch`] for
    /// the exact fuel-accounting contract. The runner only calls this with
    /// `fuel_left >= 1`, and only from the zero-overhead fast path (trace
    /// off, no quotas, no deadline), so implementations are free to mutate
    /// `s` without cloning.
    ///
    /// The default takes exactly one step via [`Lts::step_into`]; interpreter
    /// semantics with a precompiled dense dispatch loop override it to run
    /// many steps per call.
    fn step_batch(
        &self,
        s: &mut Self::State,
        _fuel_left: u64,
        events: &mut Vec<Event>,
    ) -> Batch<Question<Self::O>, Answer<Self::I>> {
        match self.step_into(s, events) {
            Step::Internal(s2, _evs) => {
                *s = s2;
                Batch::Ran(1)
            }
            Step::Final(a) => Batch::Final(0, a),
            Step::External(oq) => Batch::External(0, oq),
            Step::Stuck(stuck) => Batch::Stuck(0, stuck),
        }
    }

    /// Resume a suspended external state with the environment's answer.
    ///
    /// # Errors
    /// Returns [`Stuck`] if the answer is unacceptable (e.g. ill-typed).
    fn resume(&self, s: &Self::State, a: Answer<Self::O>) -> Result<Self::State, Stuck>;

    /// Resource usage of `s`, checked against [`RunBudget`] quotas.
    ///
    /// The default reports the zero measure; language semantics override it
    /// to expose live memory and call depth (see `ClightSem`, `AsmSem`, and
    /// the `⊕`/`∘` combinators).
    fn measure(&self, _s: &Self::State) -> StateMeasure {
        StateMeasure::default()
    }
}

/// Whether (and how much of) the diagnostic [`StepTrace`] is retained.
///
/// `Ring(n)` keeps a ring of the last `n` visited states — one state clone
/// per step (cheap: memories are copy-on-write, but not free). `Off` makes
/// the runner's step loop genuinely zero-copy: no clone, no ring bookkeeping.
/// Throughput-critical callers (the fault-injection campaign, the perf
/// harness) run with `Off`; interactive/diagnostic callers keep the default
/// ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Retain nothing; failing outcomes carry an empty trace.
    Off,
    /// Retain the last `n` states (`Ring(0)` behaves like `Off`).
    Ring(usize),
    /// Emit structured JSON-lines events (`compcerto-obs/1`) into the
    /// thread-local sink drained by [`crate::obs::take_trace`]: one
    /// `run-start` line, one `step`/`external` line per transition (step
    /// lines capped at [`crate::obs::MAX_STEP_EVENTS`] per run) and exactly
    /// one `terminal` line. No states are cloned or retained (the ring is
    /// empty), so failing outcomes carry an empty diagnostic trace — this
    /// mode trades the ring for a machine-readable event stream.
    Json,
}

impl TraceMode {
    /// Ring capacity (0 when off or in JSON-lines mode).
    pub fn capacity(self) -> usize {
        match self {
            TraceMode::Off | TraceMode::Json => 0,
            TraceMode::Ring(n) => n,
        }
    }

    /// True when no states are retained in the diagnostic ring.
    pub fn is_off(self) -> bool {
        self.capacity() == 0
    }
}

impl Default for TraceMode {
    fn default() -> TraceMode {
        TraceMode::Ring(DEFAULT_TRACE_CAPACITY)
    }
}

/// Execution budget for a single run of an open LTS.
///
/// `fuel` is always enforced; the other quotas are opt-in (`None` disables
/// them). `trace` selects the diagnostic [`StepTrace`] mode
/// ([`TraceMode::Off`] disables tracing — and per-step state clones —
/// entirely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum number of internal steps.
    pub fuel: u64,
    /// Maximum live allocated bytes (per [`Lts::measure`]).
    pub max_mem_bytes: Option<u64>,
    /// Maximum call/continuation depth (per [`Lts::measure`]).
    pub max_call_depth: Option<u64>,
    /// Wall-clock deadline for the whole run.
    pub deadline: Option<Duration>,
    /// Diagnostic step-trace mode.
    pub trace: TraceMode,
}

/// Default capacity of the step-trace ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 16;

impl RunBudget {
    /// A budget enforcing only the fuel bound (plus the default trace).
    pub fn with_fuel(fuel: u64) -> RunBudget {
        RunBudget {
            fuel,
            max_mem_bytes: None,
            max_call_depth: None,
            deadline: None,
            trace: TraceMode::default(),
        }
    }

    /// Set the live-memory quota.
    #[must_use]
    pub fn mem_limit(mut self, bytes: u64) -> RunBudget {
        self.max_mem_bytes = Some(bytes);
        self
    }

    /// Set the call-depth quota.
    #[must_use]
    pub fn depth_limit(mut self, depth: u64) -> RunBudget {
        self.max_call_depth = Some(depth);
        self
    }

    /// Set the wall-clock deadline.
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> RunBudget {
        self.deadline = Some(d);
        self
    }

    /// Set the step-trace capacity (`0` = [`TraceMode::Off`]).
    #[must_use]
    pub fn trace_capacity(mut self, cap: usize) -> RunBudget {
        self.trace = if cap == 0 {
            TraceMode::Off
        } else {
            TraceMode::Ring(cap)
        };
        self
    }

    /// Disable the diagnostic step trace: the runner's inner loop then
    /// performs no per-step state clone at all (the zero-copy fast path).
    #[must_use]
    pub fn no_trace(mut self) -> RunBudget {
        self.trace = TraceMode::Off;
        self
    }

    /// Emit structured JSON-lines trace events ([`TraceMode::Json`]) into
    /// the thread-local sink ([`crate::obs::take_trace`]) instead of
    /// retaining a state ring.
    #[must_use]
    pub fn json_trace(mut self) -> RunBudget {
        self.trace = TraceMode::Json;
        self
    }
}

impl Default for RunBudget {
    /// The default budget used throughout the harness: 10M steps, no other
    /// quotas.
    fn default() -> RunBudget {
        RunBudget::with_fuel(10_000_000)
    }
}

/// Which budget dimension a run exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Fuel (internal step count).
    Fuel,
    /// Live memory quota.
    Memory,
    /// Call-depth quota.
    Depth,
    /// Wall-clock deadline.
    Time,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Fuel => write!(f, "fuel"),
            BudgetKind::Memory => write!(f, "memory"),
            BudgetKind::Depth => write!(f, "call depth"),
            BudgetKind::Time => write!(f, "deadline"),
        }
    }
}

/// One entry of a [`StepTrace`]: a step index and a rendered state.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Internal-step index at which the state was visited.
    pub step: u64,
    /// Truncated `Debug` rendering of the state.
    pub desc: String,
}

/// A bounded trace of the last states a failing run visited.
///
/// The runner keeps a ring buffer of cloned states (cheap: memories are
/// copy-on-write) and renders them only when the run fails, so the happy
/// path pays one clone per step and no formatting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepTrace {
    /// The retained tail of the run, oldest first.
    pub entries: Vec<TraceEntry>,
    /// How many earlier states were dropped from the ring.
    pub dropped: u64,
}

impl StepTrace {
    /// True when no states were retained (tracing disabled).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

impl fmt::Display for StepTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(f, "  ... {} earlier steps elided ...", self.dropped)?;
        }
        for e in &self.entries {
            writeln!(f, "  #{:<6} {}", e.step, e.desc)?;
        }
        Ok(())
    }
}

/// Maximum characters retained per rendered trace state.
const TRACE_DESC_MAX: usize = 240;

/// Ring buffer of recent states; rendered lazily into a [`StepTrace`].
/// Shared with the differential checker in [`crate::sim`].
pub(crate) struct TraceRing<S> {
    cap: usize,
    buf: Vec<(u64, S)>,
    next: usize,
    dropped: u64,
}

impl<S: Clone + fmt::Debug> TraceRing<S> {
    pub(crate) fn new(cap: usize) -> TraceRing<S> {
        TraceRing {
            cap,
            buf: Vec::with_capacity(cap.min(64)),
            next: 0,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, step: u64, s: &S) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push((step, s.clone()));
        } else {
            self.buf[self.next] = (step, s.clone());
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.cap;
    }

    pub(crate) fn render(&self) -> StepTrace {
        let mut entries = Vec::with_capacity(self.buf.len());
        // Oldest-first: the ring's logical start is `next` once full.
        let start = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        for i in 0..self.buf.len() {
            let (step, s) = &self.buf[(start + i) % self.buf.len()];
            let mut desc = format!("{s:?}");
            if desc.len() > TRACE_DESC_MAX {
                let mut cut = TRACE_DESC_MAX;
                while !desc.is_char_boundary(cut) {
                    cut -= 1;
                }
                desc.truncate(cut);
                desc.push('…');
            }
            entries.push(TraceEntry { step: *step, desc });
        }
        StepTrace {
            entries,
            dropped: self.dropped,
        }
    }
}

/// Outcome of running an LTS to completion under an environment.
#[derive(Debug, Clone)]
pub enum RunOutcome<IA> {
    /// The component answered its incoming question.
    Complete {
        /// The answer.
        answer: IA,
        /// Events emitted along the way.
        trace: Vec<Event>,
        /// Number of internal steps taken.
        steps: u64,
    },
    /// The component went wrong.
    Wrong {
        /// Why no transition applies.
        stuck: Stuck,
        /// The last states visited before getting stuck.
        trace: StepTrace,
    },
    /// The environment declined to answer an outgoing question.
    EnvRefused(String),
    /// The fuel bound was exhausted (possibly silent divergence).
    OutOfFuel {
        /// The last states visited before fuel ran out.
        trace: StepTrace,
    },
    /// The live-memory quota was exceeded.
    OutOfMemory {
        /// Live bytes at the point of violation.
        used: u64,
        /// The configured quota.
        limit: u64,
        /// The last states visited.
        trace: StepTrace,
    },
    /// The call-depth quota was exceeded.
    DepthExceeded {
        /// Depth at the point of violation.
        depth: u64,
        /// The configured quota.
        limit: u64,
        /// The last states visited.
        trace: StepTrace,
    },
    /// The wall-clock deadline passed.
    TimedOut {
        /// Elapsed time when the deadline was noticed.
        elapsed: Duration,
        /// The last states visited.
        trace: StepTrace,
    },
}

/// A failed [`RunOutcome`], with the answer stripped (see
/// [`RunOutcome::into_answer`]).
#[derive(Debug, Clone)]
pub enum RunError {
    /// The component went wrong.
    Wrong {
        /// Why no transition applies.
        stuck: Stuck,
        /// The last states visited.
        trace: StepTrace,
    },
    /// The environment declined a question.
    EnvRefused(String),
    /// A budget dimension was exceeded.
    Budget {
        /// Which quota was violated.
        kind: BudgetKind,
        /// Human-readable detail (usage vs. limit).
        detail: String,
        /// The last states visited.
        trace: StepTrace,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Wrong { stuck, trace } => {
                write!(f, "component went wrong: {stuck}")?;
                if !trace.is_empty() {
                    write!(f, "\nlast states:\n{trace}")?;
                }
                Ok(())
            }
            RunError::EnvRefused(q) => write!(f, "environment refused question: {q}"),
            RunError::Budget {
                kind,
                detail,
                trace,
            } => {
                write!(f, "{kind} budget exceeded: {detail}")?;
                if !trace.is_empty() {
                    write!(f, "\nlast states:\n{trace}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

impl<IA> RunOutcome<IA> {
    /// Extract the answer, or a typed [`RunError`] describing the failure.
    ///
    /// This replaces the old panicking `expect_complete`: library code (the
    /// NIC scenario, the harness, the campaign runner) must stay panic-free
    /// even when a component diverges or exhausts its budget.
    ///
    /// # Errors
    /// Any outcome other than [`RunOutcome::Complete`].
    pub fn into_answer(self) -> Result<IA, RunError> {
        match self {
            RunOutcome::Complete { answer, .. } => Ok(answer),
            RunOutcome::Wrong { stuck, trace } => Err(RunError::Wrong { stuck, trace }),
            RunOutcome::EnvRefused(q) => Err(RunError::EnvRefused(q)),
            RunOutcome::OutOfFuel { trace } => Err(RunError::Budget {
                kind: BudgetKind::Fuel,
                detail: "step bound exhausted".into(),
                trace,
            }),
            RunOutcome::OutOfMemory { used, limit, trace } => Err(RunError::Budget {
                kind: BudgetKind::Memory,
                detail: format!("{used} live bytes > limit {limit}"),
                trace,
            }),
            RunOutcome::DepthExceeded {
                depth,
                limit,
                trace,
            } => Err(RunError::Budget {
                kind: BudgetKind::Depth,
                detail: format!("depth {depth} > limit {limit}"),
                trace,
            }),
            RunOutcome::TimedOut { elapsed, trace } => Err(RunError::Budget {
                kind: BudgetKind::Time,
                detail: format!("elapsed {elapsed:?}"),
                trace,
            }),
        }
    }

    /// Extract the answer of a [`RunOutcome::Complete`] outcome.
    ///
    /// # Panics
    /// Panics (with the failure reason) on any other outcome; intended
    /// strictly for tests and examples — library code goes through
    /// [`RunOutcome::into_answer`].
    pub fn expect_complete(self) -> IA {
        match self.into_answer() {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }

    /// The diagnostic step trace of a failing outcome (`None` when complete
    /// or refused by the environment).
    pub fn step_trace(&self) -> Option<&StepTrace> {
        match self {
            RunOutcome::Wrong { trace, .. }
            | RunOutcome::OutOfFuel { trace }
            | RunOutcome::OutOfMemory { trace, .. }
            | RunOutcome::DepthExceeded { trace, .. }
            | RunOutcome::TimedOut { trace, .. } => Some(trace),
            _ => None,
        }
    }
}

/// An environment for running an open LTS: answers the component's outgoing
/// questions. Returning `None` refuses the question (the run aborts with
/// [`RunOutcome::EnvRefused`]).
pub type Env<'e, OQ, OA> = dyn FnMut(&OQ) -> Option<OA> + 'e;

/// How many steps between wall-clock deadline checks (an `Instant::now()`
/// call is too expensive to pay on every step).
const DEADLINE_STRIDE: u64 = 1024;

/// Run `lts` on incoming question `q`, answering outgoing questions with
/// `env`, for at most `fuel` internal steps.
///
/// Convenience wrapper over [`run_budgeted`] enforcing only the fuel bound.
pub fn run<Sem: Lts>(
    lts: &Sem,
    q: &Question<Sem::I>,
    env: &mut Env<'_, Question<Sem::O>, Answer<Sem::O>>,
    fuel: u64,
) -> RunOutcome<Answer<Sem::I>> {
    run_budgeted(lts, q, env, &RunBudget::with_fuel(fuel))
}

/// Per-run statistics accumulated by the inner step loop and consumed by
/// the single outer bookkeeping point of [`run_budgeted`].
#[derive(Default)]
struct RunStats {
    /// Internal steps taken (resumes included).
    steps: u64,
    /// Outgoing external calls handed to the environment.
    external_calls: u64,
    /// Observable events drained by `step_into`.
    events: u64,
}

/// Run `lts` on incoming question `q` under the full [`RunBudget`].
///
/// This is the analog of closing a strategy against an environment strategy;
/// with an always-refusing `env` it runs closed components. Every quota
/// violation is reported as an outcome — this function never panics on
/// behalf of the component.
///
/// Observability (DESIGN.md §10): every run bumps the thread-local
/// [`crate::obs::LtsCounters`] — `runs`, `steps`, `external_calls`,
/// `events`, and exactly one terminal-outcome counter — at a *single*
/// bookkeeping point after the step loop returns. Under
/// [`TraceMode::Json`] the runner also appends `compcerto-obs/1` JSON-lines
/// events to the thread-local sink (`run-start` before the loop,
/// `step`/`external` inside it, and exactly one `terminal` line at the same
/// single bookkeeping point — the ring trace and the sink never
/// double-report the final stuck/answer event).
pub fn run_budgeted<Sem: Lts>(
    lts: &Sem,
    q: &Question<Sem::I>,
    env: &mut Env<'_, Question<Sem::O>, Answer<Sem::O>>,
    budget: &RunBudget,
) -> RunOutcome<Answer<Sem::I>> {
    let json = budget.trace == TraceMode::Json;
    if json {
        crate::obs::emit_run_start(&lts.name());
    }
    let mut stats = RunStats::default();
    let outcome = run_inner(lts, q, env, budget, json, &mut stats);
    // Single bookkeeping point: whichever arm ended the inner loop, the
    // outcome counter is bumped and the `terminal` event emitted here and
    // only here — once per run, by construction.
    crate::obs::bump(|c| {
        c.runs += 1;
        c.steps += stats.steps;
        c.external_calls += stats.external_calls;
        c.events += stats.events;
        match &outcome {
            RunOutcome::Complete { .. } => c.completes += 1,
            RunOutcome::Wrong { .. } => c.wrongs += 1,
            RunOutcome::EnvRefused(_) => c.env_refused += 1,
            RunOutcome::OutOfFuel { .. } => c.out_of_fuel += 1,
            RunOutcome::OutOfMemory { .. } => c.out_of_memory += 1,
            RunOutcome::DepthExceeded { .. } => c.depth_exceeded += 1,
            RunOutcome::TimedOut { .. } => c.timed_out += 1,
        }
    });
    if json {
        let label = match &outcome {
            RunOutcome::Complete { .. } => "complete",
            RunOutcome::Wrong { .. } => "stuck",
            RunOutcome::EnvRefused(_) => "env-refused",
            RunOutcome::OutOfFuel { .. } => "out-of-fuel",
            RunOutcome::OutOfMemory { .. } => "out-of-memory",
            RunOutcome::DepthExceeded { .. } => "depth-exceeded",
            RunOutcome::TimedOut { .. } => "timed-out",
        };
        crate::obs::emit_terminal(label, stats.steps);
    }
    outcome
}

/// The step loop of [`run_budgeted`]. Deliberately returns *without*
/// touching the outcome counters or emitting the terminal trace event —
/// that bookkeeping happens exactly once in the caller.
fn run_inner<Sem: Lts>(
    lts: &Sem,
    q: &Question<Sem::I>,
    env: &mut Env<'_, Question<Sem::O>, Answer<Sem::O>>,
    budget: &RunBudget,
    json: bool,
    stats: &mut RunStats,
) -> RunOutcome<Answer<Sem::I>> {
    if !lts.accepts(q) {
        return RunOutcome::Wrong {
            stuck: Stuck::new(format!("{}: question not in domain", lts.name())),
            trace: StepTrace::default(),
        };
    }
    let mut state = match lts.initial(q) {
        Ok(s) => s,
        Err(stuck) => {
            return RunOutcome::Wrong {
                stuck,
                trace: StepTrace::default(),
            }
        }
    };
    let started = budget.deadline.map(|_| Instant::now());
    let quotas_on = budget.max_mem_bytes.is_some() || budget.max_call_depth.is_some();
    // Fast path: with the trace off, no per-state quotas and no deadline,
    // nothing in the classic loop observes intermediate states, so batched
    // in-place stepping ([`Lts::step_batch`]) is observationally identical —
    // same answers, same step/event/external tallies, same stuck reports,
    // same fuel boundary (the [`Batch`] contract makes terminal discovery
    // free, exactly like the fuel-checked-first classic loop).
    if budget.trace == TraceMode::Off && !quotas_on && budget.deadline.is_none() {
        let mut trace = Vec::new();
        let mut steps = 0u64;
        loop {
            let fuel_left = budget.fuel - steps;
            if fuel_left == 0 {
                return RunOutcome::OutOfFuel {
                    trace: StepTrace::default(),
                };
            }
            let events_before = trace.len();
            let batch = lts.step_batch(&mut state, fuel_left, &mut trace);
            stats.events += (trace.len() - events_before) as u64;
            match batch {
                Batch::Ran(n) => {
                    steps += n;
                    stats.steps = steps;
                }
                Batch::Final(n, a) => {
                    steps += n;
                    stats.steps = steps;
                    return RunOutcome::Complete {
                        answer: a,
                        trace,
                        steps,
                    };
                }
                Batch::External(n, oq) => {
                    steps += n;
                    stats.steps = steps;
                    stats.external_calls += 1;
                    match env(&oq) {
                        Some(ans) => match lts.resume(&state, ans) {
                            Ok(s) => {
                                state = s;
                                steps += 1;
                                stats.steps = steps;
                            }
                            Err(stuck) => {
                                return RunOutcome::Wrong {
                                    stuck,
                                    trace: StepTrace::default(),
                                }
                            }
                        },
                        None => return RunOutcome::EnvRefused(format!("{oq:?}")),
                    }
                }
                Batch::Stuck(n, stuck) => {
                    steps += n;
                    stats.steps = steps;
                    return RunOutcome::Wrong {
                        stuck,
                        trace: StepTrace::default(),
                    };
                }
            }
        }
    }
    let mut ring: TraceRing<Sem::State> = TraceRing::new(budget.trace.capacity());
    let mut trace = Vec::new();
    let mut steps = 0u64;
    ring.record(0, &state);
    loop {
        if steps >= budget.fuel {
            return RunOutcome::OutOfFuel {
                trace: ring.render(),
            };
        }
        if quotas_on {
            let m = lts.measure(&state);
            if let Some(limit) = budget.max_mem_bytes {
                if m.mem_bytes > limit {
                    return RunOutcome::OutOfMemory {
                        used: m.mem_bytes,
                        limit,
                        trace: ring.render(),
                    };
                }
            }
            if let Some(limit) = budget.max_call_depth {
                if m.call_depth > limit {
                    return RunOutcome::DepthExceeded {
                        depth: m.call_depth,
                        limit,
                        trace: ring.render(),
                    };
                }
            }
        }
        if let (Some(deadline), Some(start)) = (budget.deadline, started) {
            if steps % DEADLINE_STRIDE == 0 {
                let elapsed = start.elapsed();
                // An armed envfault deadline jitter treats this check as if
                // the clock had already jumped past the deadline — the only
                // wall-clock-dependent outcome becomes deterministically
                // reachable (the stride schedule is a pure function of the
                // run).
                if elapsed > deadline || crate::envfault::deadline_jitter_fires() {
                    return RunOutcome::TimedOut {
                        elapsed,
                        trace: ring.render(),
                    };
                }
            }
        }
        // `step_into` appends events to the run-wide `trace` buffer; the
        // `Internal` arm's event vector is always empty (and unallocated).
        let events_before = trace.len();
        let step = lts.step_into(&state, &mut trace);
        stats.events += (trace.len() - events_before) as u64;
        match step {
            Step::Internal(s, evs) => {
                debug_assert!(evs.is_empty(), "step_into must drain events into the buffer");
                state = s;
                steps += 1;
                stats.steps = steps;
                ring.record(steps, &state);
                if json && steps <= crate::obs::MAX_STEP_EVENTS {
                    crate::obs::emit_step(steps);
                }
            }
            Step::Final(a) => {
                return RunOutcome::Complete {
                    answer: a,
                    trace,
                    steps,
                }
            }
            Step::External(oq) => {
                stats.external_calls += 1;
                if json {
                    crate::obs::emit_external(steps);
                }
                match env(&oq) {
                    Some(ans) => match lts.resume(&state, ans) {
                        Ok(s) => {
                            state = s;
                            steps += 1;
                            stats.steps = steps;
                            ring.record(steps, &state);
                            if json && steps <= crate::obs::MAX_STEP_EVENTS {
                                crate::obs::emit_step(steps);
                            }
                        }
                        Err(stuck) => {
                            return RunOutcome::Wrong {
                                stuck,
                                trace: ring.render(),
                            }
                        }
                    },
                    None => return RunOutcome::EnvRefused(format!("{oq:?}")),
                }
            }
            Step::Stuck(stuck) => {
                return RunOutcome::Wrong {
                    stuck,
                    trace: ring.render(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{CQuery, CReply, C};
    use mem::Mem;

    /// A toy LTS over `C ↠ C`: doubles its single argument, calling out to
    /// an external `inc` function first.
    struct Doubler;

    #[derive(Debug, Clone)]
    enum DState {
        Start(Val, Mem),
        Waiting(Val, Mem),
        Done(Val, Mem),
    }

    impl Lts for Doubler {
        type I = C;
        type O = C;
        type State = DState;

        fn name(&self) -> String {
            "doubler".into()
        }

        fn accepts(&self, q: &CQuery) -> bool {
            q.vf == Val::Ptr(100, 0)
        }

        fn initial(&self, q: &CQuery) -> Result<DState, Stuck> {
            Ok(DState::Start(q.args[0], q.mem.clone()))
        }

        fn step(&self, s: &DState) -> Step<DState, CQuery, CReply> {
            match s {
                DState::Start(v, m) => Step::External(CQuery {
                    vf: Val::Ptr(200, 0),
                    sig: crate::iface::Signature::int_fn(1),
                    args: vec![*v],
                    mem: m.clone(),
                }),
                DState::Waiting(v, m) => Step::Internal(DState::Done(v.add(*v), m.clone()), vec![]),
                DState::Done(v, m) => Step::Final(CReply {
                    retval: *v,
                    mem: m.clone(),
                }),
            }
        }

        fn resume(&self, s: &DState, a: CReply) -> Result<DState, Stuck> {
            match s {
                DState::Start(_, _) => Ok(DState::Waiting(a.retval, a.mem)),
                _ => Err(Stuck::new("resume in non-external state")),
            }
        }
    }

    /// An LTS that spins forever (for budget tests).
    struct Spinner;

    impl Lts for Spinner {
        type I = C;
        type O = C;
        type State = u64;

        fn name(&self) -> String {
            "spinner".into()
        }

        fn accepts(&self, _q: &CQuery) -> bool {
            true
        }

        fn initial(&self, _q: &CQuery) -> Result<u64, Stuck> {
            Ok(0)
        }

        fn step(&self, s: &u64) -> Step<u64, CQuery, CReply> {
            Step::Internal(s + 1, vec![])
        }

        fn resume(&self, _s: &u64, _a: CReply) -> Result<u64, Stuck> {
            Err(Stuck::new("spinner never suspends"))
        }

        fn measure(&self, s: &u64) -> StateMeasure {
            // Pretend each step allocates 8 bytes and deepens one call.
            StateMeasure {
                mem_bytes: s * 8,
                call_depth: *s,
            }
        }
    }

    fn query(n: i32) -> CQuery {
        CQuery {
            vf: Val::Ptr(100, 0),
            sig: crate::iface::Signature::int_fn(1),
            args: vec![Val::Int(n)],
            mem: Mem::new(),
        }
    }

    #[test]
    fn run_with_environment() {
        let out = run(
            &Doubler,
            &query(5),
            &mut |q: &CQuery| {
                Some(CReply {
                    retval: q.args[0].add(Val::Int(1)),
                    mem: q.mem.clone(),
                })
            },
            100,
        );
        // inc(5) = 6, doubled = 12.
        assert_eq!(out.expect_complete().retval, Val::Int(12));
    }

    #[test]
    fn refusing_environment_aborts() {
        let out = run(&Doubler, &query(5), &mut |_q: &CQuery| None, 100);
        assert!(matches!(out, RunOutcome::EnvRefused(_)));
    }

    #[test]
    fn question_outside_domain_is_wrong() {
        let mut q = query(5);
        q.vf = Val::Ptr(999, 0);
        let out = run(&Doubler, &q, &mut |_q: &CQuery| None, 100);
        assert!(matches!(out, RunOutcome::Wrong { .. }));
    }

    #[test]
    fn out_of_fuel_carries_trace() {
        let out = run(&Spinner, &query(0), &mut |_q: &CQuery| None, 50);
        match out {
            RunOutcome::OutOfFuel { trace } => {
                assert!(!trace.is_empty());
                assert_eq!(trace.len(), DEFAULT_TRACE_CAPACITY);
                // The last retained entry is the most recent state.
                assert_eq!(trace.entries.last().map(|e| e.step), Some(50));
                assert!(trace.dropped > 0);
            }
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
    }

    #[test]
    fn memory_quota_enforced() {
        let budget = RunBudget::with_fuel(1_000).mem_limit(64);
        let out = run_budgeted(&Spinner, &query(0), &mut |_q: &CQuery| None, &budget);
        match out {
            RunOutcome::OutOfMemory { used, limit, trace } => {
                assert!(used > limit);
                assert_eq!(limit, 64);
                assert!(!trace.is_empty());
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn depth_quota_enforced() {
        let budget = RunBudget::with_fuel(1_000).depth_limit(5);
        let out = run_budgeted(&Spinner, &query(0), &mut |_q: &CQuery| None, &budget);
        match out {
            RunOutcome::DepthExceeded {
                depth,
                limit,
                trace,
            } => {
                assert_eq!(limit, 5);
                assert!(depth > limit);
                assert!(!trace.is_empty());
            }
            other => panic!("expected DepthExceeded, got {other:?}"),
        }
    }

    #[test]
    fn deadline_enforced() {
        let budget = RunBudget::with_fuel(u64::MAX).deadline(Duration::from_millis(5));
        let out = run_budgeted(&Spinner, &query(0), &mut |_q: &CQuery| None, &budget);
        assert!(matches!(out, RunOutcome::TimedOut { .. }));
    }

    #[test]
    fn trace_capacity_zero_disables_tracing() {
        let budget = RunBudget::with_fuel(10).trace_capacity(0);
        let out = run_budgeted(&Spinner, &query(0), &mut |_q: &CQuery| None, &budget);
        match out {
            RunOutcome::OutOfFuel { trace } => assert!(trace.is_empty()),
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
    }

    #[test]
    fn into_answer_reports_budget_kind() {
        let out = run(&Spinner, &query(0), &mut |_q: &CQuery| None, 10);
        match out.into_answer() {
            Err(RunError::Budget { kind, .. }) => assert_eq!(kind, BudgetKind::Fuel),
            other => panic!("expected fuel budget error, got {other:?}"),
        }
    }
}
