//! Thread-aware open semantics: deterministic interleaving of component
//! instances over shared global memory (CompCertOC, Zhang et al. PLDI 2025).
//!
//! CompCertO's composition operators (`⊕` in [`crate::hcomp`], `∘` in
//! [`crate::seqcomp`]) combine *single-threaded* components: control moves
//! between them only along call/return edges. [`ThreadedLts`] adds the
//! missing operator: `n` component instances that each answer their own
//! incoming question, *share one global memory*, and interleave at the
//! exact seams the open semantics already exposes — external calls and
//! final answers. The schedule is an explicit, deterministic input
//! ([`Schedule`]), not an ambient source of nondeterminism, so a run is a
//! pure function of `(components, questions, schedule)` and can be replayed
//! bit-for-bit at every compilation stage.
//!
//! # Why interleaving only at external calls is the right cut
//!
//! Between two external calls a component takes *internal* steps only:
//! those are invisible to the environment and, crucially, their number is
//! stage-dependent (Clight takes different step counts than Asm for the
//! same slice). Preempting on a fuel quantum would therefore produce
//! different interleavings at different stages and no cross-stage oracle
//! could compare them. Cutting at external calls (and thread completions)
//! makes every slice atomic and locally sequential; the scheduler only ever
//! observes the *order* of external interactions, which compiled code
//! preserves stage-for-stage. That is exactly the cooperative discipline
//! CompCertOC's threaded simulation proofs exploit, and it is what lets the
//! differential oracle demand bitwise-equal schedule traces from all seven
//! stage interpreters.
//!
//! # Memory protocol
//!
//! Memory travels out of a component through its questions and back in
//! through answers ([`SharedMem`]). The threaded state owns the single
//! authoritative memory `shared`; at every scheduling boundary it is
//! spliced into whichever thread runs next:
//!
//! * activation — a fresh thread's pending question gets `shared` as its
//!   memory before `initial`;
//! * resume — the environment's answer gets `shared` spliced in before the
//!   suspended thread is resumed;
//! * suspension — when the running thread asks an external question, the
//!   answer handed back by the environment updates `shared`;
//! * completion — a finishing thread's answer memory becomes `shared`.
//!
//! The composite's final answer is thread 0's answer carrying the final
//! shared memory, so `ThreadedLts` with a single thread is observationally
//! the underlying component (up to the `sched:`/`exit:` annotations).
//!
//! # Events
//!
//! Every dispatch emits `Annot("sched:k")` and every thread completion
//! emits `Annot("exit:k")` (optionally with a rendered answer, see
//! [`ThreadedLts::with_exit_renderer`]) — the annotation stream *is* the
//! schedule trace that the differential oracle compares across stages.
//!
//! # Budgets and throughput
//!
//! The wrapper overrides [`Lts::step_batch`], delegating each slice to the
//! inner component's own batched stepper, so the arena/fused fast paths of
//! DESIGN.md §13 stay engaged per slice and fuel accounting follows the
//! [`Batch`] contract exactly (dispatch and completion cost one outer step
//! each; terminal discovery is free). Schedule exploration is therefore
//! budget-bounded for free: run each schedule under its own [`RunBudget`]
//! via [`crate::lts::run_budgeted`].

use std::fmt;

use mem::Mem;

use crate::iface::{Answer, Question, SharedMem};
use crate::lts::{Batch, Event, Lts, StateMeasure, Step, Stuck};
use crate::rng::SplitMix64;

/// A deterministic thread schedule: the policy deciding which runnable
/// thread executes the next slice at every scheduling boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Cyclic hand-off: the first runnable thread strictly after the
    /// current one (wrapping), starting from thread 0.
    RoundRobin,
    /// Every decision is a uniform [`SplitMix64`] draw over the runnable
    /// set (including the initial dispatch), seeded by the carried value;
    /// equal seeds replay the same interleaving on every platform.
    Seeded(u64),
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::RoundRobin => write!(f, "rr"),
            Schedule::Seeded(s) => write!(f, "seeded:{s:016x}"),
        }
    }
}

/// Domain-separation salt for deriving schedule seeds from a campaign seed
/// (see [`schedules`]).
pub const SCHED_SEED_SALT: u64 = 0x5343_4845_4455_4c45; // "SCHEDULE"

/// The canonical schedule family explored per seed: schedule 0 is
/// [`Schedule::RoundRobin`], schedules `1..m` are [`Schedule::Seeded`] with
/// seeds drawn from a SplitMix64 stream domain-separated from `seed`.
///
/// Both the differential oracle and the `sched_campaign` bench derive their
/// schedule sets through this single function, so "schedule j of seed s"
/// means the same interleaving everywhere.
pub fn schedules(m: usize, seed: u64) -> Vec<Schedule> {
    let mut v = Vec::with_capacity(m);
    if m == 0 {
        return v;
    }
    v.push(Schedule::RoundRobin);
    let mut rng = SplitMix64::new(seed ^ SCHED_SEED_SALT);
    while v.len() < m {
        v.push(Schedule::Seeded(rng.next_u64()));
    }
    v
}

/// Execution state of one thread of a [`ThreadedLts`].
pub enum Slot<L: Lts> {
    /// Not yet activated; holds the pending incoming question (its memory
    /// is replaced by the shared memory at dispatch).
    Fresh(Question<L::I>),
    /// Activated and either mid-slice or suspended on the external question
    /// the composite last surfaced.
    Live(L::State),
    /// Suspended on an external call whose answer has arrived; the answer's
    /// memory is replaced by the shared memory at dispatch.
    Ready(L::State, Answer<L::O>),
    /// Answered its incoming question.
    Done(Answer<L::I>),
    /// Transient placeholder while a transition moves the slot's contents;
    /// never observable between [`Lts`] calls.
    Vacant,
}

impl<L: Lts> Clone for Slot<L> {
    fn clone(&self) -> Slot<L> {
        match self {
            Slot::Fresh(q) => Slot::Fresh(q.clone()),
            Slot::Live(s) => Slot::Live(s.clone()),
            Slot::Ready(s, a) => Slot::Ready(s.clone(), a.clone()),
            Slot::Done(a) => Slot::Done(a.clone()),
            Slot::Vacant => Slot::Vacant,
        }
    }
}

impl<L: Lts> fmt::Debug for Slot<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::Fresh(q) => f.debug_tuple("Fresh").field(q).finish(),
            Slot::Live(s) => f.debug_tuple("Live").field(s).finish(),
            Slot::Ready(s, a) => f.debug_tuple("Ready").field(s).field(a).finish(),
            Slot::Done(a) => f.debug_tuple("Done").field(a).finish(),
            Slot::Vacant => write!(f, "Vacant"),
        }
    }
}

/// State of a [`ThreadedLts`] run: per-thread slots, the single
/// authoritative shared memory, the current thread, and the scheduler's
/// PRNG state (for [`Schedule::Seeded`]).
pub struct ThreadedState<L: Lts> {
    /// One slot per thread; thread 0 answers the composite's question.
    threads: Vec<Slot<L>>,
    /// The authoritative global memory, spliced into threads at dispatch.
    shared: Mem,
    /// Index of the thread owning the current slice.
    cur: usize,
    /// Scheduler PRNG (`None` for round-robin) — part of the state so a
    /// cloned state replays identically.
    rng: Option<SplitMix64>,
}

impl<L: Lts> Clone for ThreadedState<L> {
    fn clone(&self) -> ThreadedState<L> {
        ThreadedState {
            threads: self.threads.clone(),
            shared: self.shared.clone(),
            cur: self.cur,
            rng: self.rng.clone(),
        }
    }
}

impl<L: Lts> fmt::Debug for ThreadedState<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedState")
            .field("cur", &self.cur)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<L: Lts> ThreadedState<L> {
    /// True when every thread has answered its question.
    fn all_done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t, Slot::Done(_)))
    }

    /// Pick the next thread per the schedule; a no-op when nothing is
    /// runnable (the all-done case is handled before stepping).
    fn schedule_next(&mut self) {
        let runnable: Vec<usize> = (0..self.threads.len())
            .filter(|&k| !matches!(self.threads[k], Slot::Done(_)))
            .collect();
        if runnable.is_empty() {
            return;
        }
        self.cur = match &mut self.rng {
            Some(rng) => runnable[rng.below(runnable.len() as u64) as usize],
            None => *runnable
                .iter()
                .find(|&&k| k > self.cur)
                .unwrap_or(&runnable[0]),
        };
    }
}

/// Renders a thread's final answer into the `exit:` annotation, so the
/// schedule trace carries a stage-invariant observation of each exit value.
pub type ExitRenderer<L> = Box<dyn Fn(&Answer<<L as Lts>::I>) -> String>;

/// Deterministic threaded composition of open components (module docs).
///
/// Thread `k` runs `components[min(k, len-1)]` — one component replicated
/// across all threads ([`ThreadedLts::new`]) or a genuinely heterogeneous
/// bundle ([`ThreadedLts::compose`]). Thread 0 answers the composite's
/// incoming question; threads `1..` answer the `aux` questions.
pub struct ThreadedLts<L: Lts> {
    components: Vec<L>,
    aux: Vec<Question<L::I>>,
    schedule: Schedule,
    render_exit: Option<ExitRenderer<L>>,
}

impl<L: Lts> ThreadedLts<L> {
    /// One component instance shared by all threads: thread 0 runs the
    /// composite's question, each `aux` question gets its own thread.
    pub fn new(component: L, aux: Vec<Question<L::I>>, schedule: Schedule) -> ThreadedLts<L> {
        ThreadedLts {
            components: vec![component],
            aux,
            schedule,
            render_exit: None,
        }
    }

    /// Heterogeneous composition: thread `k` runs `components[min(k, len-1)]`.
    pub fn compose(
        components: Vec<L>,
        aux: Vec<Question<L::I>>,
        schedule: Schedule,
    ) -> ThreadedLts<L> {
        ThreadedLts {
            components,
            aux,
            schedule,
            render_exit: None,
        }
    }

    /// Attach a renderer mapping each thread's final answer into the
    /// `exit:k=…` annotation (used by the cross-stage oracle to observe
    /// every thread's exit value, not just thread 0's).
    #[must_use]
    pub fn with_exit_renderer(mut self, r: ExitRenderer<L>) -> ThreadedLts<L> {
        self.render_exit = Some(r);
        self
    }

    /// Number of threads the composition runs.
    pub fn thread_count(&self) -> usize {
        1 + self.aux.len()
    }

    /// The component instance backing thread `k`.
    fn component(&self, k: usize) -> &L {
        &self.components[k.min(self.components.len().saturating_sub(1))]
    }

    /// The composite's final answer: thread 0's answer carrying the final
    /// shared memory.
    fn final_answer(&self, s: &ThreadedState<L>) -> Result<Answer<L::I>, Stuck>
    where
        Answer<L::I>: SharedMem,
    {
        match s.threads.first() {
            Some(Slot::Done(a)) => {
                let mut a = a.clone();
                a.set_mem(s.shared.clone());
                Ok(a)
            }
            _ => Err(Stuck::new("threaded: final state without thread 0 answer")),
        }
    }
}

impl<L: Lts> Lts for ThreadedLts<L>
where
    Question<L::I>: SharedMem,
    Answer<L::I>: SharedMem,
    Question<L::O>: SharedMem,
    Answer<L::O>: SharedMem,
{
    type I = L::I;
    type O = L::O;
    type State = ThreadedState<L>;

    fn name(&self) -> String {
        match self.components.first() {
            Some(c) => format!(
                "threaded({} × {}, {})",
                c.name(),
                self.thread_count(),
                self.schedule
            ),
            None => "threaded(∅)".into(),
        }
    }

    fn accepts(&self, q: &Question<Self::I>) -> bool {
        match self.components.first() {
            Some(c) => c.accepts(q),
            None => false,
        }
    }

    fn initial(&self, q: &Question<Self::I>) -> Result<Self::State, Stuck> {
        if self.components.is_empty() {
            return Err(Stuck::new("threaded: no components"));
        }
        let mut threads = Vec::with_capacity(self.thread_count());
        threads.push(Slot::Fresh(q.clone()));
        for aq in &self.aux {
            threads.push(Slot::Fresh(aq.clone()));
        }
        let mut rng = match self.schedule {
            Schedule::Seeded(seed) => Some(SplitMix64::new(seed)),
            Schedule::RoundRobin => None,
        };
        // The very first dispatch is itself a schedule decision: round-robin
        // starts at thread 0, a seeded schedule draws it.
        let cur = match &mut rng {
            Some(r) => r.below(threads.len() as u64) as usize,
            None => 0,
        };
        Ok(ThreadedState {
            threads,
            shared: q.mem().clone(),
            cur,
            rng,
        })
    }

    fn step(&self, s: &Self::State) -> Step<Self::State, Question<Self::O>, Answer<Self::I>> {
        // Single-stepping is the batched machine at fuel 1 on a cloned
        // state; the Batch contract makes the two observationally equal.
        let mut s2 = s.clone();
        let mut events = Vec::new();
        match self.step_batch(&mut s2, 1, &mut events) {
            Batch::Ran(_) => Step::Internal(s2, events),
            Batch::Final(_, a) => Step::Final(a),
            Batch::External(_, oq) => Step::External(oq),
            Batch::Stuck(_, stuck) => Step::Stuck(stuck),
        }
    }

    fn step_batch(
        &self,
        s: &mut Self::State,
        fuel_left: u64,
        events: &mut Vec<Event>,
    ) -> Batch<Question<Self::O>, Answer<Self::I>> {
        let mut used = 0u64;
        loop {
            // Fuel first (like the classic loop), then free terminal
            // discovery: a batch that consumed everything reports Ran even
            // if the next look would find the composite final.
            if used == fuel_left {
                return Batch::Ran(used);
            }
            if s.all_done() {
                return match self.final_answer(s) {
                    Ok(a) => Batch::Final(used, a),
                    Err(stuck) => Batch::Stuck(used, stuck),
                };
            }
            let k = s.cur;
            match std::mem::replace(&mut s.threads[k], Slot::Vacant) {
                Slot::Fresh(mut q) => {
                    // Activation: splice the shared memory in, then enter
                    // the component. Costs one outer step.
                    q.set_mem(s.shared.clone());
                    events.push(Event::Annot(format!("sched:{k}")));
                    let comp = self.component(k);
                    if !comp.accepts(&q) {
                        s.threads[k] = Slot::Fresh(q);
                        return Batch::Stuck(
                            used,
                            Stuck::new(format!("threaded: thread {k} question not in domain")),
                        );
                    }
                    match comp.initial(&q) {
                        Ok(st) => {
                            s.threads[k] = Slot::Live(st);
                            used += 1;
                        }
                        Err(stuck) => {
                            s.threads[k] = Slot::Fresh(q);
                            return Batch::Stuck(used, stuck);
                        }
                    }
                }
                Slot::Ready(st, mut ans) => {
                    // Hand the (memory-updated) answer back to the thread
                    // suspended on it. Costs one outer step.
                    ans.set_mem(s.shared.clone());
                    events.push(Event::Annot(format!("sched:{k}")));
                    match self.component(k).resume(&st, ans.clone()) {
                        Ok(st2) => {
                            s.threads[k] = Slot::Live(st2);
                            used += 1;
                        }
                        Err(stuck) => {
                            s.threads[k] = Slot::Ready(st, ans);
                            return Batch::Stuck(used, stuck);
                        }
                    }
                }
                Slot::Live(mut st) => {
                    // Run the slice on the inner component's own batched
                    // stepper (fast paths stay engaged). Inner fuel
                    // accounting maps 1:1 onto outer steps.
                    let batch = self.component(k).step_batch(&mut st, fuel_left - used, events);
                    match batch {
                        Batch::Ran(n) => {
                            s.threads[k] = Slot::Live(st);
                            used += n;
                        }
                        Batch::Final(n, a) => {
                            // Completion: adopt the thread's memory, retire
                            // it, reschedule. Costs one outer step (the
                            // inner contract guarantees n < fuel_left-used,
                            // so the +1 still fits).
                            used += n;
                            s.shared = a.mem().clone();
                            let label = match &self.render_exit {
                                Some(r) => format!("exit:{k}={}", r(&a)),
                                None => format!("exit:{k}"),
                            };
                            events.push(Event::Annot(label));
                            s.threads[k] = Slot::Done(a);
                            used += 1;
                            s.schedule_next();
                        }
                        Batch::External(n, oq) => {
                            // Suspension: surface the question; the runner
                            // resumes us via `resume`, which reschedules.
                            s.threads[k] = Slot::Live(st);
                            used += n;
                            return Batch::External(used, oq);
                        }
                        Batch::Stuck(n, stuck) => {
                            s.threads[k] = Slot::Live(st);
                            used += n;
                            return Batch::Stuck(used, stuck);
                        }
                    }
                }
                Slot::Done(a) => {
                    // Defensive: reschedule off a finished thread for free
                    // (unreachable via the public protocol — the scheduler
                    // never parks `cur` on a Done slot unless all are done).
                    s.threads[k] = Slot::Done(a);
                    s.schedule_next();
                }
                Slot::Vacant => {
                    return Batch::Stuck(used, Stuck::new("threaded: vacant slot"));
                }
            }
        }
    }

    fn resume(&self, s: &Self::State, a: Answer<Self::O>) -> Result<Self::State, Stuck> {
        // The environment answered the current thread's external call: its
        // answer memory becomes the shared memory, the thread parks Ready
        // (the inner resume happens at its next dispatch), and the yield
        // point triggers a schedule decision.
        let mut s2 = s.clone();
        let k = s2.cur;
        match std::mem::replace(&mut s2.threads[k], Slot::Vacant) {
            Slot::Live(st) => {
                s2.shared = a.mem().clone();
                s2.threads[k] = Slot::Ready(st, a);
                s2.schedule_next();
                Ok(s2)
            }
            other => {
                s2.threads[k] = other;
                Err(Stuck::new("threaded: resume with no suspended thread"))
            }
        }
    }

    fn measure(&self, s: &Self::State) -> StateMeasure {
        let mut m = StateMeasure::default();
        for (k, t) in s.threads.iter().enumerate() {
            match t {
                Slot::Live(st) | Slot::Ready(st, _) => {
                    m = m.combine(self.component(k).measure(st));
                }
                _ => {}
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{CQuery, CReply, Signature, C};
    use crate::lts::{run_budgeted, RunBudget, RunOutcome};
    use mem::{Chunk, Mem, Val};

    /// A toy open component over `C ↠ C`: loads the shared counter at
    /// `Ptr(g, 0)`, calls the external `inc` on it, stores the incremented
    /// counter back, and returns the value it originally loaded.
    ///
    /// Two instances racing on the counter observe each other's stores, so
    /// return values depend on the schedule while the final counter value
    /// does not — exactly the shape the oracle exercises at scale.
    struct Bumper {
        g: u32,
    }

    #[derive(Debug, Clone)]
    enum BState {
        Loaded(Val, Mem),
        Storing(Val, Val, Mem),
        Done(Val, Mem),
    }

    const CHUNK: Chunk = Chunk::Any64;

    impl Lts for Bumper {
        type I = C;
        type O = C;
        type State = BState;

        fn name(&self) -> String {
            "bumper".into()
        }

        fn accepts(&self, q: &CQuery) -> bool {
            q.vf == Val::Ptr(100, 0)
        }

        fn initial(&self, q: &CQuery) -> Result<BState, Stuck> {
            let v = q
                .mem
                .load(CHUNK, self.g, 0)
                .map_err(|e| Stuck::new(format!("load: {e:?}")))?;
            Ok(BState::Loaded(v, q.mem.clone()))
        }

        fn step(&self, s: &BState) -> Step<BState, CQuery, CReply> {
            match s {
                BState::Loaded(v, m) => Step::External(CQuery {
                    vf: Val::Ptr(200, 0),
                    sig: Signature::int_fn(1),
                    args: vec![*v],
                    mem: m.clone(),
                }),
                BState::Storing(orig, bumped, m) => {
                    let mut m2 = m.clone();
                    match m2.store(CHUNK, self.g, 0, *bumped) {
                        Ok(()) => Step::Internal(BState::Done(*orig, m2), vec![]),
                        Err(e) => Step::Stuck(Stuck::new(format!("store: {e:?}"))),
                    }
                }
                BState::Done(v, m) => Step::Final(CReply {
                    retval: *v,
                    mem: m.clone(),
                }),
            }
        }

        fn resume(&self, s: &BState, a: CReply) -> Result<BState, Stuck> {
            match s {
                BState::Loaded(orig, _) => Ok(BState::Storing(*orig, a.retval, a.mem)),
                _ => Err(Stuck::new("resume in non-external state")),
            }
        }
    }

    fn inc_env(q: &CQuery) -> Option<CReply> {
        Some(CReply {
            retval: q.args[0].add(Val::Int(1)),
            mem: q.mem.clone(),
        })
    }

    /// Memory with one global counter block initialized to `init`; returns
    /// `(mem, block)`.
    fn counter_mem(init: i32) -> (Mem, u32) {
        let mut m = Mem::new();
        let g = m.alloc(0, 8);
        m.store(CHUNK, g, 0, Val::Int(init)).ok();
        (m, g)
    }

    fn bquery(mem: Mem) -> CQuery {
        CQuery {
            vf: Val::Ptr(100, 0),
            sig: Signature::int_fn(0),
            args: vec![],
            mem,
        }
    }

    fn annots(events: &[Event]) -> Vec<String> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Annot(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    fn run_threaded(
        nthreads: usize,
        schedule: Schedule,
        budget: &RunBudget,
    ) -> RunOutcome<CReply> {
        let (m, g) = counter_mem(10);
        let q = bquery(m);
        let aux = vec![q.clone(); nthreads - 1];
        let sem = ThreadedLts::new(Bumper { g }, aux, schedule)
            .with_exit_renderer(Box::new(|a: &CReply| format!("{:?}", a.retval)));
        run_budgeted(&sem, &q, &mut |oq: &CQuery| inc_env(oq), budget)
    }

    #[test]
    fn single_thread_behaves_like_inner() {
        let (m, g) = counter_mem(10);
        let q = bquery(m);
        let inner = run_budgeted(
            &Bumper { g },
            &q,
            &mut |oq: &CQuery| inc_env(oq),
            &RunBudget::with_fuel(100),
        );
        let outer = run_threaded(1, Schedule::RoundRobin, &RunBudget::with_fuel(100));
        match (inner, outer) {
            (
                RunOutcome::Complete { answer: a, .. },
                RunOutcome::Complete {
                    answer: b, trace, ..
                },
            ) => {
                assert_eq!(a.retval, b.retval);
                assert_eq!(
                    a.mem.load(CHUNK, g, 0).ok(),
                    b.mem.load(CHUNK, g, 0).ok()
                );
                assert_eq!(annots(&trace), vec!["sched:0", "sched:0", "exit:0=Int(10)"]);
            }
            (i, o) => panic!("expected Complete/Complete, got {i:?} / {o:?}"),
        }
    }

    #[test]
    fn round_robin_interleaves_and_shares_memory() {
        let out = run_threaded(2, Schedule::RoundRobin, &RunBudget::with_fuel(100));
        match out {
            RunOutcome::Complete { answer, trace, .. } => {
                // Both threads load 10 before either stores (RR switches at
                // the external call), so both return 10 — a genuine lost
                // update, observable only because memory is shared.
                assert_eq!(answer.retval, Val::Int(10));
                assert_eq!(
                    annots(&trace),
                    vec![
                        "sched:0",
                        "sched:1",
                        "sched:0",
                        "exit:0=Int(10)",
                        "sched:1",
                        "exit:1=Int(10)"
                    ]
                );
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn shared_counter_final_value_is_schedule_dependent_returns_not_sum() {
        // Under RR both threads read 10 and both store 11: final counter 11.
        let (m, g) = counter_mem(10);
        let q = bquery(m);
        let sem = ThreadedLts::new(Bumper { g }, vec![q.clone()], Schedule::RoundRobin);
        let out = run_budgeted(
            &sem,
            &q,
            &mut |oq: &CQuery| inc_env(oq),
            &RunBudget::with_fuel(100),
        );
        match out {
            RunOutcome::Complete { answer, .. } => {
                assert_eq!(answer.mem.load(CHUNK, g, 0).ok(), Some(Val::Int(11)));
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let budget = RunBudget::with_fuel(100);
        let a = run_threaded(3, Schedule::Seeded(7), &budget);
        let b = run_threaded(3, Schedule::Seeded(7), &budget);
        match (a, b) {
            (
                RunOutcome::Complete {
                    answer: a1,
                    trace: t1,
                    steps: s1,
                },
                RunOutcome::Complete {
                    answer: a2,
                    trace: t2,
                    steps: s2,
                },
            ) => {
                assert_eq!(a1, a2);
                assert_eq!(t1, t2);
                assert_eq!(s1, s2);
            }
            (x, y) => panic!("expected Complete/Complete, got {x:?} / {y:?}"),
        }
    }

    #[test]
    fn distinct_seeds_explore_distinct_interleavings() {
        let budget = RunBudget::with_fuel(100);
        let traces: Vec<Vec<String>> = (0..16u64)
            .map(|seed| {
                match run_threaded(3, Schedule::Seeded(seed), &budget) {
                    RunOutcome::Complete { trace, .. } => annots(&trace),
                    other => panic!("expected Complete, got {other:?}"),
                }
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = traces.iter().collect();
        assert!(
            distinct.len() > 1,
            "16 seeds all produced the same interleaving"
        );
    }

    #[test]
    fn fast_and_classic_paths_agree() {
        for schedule in [Schedule::RoundRobin, Schedule::Seeded(42)] {
            let fast = run_threaded(3, schedule, &RunBudget::with_fuel(100).no_trace());
            let classic = run_threaded(3, schedule, &RunBudget::with_fuel(100));
            match (fast, classic) {
                (
                    RunOutcome::Complete {
                        answer: a1,
                        trace: t1,
                        steps: s1,
                    },
                    RunOutcome::Complete {
                        answer: a2,
                        trace: t2,
                        steps: s2,
                    },
                ) => {
                    assert_eq!(a1, a2, "{schedule}");
                    assert_eq!(t1, t2, "{schedule}");
                    assert_eq!(s1, s2, "{schedule}");
                }
                (x, y) => panic!("expected Complete/Complete, got {x:?} / {y:?}"),
            }
        }
    }

    #[test]
    fn fuel_boundary_matches_single_stepping() {
        // Find the exact step count, then check the fuel cliff in both the
        // batched and classic runner paths.
        let steps = match run_threaded(2, Schedule::RoundRobin, &RunBudget::with_fuel(1000)) {
            RunOutcome::Complete { steps, .. } => steps,
            other => panic!("expected Complete, got {other:?}"),
        };
        // The runner checks fuel before stepping, so discovering the final
        // state needs one more unit than the internal steps taken: fuel
        // `steps+1` completes, fuel `steps` runs out (in both paths).
        for budget in [
            RunBudget::with_fuel(steps + 1).no_trace(),
            RunBudget::with_fuel(steps + 1),
        ] {
            assert!(matches!(
                run_threaded(2, Schedule::RoundRobin, &budget),
                RunOutcome::Complete { .. }
            ));
        }
        for budget in [
            RunBudget::with_fuel(steps).no_trace(),
            RunBudget::with_fuel(steps),
        ] {
            assert!(matches!(
                run_threaded(2, Schedule::RoundRobin, &budget),
                RunOutcome::OutOfFuel { .. }
            ));
        }
    }

    #[test]
    fn schedule_family_shape() {
        let s = schedules(8, 123);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], Schedule::RoundRobin);
        assert!(s[1..].iter().all(|x| matches!(x, Schedule::Seeded(_))));
        // Derivation is a pure function of the seed.
        assert_eq!(schedules(8, 123), s);
        assert_ne!(schedules(8, 124)[1], s[1]);
        assert!(schedules(0, 1).is_empty());
    }
}
