//! Language interfaces (paper Def. 2.1 and Table 2).
//!
//! A language interface `A = ⟨A∘, A•⟩` is a set of *questions* (function
//! invocations handed to a component) and *answers* (the ways control returns
//! to the caller). CompCertO's semantics for a language is a strategy for the
//! game `A ↠ B`: it answers incoming questions of `B`, possibly performing
//! outgoing calls described by `A`.
//!
//! The interfaces defined here mirror paper Table 2:
//!
//! | Name | Question            | Answer      | Used by            |
//! |------|---------------------|-------------|--------------------|
//! | [`C`] | `vf[sg](v⃗)@m`      | `v'@m'`     | Clight … RTL       |
//! | [`L`] | `vf[sg](ls)@m`     | `ls'@m'`    | LTL, Linear        |
//! | [`M`] | `vf(sp,ra,rs)@m`   | `rs'@m'`    | Mach               |
//! | [`A`] | `rs@m`             | `rs'@m'`    | Asm                |
//! | [`W`] | `*`                 | `r : int`   | whole programs     |
//! | [`One`] | (none)            | (none)      | closed components  |

use std::fmt;

use mem::{Mem, Typ, Val};

use crate::regs::{Locset, Mreg, Regset, NREGS};

/// A function signature: parameter types and optional result type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Types of the parameters, in order.
    pub params: Vec<Typ>,
    /// Result type; `None` for `void` functions.
    pub ret: Option<Typ>,
}

impl Signature {
    /// Build a signature.
    pub fn new(params: Vec<Typ>, ret: Option<Typ>) -> Signature {
        Signature { params, ret }
    }

    /// The `int(int)`-style signature with `n` `i32` parameters returning `i32`.
    pub fn int_fn(n: usize) -> Signature {
        Signature::new(vec![Typ::I32; n], Some(Typ::I32))
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") -> ")?;
        match &self.ret {
            Some(t) => write!(f, "{t}"),
            None => write!(f, "void"),
        }
    }
}

/// A language interface: a type of questions and a type of answers
/// (paper Def. 2.1).
///
/// Implementors are zero-sized marker types; the trait hangs the concrete
/// question/answer data types and a display name off them.
pub trait LanguageInterface: 'static {
    /// Questions `A∘` — how a component can be activated.
    type Question: Clone + fmt::Debug + PartialEq;
    /// Answers `A•` — how it returns control.
    type Answer: Clone + fmt::Debug + PartialEq;
    /// Display name used in diagnostics and generated tables.
    const NAME: &'static str;
}

/// Shorthand for the question type of an interface.
pub type Question<I> = <I as LanguageInterface>::Question;
/// Shorthand for the answer type of an interface.
pub type Answer<I> = <I as LanguageInterface>::Answer;

// ---------------------------------------------------------------------------
// C — source-level calls
// ---------------------------------------------------------------------------

/// The C-level language interface (paper Table 2, row `C`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct C;

/// A C-level question `vf[sg](v⃗)@m`: invoke the function at address `vf`
/// with signature `sg` and arguments `args` in memory `mem`.
#[derive(Debug, Clone, PartialEq)]
pub struct CQuery {
    /// Address of the function to invoke.
    pub vf: Val,
    /// Signature of the call.
    pub sig: Signature,
    /// Argument values.
    pub args: Vec<Val>,
    /// Memory at the point of entry.
    pub mem: Mem,
}

/// A C-level answer `v'@m'`: return value and memory at the point of exit.
#[derive(Debug, Clone, PartialEq)]
pub struct CReply {
    /// The return value ([`Val::Undef`] for `void`).
    pub retval: Val,
    /// Memory at the point of exit.
    pub mem: Mem,
}

impl LanguageInterface for C {
    type Question = CQuery;
    type Answer = CReply;
    const NAME: &'static str = "C";
}

// ---------------------------------------------------------------------------
// L — abstract locations (LTL, Linear)
// ---------------------------------------------------------------------------

/// The locations interface (paper Table 2, row `L`), used by LTL and Linear:
/// arguments live in an abstract location map instead of a value list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct L;

/// An L-level question `vf[sg](ls)@m`.
#[derive(Debug, Clone, PartialEq)]
pub struct LQuery {
    /// Address of the function to invoke.
    pub vf: Val,
    /// Signature of the call.
    pub sig: Signature,
    /// The location map carrying arguments (registers and stack slots).
    pub ls: Locset,
    /// Memory at the point of entry.
    pub mem: Mem,
}

/// An L-level answer `ls'@m'`.
#[derive(Debug, Clone, PartialEq)]
pub struct LReply {
    /// Updated location map (result registers, preserved callee-saves).
    pub ls: Locset,
    /// Memory at the point of exit.
    pub mem: Mem,
}

impl LanguageInterface for L {
    type Question = LQuery;
    type Answer = LReply;
    const NAME: &'static str = "L";
}

// ---------------------------------------------------------------------------
// M — machine registers + explicit stack pointer (Mach)
// ---------------------------------------------------------------------------

/// The Mach-level interface (paper Table 2, row `M`): machine registers plus
/// explicit stack pointer and return address, passed outside the register
/// file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct M;

/// An M-level question `vf(sp, ra, rs)@m`.
#[derive(Debug, Clone, PartialEq)]
pub struct MQuery {
    /// Address of the function to invoke.
    pub vf: Val,
    /// Stack pointer at entry (points to the caller's outgoing-argument
    /// region).
    pub sp: Val,
    /// Return address.
    pub ra: Val,
    /// Machine register file.
    pub rs: [Val; NREGS],
    /// Memory at the point of entry.
    pub mem: Mem,
}

/// An M-level answer `rs'@m'`.
#[derive(Debug, Clone, PartialEq)]
pub struct MReply {
    /// Machine register file at return.
    pub rs: [Val; NREGS],
    /// Memory at the point of exit.
    pub mem: Mem,
}

impl LanguageInterface for M {
    type Question = MQuery;
    type Answer = MReply;
    const NAME: &'static str = "M";
}

// ---------------------------------------------------------------------------
// A — architecture-level register file (Asm)
// ---------------------------------------------------------------------------

/// The assembly-level interface (paper Table 2, row `A`): every control
/// transfer is just a register file (including `pc`, `sp`, `ra`) plus memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct A;

/// An A-level question or answer `rs@m`.
#[derive(Debug, Clone, PartialEq)]
pub struct ARegs {
    /// Full register file including `pc`, `sp` and `ra`.
    pub rs: Regset,
    /// Memory.
    pub mem: Mem,
}

impl LanguageInterface for A {
    type Question = ARegs;
    type Answer = ARegs;
    const NAME: &'static str = "A";
}

// ---------------------------------------------------------------------------
// W — whole-program executions
// ---------------------------------------------------------------------------

/// The whole-program interface (paper §2.2): a single trivial question, and
/// integer exit statuses as answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct W;

impl LanguageInterface for W {
    type Question = ();
    type Answer = i32;
    const NAME: &'static str = "W";
}

// ---------------------------------------------------------------------------
// 1 — the empty interface
// ---------------------------------------------------------------------------

/// A type with no values, used for the moves of the empty interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Void {}

/// The empty language interface `1` (paper Table 2): no moves at all. An LTS
/// of type `One ↠ B` performs no external calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct One;

impl LanguageInterface for One {
    type Question = Void;
    type Answer = Void;
    const NAME: &'static str = "1";
}

// ---------------------------------------------------------------------------
// Shared-memory access
// ---------------------------------------------------------------------------

/// Uniform access to the memory component carried by every question and
/// answer of the concrete interfaces ([`C`], [`L`], [`M`], [`A`]).
///
/// In an open semantics, memory travels *out* of a component through its
/// questions and back *in* through the answers it receives — that seam is
/// exactly where CompCertOC threads shared memory between concurrently
/// executing components. The threaded composition operator
/// ([`crate::threaded::ThreadedLts`]) uses this trait to splice its single
/// authoritative global memory into whichever thread it dispatches next,
/// independent of the interface level the components speak.
pub trait SharedMem {
    /// The memory component of this move.
    fn mem(&self) -> &Mem;
    /// Replace the memory component of this move.
    fn set_mem(&mut self, m: Mem);
}

macro_rules! shared_mem_impl {
    ($($t:ty),*) => {$(
        impl SharedMem for $t {
            fn mem(&self) -> &Mem {
                &self.mem
            }
            fn set_mem(&mut self, m: Mem) {
                self.mem = m;
            }
        }
    )*};
}

// `ARegs` serves as both the question and the answer of `A`, so one impl
// covers both directions there.
shared_mem_impl!(CQuery, CReply, LQuery, LReply, MQuery, MReply, ARegs);

/// Calling-convention constants shared by the whole pipeline: which machine
/// registers carry arguments, results, and which are callee-save.
pub mod abi {
    use super::*;

    /// Registers carrying the first arguments (`r0..r3`).
    pub const PARAM_REGS: [Mreg; 4] = [Mreg(0), Mreg(1), Mreg(2), Mreg(3)];
    /// Register carrying the result.
    pub const RESULT_REG: Mreg = Mreg(0);
    /// Callee-save registers (`r8..r13`).
    pub const CALLEE_SAVE: [Mreg; 6] = [Mreg(8), Mreg(9), Mreg(10), Mreg(11), Mreg(12), Mreg(13)];
    /// Scratch registers reserved for the code generator (`r14`, `r15`).
    pub const SCRATCH: [Mreg; 2] = [Mreg(14), Mreg(15)];

    /// Is `r` callee-save?
    pub fn is_callee_save(r: Mreg) -> bool {
        CALLEE_SAVE.contains(&r)
    }

    /// Where each argument of a call with signature `sg` lives
    /// (CompCert's `loc_arguments`): the first four in [`PARAM_REGS`], the
    /// rest in `Outgoing` stack slots at 8-byte strides.
    pub fn loc_arguments(sg: &Signature) -> Vec<crate::regs::Loc> {
        use crate::regs::Loc;
        sg.params
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if i < PARAM_REGS.len() {
                    Loc::Reg(PARAM_REGS[i])
                } else {
                    Loc::Outgoing(((i - PARAM_REGS.len()) * 8) as i64)
                }
            })
            .collect()
    }

    /// Size in bytes of the stack-argument region of a call with signature
    /// `sg` (CompCert's `size_arguments`).
    pub fn size_arguments(sg: &Signature) -> i64 {
        (sg.params.len().saturating_sub(PARAM_REGS.len()) * 8) as i64
    }

    /// The location of the result of a call with signature `sg`
    /// (CompCert's `loc_result`).
    pub fn loc_result(_sg: &Signature) -> Mreg {
        RESULT_REG
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::Loc;

    #[test]
    fn signature_display() {
        let sg = Signature::new(vec![Typ::I32, Typ::I64], Some(Typ::I32));
        assert_eq!(sg.to_string(), "(i32, i64) -> i32");
        assert_eq!(Signature::new(vec![], None).to_string(), "() -> void");
    }

    #[test]
    fn loc_arguments_registers_then_stack() {
        let sg = Signature::int_fn(6);
        let locs = abi::loc_arguments(&sg);
        assert_eq!(locs[0], Loc::Reg(Mreg(0)));
        assert_eq!(locs[3], Loc::Reg(Mreg(3)));
        assert_eq!(locs[4], Loc::Outgoing(0));
        assert_eq!(locs[5], Loc::Outgoing(8));
        assert_eq!(abi::size_arguments(&sg), 16);
        assert_eq!(abi::size_arguments(&Signature::int_fn(2)), 0);
    }

    #[test]
    fn callee_save_classification() {
        assert!(abi::is_callee_save(Mreg(8)));
        assert!(!abi::is_callee_save(Mreg(0)));
        assert!(!abi::is_callee_save(Mreg(14)));
    }
}
