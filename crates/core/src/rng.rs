//! A tiny, in-repo, deterministic PRNG (SplitMix64).
//!
//! The workspace builds offline, so it cannot depend on the `rand` crate;
//! every seeded workload — the random program generator, the fault-injection
//! campaign, the robustness suites — draws from this generator instead.
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is a 64-bit counter-based
//! generator: tiny, fast, full-period, and — crucially for reproducible
//! experiments — its stream is a pure function of the seed, stable across
//! platforms and releases.
//!
//! This is NOT a cryptographic generator; it is used exclusively to
//! derandomize experiments.

/// A SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams on
    /// every platform.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `0..n` (`n > 0`; returns 0 for `n == 0`).
    ///
    /// Uses Lemire's multiply-shift reduction; the slight modulo bias of a
    /// plain `%` would be irrelevant here, but the multiply is also faster.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform draw from the half-open range `lo..hi` (returns `lo` when
    /// the range is empty).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform draw from `lo..hi` as `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform draw from `lo..hi` as `i32`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(i64::from(lo), i64::from(hi)) as i32
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick an element of a non-empty slice (None on an empty slice).
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            xs.get(self.range_usize(0, xs.len()))
        }
    }

    /// Derive an independent child generator (for splitting one seed into
    /// per-task streams without correlated draws).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // algorithm; pins the stream across platforms and refactors.
        let mut g = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        let mut g2 = SplitMix64::new(1234567);
        let again: Vec<u64> = (0..3).map(|_| g2.next_u64()).collect();
        assert_eq!(first, again);
        // The stream must not be trivially constant or sequential.
        assert_ne!(first[0], first[1]);
        assert_ne!(first[1], first[2]);
    }

    #[test]
    fn below_stays_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = g.below(17);
            assert!(x < 17);
        }
        assert_eq!(g.below(0), 0);
        // All residues are eventually hit (sanity of the reduction).
        let mut seen = [false; 7];
        for _ in 0..200 {
            seen[g.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ranges_stay_in_range() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = g.range_i64(-20, 40);
            assert!((-20..40).contains(&x));
            let y = g.range_usize(3, 9);
            assert!((3..9).contains(&y));
        }
        assert_eq!(g.range_i64(5, 5), 5);
        assert_eq!(g.range_usize(4, 2), 4);
    }

    #[test]
    fn split_streams_diverge() {
        let mut g = SplitMix64::new(1);
        let mut c1 = g.split();
        let mut c2 = g.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn pick_handles_empty() {
        let mut g = SplitMix64::new(5);
        let empty: [u8; 0] = [];
        assert!(g.pick(&empty).is_none());
        assert!(g.pick(&[1, 2, 3]).is_some());
    }
}
