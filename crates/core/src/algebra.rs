//! The simulation convention algebra (paper §5): symbolic convention
//! expressions, the refinement laws of Thm. 5.2 / Lemmas 5.3–5.8 /
//! Thm. 5.6, and a rewriting engine that derives the whole-compiler
//! convention `C = R* · wt · CA · vainj` from the per-pass conventions of
//! Table 3 — the executable counterpart of the proof outlined in paper
//! Figs. 10 and 11.
//!
//! Expressions are *syntax*; each derivation step records the law that
//! justifies it, and [`Derivation::verify`] replays the steps, checking each
//! against its law's syntactic pattern. The runtime soundness of the
//! individual laws on concrete data is exercised separately by the property
//! tests in `tests/`.

use std::fmt;

/// The language interface an expression endpoint lives at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IfaceTag {
    /// C-level calls.
    C,
    /// Abstract locations.
    L,
    /// Machine registers.
    M,
    /// Architecture registers.
    A,
}

impl fmt::Display for IfaceTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IfaceTag::C => "C",
            IfaceTag::L => "L",
            IfaceTag::M => "M",
            IfaceTag::A => "A",
        };
        f.write_str(s)
    }
}

/// A CKLR name (interface-polymorphic; promoted to an interface by
/// [`Atom::Cklr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CklrTag {
    /// Memory extensions.
    Ext,
    /// Memory injections.
    Inj,
    /// Injections with call-time protection.
    Injp,
    /// `va · ext`.
    VaExt,
    /// `va · inj`.
    VaInj,
}

impl CklrTag {
    /// All CKLRs in the sum `R` (paper §5).
    pub const R_COMPONENTS: [CklrTag; 5] = [
        CklrTag::Injp,
        CklrTag::Inj,
        CklrTag::Ext,
        CklrTag::VaInj,
        CklrTag::VaExt,
    ];
}

impl fmt::Display for CklrTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CklrTag::Ext => "ext",
            CklrTag::Inj => "inj",
            CklrTag::Injp => "injp",
            CklrTag::VaExt => "vaext",
            CklrTag::VaInj => "vainj",
        };
        f.write_str(s)
    }
}

/// An atomic simulation convention.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// The identity convention at an interface.
    Id(IfaceTag),
    /// A CKLR promoted to an interface (`R_X`, paper §4.4).
    Cklr(CklrTag, IfaceTag),
    /// The typing invariant `wt` (C level, paper App. B.2).
    Wt,
    /// The value-analysis invariant `va` (C level, paper App. B.3).
    Va,
    /// The structural convention `CL : C ⇔ L` (paper App. C.1).
    Cl,
    /// The structural convention `LM : L ⇔ M` (paper App. C.2).
    Lm,
    /// The structural convention `MA : M ⇔ A` (paper App. C.3).
    Ma,
    /// The sum `R = injp + inj + ext + vainj + vaext` at an interface.
    RSum(IfaceTag),
    /// The Kleene star `R*` at an interface (paper Def. 5.5).
    RStar(IfaceTag),
}

impl Atom {
    /// The `(left, right)` interfaces this atom relates.
    pub fn typing(&self) -> (IfaceTag, IfaceTag) {
        match self {
            Atom::Id(x) => (*x, *x),
            Atom::Cklr(_, x) => (*x, *x),
            Atom::Wt | Atom::Va => (IfaceTag::C, IfaceTag::C),
            Atom::Cl => (IfaceTag::C, IfaceTag::L),
            Atom::Lm => (IfaceTag::L, IfaceTag::M),
            Atom::Ma => (IfaceTag::M, IfaceTag::A),
            Atom::RSum(x) | Atom::RStar(x) => (*x, *x),
        }
    }

    /// Is this a structural calling-convention atom (`CL`, `LM`, `MA`)?
    pub fn is_structural(&self) -> bool {
        matches!(self, Atom::Cl | Atom::Lm | Atom::Ma)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Id(x) => write!(f, "id@{x}"),
            Atom::Cklr(k, x) => {
                if *x == IfaceTag::C {
                    write!(f, "{k}")
                } else {
                    write!(f, "{k}@{x}")
                }
            }
            Atom::Wt => write!(f, "wt"),
            Atom::Va => write!(f, "va"),
            Atom::Cl => write!(f, "CL"),
            Atom::Lm => write!(f, "LM"),
            Atom::Ma => write!(f, "MA"),
            Atom::RSum(x) => {
                if *x == IfaceTag::C {
                    write!(f, "R")
                } else {
                    write!(f, "R@{x}")
                }
            }
            Atom::RStar(x) => {
                if *x == IfaceTag::C {
                    write!(f, "R*")
                } else {
                    write!(f, "R*@{x}")
                }
            }
        }
    }
}

/// A (flattened) composition of atomic conventions `a1 · a2 · … · an`.
///
/// The empty chain denotes the identity; composition is the monoid operation
/// (paper Thm. 5.2: `·` is associative with unit `id`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Chain {
    atoms: Vec<Atom>,
}

impl Chain {
    /// The empty (identity) chain.
    pub fn id() -> Chain {
        Chain::default()
    }

    /// A chain holding the given atoms.
    pub fn of(atoms: impl IntoIterator<Item = Atom>) -> Chain {
        Chain {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// The atoms, left (source) to right (target).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Concatenate two chains (convention composition `·`).
    pub fn then(mut self, other: Chain) -> Chain {
        self.atoms.extend(other.atoms);
        self
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the chain the identity?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Check the chain is well-typed, returning its end-to-end typing.
    ///
    /// # Errors
    /// Returns a description of the first interface mismatch.
    pub fn typing(&self) -> Result<(IfaceTag, IfaceTag), String> {
        let mut it = self.atoms.iter();
        let first = match it.next() {
            Some(a) => a,
            None => return Ok((IfaceTag::C, IfaceTag::C)),
        };
        let (l, mut r) = first.typing();
        for a in it {
            let (al, ar) = a.typing();
            if al != r {
                return Err(format!("type error: {a} expects {al}, got {r}"));
            }
            r = ar;
        }
        Ok((l, r))
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "id");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " · ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// The refinement laws of paper §5 (each step of a derivation cites one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Law {
    /// `id · R ≡ R ≡ R · id` (Thm. 5.2).
    IdUnit,
    /// `ext·ext ≡ ext`, `ext·inj ≡ inj·ext ≡ inj·inj ≡ inj` (Lemma 5.3).
    CklrFuse,
    /// `va·ext ≡ vaext`, `va·inj ≡ vainj`, `vainj·vainj ≡ vainj`
    /// (Lemma 5.8).
    VaFuse,
    /// `R_X · XY ⊑ XY · R_Y` for `XY ∈ {CL, LM, MA}` (Lemma 5.4).
    CommuteCc,
    /// `wt · K⃗ · wt ≡ K⃗ · wt` and `wt·K ≡ wt·K·wt` for CKLR-built `K⃗`
    /// (Lemma 5.7 / App. B.2).
    WtAbsorb,
    /// `K ⊑ R` for each component `K` of the sum (Thm. 5.6, sum intro).
    SumIntro,
    /// `R^n ⊑ R*`, `id ⊑ R*`, `R*·R* ≡ R*` (Thm. 5.6, Kleene).
    StarIntro,
    /// `K@A · vainj@A ≡ vainj@A` for `K ∈ {ext, inj, injp}` — the target-side
    /// absorption steps of paper Fig. 10, justified by Asm parametricity
    /// (Thm. 4.3).
    VainjAbsorb,
    /// Insertion of a self-simulation pseudo-pass justified by parametricity
    /// (Thm. 4.3): `Clight(p) ≤R*↠R*` at the source, `Asm(p') ≤vainj↠vainj`
    /// at the target.
    Parametricity,
}

impl Law {
    /// Paper citation for the law.
    pub fn citation(self) -> &'static str {
        match self {
            Law::IdUnit => "Thm 5.2",
            Law::CklrFuse => "Lemma 5.3",
            Law::VaFuse => "Lemma 5.8",
            Law::CommuteCc => "Lemma 5.4",
            Law::WtAbsorb => "Lemma 5.7 / App B.2",
            Law::SumIntro => "Thm 5.6 (sum)",
            Law::StarIntro => "Thm 5.6 (star)",
            Law::VainjAbsorb => "Fig 10 / Thm 4.3",
            Law::Parametricity => "Thm 4.3",
        }
    }

    /// Does this law justify rewriting the sub-chain `before` into `after`?
    ///
    /// This is the verifier used by [`Derivation::verify`]; it accepts
    /// exactly the local patterns the engine emits.
    pub fn justifies(self, before: &[Atom], after: &[Atom]) -> bool {
        use Atom::*;
        use CklrTag::*;
        match self {
            Law::IdUnit => {
                // Dropping identities.
                let stripped: Vec<&Atom> = before.iter().filter(|a| !matches!(a, Id(_))).collect();
                stripped.len() == after.len() && stripped.iter().zip(after).all(|(a, b)| **a == *b)
            }
            Law::CklrFuse => match (before, after) {
                ([Cklr(k1, x1), Cklr(k2, x2)], [Cklr(k3, x3)]) => {
                    x1 == x2
                        && x2 == x3
                        && matches!(
                            (k1, k2, k3),
                            (Ext, Ext, Ext) | (Ext, Inj, Inj) | (Inj, Ext, Inj) | (Inj, Inj, Inj)
                        )
                }
                _ => false,
            },
            Law::VaFuse => match (before, after) {
                ([Va, Cklr(Ext, x)], [Cklr(VaExt, y)]) => x == y,
                ([Va, Cklr(Inj, x)], [Cklr(VaInj, y)]) => x == y,
                ([Cklr(VaInj, x), Cklr(VaInj, y)], [Cklr(VaInj, z)]) => x == y && y == z,
                _ => false,
            },
            Law::CommuteCc => match (before, after) {
                ([Cklr(k1, x), cc1], [cc2, Cklr(k2, y)]) => {
                    k1 == k2 && cc1 == cc2 && cc1.is_structural() && cc1.typing() == (*x, *y)
                }
                _ => false,
            },
            Law::WtAbsorb => {
                // wt · K⃗ · wt  ≡  K⃗ · wt
                let absorb = before.len() >= 2
                    && before.first() == Some(&Wt)
                    && before.last() == Some(&Wt)
                    && before[1..before.len() - 1]
                        .iter()
                        .all(|a| matches!(a, Cklr(_, _)))
                    && after == &before[1..];
                // wt · K  ≡  wt · K · wt (introduction)
                let intro = before.len() == 2
                    && before[0] == Wt
                    && matches!(before[1], Cklr(_, _))
                    && after.len() == 3
                    && after[0] == Wt
                    && after[1] == before[1]
                    && after[2] == Wt;
                // wt · wt ≡ wt
                let dup = before == [Wt, Wt] && after == [Wt];
                absorb || intro || dup
            }
            Law::SumIntro => match (before, after) {
                ([Cklr(k, x)], [RSum(y)]) => x == y && CklrTag::R_COMPONENTS.contains(k),
                _ => false,
            },
            Law::StarIntro => {
                // A run of R (and R*) atoms at the same interface collapses
                // to a single R*; the empty run (id ⊑ R*) is allowed too.
                match after {
                    [RStar(x)] => before
                        .iter()
                        .all(|a| matches!(a, RSum(y) | RStar(y) if y == x)),
                    _ => false,
                }
            }
            Law::VainjAbsorb => match (before, after) {
                ([Cklr(k, IfaceTag::A), Cklr(VaInj, IfaceTag::A)], [Cklr(VaInj, IfaceTag::A)]) => {
                    matches!(k, Ext | Inj | Injp)
                }
                _ => false,
            },
            Law::Parametricity => {
                // Inserting R* at the front (source self-simulation) or
                // vainj@A at the back (target self-simulation).
                (before.is_empty() && after == [RStar(IfaceTag::C)])
                    || (before.is_empty() && after == [Cklr(VaInj, IfaceTag::A)])
            }
        }
    }
}

impl fmt::Display for Law {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} ({})", self, self.citation())
    }
}

/// One rewriting step of a derivation: at `pos`, the sub-chain `before` was
/// replaced by `after`, justified by `law`.
#[derive(Debug, Clone)]
pub struct DerivStep {
    /// The law cited.
    pub law: Law,
    /// Index in the chain where the rewrite applies.
    pub pos: usize,
    /// The replaced sub-chain.
    pub before: Vec<Atom>,
    /// The replacement.
    pub after: Vec<Atom>,
    /// The whole chain after this step.
    pub result: Chain,
}

/// A derivation: an initial chain and a sequence of law-justified rewrites
/// (the executable form of the proof sketch in paper Figs. 10/11).
#[derive(Debug, Clone, Default)]
pub struct Derivation {
    /// The starting chain (the composed per-pass conventions).
    pub initial: Chain,
    /// The rewriting steps, in order.
    pub steps: Vec<DerivStep>,
}

/// Error from [`Derivation::verify`].
#[derive(Debug, Clone)]
pub struct DerivationError {
    /// Index of the offending step.
    pub step: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for DerivationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "derivation step {}: {}", self.step, self.reason)
    }
}

impl std::error::Error for DerivationError {}

impl Derivation {
    /// Start a derivation from `initial`.
    pub fn new(initial: Chain) -> Derivation {
        Derivation {
            initial,
            steps: Vec::new(),
        }
    }

    /// The current (latest) chain.
    pub fn current(&self) -> &Chain {
        self.steps
            .last()
            .map(|s| &s.result)
            .unwrap_or(&self.initial)
    }

    /// Apply a rewrite: replace `current[pos .. pos+len]` by `after`, citing
    /// `law`.
    ///
    /// # Errors
    /// Fails if the span is out of range or the law does not justify the
    /// rewrite.
    pub fn rewrite(
        &mut self,
        law: Law,
        pos: usize,
        len: usize,
        after: Vec<Atom>,
    ) -> Result<(), DerivationError> {
        let cur = self.current().clone();
        if pos + len > cur.len() {
            return Err(DerivationError {
                step: self.steps.len(),
                reason: format!("span {pos}+{len} out of range {}", cur.len()),
            });
        }
        let before: Vec<Atom> = cur.atoms()[pos..pos + len].to_vec();
        if !law.justifies(&before, &after) {
            return Err(DerivationError {
                step: self.steps.len(),
                reason: format!(
                    "law {law} does not justify [{}] => [{}]",
                    Chain::of(before.clone()),
                    Chain::of(after.clone())
                ),
            });
        }
        let mut atoms: Vec<Atom> = cur.atoms().to_vec();
        atoms.splice(pos..pos + len, after.clone());
        self.steps.push(DerivStep {
            law,
            pos,
            before,
            after,
            result: Chain::of(atoms),
        });
        Ok(())
    }

    /// Re-check every step against its cited law.
    ///
    /// # Errors
    /// Returns the first step whose rewrite is not justified.
    pub fn verify(&self) -> Result<(), DerivationError> {
        let mut cur = self.initial.clone();
        for (i, step) in self.steps.iter().enumerate() {
            let atoms = cur.atoms();
            if step.pos + step.before.len() > atoms.len()
                || atoms[step.pos..step.pos + step.before.len()] != step.before[..]
            {
                return Err(DerivationError {
                    step: i,
                    reason: "recorded sub-chain does not match".into(),
                });
            }
            if !step.law.justifies(&step.before, &step.after) {
                return Err(DerivationError {
                    step: i,
                    reason: format!("law {} does not justify step", step.law),
                });
            }
            let mut next: Vec<Atom> = atoms.to_vec();
            next.splice(step.pos..step.pos + step.before.len(), step.after.clone());
            let next = Chain::of(next);
            if next != step.result {
                return Err(DerivationError {
                    step: i,
                    reason: "recorded result does not match".into(),
                });
            }
            cur = next;
        }
        Ok(())
    }

    /// Render the derivation as a numbered proof trace (used to regenerate
    /// paper Figs. 10/11).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  start: {}\n", self.initial));
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "  [{:>2}] {:<14} {:<22} {}\n",
                i + 1,
                format!("{:?}", s.law),
                format!("({})", s.law.citation()),
                s.result
            ));
        }
        out
    }
}

/// The goal convention `C = R* · wt · CL · LM · MA · vainj@A` (paper §5).
pub fn goal_convention() -> Chain {
    Chain::of([
        Atom::RStar(IfaceTag::C),
        Atom::Wt,
        Atom::Cl,
        Atom::Lm,
        Atom::Ma,
        Atom::Cklr(CklrTag::VaInj, IfaceTag::A),
    ])
}

/// The rewriting engine: normalize a composed per-pass chain into the goal
/// convention, producing the law-by-law derivation (paper Figs. 10/11).
///
/// The strategy follows the paper's proof sketch:
/// 1. drop identity passes (Thm. 5.2);
/// 2. fuse `va · ext`/`va · inj` into `vaext`/`vainj` (Lemma 5.8);
/// 3. eliminate interior `wt`s (Lemma 5.7) so a single `wt` remains before
///    the first structural convention;
/// 4. commute CKLRs sitting between `CL`/`LM`/`MA` down to the `A` interface
///    (Lemma 5.4), fusing them on the way (Lemma 5.3);
/// 5. absorb the `A`-level CKLRs into the target-side `vainj`
///    (parametricity of Asm, Thm. 4.3);
/// 6. absorb every C-level CKLR into the sum `R` (Thm. 5.6) and collapse the
///    run into `R*`, merging with the source-side parametricity `R*`.
///
/// # Errors
/// Returns an error if the chain cannot be brought to the goal (e.g. it is
/// ill-typed or contains conventions outside the algebra's vocabulary).
pub fn derive(composed: Chain) -> Result<Derivation, DerivationError> {
    composed
        .typing()
        .map_err(|reason| DerivationError { step: 0, reason })?;
    let mut d = Derivation::new(composed);

    // Step 1: insert the parametricity pseudo-passes at both ends
    // (Clight self-simulation under R*; Asm self-simulation under vainj).
    d.rewrite(Law::Parametricity, 0, 0, vec![Atom::RStar(IfaceTag::C)])?;
    let end = d.current().len();
    d.rewrite(
        Law::Parametricity,
        end,
        0,
        vec![Atom::Cklr(CklrTag::VaInj, IfaceTag::A)],
    )?;

    // Step 2: drop identity passes.
    while let Some(pos) = d
        .current()
        .atoms()
        .iter()
        .position(|a| matches!(a, Atom::Id(_)))
    {
        d.rewrite(Law::IdUnit, pos, 1, vec![])?;
    }

    // Step 3: fuse va · ext / va · inj (Lemma 5.8).
    loop {
        let atoms = d.current().atoms().to_vec();
        let mut applied = false;
        for i in 0..atoms.len().saturating_sub(1) {
            match (&atoms[i], &atoms[i + 1]) {
                (Atom::Va, Atom::Cklr(CklrTag::Ext, x)) => {
                    let x = *x;
                    d.rewrite(Law::VaFuse, i, 2, vec![Atom::Cklr(CklrTag::VaExt, x)])?;
                    applied = true;
                    break;
                }
                (Atom::Va, Atom::Cklr(CklrTag::Inj, x)) => {
                    let x = *x;
                    d.rewrite(Law::VaFuse, i, 2, vec![Atom::Cklr(CklrTag::VaInj, x)])?;
                    applied = true;
                    break;
                }
                _ => {}
            }
        }
        if !applied {
            break;
        }
    }

    // Step 4: eliminate interior wt's. Find pairs wt … wt with only CKLRs in
    // between and absorb the leading one (Lemma 5.7).
    loop {
        let atoms = d.current().atoms().to_vec();
        let wt_positions: Vec<usize> = atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (*a == Atom::Wt).then_some(i))
            .collect();
        let mut applied = false;
        for w in wt_positions.windows(2) {
            let (i, j) = (w[0], w[1]);
            if atoms[i + 1..j]
                .iter()
                .all(|a| matches!(a, Atom::Cklr(_, _)))
            {
                let after: Vec<Atom> = atoms[i + 1..=j].to_vec();
                d.rewrite(Law::WtAbsorb, i, j - i + 1, after)?;
                applied = true;
                break;
            }
        }
        if !applied {
            break;
        }
    }

    // Step 5: hoist CKLRs trapped between the final wt and CL back to the
    // left of wt: wt·K ≡ wt·K·wt (intro), then wt·K·wt ≡ K·wt (absorb).
    loop {
        let atoms = d.current().atoms().to_vec();
        let wt_pos = atoms.iter().position(|a| *a == Atom::Wt);
        let cl_pos = atoms.iter().position(|a| *a == Atom::Cl);
        match (wt_pos, cl_pos) {
            (Some(i), Some(c)) if i + 1 < c && matches!(atoms[i + 1], Atom::Cklr(_, _)) => {
                let k = atoms[i + 1].clone();
                d.rewrite(Law::WtAbsorb, i, 2, vec![Atom::Wt, k.clone(), Atom::Wt])?;
                d.rewrite(Law::WtAbsorb, i, 3, vec![k, Atom::Wt])?;
            }
            _ => break,
        }
    }

    // Step 6: push CKLRs appearing after CL down through LM/MA to the A
    // interface (Lemma 5.4), fusing adjacent ext/inj on the way (Lemma 5.3),
    // then absorb them into vainj@A (Fig. 10).
    loop {
        let atoms = d.current().atoms().to_vec();
        let mut applied = false;
        for i in 0..atoms.len().saturating_sub(1) {
            match (&atoms[i], &atoms[i + 1]) {
                // CKLR followed by a structural convention: commute.
                (Atom::Cklr(k, x), cc) if cc.is_structural() => {
                    let (cl, cr) = cc.typing();
                    debug_assert_eq!(cl, *x);
                    let _ = cl;
                    d.rewrite(Law::CommuteCc, i, 2, vec![cc.clone(), Atom::Cklr(*k, cr)])?;
                    applied = true;
                    break;
                }
                // Adjacent fusible CKLRs at the same non-C interface.
                (Atom::Cklr(k1, x1), Atom::Cklr(k2, x2))
                    if x1 == x2
                        && *x1 != IfaceTag::C
                        && matches!(k1, CklrTag::Ext | CklrTag::Inj)
                        && matches!(k2, CklrTag::Ext | CklrTag::Inj) =>
                {
                    let fused = if *k1 == CklrTag::Ext && *k2 == CklrTag::Ext {
                        CklrTag::Ext
                    } else {
                        CklrTag::Inj
                    };
                    let x = *x1;
                    d.rewrite(Law::CklrFuse, i, 2, vec![Atom::Cklr(fused, x)])?;
                    applied = true;
                    break;
                }
                // A-level CKLR absorbed into vainj@A.
                (Atom::Cklr(k, IfaceTag::A), Atom::Cklr(CklrTag::VaInj, IfaceTag::A))
                    if matches!(k, CklrTag::Ext | CklrTag::Inj | CklrTag::Injp) =>
                {
                    d.rewrite(
                        Law::VainjAbsorb,
                        i,
                        2,
                        vec![Atom::Cklr(CklrTag::VaInj, IfaceTag::A)],
                    )?;
                    applied = true;
                    break;
                }
                _ => {}
            }
        }
        if !applied {
            break;
        }
    }

    // Step 7: absorb every C-level CKLR into the sum R (Thm. 5.6).
    loop {
        let atoms = d.current().atoms().to_vec();
        let pos = atoms.iter().position(
            |a| matches!(a, Atom::Cklr(k, IfaceTag::C) if CklrTag::R_COMPONENTS.contains(k)),
        );
        match pos {
            Some(i) => {
                d.rewrite(Law::SumIntro, i, 1, vec![Atom::RSum(IfaceTag::C)])?;
            }
            None => break,
        }
    }

    // Step 8: collapse the leading run of R/R* into a single R*.
    {
        let atoms = d.current().atoms().to_vec();
        let run_len = atoms
            .iter()
            .take_while(|a| matches!(a, Atom::RSum(IfaceTag::C) | Atom::RStar(IfaceTag::C)))
            .count();
        if run_len > 0 {
            d.rewrite(Law::StarIntro, 0, run_len, vec![Atom::RStar(IfaceTag::C)])?;
        }
    }

    // Check we reached the goal.
    if *d.current() != goal_convention() {
        return Err(DerivationError {
            step: d.steps.len(),
            reason: format!(
                "normalization stopped at `{}`, expected `{}`",
                d.current(),
                goal_convention()
            ),
        });
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Atom::*;
    use CklrTag::*;
    use IfaceTag::*;

    /// The incoming conventions of paper Table 3, in pass order.
    pub(crate) fn table3_incoming() -> Chain {
        Chain::of([
            Cklr(Inj, C), // SimplLocals
            Id(C),        // Cshmgen
            Cklr(Inj, C), // Cminorgen
            Wt,
            Cklr(Ext, C), // Selection
            Cklr(Ext, C), // RTLgen
            Cklr(Ext, C), // Tailcall
            Cklr(Inj, C), // Inlining
            Id(C),        // Renumber
            Va,
            Cklr(Ext, C), // Constprop
            Va,
            Cklr(Ext, C), // CSE
            Va,
            Cklr(Ext, C), // Deadcode
            Wt,
            Cklr(Ext, C),
            Cl,           // Allocation
            Cklr(Ext, L), // Tunneling
            Id(L),        // Linearize
            Id(L),        // CleanupLabels
            Id(L),        // Debugvar
            Lm,
            Cklr(Inj, M), // Stacking (incoming: LM · inj)
            Cklr(Ext, M),
            Ma, // Asmgen
        ])
    }

    #[test]
    fn chains_type_check() {
        assert_eq!(table3_incoming().typing(), Ok((C, A)));
        assert_eq!(goal_convention().typing(), Ok((C, A)));
        let bad = Chain::of([Cl, Cl]);
        assert!(bad.typing().is_err());
    }

    #[test]
    fn derivation_reaches_goal_and_verifies() {
        let d = derive(table3_incoming()).expect("derivation succeeds");
        assert_eq!(*d.current(), goal_convention());
        d.verify().expect("all steps justified");
        // The derivation is non-trivial.
        assert!(d.steps.len() > 10, "steps: {}", d.steps.len());
    }

    #[test]
    fn outgoing_chain_also_derives() {
        // Outgoing conventions of Table 3 (injp instead of inj for the
        // injection passes; Stacking contributes injp · LM).
        let outgoing = Chain::of([
            Cklr(Injp, C), // SimplLocals
            Id(C),         // Cshmgen
            Cklr(Injp, C), // Cminorgen
            Wt,
            Cklr(Ext, C),  // Selection
            Cklr(Ext, C),  // RTLgen
            Cklr(Ext, C),  // Tailcall
            Cklr(Injp, C), // Inlining
            Id(C),         // Renumber
            Va,
            Cklr(Ext, C), // Constprop
            Va,
            Cklr(Ext, C), // CSE
            Va,
            Cklr(Ext, C), // Deadcode
            Wt,
            Cklr(Ext, C),
            Cl,           // Allocation
            Cklr(Ext, L), // Tunneling
            Id(L),
            Id(L),
            Id(L),
            Cklr(Injp, L),
            Lm, // Stacking (outgoing: injp · LM)
            Cklr(Ext, M),
            Ma, // Asmgen
        ]);
        let d = derive(outgoing).expect("outgoing derivation succeeds");
        assert_eq!(*d.current(), goal_convention());
        d.verify().expect("verified");
    }

    #[test]
    fn bogus_rewrite_is_rejected() {
        let mut d = Derivation::new(Chain::of([Cklr(Ext, C), Cklr(Ext, C)]));
        // ext·ext → inj is NOT Lemma 5.3.
        let err = d.rewrite(Law::CklrFuse, 0, 2, vec![Cklr(Inj, C)]);
        assert!(err.is_err());
        // ext·ext → ext is.
        d.rewrite(Law::CklrFuse, 0, 2, vec![Cklr(Ext, C)]).unwrap();
        assert_eq!(d.current().atoms(), &[Cklr(Ext, C)]);
    }

    #[test]
    fn tampered_derivation_fails_verification() {
        let mut d = derive(table3_incoming()).unwrap();
        // Corrupt a step's law citation.
        if let Some(step) = d.steps.iter_mut().find(|s| s.law == Law::CklrFuse) {
            step.law = Law::VaFuse;
        }
        assert!(d.verify().is_err());
    }

    #[test]
    fn render_mentions_all_laws() {
        let d = derive(table3_incoming()).unwrap();
        let text = d.render();
        assert!(text.contains("Lemma 5.3"));
        assert!(text.contains("Lemma 5.4"));
        assert!(text.contains("Lemma 5.7"));
        assert!(text.contains("Lemma 5.8"));
        assert!(text.contains("Thm 5.6"));
        assert!(text.contains("Thm 4.3"));
    }
}
