//! Simulation conventions (paper Def. 2.6) as executable relations.
//!
//! A simulation convention `R : A1 ⇔ A2` is a Kripke relation between the
//! questions and answers of two language interfaces: a set of worlds `W`, a
//! question relation `R∘ ∈ R_W(A1∘, A2∘)` and an answer relation
//! `R• ∈ R_W(A1•, A2•)`. The world chosen when a pair of questions is related
//! is the one at which the corresponding answers must be related — this is
//! what makes the rely/guarantee discipline of open simulations work
//! (paper Fig. 6).
//!
//! In Coq these are relations; here they are *checkers*:
//! [`SimConv::match_query`] enumerates candidate witness worlds for a pair of
//! questions (the ∃w of Def. 5.1), and [`SimConv::match_reply`] decides the
//! answer relation at a world. Conventions that admit a canonical *marshaling*
//! direction additionally implement [`SimConv::transport_query`] /
//! [`SimConv::transport_reply`], which the differential simulation checker
//! (module [`crate::sim`]) uses to construct the target side of a test run.

use std::fmt;
use std::marker::PhantomData;

use crate::iface::{Answer, LanguageInterface, Question};

/// An executable simulation convention `R : L ⇔ R` (paper Def. 2.6).
pub trait SimConv {
    /// Source-side language interface (`A1`).
    type Left: LanguageInterface;
    /// Target-side language interface (`A2`).
    type Right: LanguageInterface;
    /// Kripke worlds.
    type World: Clone + fmt::Debug;

    /// Display name (used in derivations and tables).
    fn name(&self) -> String;

    /// Candidate worlds `w` such that `w ⊩ q1 R∘ q2`; empty when unrelated.
    ///
    /// For most conventions the witness is unique, so the result has length
    /// 0 or 1.
    fn match_query(
        &self,
        q1: &Question<Self::Left>,
        q2: &Question<Self::Right>,
    ) -> Vec<Self::World>;

    /// Does `w ⊩ r1 R• r2` hold? Conventions whose answer relation is
    /// guarded by the `^` modality (paper §4.4) search for an accessible
    /// world internally.
    fn match_reply(
        &self,
        w: &Self::World,
        r1: &Answer<Self::Left>,
        r2: &Answer<Self::Right>,
    ) -> bool;

    /// Canonical marshaling: construct the target-side question (and the
    /// world witnessing the relation) from a source-side question.
    ///
    /// Returns `None` when the convention has no canonical forward direction
    /// (e.g. [`crate::cc::Lm`], whose natural direction is backward).
    fn transport_query(
        &self,
        _q1: &Question<Self::Left>,
    ) -> Option<(Self::World, Question<Self::Right>)> {
        None
    }

    /// Canonical marshaling of replies: construct the target-side reply from
    /// the source-side reply (used by simulation-checking environments to
    /// answer the target component consistently with the source).
    ///
    /// `q2` is the original target-side question, needed by conventions whose
    /// replies echo parts of the question (callee-save registers, stack
    /// pointers).
    fn transport_reply(
        &self,
        _w: &Self::World,
        _r1: &Answer<Self::Left>,
        _q2: &Question<Self::Right>,
    ) -> Option<Answer<Self::Right>> {
        None
    }
}

/// The identity simulation convention `id_A := ⟨1, =, =⟩ : A ⇔ A`
/// (paper Def. 2.6).
pub struct IdConv<I> {
    _marker: PhantomData<fn() -> I>,
}

impl<I> IdConv<I> {
    /// The identity convention for interface `I`.
    pub fn new() -> IdConv<I> {
        IdConv {
            _marker: PhantomData,
        }
    }
}

impl<I> Default for IdConv<I> {
    fn default() -> Self {
        IdConv::new()
    }
}

impl<I> fmt::Debug for IdConv<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("IdConv")
    }
}

impl<I: LanguageInterface> SimConv for IdConv<I> {
    type Left = I;
    type Right = I;
    type World = ();

    fn name(&self) -> String {
        "id".into()
    }

    fn match_query(&self, q1: &Question<I>, q2: &Question<I>) -> Vec<()> {
        if q1 == q2 {
            vec![()]
        } else {
            vec![]
        }
    }

    fn match_reply(&self, _w: &(), r1: &Answer<I>, r2: &Answer<I>) -> bool {
        r1 == r2
    }

    fn transport_query(&self, q1: &Question<I>) -> Option<((), Question<I>)> {
        Some(((), q1.clone()))
    }

    fn transport_reply(&self, _w: &(), r1: &Answer<I>, _q2: &Question<I>) -> Option<Answer<I>> {
        Some(r1.clone())
    }
}

/// Composition of simulation conventions `R · S : A ⇔ C` for `R : A ⇔ B`
/// and `S : B ⇔ C` (paper Def. 3.6).
///
/// Worlds are pairs `(w_R, w_S)` *plus the interpolating question* `q_B`:
/// the Coq definition existentially quantifies the middle question, and the
/// checker must remember the witness to transport replies through the middle
/// interface.
///
/// `match_query` synthesizes the middle question with
/// [`SimConv::transport_query`] of the first convention — composition is
/// therefore only checkable when its left factor has a canonical marshaling
/// direction (true of every composition the compiler pipeline uses).
pub struct ComposeConv<R, S> {
    r: R,
    s: S,
}

impl<R, S, B> ComposeConv<R, S>
where
    B: LanguageInterface,
    R: SimConv<Right = B>,
    S: SimConv<Left = B>,
{
    /// Compose two conventions sharing a middle interface.
    pub fn new(r: R, s: S) -> ComposeConv<R, S> {
        ComposeConv { r, s }
    }
}

impl<R, S, B> SimConv for ComposeConv<R, S>
where
    B: LanguageInterface,
    R: SimConv<Right = B>,
    S: SimConv<Left = B>,
{
    type Left = R::Left;
    type Right = S::Right;
    type World = (R::World, S::World, Question<B>);

    fn name(&self) -> String {
        format!("{} · {}", self.r.name(), self.s.name())
    }

    fn match_query(
        &self,
        q1: &Question<Self::Left>,
        q3: &Question<Self::Right>,
    ) -> Vec<Self::World> {
        let mut worlds = Vec::new();
        if let Some((_, q2)) = self.r.transport_query(q1) {
            for wr in self.r.match_query(q1, &q2) {
                for ws in self.s.match_query(&q2, q3) {
                    worlds.push((wr.clone(), ws, q2.clone()));
                }
            }
        }
        worlds
    }

    fn match_reply(
        &self,
        (wr, ws, q2): &Self::World,
        r1: &Answer<Self::Left>,
        r3: &Answer<Self::Right>,
    ) -> bool {
        match self.r.transport_reply(wr, r1, q2) {
            Some(r2) => self.r.match_reply(wr, r1, &r2) && self.s.match_reply(ws, &r2, r3),
            None => false,
        }
    }

    fn transport_query(
        &self,
        q1: &Question<Self::Left>,
    ) -> Option<(Self::World, Question<Self::Right>)> {
        let (wr, q2) = self.r.transport_query(q1)?;
        let (ws, q3) = self.s.transport_query(&q2)?;
        Some(((wr, ws, q2), q3))
    }

    fn transport_reply(
        &self,
        (wr, ws, q2): &Self::World,
        r1: &Answer<Self::Left>,
        q3: &Question<Self::Right>,
    ) -> Option<Answer<Self::Right>> {
        let r2 = self.r.transport_reply(wr, r1, q2)?;
        self.s.transport_reply(ws, &r2, q3)
    }
}

/// Refinement check `R ⊑ S` on a *sample* of question/answer quadruples
/// (paper Def. 5.1): for every sampled pair of `S`-related questions there
/// must be an `R`-world relating them such that `R`-related answers are
/// `S`-related back at the original world.
///
/// This is the runtime analog of the refinement laws validated symbolically
/// by [`crate::algebra`]; it can only *refute* a refinement (by exhibiting a
/// counterexample from the sample), never prove it.
pub fn check_refinement_on<RC, SC>(
    r: &RC,
    s: &SC,
    samples: &[(
        Question<RC::Left>,
        Question<RC::Right>,
        Vec<(Answer<RC::Left>, Answer<RC::Right>)>,
    )],
) -> Result<(), String>
where
    RC: SimConv,
    SC: SimConv<Left = RC::Left, Right = RC::Right>,
{
    for (i, (q1, q2, answers)) in samples.iter().enumerate() {
        let s_worlds = s.match_query(q1, q2);
        if s_worlds.is_empty() {
            continue; // not S-related: nothing to check
        }
        let r_worlds = r.match_query(q1, q2);
        if r_worlds.is_empty() {
            return Err(format!(
                "sample {i}: questions are {}-related but not {}-related",
                s.name(),
                r.name()
            ));
        }
        // Some R-world must transport every R-related answer pair back to S.
        let ok = r_worlds.iter().any(|v| {
            answers.iter().all(|(n1, n2)| {
                !r.match_reply(v, n1, n2) || s_worlds.iter().any(|w| s.match_reply(w, n1, n2))
            })
        });
        if !ok {
            return Err(format!(
                "sample {i}: no {}-world transports answers back to {}",
                r.name(),
                s.name()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{CQuery, CReply, Signature, C};
    use mem::{Mem, Val};

    fn cq(n: i32) -> CQuery {
        CQuery {
            vf: Val::Ptr(0, 0),
            sig: Signature::int_fn(1),
            args: vec![Val::Int(n)],
            mem: Mem::new(),
        }
    }

    fn cr(n: i32) -> CReply {
        CReply {
            retval: Val::Int(n),
            mem: Mem::new(),
        }
    }

    #[test]
    fn identity_relates_equal_questions() {
        let id = IdConv::<C>::new();
        assert_eq!(id.match_query(&cq(1), &cq(1)).len(), 1);
        assert!(id.match_query(&cq(1), &cq(2)).is_empty());
        assert!(id.match_reply(&(), &cr(3), &cr(3)));
        assert!(!id.match_reply(&(), &cr(3), &cr(4)));
    }

    #[test]
    fn composition_of_identities_is_identity_like() {
        let c = ComposeConv::new(IdConv::<C>::new(), IdConv::<C>::new());
        let ws = c.match_query(&cq(1), &cq(1));
        assert_eq!(ws.len(), 1);
        assert!(c.match_reply(&ws[0], &cr(2), &cr(2)));
        assert!(!c.match_reply(&ws[0], &cr(2), &cr(3)));
        let (_, q) = c.transport_query(&cq(7)).unwrap();
        assert_eq!(q, cq(7));
    }

    #[test]
    fn refinement_id_refines_itself() {
        let id1 = IdConv::<C>::new();
        let id2 = IdConv::<C>::new();
        let samples = vec![(cq(1), cq(1), vec![(cr(2), cr(2)), (cr(3), cr(3))])];
        assert!(check_refinement_on(&id1, &id2, &samples).is_ok());
    }
}
