//! Deterministic LTS-runner counters and the structured JSON-lines trace
//! sink (observability layer, DESIGN.md §10).
//!
//! Two strictly separated artifact families live here:
//!
//! * **Counters** ([`LtsCounters`]) — pure functions of the semantic work
//!   performed on this thread: runs started, internal steps, external calls,
//!   drained events, per-[`crate::lts::RunOutcome`] terminal tallies, and the
//!   step count of the `core::sim` differential checker (which drives its
//!   own loop and therefore has its own counter). No wall-clock input ever
//!   feeds a counter, so counter deltas are byte-reproducible and — summed
//!   per-item in input order — independent of `--jobs`.
//! * **The JSON-lines trace sink** — enabled per-run by
//!   [`crate::lts::TraceMode::Json`]; the budgeted runner appends one line
//!   per event (`run-start`, `step`, `external`, `terminal`) under schema
//!   `compcerto-obs/1`. The runner's single outer bookkeeping point emits
//!   the `terminal` line exactly once per run (the ring trace and the sink
//!   never double-report the final stuck/answer event; see the regression
//!   test in `core/tests/obs_budget.rs`).
//!
//! Step events are capped at [`MAX_STEP_EVENTS`] per run so a long run
//! cannot blow up the sink; `run-start`, `external` and `terminal` events
//! are always emitted.

use std::cell::{Cell, RefCell};

/// Cap on per-run `step` events appended to the JSON-lines sink. The
/// `run-start`/`external`/`terminal` events are exempt.
pub const MAX_STEP_EVENTS: u64 = 64;

/// Schema identifier stamped on the `run-start` event of every JSON trace.
pub const OBS_SCHEMA: &str = "compcerto-obs/1";

/// Snapshot of the per-thread LTS counters (cumulative since thread start).
/// Take two snapshots and [`LtsCounters::since`] for a delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LtsCounters {
    /// Budgeted runs started ([`crate::lts::run_budgeted`] entries).
    pub runs: u64,
    /// Internal steps taken across all runs (resumes included).
    pub steps: u64,
    /// Steps taken by the `core::sim` differential checker's own loop.
    pub sim_steps: u64,
    /// Outgoing external calls handed to the environment.
    pub external_calls: u64,
    /// Observable events drained by `step_into` across all runs.
    pub events: u64,
    /// Runs ending in [`crate::lts::RunOutcome::Complete`].
    pub completes: u64,
    /// Runs ending in [`crate::lts::RunOutcome::Wrong`].
    pub wrongs: u64,
    /// Runs ending in [`crate::lts::RunOutcome::EnvRefused`].
    pub env_refused: u64,
    /// Runs ending in [`crate::lts::RunOutcome::OutOfFuel`].
    pub out_of_fuel: u64,
    /// Runs ending in [`crate::lts::RunOutcome::OutOfMemory`].
    pub out_of_memory: u64,
    /// Runs ending in [`crate::lts::RunOutcome::DepthExceeded`].
    pub depth_exceeded: u64,
    /// Runs ending in [`crate::lts::RunOutcome::TimedOut`].
    pub timed_out: u64,
}

impl LtsCounters {
    /// Field-wise saturating difference `self - earlier`.
    #[must_use]
    pub fn since(&self, earlier: &LtsCounters) -> LtsCounters {
        LtsCounters {
            runs: self.runs.saturating_sub(earlier.runs),
            steps: self.steps.saturating_sub(earlier.steps),
            sim_steps: self.sim_steps.saturating_sub(earlier.sim_steps),
            external_calls: self.external_calls.saturating_sub(earlier.external_calls),
            events: self.events.saturating_sub(earlier.events),
            completes: self.completes.saturating_sub(earlier.completes),
            wrongs: self.wrongs.saturating_sub(earlier.wrongs),
            env_refused: self.env_refused.saturating_sub(earlier.env_refused),
            out_of_fuel: self.out_of_fuel.saturating_sub(earlier.out_of_fuel),
            out_of_memory: self.out_of_memory.saturating_sub(earlier.out_of_memory),
            depth_exceeded: self.depth_exceeded.saturating_sub(earlier.depth_exceeded),
            timed_out: self.timed_out.saturating_sub(earlier.timed_out),
        }
    }
}

thread_local! {
    static COUNTERS: Cell<LtsCounters> = const { Cell::new(LtsCounters {
        runs: 0,
        steps: 0,
        sim_steps: 0,
        external_calls: 0,
        events: 0,
        completes: 0,
        wrongs: 0,
        env_refused: 0,
        out_of_fuel: 0,
        out_of_memory: 0,
        depth_exceeded: 0,
        timed_out: 0,
    }) };
    static SINK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Current cumulative counters for *this thread*.
#[must_use]
pub fn counters() -> LtsCounters {
    COUNTERS.with(Cell::get)
}

/// Bump helper used by the budgeted runner and the simulation checker.
pub(crate) fn bump(f: impl FnOnce(&mut LtsCounters)) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

/// Drain this thread's JSON-lines trace sink (one `compcerto-obs/1` event
/// per line, in emission order). Returns an empty vector when no run used
/// [`crate::lts::TraceMode::Json`] since the last drain.
#[must_use]
pub fn take_trace() -> Vec<String> {
    SINK.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Number of lines currently buffered in this thread's trace sink.
#[must_use]
pub fn trace_len() -> usize {
    SINK.with(|s| s.borrow().len())
}

/// Single append point for the trace sink. A sink-write fault armed via
/// [`crate::envfault`] makes this append fail; the sink degrades gracefully
/// by dropping the line and bumping the per-thread drop counter (read with
/// [`crate::envfault::take_sink_dropped`]) — the run itself continues.
fn sink_push(line: String) {
    if crate::envfault::sink_write_fails() {
        return;
    }
    SINK.with(|s| s.borrow_mut().push(line));
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn emit_run_start(lts_name: &str) {
    let line = format!(
        "{{\"schema\":\"{}\",\"ev\":\"run-start\",\"lts\":\"{}\"}}",
        OBS_SCHEMA,
        escape(lts_name)
    );
    sink_push(line);
}

pub(crate) fn emit_step(n: u64) {
    sink_push(format!("{{\"ev\":\"step\",\"n\":{n}}}"));
}

pub(crate) fn emit_external(n: u64) {
    sink_push(format!("{{\"ev\":\"external\",\"n\":{n}}}"));
}

pub(crate) fn emit_terminal(outcome: &str, steps: u64) {
    sink_push(format!(
        "{{\"ev\":\"terminal\",\"outcome\":\"{outcome}\",\"steps\":{steps}}}"
    ));
}
