//! The global symbol table and initial-memory construction.
//!
//! CompCertO relies on a global symbol table used as-is by every module
//! (paper App. A.3): linking fixes a single assignment of memory blocks to
//! global identifiers, and every translation unit resolves symbols against
//! it. We model this directly: entry `i` of the table owns block `i` of the
//! initial memory, functions live at `Ptr(block, 0)`, and each module's open
//! semantics is parameterized by the shared table.

use std::collections::BTreeMap;
use std::fmt;

use mem::{BlockId, Chunk, Mem, MemError, Perm, Val};

use crate::iface::Signature;

/// A global identifier (function or variable name).
pub type Ident = String;

/// Initialization datum for a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum InitDatum {
    /// A 32-bit integer.
    Int32(i32),
    /// A 64-bit integer.
    Int64(i64),
    /// `n` bytes of zeroed space.
    Space(i64),
}

impl InitDatum {
    /// Size of the datum in bytes.
    pub fn size(&self) -> i64 {
        match self {
            InitDatum::Int32(_) => 4,
            InitDatum::Int64(_) => 8,
            InitDatum::Space(n) => (*n).max(0),
        }
    }
}

/// What a global identifier denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobKind {
    /// A function with the given signature.
    Func(Signature),
    /// A variable with initialization data.
    Var {
        /// Initial contents, laid out in order.
        init: Vec<InitDatum>,
        /// Is the variable read-only (a constant)?
        readonly: bool,
    },
}

/// The global symbol table shared by all components of a linked program.
///
/// # Example
///
/// ```
/// use compcerto_core::symtab::{GlobKind, SymbolTable};
/// use compcerto_core::iface::Signature;
///
/// let mut tbl = SymbolTable::new();
/// tbl.define("f".to_string(), GlobKind::Func(Signature::int_fn(1)));
/// let b = tbl.block_of("f").unwrap();
/// assert_eq!(tbl.ident_of(b), Some("f"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolTable {
    entries: Vec<(Ident, GlobKind)>,
    index: BTreeMap<Ident, BlockId>,
}

/// Error raised when two definitions of the same identifier clash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateSymbol(pub Ident);

impl fmt::Display for DuplicateSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duplicate definition of symbol `{}`", self.0)
    }
}

impl std::error::Error for DuplicateSymbol {}

impl SymbolTable {
    /// The empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Add a definition; returns the block the identifier will occupy.
    ///
    /// Re-defining an identifier with an *identical* kind is idempotent
    /// (several modules may declare the same external function).
    pub fn define(&mut self, name: Ident, kind: GlobKind) -> BlockId {
        if let Some(&b) = self.index.get(&name) {
            return b;
        }
        let b = self.entries.len() as BlockId;
        self.index.insert(name.clone(), b);
        self.entries.push((name, kind));
        b
    }

    /// Add a definition, failing on a clash with a *different* kind.
    ///
    /// # Errors
    /// Returns [`DuplicateSymbol`] when `name` is already defined with a
    /// different [`GlobKind`].
    pub fn try_define(&mut self, name: Ident, kind: GlobKind) -> Result<BlockId, DuplicateSymbol> {
        if let Some(&b) = self.index.get(&name) {
            if self.entries[b as usize].1 == kind {
                return Ok(b);
            }
            return Err(DuplicateSymbol(name));
        }
        Ok(self.define(name, kind))
    }

    /// Block owned by `name`, if defined.
    pub fn block_of(&self, name: &str) -> Option<BlockId> {
        self.index.get(name).copied()
    }

    /// Identifier owning block `b`, if it is a global block.
    pub fn ident_of(&self, b: BlockId) -> Option<&str> {
        self.entries.get(b as usize).map(|(n, _)| n.as_str())
    }

    /// Kind of the definition owning block `b`.
    pub fn kind_of(&self, b: BlockId) -> Option<&GlobKind> {
        self.entries.get(b as usize).map(|(_, k)| k)
    }

    /// The function pointer value for `name`, if it denotes a function.
    pub fn func_ptr(&self, name: &str) -> Option<Val> {
        let b = self.block_of(name)?;
        match self.kind_of(b)? {
            GlobKind::Func(_) => Some(Val::Ptr(b, 0)),
            GlobKind::Var { .. } => None,
        }
    }

    /// Signature of the function at pointer value `vf`, if any.
    pub fn sig_of_ptr(&self, vf: &Val) -> Option<&Signature> {
        match vf {
            Val::Ptr(b, 0) => match self.kind_of(*b)? {
                GlobKind::Func(sg) => Some(sg),
                GlobKind::Var { .. } => None,
            },
            _ => None,
        }
    }

    /// Number of entries (also the number of global blocks).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(block, ident, kind)` in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &str, &GlobKind)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (n, k))| (i as BlockId, n.as_str(), k))
    }

    /// Build the initial memory: one block per entry, in table order.
    /// Function blocks are 1-byte, read-only; variable blocks hold their
    /// initialization data; read-only variables lose write permission.
    ///
    /// # Errors
    /// Propagates memory errors from writing initialization data (cannot
    /// happen for well-formed tables).
    pub fn build_init_mem(&self) -> Result<Mem, MemError> {
        let mut m = Mem::new();
        for (_, kind) in &self.entries {
            match kind {
                GlobKind::Func(_) => {
                    let b = m.alloc(0, 1);
                    m.drop_perm(b, 0, 1, Perm::Readable)?;
                }
                GlobKind::Var { init, readonly } => {
                    let size: i64 = init.iter().map(|d| d.size()).sum();
                    let b = m.alloc(0, size);
                    let mut ofs = 0;
                    for d in init {
                        match d {
                            InitDatum::Int32(n) => m.store(Chunk::I32, b, ofs, Val::Int(*n))?,
                            InitDatum::Int64(n) => m.store(Chunk::I64, b, ofs, Val::Long(*n))?,
                            InitDatum::Space(_) => {
                                for z in ofs..ofs + d.size() {
                                    m.store(Chunk::I8U, b, z, Val::Int(0))?;
                                }
                            }
                        }
                        ofs += d.size();
                    }
                    if *readonly {
                        m.drop_perm(b, 0, size, Perm::Readable)?;
                    } else {
                        m.drop_perm(b, 0, size, Perm::Writable)?;
                    }
                }
            }
        }
        Ok(m)
    }

    /// Check the read-only-globals part of the `va` invariant: every
    /// read-only variable still holds its initialization data in `m`
    /// (paper §5, component `vainj`: "global constants have their prescribed
    /// values in the source memory").
    pub fn romem_consistent(&self, m: &Mem) -> bool {
        for (b, _, kind) in self.iter() {
            if let GlobKind::Var {
                init,
                readonly: true,
            } = kind
            {
                let mut ofs = 0;
                for d in init {
                    let ok = match d {
                        InitDatum::Int32(n) => m.load(Chunk::I32, b, ofs) == Ok(Val::Int(*n)),
                        InitDatum::Int64(n) => m.load(Chunk::I64, b, ofs) == Ok(Val::Long(*n)),
                        InitDatum::Space(_) => true,
                    };
                    if !ok {
                        return false;
                    }
                    ofs += d.size();
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        let mut t = SymbolTable::new();
        t.define("f".into(), GlobKind::Func(Signature::int_fn(1)));
        t.define(
            "k".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(42)],
                readonly: true,
            },
        );
        t.define(
            "g".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int64(-1), InitDatum::Space(8)],
                readonly: false,
            },
        );
        t
    }

    #[test]
    fn blocks_in_definition_order() {
        let t = table();
        assert_eq!(t.block_of("f"), Some(0));
        assert_eq!(t.block_of("k"), Some(1));
        assert_eq!(t.block_of("g"), Some(2));
        assert_eq!(t.ident_of(2), Some("g"));
        assert_eq!(t.func_ptr("f"), Some(Val::Ptr(0, 0)));
        assert_eq!(t.func_ptr("k"), None);
    }

    #[test]
    fn duplicate_definitions() {
        let mut t = table();
        // Identical redefinition is idempotent.
        assert_eq!(
            t.try_define("f".into(), GlobKind::Func(Signature::int_fn(1))),
            Ok(0)
        );
        // Conflicting redefinition fails.
        assert!(t
            .try_define("f".into(), GlobKind::Func(Signature::int_fn(2)))
            .is_err());
    }

    #[test]
    fn init_mem_layout() {
        let t = table();
        let m = t.build_init_mem().unwrap();
        assert_eq!(m.next_block(), 3);
        assert_eq!(m.load(Chunk::I32, 1, 0), Ok(Val::Int(42)));
        assert_eq!(m.load(Chunk::I64, 2, 0), Ok(Val::Long(-1)));
        assert_eq!(m.load(Chunk::I8U, 2, 10), Ok(Val::Int(0)));
        // Read-only globals reject stores.
        assert!(m.clone().store(Chunk::I32, 1, 0, Val::Int(0)).is_err());
        // Writable globals accept them.
        assert!(m.clone().store(Chunk::I64, 2, 0, Val::Long(5)).is_ok());
    }

    #[test]
    fn romem_consistency() {
        let t = table();
        let m = t.build_init_mem().unwrap();
        assert!(t.romem_consistent(&m));
    }

    #[test]
    fn sig_of_ptr() {
        let t = table();
        assert_eq!(t.sig_of_ptr(&Val::Ptr(0, 0)), Some(&Signature::int_fn(1)));
        assert_eq!(t.sig_of_ptr(&Val::Ptr(0, 4)), None);
        assert_eq!(t.sig_of_ptr(&Val::Int(0)), None);
    }
}
