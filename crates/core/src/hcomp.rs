//! Horizontal composition `L1 ⊕ L2` (paper Def. 3.2 and Fig. 5).
//!
//! Both components play the same game `A ↠ A`; the composite maintains an
//! alternating stack of suspended activations so the components can call each
//! other with arbitrary mutual-recursion depth. An outgoing question that
//! neither component accepts escapes to the environment (rule *x∘*); the
//! environment's answer resumes the innermost suspended activation (rule
//! *x•*).

use std::fmt;
use std::rc::Rc;

use crate::iface::{Answer, LanguageInterface, Question};
use crate::lts::{Lts, Step, Stuck};

/// Which component of the composition a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// A suspended or active activation of one of the two components.
#[derive(Debug, Clone)]
pub struct Frame<S1, S2> {
    side: Side,
    left: Option<S1>,
    right: Option<S2>,
}

impl<S1, S2> Frame<S1, S2> {
    fn left(s: S1) -> Frame<S1, S2> {
        Frame {
            side: Side::Left,
            left: Some(s),
            right: None,
        }
    }

    fn right(s: S2) -> Frame<S1, S2> {
        Frame {
            side: Side::Right,
            left: None,
            right: Some(s),
        }
    }
}

/// A persistent (structure-shared) stack: cloning is O(1), which keeps each
/// step of the composite O(active frame) instead of O(recursion depth).
#[derive(Debug, Clone)]
pub struct PStack<T>(Option<Rc<PNode<T>>>);

#[derive(Debug)]
struct PNode<T> {
    head: T,
    len: usize,
    tail: PStack<T>,
}

impl<T: Clone> PStack<T> {
    /// The empty stack.
    pub fn new() -> PStack<T> {
        PStack(None)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.as_ref().map(|n| n.len).unwrap_or(0)
    }

    /// Is the stack empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// The stack with `item` pushed.
    pub fn push(&self, item: T) -> PStack<T> {
        PStack(Some(Rc::new(PNode {
            head: item,
            len: self.len() + 1,
            tail: self.clone(),
        })))
    }

    /// The top element.
    pub fn top(&self) -> Option<&T> {
        self.0.as_ref().map(|n| &n.head)
    }

    /// The stack without its top element.
    pub fn pop(&self) -> Option<(T, PStack<T>)> {
        self.0.as_ref().map(|n| (n.head.clone(), n.tail.clone()))
    }

    /// The stack with the top element replaced.
    pub fn replace_top(&self, item: T) -> PStack<T> {
        match self.pop() {
            Some((_, rest)) => rest.push(item),
            None => PStack::new().push(item),
        }
    }
}

impl<T: Clone> Default for PStack<T> {
    fn default() -> Self {
        PStack::new()
    }
}

/// State of the composite: a non-empty stack of activations (the `(S1+S2)*`
/// of Def. 3.2). The top of the stack is the active component.
#[derive(Debug, Clone)]
pub struct HState<S1, S2> {
    stack: PStack<Frame<S1, S2>>,
}

impl<S1, S2> HState<S1, S2>
where
    S1: Clone,
    S2: Clone,
{
    /// Current activation depth (for tests and diagnostics).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// The horizontal composition `L1 ⊕ L2` of two components over the same
/// interface (paper Def. 3.2).
///
/// Questions accepted by `L1` take priority when both components accept
/// (linking with overlapping domains is ruled out upstream by the symbol
/// table, so this tie-break is never exercised in practice).
///
/// # Example
///
/// Composition is itself an [`Lts`], so it nests: `(l1 ⊕ l2) ⊕ l3` models
/// three-way linking.
#[derive(Debug, Clone)]
pub struct HComp<L1, L2> {
    l1: L1,
    l2: L2,
}

impl<I, L1, L2> HComp<L1, L2>
where
    I: LanguageInterface,
    L1: Lts<I = I, O = I>,
    L2: Lts<I = I, O = I>,
{
    /// Compose two components over the same interface.
    pub fn new(l1: L1, l2: L2) -> HComp<L1, L2> {
        HComp { l1, l2 }
    }

    /// The left component.
    pub fn left(&self) -> &L1 {
        &self.l1
    }

    /// The right component.
    pub fn right(&self) -> &L2 {
        &self.l2
    }

    fn push_for(&self, q: &Question<I>) -> Option<Result<Frame<L1::State, L2::State>, Stuck>> {
        if self.l1.accepts(q) {
            Some(self.l1.initial(q).map(Frame::left))
        } else if self.l2.accepts(q) {
            Some(self.l2.initial(q).map(Frame::right))
        } else {
            None
        }
    }
}

impl<I, L1, L2> Lts for HComp<L1, L2>
where
    I: LanguageInterface,
    I::Question: fmt::Debug + Clone,
    I::Answer: fmt::Debug + Clone,
    L1: Lts<I = I, O = I>,
    L2: Lts<I = I, O = I>,
{
    type I = I;
    type O = I;
    type State = HState<L1::State, L2::State>;

    fn name(&self) -> String {
        format!("({} ⊕ {})", self.l1.name(), self.l2.name())
    }

    fn accepts(&self, q: &Question<I>) -> bool {
        // Rule i∘: D = D1 ∪ D2.
        self.l1.accepts(q) || self.l2.accepts(q)
    }

    fn initial(&self, q: &Question<I>) -> Result<Self::State, Stuck> {
        match self.push_for(q) {
            Some(frame) => Ok(HState {
                stack: PStack::new().push(frame?),
            }),
            None => Err(Stuck::new("hcomp: question accepted by neither component")),
        }
    }

    fn step(&self, s: &Self::State) -> Step<Self::State, Question<I>, Answer<I>> {
        // The stack is non-empty by construction; if a corrupted state ever
        // violates that, go wrong instead of panicking.
        let Some(top) = s.stack.top() else {
            return Step::Stuck(Stuck::new("hcomp: empty activation stack"));
        };
        // Run the active component one step.
        let inner: Step<Frame<L1::State, L2::State>, Question<I>, Answer<I>> = match (
            top.side,
            top.left.as_ref(),
            top.right.as_ref(),
        ) {
            (Side::Left, Some(st), _) => match self.l1.step(st) {
                Step::Internal(st, evs) => Step::Internal(Frame::left(st), evs),
                Step::Final(a) => Step::Final(a),
                Step::External(q) => Step::External(q),
                Step::Stuck(x) => Step::Stuck(x),
            },
            (Side::Right, _, Some(st)) => match self.l2.step(st) {
                Step::Internal(st, evs) => Step::Internal(Frame::right(st), evs),
                Step::Final(a) => Step::Final(a),
                Step::External(q) => Step::External(q),
                Step::Stuck(x) => Step::Stuck(x),
            },
            _ => return Step::Stuck(Stuck::new("hcomp: frame side/state mismatch")),
        };
        match inner {
            // Rule "run".
            Step::Internal(frame, evs) => Step::Internal(
                HState {
                    stack: s.stack.replace_top(frame),
                },
                evs,
            ),
            // Rules i• (empty rest) and "pop" (resume the caller below).
            Step::Final(a) => {
                if s.stack.len() == 1 {
                    Step::Final(a)
                } else {
                    let Some((_, rest)) = s.stack.pop() else {
                        return Step::Stuck(Stuck::new("hcomp: empty activation stack"));
                    };
                    let Some(caller) = rest.top() else {
                        return Step::Stuck(Stuck::new("hcomp: no caller below final frame"));
                    };
                    let resumed = match (caller.side, caller.left.as_ref(), caller.right.as_ref())
                    {
                        (Side::Left, Some(st), _) => self.l1.resume(st, a).map(Frame::left),
                        (Side::Right, _, Some(st)) => self.l2.resume(st, a).map(Frame::right),
                        _ => Err(Stuck::new("hcomp: frame side/state mismatch")),
                    };
                    match resumed {
                        Ok(frame) => Step::Internal(
                            HState {
                                stack: rest.replace_top(frame),
                            },
                            vec![],
                        ),
                        Err(stuck) => Step::Stuck(stuck),
                    }
                }
            }
            // Rules "push" (cross/self call) and x∘ (escape to environment).
            Step::External(q) => match self.push_for(&q) {
                Some(Ok(frame)) => Step::Internal(
                    HState {
                        stack: s.stack.push(frame),
                    },
                    vec![],
                ),
                Some(Err(stuck)) => Step::Stuck(stuck),
                None => Step::External(q),
            },
            Step::Stuck(x) => Step::Stuck(x),
        }
    }

    fn resume(&self, s: &Self::State, a: Answer<I>) -> Result<Self::State, Stuck> {
        // Rule x•: the environment's answer resumes the active component.
        let Some(top) = s.stack.top() else {
            return Err(Stuck::new("hcomp: empty activation stack"));
        };
        let frame = match (top.side, top.left.as_ref(), top.right.as_ref()) {
            (Side::Left, Some(st), _) => Frame::left(self.l1.resume(st, a)?),
            (Side::Right, _, Some(st)) => Frame::right(self.l2.resume(st, a)?),
            _ => return Err(Stuck::new("hcomp: frame side/state mismatch")),
        };
        Ok(HState {
            stack: s.stack.replace_top(frame),
        })
    }

    fn measure(&self, s: &Self::State) -> crate::lts::StateMeasure {
        // The top frame owns the current memory; every frame below it is a
        // suspended activation and counts as one call level.
        let Some(top) = s.stack.top() else {
            return crate::lts::StateMeasure::default();
        };
        let m = match top.side {
            Side::Left => top
                .left
                .as_ref()
                .map(|st| self.l1.measure(st))
                .unwrap_or_default(),
            Side::Right => top
                .right
                .as_ref()
                .map(|st| self.l2.measure(st))
                .unwrap_or_default(),
        };
        crate::lts::StateMeasure {
            mem_bytes: m.mem_bytes,
            call_depth: m
                .call_depth
                .saturating_add(s.stack.len().saturating_sub(1) as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pstack_push_pop_share_structure() {
        let s0: PStack<i32> = PStack::new();
        assert!(s0.is_empty());
        let s1 = s0.push(1);
        let s2 = s1.push(2);
        let s3 = s2.push(3);
        assert_eq!(s3.len(), 3);
        assert_eq!(s3.top(), Some(&3));
        // Popping returns the shared tail; the original is untouched.
        let (top, rest) = s3.pop().unwrap();
        assert_eq!(top, 3);
        assert_eq!(rest.len(), 2);
        assert_eq!(s3.len(), 3);
        // replace_top swaps only the head.
        let s3b = s3.replace_top(99);
        assert_eq!(s3b.top(), Some(&99));
        assert_eq!(s3b.pop().unwrap().1.top(), Some(&2));
        assert_eq!(s3.top(), Some(&3), "original unchanged");
    }

    #[test]
    fn pstack_replace_top_on_empty_pushes() {
        let s: PStack<i32> = PStack::new();
        let s = s.replace_top(7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.top(), Some(&7));
    }
}
