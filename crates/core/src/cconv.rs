//! The whole-compiler convention `C = R* · wt · CA · vainj` (paper §5) as a
//! single executable checker.
//!
//! [`CConv`] fuses the four components for the end-to-end harness:
//!
//! * the `R*` component is realized by the injection *inference* inside
//!   [`Ca`] (the caller's choice of CKLR collapses, on concrete data, to the
//!   injection actually relating the memories — paper Lemma 5.3's fusions
//!   performed semantically);
//! * `wt` checks well-typedness of the C-level question and answer
//!   (paper App. B.2);
//! * `CA` is the structural calling convention (paper App. C);
//! * `vainj` additionally requires read-only global constants to hold their
//!   prescribed values (paper §5, App. B.3) — checked on both memories.
//!
//! The symbolic counterpart — that the per-pass conventions of Table 3
//! compose and normalize to exactly this convention — is established by
//! [`crate::algebra::derive`].

use crate::cc::{Ca, CaWorld};
use crate::conv::SimConv;
use crate::iface::{ARegs, CQuery, CReply, A, C};
use crate::invariants::{wt_query, wt_reply};
use crate::symtab::SymbolTable;

/// The executable whole-compiler convention `C : C ⇔ A` (paper §5).
#[derive(Debug, Clone)]
pub struct CConv {
    ca: Ca,
    symtab: SymbolTable,
}

impl CConv {
    /// Build the convention for a program with the given symbol table.
    pub fn new(symtab: SymbolTable) -> CConv {
        CConv {
            ca: Ca::new(symtab.len() as u32),
            symtab,
        }
    }

    /// The underlying structural convention.
    pub fn ca(&self) -> &Ca {
        &self.ca
    }
}

impl SimConv for CConv {
    type Left = C;
    type Right = A;
    type World = CaWorld;

    fn name(&self) -> String {
        "R* · wt · CA · vainj".into()
    }

    fn match_query(&self, q1: &CQuery, q2: &ARegs) -> Vec<CaWorld> {
        // wt: the C-level call is well-typed.
        if !wt_query(q1) {
            return vec![];
        }
        // vainj: read-only globals hold their constants (both levels).
        if !self.symtab.romem_consistent(&q1.mem) || !self.symtab.romem_consistent(&q2.mem) {
            return vec![];
        }
        self.ca.match_query(q1, q2)
    }

    fn match_reply(&self, w: &CaWorld, r1: &CReply, r2: &ARegs) -> bool {
        wt_reply(&w.sig, r1)
            && self.symtab.romem_consistent(&r1.mem)
            && self.symtab.romem_consistent(&r2.mem)
            && self.ca.match_reply(w, r1, r2)
    }

    fn transport_query(&self, q1: &CQuery) -> Option<(CaWorld, ARegs)> {
        if !wt_query(q1) || !self.symtab.romem_consistent(&q1.mem) {
            return None;
        }
        self.ca.transport_query(q1)
    }

    fn transport_reply(&self, w: &CaWorld, r1: &CReply, q2: &ARegs) -> Option<ARegs> {
        self.ca.transport_reply(w, r1, q2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::Signature;
    use crate::symtab::{GlobKind, InitDatum};
    use mem::{Chunk, Val};

    fn setup() -> (CConv, SymbolTable) {
        let mut tbl = SymbolTable::new();
        tbl.define("f".into(), GlobKind::Func(Signature::int_fn(1)));
        tbl.define(
            "k".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(5)],
                readonly: true,
            },
        );
        (CConv::new(tbl.clone()), tbl)
    }

    #[test]
    fn rejects_ill_typed_calls() {
        let (c, tbl) = setup();
        let m = tbl.build_init_mem().unwrap();
        let bad = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: Signature::int_fn(1),
            args: vec![Val::Long(1)], // wrong type for an int parameter
            mem: m,
        };
        assert!(c.transport_query(&bad).is_none());
    }

    #[test]
    fn rejects_corrupted_constants() {
        let (c, tbl) = setup();
        let m = tbl.build_init_mem().unwrap();
        let good = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: Signature::int_fn(1),
            args: vec![Val::Int(1)],
            mem: m.clone(),
        };
        let (w, qa) = c.transport_query(&good).expect("well-formed call");
        assert_eq!(c.match_query(&good, &qa).len(), 1);

        // A reply whose memory violates the read-only constant is rejected
        // even if everything else matches.
        let mut bad_mem = m;
        let kb = tbl.block_of("k").unwrap();
        bad_mem.raise_perm(kb, 0, 4, mem::Perm::Writable).unwrap();
        bad_mem.store(Chunk::I32, kb, 0, Val::Int(99)).unwrap();
        let r1 = CReply {
            retval: Val::Int(0),
            mem: bad_mem.clone(),
        };
        let mut rs = qa.rs.clone();
        rs.pc = qa.rs.ra;
        rs.set(crate::iface::abi::RESULT_REG, Val::Int(0));
        let r2 = ARegs { rs, mem: bad_mem };
        assert!(!c.match_reply(&w, &r1, &r2));
    }

    #[test]
    fn rejects_ill_typed_results() {
        let (c, tbl) = setup();
        let m = tbl.build_init_mem().unwrap();
        let q = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: Signature::int_fn(1),
            args: vec![Val::Int(1)],
            mem: m.clone(),
        };
        let (w, qa) = c.transport_query(&q).unwrap();
        let r1 = CReply {
            retval: Val::Long(3), // int function returning a long
            mem: m.clone(),
        };
        let mut rs = qa.rs.clone();
        rs.pc = qa.rs.ra;
        rs.set(crate::iface::abi::RESULT_REG, Val::Long(3));
        let r2 = ARegs { rs, mem: m };
        assert!(!c.match_reply(&w, &r1, &r2));
    }
}
