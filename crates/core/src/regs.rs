//! Machine registers, abstract locations, and register files.

use std::collections::BTreeMap;
use std::fmt;

use mem::Val;

/// Number of general-purpose machine registers (`r0..r15`).
pub const NREGS: usize = 16;

/// A machine register `r0..r15`.
///
/// The ABI roles are defined in [`crate::iface::abi`]: `r0..r3` carry
/// arguments, `r0` the result, `r8..r13` are callee-save, `r14`/`r15` are
/// code-generator scratch registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mreg(pub u8);

impl Mreg {
    /// All machine registers, in index order.
    pub fn all() -> impl Iterator<Item = Mreg> {
        (0..NREGS as u8).map(Mreg)
    }

    /// Index of the register in a register file array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Mreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An abstract location (CompCert's `loc`): either a machine register or a
/// slot in the activation record.
///
/// * `Local` slots are private to the current activation (used for spills);
/// * `Incoming` slots are the caller's outgoing-argument area, where this
///   function finds its stack-passed parameters;
/// * `Outgoing` slots are this function's outgoing-argument area, where it
///   writes stack-passed arguments for its own calls.
///
/// Slot offsets are in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    /// A machine register.
    Reg(Mreg),
    /// A spill slot local to the activation, at byte offset `.0`.
    Local(i64),
    /// A stack-passed parameter of the current function.
    Incoming(i64),
    /// A stack-passed argument for a call performed by the current function.
    Outgoing(i64),
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Reg(r) => write!(f, "{r}"),
            Loc::Local(o) => write!(f, "local({o})"),
            Loc::Incoming(o) => write!(f, "incoming({o})"),
            Loc::Outgoing(o) => write!(f, "outgoing({o})"),
        }
    }
}

/// A location map `ls : loc → val` (CompCert's `Locmap.t`), with
/// [`Val::Undef`] as the default.
///
/// This is the data carried by questions and answers of the
/// [`crate::iface::L`] interface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Locset {
    map: BTreeMap<Loc, Val>,
}

impl Locset {
    /// The everywhere-`Undef` location map.
    pub fn new() -> Locset {
        Locset::default()
    }

    /// Value at location `l` (`Undef` if never set).
    pub fn get(&self, l: Loc) -> Val {
        self.map.get(&l).copied().unwrap_or(Val::Undef)
    }

    /// Set location `l` to `v`.
    pub fn set(&mut self, l: Loc, v: Val) {
        self.map.insert(l, v);
    }

    /// Builder-style [`Locset::set`].
    pub fn with(mut self, l: Loc, v: Val) -> Locset {
        self.set(l, v);
        self
    }

    /// Iterate over explicitly-set bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, Val)> + '_ {
        self.map.iter().map(|(l, v)| (*l, *v))
    }

    /// Remove all `Outgoing` bindings (used when entering a function: the
    /// callee sees the caller's outgoing slots as its `Incoming` slots).
    pub fn shift_incoming(&self) -> Locset {
        let mut out = Locset::new();
        for (l, v) in self.iter() {
            match l {
                Loc::Outgoing(o) => out.set(Loc::Incoming(o), v),
                Loc::Reg(r) => out.set(Loc::Reg(r), v),
                _ => {}
            }
        }
        out
    }
}

impl FromIterator<(Loc, Val)> for Locset {
    fn from_iter<T: IntoIterator<Item = (Loc, Val)>>(iter: T) -> Self {
        let mut ls = Locset::new();
        for (l, v) in iter {
            ls.set(l, v);
        }
        ls
    }
}

/// The architecture-level register file of the [`crate::iface::A`] interface:
/// the sixteen general-purpose registers plus `pc`, `sp` and `ra`.
#[derive(Debug, Clone, PartialEq)]
pub struct Regset {
    /// General-purpose registers.
    pub regs: [Val; NREGS],
    /// Program counter.
    pub pc: Val,
    /// Stack pointer.
    pub sp: Val,
    /// Return address.
    pub ra: Val,
}

impl Default for Regset {
    fn default() -> Self {
        Regset {
            regs: [Val::Undef; NREGS],
            pc: Val::Undef,
            sp: Val::Undef,
            ra: Val::Undef,
        }
    }
}

impl Regset {
    /// The all-`Undef` register file.
    pub fn new() -> Regset {
        Regset::default()
    }

    /// Value of general-purpose register `r`.
    pub fn get(&self, r: Mreg) -> Val {
        self.regs[r.index()]
    }

    /// Set general-purpose register `r`.
    pub fn set(&mut self, r: Mreg, v: Val) {
        self.regs[r.index()] = v;
    }

    /// Builder-style [`Regset::set`].
    pub fn with(mut self, r: Mreg, v: Val) -> Regset {
        self.set(r, v);
        self
    }
}

impl fmt::Display for Regset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc={} sp={} ra={}", self.pc, self.sp, self.ra)?;
        for r in Mreg::all() {
            let v = self.get(r);
            if v.is_defined() {
                write!(f, " {r}={v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locset_defaults_to_undef() {
        let ls = Locset::new();
        assert_eq!(ls.get(Loc::Reg(Mreg(3))), Val::Undef);
        let ls = ls.with(Loc::Reg(Mreg(3)), Val::Int(7));
        assert_eq!(ls.get(Loc::Reg(Mreg(3))), Val::Int(7));
    }

    #[test]
    fn shift_incoming_renames_outgoing_slots() {
        let ls = Locset::new()
            .with(Loc::Outgoing(8), Val::Int(1))
            .with(Loc::Local(0), Val::Int(2))
            .with(Loc::Reg(Mreg(0)), Val::Int(3));
        let shifted = ls.shift_incoming();
        assert_eq!(shifted.get(Loc::Incoming(8)), Val::Int(1));
        assert_eq!(shifted.get(Loc::Local(0)), Val::Undef);
        assert_eq!(shifted.get(Loc::Reg(Mreg(0))), Val::Int(3));
    }

    #[test]
    fn regset_get_set() {
        let mut rs = Regset::new();
        rs.set(Mreg(5), Val::Long(9));
        assert_eq!(rs.get(Mreg(5)), Val::Long(9));
        assert_eq!(rs.get(Mreg(6)), Val::Undef);
    }
}
