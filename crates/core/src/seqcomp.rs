//! Sequential (layered) composition `L1 ∘ L2` (paper §3.5).
//!
//! For `L1 : B ↠ C` and `L2 : A ↠ B`, calls propagate from the environment
//! into `L1`, from `L1` into `L2`, and from `L2` out to the environment —
//! but `L2` cannot call back into `L1`. This is the operator used to stack
//! the NIC-driver scenario of paper Fig. 7
//! (`Asm(p') ∘ σ'_io ∘ σ_NIC`).
//!
//! In the homogeneous case `A = B = C`, sequential composition
//! under-approximates horizontal composition [`crate::hcomp::HComp`].

use crate::iface::{Answer, LanguageInterface, Question};
use crate::lts::{Lts, Step, Stuck};

/// State of a sequential composition: the upper activation plus, while the
/// upper component waits on it, a lower activation.
#[derive(Debug, Clone)]
pub struct SeqState<S1, S2> {
    upper: S1,
    lower: Option<S2>,
}

/// The sequential composition `L1 ∘ L2` (paper §3.5): `L1 : B ↠ C` provides
/// the incoming interface; its outgoing questions are served by
/// `L2 : A ↠ B`; questions of `A` escape to the environment.
///
/// The composition is *non-recursive*: at most one activation of `L2` is
/// alive at a time, and `L2` never re-enters `L1`. If `L1` asks a question
/// `L2` does not accept, the composite goes wrong (there is nowhere else for
/// a `B`-question to go).
#[derive(Debug, Clone)]
pub struct SeqComp<L1, L2> {
    l1: L1,
    l2: L2,
}

impl<L1, L2, B> SeqComp<L1, L2>
where
    B: LanguageInterface,
    L1: Lts<O = B>,
    L2: Lts<I = B>,
{
    /// Layer `l1` on top of `l2`.
    pub fn new(l1: L1, l2: L2) -> SeqComp<L1, L2> {
        SeqComp { l1, l2 }
    }

    /// The upper component.
    pub fn upper(&self) -> &L1 {
        &self.l1
    }

    /// The lower component.
    pub fn lower(&self) -> &L2 {
        &self.l2
    }
}

impl<L1, L2, B> Lts for SeqComp<L1, L2>
where
    B: LanguageInterface,
    L1: Lts<O = B>,
    L2: Lts<I = B>,
{
    type I = L1::I;
    type O = L2::O;
    type State = SeqState<L1::State, L2::State>;

    fn name(&self) -> String {
        format!("({} ∘ {})", self.l1.name(), self.l2.name())
    }

    fn accepts(&self, q: &Question<Self::I>) -> bool {
        self.l1.accepts(q)
    }

    fn initial(&self, q: &Question<Self::I>) -> Result<Self::State, Stuck> {
        Ok(SeqState {
            upper: self.l1.initial(q)?,
            lower: None,
        })
    }

    fn step(&self, s: &Self::State) -> Step<Self::State, Question<Self::O>, Answer<Self::I>> {
        match &s.lower {
            // The lower component is active.
            Some(low) => match self.l2.step(low) {
                Step::Internal(low2, evs) => Step::Internal(
                    SeqState {
                        upper: s.upper.clone(),
                        lower: Some(low2),
                    },
                    evs,
                ),
                Step::Final(b_answer) => match self.l1.resume(&s.upper, b_answer) {
                    Ok(upper2) => Step::Internal(
                        SeqState {
                            upper: upper2,
                            lower: None,
                        },
                        vec![],
                    ),
                    Err(stuck) => Step::Stuck(stuck),
                },
                Step::External(aq) => Step::External(aq),
                Step::Stuck(x) => Step::Stuck(x),
            },
            // The upper component is active.
            None => match self.l1.step(&s.upper) {
                Step::Internal(upper2, evs) => Step::Internal(
                    SeqState {
                        upper: upper2,
                        lower: None,
                    },
                    evs,
                ),
                Step::Final(a) => Step::Final(a),
                Step::External(bq) => {
                    if !self.l2.accepts(&bq) {
                        return Step::Stuck(Stuck::new(format!(
                            "seqcomp: lower component {} rejects question",
                            self.l2.name()
                        )));
                    }
                    match self.l2.initial(&bq) {
                        Ok(low) => Step::Internal(
                            SeqState {
                                upper: s.upper.clone(),
                                lower: Some(low),
                            },
                            vec![],
                        ),
                        Err(stuck) => Step::Stuck(stuck),
                    }
                }
                Step::Stuck(x) => Step::Stuck(x),
            },
        }
    }

    fn resume(&self, s: &Self::State, a: Answer<Self::O>) -> Result<Self::State, Stuck> {
        match &s.lower {
            Some(low) => {
                let low2 = self.l2.resume(low, a)?;
                Ok(SeqState {
                    upper: s.upper.clone(),
                    lower: Some(low2),
                })
            }
            None => Err(Stuck::new(
                "seqcomp: environment answer while lower component inactive",
            )),
        }
    }

    fn measure(&self, s: &Self::State) -> crate::lts::StateMeasure {
        let up = self.l1.measure(&s.upper);
        match &s.lower {
            // While the lower component runs, its memory is the current one
            // (the upper holds a stale snapshot): take the max footprint, and
            // count the suspended upper activation as one extra call level.
            Some(low) => {
                let lo = self.l2.measure(low);
                crate::lts::StateMeasure {
                    mem_bytes: lo.mem_bytes.max(up.mem_bytes),
                    call_depth: up
                        .call_depth
                        .saturating_add(lo.call_depth)
                        .saturating_add(1),
                }
            }
            None => up,
        }
    }
}
