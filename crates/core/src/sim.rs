//! Differential checking of open forward simulations (paper §3.3, Fig. 6).
//!
//! In Coq, a pass is correct because a forward simulation
//! `L1 ≤_{R_A ↠ R_B} L2` has been *proved*. Here we *check* the simulation's
//! observable content on concrete executions: given incoming questions
//! related by `R_B` at a world `w_B`, we run both transition systems in
//! lock-step at the granularity of their interactions and verify
//!
//! * every pair of outgoing questions is related by `R_A` at some world
//!   `w_A` (Fig. 6c, top edge);
//! * the environment's answers, related at `w_A`, resume both sides
//!   (Fig. 6c, bottom edge) — the checker plays the environment, using
//!   [`SimConv::transport_reply`] to answer the target consistently with the
//!   source;
//! * the final answers are related by `R_B` at the original `w_B`
//!   (Fig. 6b).
//!
//! A passing check certifies the simulation diagram on that execution; the
//! harness in the `compiler` crate sweeps program × query workloads to build
//! confidence across executions (translation validation in place of proof).

use std::fmt;
use std::time::Instant;

use crate::conv::SimConv;
use crate::iface::Question;
use crate::lts::{BudgetKind, Event, Lts, RunBudget, Step, StepTrace, Stuck};

/// Why a differential simulation check failed.
#[derive(Debug, Clone)]
pub enum SimCheckError {
    /// The incoming question could not be marshaled to the target side.
    CannotTransportQuery,
    /// The transported question pair is not related by the incoming
    /// convention (internal inconsistency of the convention).
    QueryNotRelated,
    /// One side rejected the incoming question.
    NotAccepted {
        /// Which side ("source"/"target").
        side: &'static str,
    },
    /// A component went wrong.
    Wrong {
        /// Which side.
        side: &'static str,
        /// The stuck reason.
        stuck: Stuck,
        /// The last states the failing side visited.
        trace: StepTrace,
    },
    /// Fuel exhausted.
    OutOfFuel {
        /// Which side.
        side: &'static str,
        /// The last states the failing side visited.
        trace: StepTrace,
    },
    /// A non-fuel budget quota (memory, call depth, deadline) was exceeded.
    BudgetExceeded {
        /// Which side.
        side: &'static str,
        /// Which quota.
        kind: BudgetKind,
        /// Human-readable usage-vs-limit detail.
        detail: String,
        /// The last states the failing side visited.
        trace: StepTrace,
    },
    /// A precondition of the check failed before any execution (e.g. the
    /// two programs could not be linked, or a named entry point is absent).
    Precondition(String),
    /// The two sides disagree on their next interaction (one returns, the
    /// other calls out).
    InteractionMismatch {
        /// Description of the source's interaction.
        source: String,
        /// Description of the target's interaction.
        target: String,
    },
    /// A pair of outgoing questions is not related by the outgoing
    /// convention (Fig. 6c violated).
    ExternalNotRelated {
        /// Index of the external call.
        call: usize,
    },
    /// The environment oracle could not answer the source question.
    EnvRefused,
    /// The environment's answer could not be transported to the target.
    CannotTransportReply,
    /// In dual-environment mode, the two environments' answers are not
    /// related by the outgoing convention (the environment broke the
    /// rely-guarantee discipline, paper Fig. 6c bottom edge).
    EnvRepliesNotRelated {
        /// Index of the external call.
        call: usize,
    },
    /// The final answers are not related at the incoming world (Fig. 6b
    /// violated).
    FinalNotRelated,
}

impl fmt::Display for SimCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimCheckError::CannotTransportQuery => write!(f, "cannot marshal incoming question"),
            SimCheckError::QueryNotRelated => write!(f, "marshaled questions not related"),
            SimCheckError::NotAccepted { side } => write!(f, "{side} rejected the question"),
            SimCheckError::Wrong { side, stuck, .. } => write!(f, "{side} went wrong: {stuck}"),
            SimCheckError::OutOfFuel { side, .. } => write!(f, "{side} ran out of fuel"),
            SimCheckError::BudgetExceeded {
                side, kind, detail, ..
            } => write!(f, "{side} exceeded the {kind} budget: {detail}"),
            SimCheckError::Precondition(why) => write!(f, "precondition failed: {why}"),
            SimCheckError::InteractionMismatch { source, target } => {
                write!(f, "interaction mismatch: source {source}, target {target}")
            }
            SimCheckError::ExternalNotRelated { call } => {
                write!(f, "outgoing questions of call #{call} not related")
            }
            SimCheckError::EnvRefused => write!(f, "environment refused a question"),
            SimCheckError::CannotTransportReply => write!(f, "cannot transport environment reply"),
            SimCheckError::EnvRepliesNotRelated { call } => {
                write!(f, "environment replies of call #{call} not related")
            }
            SimCheckError::FinalNotRelated => write!(f, "final answers not related"),
        }
    }
}

impl std::error::Error for SimCheckError {}

impl SimCheckError {
    /// The diagnostic step trace attached to execution failures
    /// (stuck / fuel / quota outcomes), if any.
    pub fn step_trace(&self) -> Option<&StepTrace> {
        match self {
            SimCheckError::Wrong { trace, .. }
            | SimCheckError::OutOfFuel { trace, .. }
            | SimCheckError::BudgetExceeded { trace, .. } => Some(trace),
            _ => None,
        }
    }
}

/// Statistics from a successful simulation check.
#[derive(Debug, Clone, Default)]
pub struct SimCheckReport {
    /// Number of external-call boundaries checked (Fig. 6c instances).
    pub external_calls: usize,
    /// Internal steps taken by the source.
    pub source_steps: u64,
    /// Internal steps taken by the target.
    pub target_steps: u64,
    /// Events emitted by the source.
    pub source_trace: Vec<Event>,
}

/// Drive one side to its next interaction point.
enum Interaction<S, OQ, IA> {
    Final(IA),
    External(S, OQ),
}

/// Why [`drive`] stopped before reaching an interaction point.
enum DriveFailure {
    Stuck(Stuck, StepTrace),
    Budget(BudgetKind, String, StepTrace),
}

impl DriveFailure {
    fn into_error(self, side: &'static str) -> SimCheckError {
        match self {
            DriveFailure::Stuck(stuck, trace) => SimCheckError::Wrong { side, stuck, trace },
            DriveFailure::Budget(BudgetKind::Fuel, _, trace) => {
                SimCheckError::OutOfFuel { side, trace }
            }
            DriveFailure::Budget(kind, detail, trace) => SimCheckError::BudgetExceeded {
                side,
                kind,
                detail,
                trace,
            },
        }
    }
}

/// Per-side driving context: fuel pool, step counter, trace ring.
struct DriveCtx<S> {
    fuel: u64,
    steps: u64,
    ring: crate::lts::TraceRing<S>,
}

impl<S: Clone + fmt::Debug> DriveCtx<S> {
    fn new(budget: &RunBudget) -> DriveCtx<S> {
        DriveCtx {
            fuel: budget.fuel,
            steps: 0,
            ring: crate::lts::TraceRing::new(budget.trace.capacity()),
        }
    }
}

/// How many steps between wall-clock deadline checks while driving a side.
const DEADLINE_STRIDE: u64 = 1024;

fn drive<Sem: Lts>(
    lts: &Sem,
    mut s: Sem::State,
    ctx: &mut DriveCtx<Sem::State>,
    budget: &RunBudget,
    started: Option<Instant>,
    trace: Option<&mut Vec<Event>>,
) -> Result<Interaction<Sem::State, Question<Sem::O>, crate::iface::Answer<Sem::I>>, DriveFailure> {
    let mut local_trace = trace;
    let quotas_on = budget.max_mem_bytes.is_some() || budget.max_call_depth.is_some();
    ctx.ring.record(ctx.steps, &s);
    loop {
        if ctx.fuel == 0 {
            return Err(DriveFailure::Budget(
                BudgetKind::Fuel,
                "step bound exhausted".into(),
                ctx.ring.render(),
            ));
        }
        if quotas_on {
            let m = lts.measure(&s);
            if let Some(limit) = budget.max_mem_bytes {
                if m.mem_bytes > limit {
                    return Err(DriveFailure::Budget(
                        BudgetKind::Memory,
                        format!("{} live bytes > limit {limit}", m.mem_bytes),
                        ctx.ring.render(),
                    ));
                }
            }
            if let Some(limit) = budget.max_call_depth {
                if m.call_depth > limit {
                    return Err(DriveFailure::Budget(
                        BudgetKind::Depth,
                        format!("depth {} > limit {limit}", m.call_depth),
                        ctx.ring.render(),
                    ));
                }
            }
        }
        if let (Some(deadline), Some(start)) = (budget.deadline, started) {
            if ctx.steps % DEADLINE_STRIDE == 0 {
                let elapsed = start.elapsed();
                if elapsed > deadline {
                    return Err(DriveFailure::Budget(
                        BudgetKind::Time,
                        format!("elapsed {elapsed:?}"),
                        ctx.ring.render(),
                    ));
                }
            }
        }
        match lts.step(&s) {
            Step::Internal(s2, evs) => {
                if let Some(tr) = local_trace.as_deref_mut() {
                    tr.extend(evs);
                }
                s = s2;
                ctx.fuel -= 1;
                ctx.steps += 1;
                crate::obs::bump(|c| c.sim_steps += 1);
                ctx.ring.record(ctx.steps, &s);
            }
            Step::Final(a) => return Ok(Interaction::Final(a)),
            Step::External(q) => return Ok(Interaction::External(s, q)),
            Step::Stuck(x) => return Err(DriveFailure::Stuck(x, ctx.ring.render())),
        }
    }
}

/// How the checker answers outgoing questions.
///
/// * [`EnvMode::Transport`]: one oracle answers the *source's* questions;
///   the target's answers are constructed through the outgoing convention's
///   [`SimConv::transport_reply`]. Works when the convention has a canonical
///   reply marshaling.
/// * [`EnvMode::Dual`]: two oracles answer the two sides independently (the
///   same abstract service implemented at both levels — how real
///   environments behave); the checker *verifies* their replies are related.
pub enum EnvMode<'e, Q1, A1, Q2, A2> {
    /// Source oracle only; target replies are transported.
    Transport(&'e mut dyn FnMut(&Q1) -> Option<A1>),
    /// Independent oracles for both sides.
    Dual(
        &'e mut dyn FnMut(&Q1) -> Option<A1>,
        &'e mut dyn FnMut(&Q2) -> Option<A2>,
    ),
}

/// Check the forward-simulation diagrams of paper Fig. 6 on one execution.
///
/// * `l1`, `l2` — source and target transition systems;
/// * `ra` — the outgoing convention `R_A : A1 ⇔ A2`;
/// * `rb` — the incoming convention `R_B : B1 ⇔ B2` (must support
///   [`SimConv::transport_query`]);
/// * `q1` — the source-level incoming question;
/// * `env1` — oracle answering the *source's* outgoing questions (the
///   target's are answered by transporting through `ra`);
/// * `fuel` — combined internal-step budget.
///
/// # Errors
/// Any violated diagram edge is reported as a [`SimCheckError`].
pub fn check_fwd_sim<L1, L2, RA, RB>(
    l1: &L1,
    l2: &L2,
    ra: &RA,
    rb: &RB,
    q1: &Question<L1::I>,
    env1: &mut crate::lts::Env<'_, Question<L1::O>, crate::iface::Answer<L1::O>>,
    fuel: u64,
) -> Result<SimCheckReport, SimCheckError>
where
    L1: Lts,
    L2: Lts,
    RB: SimConv<Left = L1::I, Right = L2::I>,
    RA: SimConv<Left = L1::O, Right = L2::O>,
{
    check_fwd_sim_env(l1, l2, ra, rb, q1, EnvMode::Transport(env1), fuel)
}

/// [`check_fwd_sim`] with an explicit environment mode (see [`EnvMode`]).
///
/// # Errors
/// Any violated diagram edge is reported as a [`SimCheckError`].
pub fn check_fwd_sim_env<L1, L2, RA, RB>(
    l1: &L1,
    l2: &L2,
    ra: &RA,
    rb: &RB,
    q1: &Question<L1::I>,
    env: EnvMode<
        '_,
        Question<L1::O>,
        crate::iface::Answer<L1::O>,
        Question<L2::O>,
        crate::iface::Answer<L2::O>,
    >,
    fuel: u64,
) -> Result<SimCheckReport, SimCheckError>
where
    L1: Lts,
    L2: Lts,
    RB: SimConv<Left = L1::I, Right = L2::I>,
    RA: SimConv<Left = L1::O, Right = L2::O>,
{
    check_fwd_sim_budgeted(l1, l2, ra, rb, q1, env, &RunBudget::with_fuel(fuel))
}

/// [`check_fwd_sim_env`] under a full [`RunBudget`].
///
/// Each side gets its own fuel pool and trace ring; the memory / call-depth
/// quotas are enforced per side through [`Lts::measure`], and the wall-clock
/// deadline bounds the whole check. Budget violations are reported as
/// [`SimCheckError::OutOfFuel`] / [`SimCheckError::BudgetExceeded`] — the
/// checker never panics or hangs on a corrupted component.
///
/// # Errors
/// Any violated diagram edge or exceeded quota is reported as a
/// [`SimCheckError`].
pub fn check_fwd_sim_budgeted<L1, L2, RA, RB>(
    l1: &L1,
    l2: &L2,
    ra: &RA,
    rb: &RB,
    q1: &Question<L1::I>,
    mut env: EnvMode<
        '_,
        Question<L1::O>,
        crate::iface::Answer<L1::O>,
        Question<L2::O>,
        crate::iface::Answer<L2::O>,
    >,
    budget: &RunBudget,
) -> Result<SimCheckReport, SimCheckError>
where
    L1: Lts,
    L2: Lts,
    RB: SimConv<Left = L1::I, Right = L2::I>,
    RA: SimConv<Left = L1::O, Right = L2::O>,
{
    // Incoming questions related at w_B (Fig. 6a).
    let (_, q2) = rb
        .transport_query(q1)
        .ok_or(SimCheckError::CannotTransportQuery)?;
    let wb = rb
        .match_query(q1, &q2)
        .into_iter()
        .next()
        .ok_or(SimCheckError::QueryNotRelated)?;

    if !l1.accepts(q1) {
        return Err(SimCheckError::NotAccepted { side: "source" });
    }
    if !l2.accepts(&q2) {
        return Err(SimCheckError::NotAccepted { side: "target" });
    }
    let mut s1 = l1.initial(q1).map_err(|stuck| SimCheckError::Wrong {
        side: "source",
        stuck,
        trace: StepTrace::default(),
    })?;
    let mut s2 = l2.initial(&q2).map_err(|stuck| SimCheckError::Wrong {
        side: "target",
        stuck,
        trace: StepTrace::default(),
    })?;

    let mut report = SimCheckReport::default();
    let started = budget.deadline.map(|_| Instant::now());
    let mut ctx1: DriveCtx<L1::State> = DriveCtx::new(budget);
    let mut ctx2: DriveCtx<L2::State> = DriveCtx::new(budget);

    loop {
        let i1 = drive(
            l1,
            s1,
            &mut ctx1,
            budget,
            started,
            Some(&mut report.source_trace),
        )
        .map_err(|f| f.into_error("source"))?;
        report.source_steps = ctx1.steps;
        let i2 =
            drive(l2, s2, &mut ctx2, budget, started, None).map_err(|f| f.into_error("target"))?;
        report.target_steps = ctx2.steps;

        match (i1, i2) {
            // Fig. 6b: final answers related at the incoming world.
            (Interaction::Final(r1), Interaction::Final(r2)) => {
                if rb.match_reply(&wb, &r1, &r2) {
                    return Ok(report);
                }
                return Err(SimCheckError::FinalNotRelated);
            }
            // Fig. 6c: outgoing questions related at some w_A; related
            // answers resume both sides.
            (Interaction::External(e1, m1), Interaction::External(e2, m2)) => {
                let wa = ra.match_query(&m1, &m2).into_iter().next().ok_or(
                    SimCheckError::ExternalNotRelated {
                        call: report.external_calls,
                    },
                )?;
                let (n1, n2) = match &mut env {
                    EnvMode::Transport(env1) => {
                        let n1 = env1(&m1).ok_or(SimCheckError::EnvRefused)?;
                        let n2 = ra
                            .transport_reply(&wa, &n1, &m2)
                            .ok_or(SimCheckError::CannotTransportReply)?;
                        (n1, n2)
                    }
                    EnvMode::Dual(env1, env2) => {
                        let n1 = env1(&m1).ok_or(SimCheckError::EnvRefused)?;
                        let n2 = env2(&m2).ok_or(SimCheckError::EnvRefused)?;
                        if !ra.match_reply(&wa, &n1, &n2) {
                            return Err(SimCheckError::EnvRepliesNotRelated {
                                call: report.external_calls,
                            });
                        }
                        (n1, n2)
                    }
                };
                report.external_calls += 1;
                s1 = l1.resume(&e1, n1).map_err(|stuck| SimCheckError::Wrong {
                    side: "source",
                    stuck,
                    trace: ctx1.ring.render(),
                })?;
                s2 = l2.resume(&e2, n2).map_err(|stuck| SimCheckError::Wrong {
                    side: "target",
                    stuck,
                    trace: ctx2.ring.render(),
                })?;
            }
            (Interaction::Final(_), Interaction::External(_, q)) => {
                return Err(SimCheckError::InteractionMismatch {
                    source: "returns".into(),
                    target: format!("calls out ({q:?})"),
                })
            }
            (Interaction::External(_, q), Interaction::Final(_)) => {
                return Err(SimCheckError::InteractionMismatch {
                    source: format!("calls out ({q:?})"),
                    target: "returns".into(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::IdConv;
    use crate::iface::{CQuery, CReply, Signature, C};
    use mem::{Mem, Val};

    /// `scale`: multiplies its argument by a constant, calling `ext` once.
    #[derive(Clone)]
    struct Scale {
        factor: i32,
        broken: bool,
    }

    #[derive(Debug, Clone)]
    enum St {
        Start(Val, Mem),
        Wait(Val, Mem),
        Done(Val, Mem),
    }

    impl Lts for Scale {
        type I = C;
        type O = C;
        type State = St;

        fn name(&self) -> String {
            "scale".into()
        }

        fn accepts(&self, q: &CQuery) -> bool {
            q.vf == Val::Ptr(1, 0)
        }

        fn initial(&self, q: &CQuery) -> Result<St, Stuck> {
            Ok(St::Start(q.args[0], q.mem.clone()))
        }

        fn step(&self, s: &St) -> Step<St, CQuery, CReply> {
            match s {
                St::Start(v, m) => Step::External(CQuery {
                    vf: Val::Ptr(2, 0),
                    sig: Signature::int_fn(1),
                    args: vec![*v],
                    mem: m.clone(),
                }),
                St::Wait(v, m) => {
                    let out = if self.broken {
                        v.add(Val::Int(self.factor))
                    } else {
                        v.mul(Val::Int(self.factor))
                    };
                    Step::Internal(St::Done(out, m.clone()), vec![])
                }
                St::Done(v, m) => Step::Final(CReply {
                    retval: *v,
                    mem: m.clone(),
                }),
            }
        }

        fn resume(&self, s: &St, a: CReply) -> Result<St, Stuck> {
            match s {
                St::Start(_, _) => Ok(St::Wait(a.retval, a.mem)),
                _ => Err(Stuck::new("bad resume")),
            }
        }
    }

    fn q(n: i32) -> CQuery {
        CQuery {
            vf: Val::Ptr(1, 0),
            sig: Signature::int_fn(1),
            args: vec![Val::Int(n)],
            mem: Mem::new(),
        }
    }

    #[test]
    fn identical_components_simulate() {
        let l = Scale {
            factor: 3,
            broken: false,
        };
        let report = check_fwd_sim(
            &l,
            &l.clone(),
            &IdConv::<C>::new(),
            &IdConv::<C>::new(),
            &q(5),
            &mut |m: &CQuery| {
                Some(CReply {
                    retval: m.args[0],
                    mem: m.mem.clone(),
                })
            },
            1000,
        )
        .expect("simulation holds");
        assert_eq!(report.external_calls, 1);
    }

    #[test]
    fn miscompiled_component_detected() {
        let src = Scale {
            factor: 3,
            broken: false,
        };
        let tgt = Scale {
            factor: 3,
            broken: true, // adds instead of multiplying
        };
        let err = check_fwd_sim(
            &src,
            &tgt,
            &IdConv::<C>::new(),
            &IdConv::<C>::new(),
            &q(5),
            &mut |m: &CQuery| {
                Some(CReply {
                    retval: m.args[0],
                    mem: m.mem.clone(),
                })
            },
            1000,
        )
        .unwrap_err();
        assert!(matches!(err, SimCheckError::FinalNotRelated));
    }
}
