//! Exercising every rule of horizontal composition (paper Fig. 5) and the
//! horizontal preservation of simulations (paper Thm. 3.4) on purpose-built
//! components.

use compcerto_core::cklr::{CklrC, Ext};
use compcerto_core::conv::IdConv;
use compcerto_core::hcomp::HComp;
use compcerto_core::iface::{CQuery, CReply, Signature, C};
use compcerto_core::lts::{run, Lts, RunOutcome, Step, Stuck};
use compcerto_core::sim::check_fwd_sim;
use mem::{Mem, Val};

/// A component family: `dec_k(n)` defined as `n == 0 ? base : other(n - 1)`,
/// where `other` is a call to the function at block `peer`. Two of these with
/// crossed peers produce arbitrarily deep mutual recursion through `⊕`.
#[derive(Clone)]
struct Countdown {
    /// Function block this component answers for.
    own: u32,
    /// Function block it calls.
    peer: u32,
    /// Value returned at zero.
    base: Val,
}

#[derive(Debug, Clone)]
enum St {
    Start(i32, Mem),
    Done(Val, Mem),
}

impl Lts for Countdown {
    type I = C;
    type O = C;
    type State = St;

    fn name(&self) -> String {
        format!("countdown@{}", self.own)
    }

    fn accepts(&self, q: &CQuery) -> bool {
        q.vf == Val::Ptr(self.own, 0)
    }

    fn initial(&self, q: &CQuery) -> Result<St, Stuck> {
        match q.args.first() {
            Some(Val::Int(n)) => Ok(St::Start(*n, q.mem.clone())),
            _ => Err(Stuck::new("bad argument")),
        }
    }

    fn step(&self, s: &St) -> Step<St, CQuery, CReply> {
        match s {
            St::Start(n, m) => {
                if *n <= 0 {
                    Step::Internal(St::Done(self.base, m.clone()), vec![])
                } else {
                    Step::External(CQuery {
                        vf: Val::Ptr(self.peer, 0),
                        sig: Signature::int_fn(1),
                        args: vec![Val::Int(n - 1)],
                        mem: m.clone(),
                    })
                }
            }
            St::Done(v, m) => Step::Final(CReply {
                retval: *v,
                mem: m.clone(),
            }),
        }
    }

    fn resume(&self, s: &St, a: CReply) -> Result<St, Stuck> {
        match s {
            St::Start(_, _) => Ok(St::Done(a.retval, a.mem)),
            _ => Err(Stuck::new("bad resume")),
        }
    }
}

fn query(target: u32, n: i32) -> CQuery {
    CQuery {
        vf: Val::Ptr(target, 0),
        sig: Signature::int_fn(1),
        args: vec![Val::Int(n)],
        mem: Mem::new(),
    }
}

#[test]
fn rule_i0_dispatches_by_domain() {
    // Rule i∘: the composite accepts D1 ∪ D2 and picks the right component.
    let a = Countdown {
        own: 1,
        peer: 2,
        base: Val::Int(100),
    };
    let b = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(200),
    };
    let comp = HComp::new(a, b);
    assert!(comp.accepts(&query(1, 0)));
    assert!(comp.accepts(&query(2, 0)));
    assert!(!comp.accepts(&query(3, 0)));
    // n = 0: answered without any push (rules i∘, run, i•).
    let r = run(&comp, &query(1, 0), &mut |_q| None, 100).expect_complete();
    assert_eq!(r.retval, Val::Int(100));
    let r = run(&comp, &query(2, 0), &mut |_q| None, 100).expect_complete();
    assert_eq!(r.retval, Val::Int(200));
}

#[test]
fn rules_push_pop_mutual_recursion() {
    // Rules push/pop: n bounces between the two components n times; the
    // final base value reveals which component bottomed out.
    let a = Countdown {
        own: 1,
        peer: 2,
        base: Val::Int(100),
    };
    let b = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(200),
    };
    let comp = HComp::new(a, b);
    // Even n starting at 1: ends in component 1 (base 100).
    let r = run(&comp, &query(1, 4), &mut |_q| None, 1000).expect_complete();
    assert_eq!(r.retval, Val::Int(100));
    // Odd n starting at 1: ends in component 2.
    let r = run(&comp, &query(1, 5), &mut |_q| None, 1000).expect_complete();
    assert_eq!(r.retval, Val::Int(200));
    // Deep recursion exercises the activation stack.
    let r = run(&comp, &query(1, 500), &mut |_q| None, 100_000).expect_complete();
    assert_eq!(r.retval, Val::Int(100));
}

#[test]
fn rule_push_self_recursion() {
    // A component whose peer is itself: ⊕ also routes self-calls (the `q ∈ Dj`
    // side condition allows j to be the active component).
    let a = Countdown {
        own: 1,
        peer: 1,
        base: Val::Int(7),
    };
    let b = Countdown {
        own: 2,
        peer: 2,
        base: Val::Int(8),
    };
    let comp = HComp::new(a, b);
    let r = run(&comp, &query(1, 10), &mut |_q| None, 1000).expect_complete();
    assert_eq!(r.retval, Val::Int(7));
}

#[test]
fn rules_x0_x1_escape_to_environment() {
    // Rule x∘: a question neither component accepts escapes; rule x•: the
    // environment's answer resumes the suspended activation.
    let a = Countdown {
        own: 1,
        peer: 9,
        base: Val::Int(100),
    }; // 9 is external
    let b = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(200),
    };
    let comp = HComp::new(a, b);
    let mut asked = 0;
    let r = run(
        &comp,
        &query(1, 3),
        &mut |q: &CQuery| {
            asked += 1;
            assert_eq!(q.vf, Val::Ptr(9, 0));
            Some(CReply {
                retval: Val::Int(4242),
                mem: q.mem.clone(),
            })
        },
        1000,
    )
    .expect_complete();
    assert_eq!(asked, 1);
    assert_eq!(r.retval, Val::Int(4242));
}

#[test]
fn composite_goes_wrong_when_component_does() {
    let a = Countdown {
        own: 1,
        peer: 2,
        base: Val::Int(0),
    };
    let b = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(0),
    };
    let comp = HComp::new(a, b);
    // A non-Int argument makes the callee's initial state fail.
    let q = CQuery {
        vf: Val::Ptr(1, 0),
        sig: Signature::int_fn(1),
        args: vec![Val::Float(1.0)],
        mem: Mem::new(),
    };
    assert!(matches!(
        run(&comp, &q, &mut |_q| None, 100),
        RunOutcome::Wrong { .. }
    ));
}

#[test]
fn thm_3_4_horizontal_preservation() {
    // Thm 3.4: L1 ≤ L2 and L1' ≤ L2' imply L1 ⊕ L1' ≤ L2 ⊕ L2'. We check the
    // composite simulation with the checker, where the targets refine an
    // Undef base value into a defined one (related under ext).
    let src1 = Countdown {
        own: 1,
        peer: 2,
        base: Val::Undef,
    };
    let src2 = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(200),
    };
    let tgt1 = Countdown {
        own: 1,
        peer: 2,
        base: Val::Int(100),
    }; // refines Undef
    let tgt2 = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(200),
    };
    let source = HComp::new(src1, src2);
    let target = HComp::new(tgt1, tgt2);
    let ext = CklrC { k: Ext };
    let report = check_fwd_sim(
        &source,
        &target,
        &ext,
        &ext,
        &query(1, 6),
        &mut |_q| None,
        10_000,
    )
    .expect("Thm 3.4 composite simulation holds");
    assert_eq!(report.external_calls, 0);
}

#[test]
fn thm_3_4_detects_broken_component() {
    // Replacing one target component by a behaviourally different one breaks
    // the composite simulation and the checker reports it.
    let src1 = Countdown {
        own: 1,
        peer: 2,
        base: Val::Int(100),
    };
    let src2 = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(200),
    };
    let bad1 = Countdown {
        own: 1,
        peer: 2,
        base: Val::Int(999),
    };
    let tgt2 = Countdown {
        own: 2,
        peer: 1,
        base: Val::Int(200),
    };
    let source = HComp::new(src1, src2);
    let target = HComp::new(bad1, tgt2);
    let err = check_fwd_sim(
        &source,
        &target,
        &IdConv::<C>::new(),
        &IdConv::<C>::new(),
        &query(1, 6),
        &mut |_q| None,
        10_000,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        compcerto_core::sim::SimCheckError::FinalNotRelated
    ));
}
