//! Runtime refinement checks (paper Def. 5.1, Lemma 5.3): the equivalences
//! the algebra engine uses symbolically are sampled on concrete data with
//! [`check_refinement_on`].

use compcerto_core::cklr::{CklrC, Ext};
use compcerto_core::conv::{check_refinement_on, ComposeConv, IdConv, SimConv};
use compcerto_core::iface::{CQuery, CReply, Signature, C};
use mem::{Chunk, Mem, Val};

fn q(mem: Mem, args: Vec<Val>) -> CQuery {
    CQuery {
        vf: Val::Ptr(0, 0),
        sig: Signature::int_fn(args.len()),
        args,
        mem,
    }
}

fn r(mem: Mem, v: Val) -> CReply {
    CReply { retval: v, mem }
}

/// Sample data: a memory with one block, plus a refinement of it.
fn sample_mems() -> (Mem, Mem) {
    let mut m1 = Mem::new();
    let b = m1.alloc(0, 16);
    m1.store(Chunk::I32, b, 0, Val::Int(3)).unwrap();
    let mut m2 = m1.clone();
    m2.store(Chunk::I32, b, 8, Val::Int(9)).unwrap(); // refines Undef bytes
    (m1, m2)
}

/// Lemma 5.3 at runtime, `⊑` direction: `ext · ext ⊑ ext` — every
/// ext-related question pair is (ext·ext)-related, and (ext·ext)-related
/// answers are ext-related.
#[test]
fn ext_ext_refined_by_ext() {
    let (m1, m2) = sample_mems();
    let ext = CklrC { k: Ext };
    let ext_ext = ComposeConv::new(CklrC { k: Ext }, CklrC { k: Ext });
    let samples = vec![
        (
            q(m1.clone(), vec![Val::Int(1)]),
            q(m2.clone(), vec![Val::Int(1)]),
            vec![
                (r(m1.clone(), Val::Int(5)), r(m2.clone(), Val::Int(5))),
                (r(m1.clone(), Val::Undef), r(m2.clone(), Val::Int(7))),
            ],
        ),
        (
            q(m1.clone(), vec![Val::Undef]),
            q(m2.clone(), vec![Val::Int(2)]),
            vec![(r(m1.clone(), Val::Int(0)), r(m2.clone(), Val::Int(0)))],
        ),
    ];
    check_refinement_on(&ext_ext, &ext, &samples).expect("ext·ext ⊑ ext on samples");
}

/// `id ⊑ ext` on samples where the questions are ext-related but the answer
/// sets only contain equal pairs: identity transports them.
#[test]
fn id_transports_equal_answers_under_ext() {
    let (m1, _) = sample_mems();
    let id = IdConv::<C>::new();
    let ext = CklrC { k: Ext };
    // Only identical questions (id-related) with identical answers.
    let samples = vec![(
        q(m1.clone(), vec![Val::Int(1)]),
        q(m1.clone(), vec![Val::Int(1)]),
        vec![(r(m1.clone(), Val::Int(5)), r(m1.clone(), Val::Int(5)))],
    )];
    check_refinement_on(&id, &ext, &samples).expect("id ⊑ ext on identical samples");
}

/// The negative direction: `ext` is *not* refined by `id` on a sample with a
/// strict refinement — `check_refinement_on` reports the counterexample.
#[test]
fn strict_refinement_refutes_id() {
    let (m1, m2) = sample_mems();
    let id = IdConv::<C>::new();
    let ext = CklrC { k: Ext };
    // The questions are ext-related (m1 ≤m m2) but NOT equal.
    let samples = vec![(
        q(m1.clone(), vec![Val::Int(1)]),
        q(m2, vec![Val::Int(1)]),
        vec![],
    )];
    assert!(
        check_refinement_on(&id, &ext, &samples).is_err(),
        "a strict memory refinement must refute id ⊑ ext"
    );
}

/// The ^-modality at the answer side: worlds evolve — an answer allocating
/// fresh blocks on both sides is still ext-related (`ext` worlds are trivial,
/// but the memories changed support in lock-step).
#[test]
fn reply_side_world_evolution() {
    let (m1, m2) = sample_mems();
    let ext = CklrC { k: Ext };
    let w = ext.match_query(&q(m1.clone(), vec![]), &q(m2.clone(), vec![]));
    assert_eq!(w.len(), 1);
    let mut m1b = m1;
    let mut m2b = m2;
    let b1 = m1b.alloc(0, 8);
    let b2 = m2b.alloc(0, 8);
    assert_eq!(b1, b2);
    assert!(ext.match_reply(&w[0], &r(m1b, Val::Int(1)), &r(m2b, Val::Int(1))));
}
