//! Property-based validation of the simulation-convention algebra
//! (paper Thm. 5.2, Lemma 5.3, Thm. 5.6): the symbolic laws used by the
//! derivation engine are checked against randomly generated chains, and the
//! runtime meaning of key equivalences is checked on concrete data.

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use compcerto_core::algebra::{derive, goal_convention, Atom, Chain, CklrTag, IfaceTag, Law};
use compcerto_core::cklr::{Cklr, Ext, Inj};
use mem::{Chunk, Mem, Val};
use proptest::prelude::*;

/// Random C-level CKLR/invariant atoms (the vocabulary of the front end).
fn c_atom() -> impl Strategy<Value = Vec<Atom>> {
    use Atom::*;
    use CklrTag::*;
    use IfaceTag::*;
    prop_oneof![
        Just(vec![Id(C)]),
        Just(vec![Cklr(Ext, C)]),
        Just(vec![Cklr(Inj, C)]),
        Just(vec![Cklr(Injp, C)]),
        Just(vec![Va, Cklr(Ext, C)]),
        Just(vec![Va, Cklr(Inj, C)]),
        Just(vec![Wt, Cklr(Ext, C)]),
    ]
}

/// A random well-typed pipeline: a front-end segment at `C` followed by the
/// fixed structural tail (every real pipeline ends with
/// `Allocation … Asmgen`).
fn pipeline() -> impl Strategy<Value = Chain> {
    prop::collection::vec(c_atom(), 0..8).prop_map(|front| {
        use Atom::*;
        use CklrTag::*;
        use IfaceTag::*;
        let mut atoms: Vec<Atom> = front.into_iter().flatten().collect();
        atoms.extend([
            Wt,
            Cklr(Ext, C),
            Cl,
            Cklr(Ext, L),
            Lm,
            Cklr(Inj, M),
            Cklr(Ext, M),
            Ma,
        ]);
        Chain::of(atoms)
    })
}

proptest! {
    /// The derivation engine normalizes *every* well-typed pipeline built
    /// from Table 3's vocabulary to the goal convention, and every recorded
    /// step passes verification — the algebra is closed over the pipelines
    /// the compiler can express.
    #[test]
    fn derivation_total_on_pipelines(chain in pipeline()) {
        prop_assert_eq!(chain.typing(), Ok((IfaceTag::C, IfaceTag::A)));
        let d = derive(chain).expect("derivation succeeds");
        prop_assert_eq!(d.current(), &goal_convention());
        d.verify().expect("verification succeeds");
    }

    /// Law checkers are sound w.r.t. their own statements: `CklrFuse` only
    /// accepts the four Lemma 5.3 equations.
    #[test]
    fn cklr_fuse_soundness(
        k1 in prop_oneof![Just(CklrTag::Ext), Just(CklrTag::Inj), Just(CklrTag::Injp)],
        k2 in prop_oneof![Just(CklrTag::Ext), Just(CklrTag::Inj), Just(CklrTag::Injp)],
        k3 in prop_oneof![Just(CklrTag::Ext), Just(CklrTag::Inj), Just(CklrTag::Injp)],
    ) {
        use Atom::Cklr;
        use IfaceTag::C;
        let before = [Cklr(k1, C), Cklr(k2, C)];
        let after = [Cklr(k3, C)];
        let accepted = Law::CklrFuse.justifies(&before, &after);
        let expected = match (k1, k2) {
            (CklrTag::Ext, CklrTag::Ext) => k3 == CklrTag::Ext,
            (CklrTag::Ext, CklrTag::Inj)
            | (CklrTag::Inj, CklrTag::Ext)
            | (CklrTag::Inj, CklrTag::Inj) => k3 == CklrTag::Inj,
            _ => false,
        };
        prop_assert_eq!(accepted, expected);
    }
}

/// Runtime meaning of Lemma 5.3 `ext · inj ≡ inj` on concrete memories:
/// whenever `m1 ≤m m2` and `f ⊩ m2 ↩→ m3`, the same `f` relates `m1` to
/// `m3` directly.
#[test]
fn lemma_5_3_ext_then_inj_is_inj() {
    let mut m1 = Mem::new();
    let b = m1.alloc(0, 16);
    m1.store(Chunk::I32, b, 0, Val::Int(5)).unwrap();
    // m2 refines an undefined slot of m1.
    let mut m2 = m1.clone();
    m2.store(Chunk::I32, b, 8, Val::Int(9)).unwrap();
    assert_eq!(Ext.match_mem(&m1, &m2).len(), 1);
    // m3 = m2 (identity injection).
    let m3 = m2.clone();
    let worlds = Inj::default().match_mem(&m2, &m3);
    assert_eq!(worlds.len(), 1);
    // Composition: m1 injects into m3 directly with the same mapping.
    assert_eq!(mem::mem_inject(&worlds[0], &m1, &m3), Ok(()));
}

/// Runtime meaning of `wt · wt ≡ wt` (Lemma 5.7): applying the typing
/// normalization twice equals applying it once.
#[test]
fn lemma_5_7_wt_idempotent() {
    for v in [Val::Int(1), Val::Long(2), Val::Undef, Val::Ptr(0, 0)] {
        for t in [mem::Typ::I32, mem::Typ::I64] {
            assert_eq!(v.ensure_type(t).ensure_type(t), v.ensure_type(t));
        }
    }
}

/// Tampering with any single derivation step must be caught by `verify`
/// (the derivation is evidence, not just a trace).
#[test]
fn derivations_are_tamper_evident() {
    use compcerto_core::algebra::{Atom::*, CklrTag::*, IfaceTag::*};
    let chain = Chain::of([
        Cklr(Inj, C),
        Wt,
        Cklr(Ext, C),
        Cl,
        Lm,
        Cklr(Inj, M),
        Cklr(Ext, M),
        Ma,
    ]);
    let d = derive(chain).expect("derives");
    d.verify().expect("clean derivation verifies");
    for i in 0..d.steps.len() {
        let mut bad = d.clone();
        // Swap the result chain of step i with the goal (usually wrong).
        bad.steps[i].result = Chain::of([Atom::RStar(IfaceTag::C)]);
        if bad.steps[i].result != d.steps[i].result {
            assert!(bad.verify().is_err(), "tampered step {i} not caught");
        }
    }
}
