//! Observability assertions for the PR 1 budget-exhaustion paths and the
//! JSON-lines trace sink (ISSUE 5 satellites; DESIGN.md §10).
//!
//! * Each `RunOutcome::{OutOfMemory, DepthExceeded, TimedOut, OutOfFuel}`
//!   path increments the matching thread-local counter **exactly once**, and
//!   the JSON-lines trace for the run ends with a `terminal` event naming
//!   that outcome.
//! * Regression for the ring-trace vs. JSON-sink double-counting audit: a
//!   known 3-step program emits exactly 5 lines (1 `run-start` + 3 `step` +
//!   1 `terminal`) — the final answer event is reported by the single outer
//!   bookkeeping point only, never a second time by a loop arm.
//!
//! Counters are thread-local, so each test takes a snapshot before and
//! diffs after — the tests stay correct under the parallel test harness.

use compcerto_core::iface::{CQuery, CReply, Signature, C};
use compcerto_core::lts::{
    run_budgeted, Lts, RunBudget, RunOutcome, StateMeasure, Step, Stuck,
};
use compcerto_core::obs;
use mem::{Mem, Val};
use std::time::Duration;

/// Pure internal stepper: counts up and finishes after `limit` steps.
/// `measure` pretends each step allocates 8 bytes and deepens one call, so
/// a single toy drives fuel, memory, and depth exhaustion.
struct Stepper {
    limit: u64,
}

impl Lts for Stepper {
    type I = C;
    type O = C;
    type State = u64;

    fn name(&self) -> String {
        "stepper".into()
    }

    fn accepts(&self, _q: &CQuery) -> bool {
        true
    }

    fn initial(&self, _q: &CQuery) -> Result<u64, Stuck> {
        Ok(0)
    }

    fn step(&self, s: &u64) -> Step<u64, CQuery, CReply> {
        if *s >= self.limit {
            Step::Final(CReply {
                retval: Val::Int(*s as i32),
                mem: Mem::new(),
            })
        } else {
            Step::Internal(s + 1, vec![])
        }
    }

    fn resume(&self, _s: &u64, _a: CReply) -> Result<u64, Stuck> {
        Err(Stuck::new("stepper never suspends"))
    }

    fn measure(&self, s: &u64) -> StateMeasure {
        StateMeasure {
            mem_bytes: s * 8,
            call_depth: *s,
        }
    }
}

fn query() -> CQuery {
    CQuery {
        vf: Val::Ptr(100, 0),
        sig: Signature::int_fn(1),
        args: vec![Val::Int(0)],
        mem: Mem::new(),
    }
}

fn refuse(_q: &CQuery) -> Option<CReply> {
    None
}

/// Run `Stepper{limit}` under `budget` with the JSON sink on; return the
/// outcome, the counter delta, and the drained trace lines.
fn observed_run(
    limit: u64,
    budget: RunBudget,
) -> (
    RunOutcome<CReply>,
    compcerto_core::obs::LtsCounters,
    Vec<String>,
) {
    let _ = obs::take_trace(); // isolate from earlier tests on this thread
    let before = obs::counters();
    let out = run_budgeted(&Stepper { limit }, &query(), &mut refuse, &budget.json_trace());
    let delta = obs::counters().since(&before);
    (out, delta, obs::take_trace())
}

/// The trace must end with a `terminal` event naming `outcome`, and contain
/// exactly one `terminal` line in total.
fn assert_terminal(trace: &[String], outcome: &str) {
    let last = trace.last().unwrap_or_else(|| panic!("empty trace"));
    assert!(
        last.contains("\"ev\":\"terminal\"") && last.contains(&format!("\"outcome\":\"{outcome}\"")),
        "trace must end with terminal {outcome}, got {last}"
    );
    let terminals = trace
        .iter()
        .filter(|l| l.contains("\"ev\":\"terminal\""))
        .count();
    assert_eq!(terminals, 1, "exactly one terminal event per run: {trace:#?}");
}

#[test]
fn out_of_memory_counts_exactly_once_and_trace_is_terminal() {
    let (out, d, trace) = observed_run(1_000, RunBudget::with_fuel(1_000).mem_limit(64));
    assert!(matches!(out, RunOutcome::OutOfMemory { .. }), "{out:?}");
    assert_eq!(d.runs, 1);
    assert_eq!(d.out_of_memory, 1);
    assert_eq!(
        d.completes + d.wrongs + d.env_refused + d.out_of_fuel + d.depth_exceeded + d.timed_out,
        0,
        "no other terminal counter may tick: {d:?}"
    );
    assert_terminal(&trace, "out-of-memory");
}

#[test]
fn depth_exceeded_counts_exactly_once_and_trace_is_terminal() {
    let (out, d, trace) = observed_run(1_000, RunBudget::with_fuel(1_000).depth_limit(5));
    assert!(matches!(out, RunOutcome::DepthExceeded { .. }), "{out:?}");
    assert_eq!(d.runs, 1);
    assert_eq!(d.depth_exceeded, 1);
    assert_eq!(
        d.completes + d.wrongs + d.env_refused + d.out_of_fuel + d.out_of_memory + d.timed_out,
        0,
        "no other terminal counter may tick: {d:?}"
    );
    assert_terminal(&trace, "depth-exceeded");
}

#[test]
fn timed_out_counts_exactly_once_and_trace_is_terminal() {
    // A zero deadline trips at the very first stride-aligned check.
    let (out, d, trace) = observed_run(
        u64::MAX,
        RunBudget::with_fuel(u64::MAX).deadline(Duration::ZERO),
    );
    assert!(matches!(out, RunOutcome::TimedOut { .. }), "{out:?}");
    assert_eq!(d.runs, 1);
    assert_eq!(d.timed_out, 1);
    assert_eq!(
        d.completes + d.wrongs + d.env_refused + d.out_of_fuel + d.out_of_memory + d.depth_exceeded,
        0,
        "no other terminal counter may tick: {d:?}"
    );
    assert_terminal(&trace, "timed-out");
}

#[test]
fn out_of_fuel_counts_exactly_once_and_trace_is_terminal() {
    let (out, d, trace) = observed_run(1_000, RunBudget::with_fuel(10));
    assert!(matches!(out, RunOutcome::OutOfFuel { .. }), "{out:?}");
    assert_eq!(d.out_of_fuel, 1);
    assert_eq!(d.steps, 10, "fuel bound caps the step counter");
    assert_terminal(&trace, "out-of-fuel");
}

/// The double-counting regression (ISSUE 5 [fix] satellite): a known 3-step
/// program produces exactly 1 run-start + 3 step + 1 terminal = 5 events.
/// If the final answer were reported both by a loop arm and by the outer
/// bookkeeping point, the count would be 6 — this pins it.
#[test]
fn three_step_program_emits_exactly_five_events() {
    let (out, d, trace) = observed_run(3, RunBudget::with_fuel(100));
    assert!(matches!(out, RunOutcome::Complete { steps: 3, .. }), "{out:?}");
    assert_eq!(d.runs, 1);
    assert_eq!(d.steps, 3);
    assert_eq!(d.completes, 1);
    assert_eq!(trace.len(), 5, "1 run-start + 3 step + 1 terminal: {trace:#?}");
    assert!(trace[0].contains("\"ev\":\"run-start\""));
    assert!(trace[0].contains("\"schema\":\"compcerto-obs/1\""));
    for (i, line) in trace.iter().enumerate().take(4).skip(1) {
        assert!(
            line.contains("\"ev\":\"step\"") && line.contains(&format!("\"n\":{i}")),
            "line {i} must be step n={i}: {line}"
        );
    }
    assert_terminal(&trace, "complete");
    assert!(trace[4].contains("\"steps\":3"));
}

/// Step events are capped, but the terminal event always lands and the
/// *counter* keeps exact step totals past the cap.
#[test]
fn step_events_capped_but_counters_exact() {
    let n = obs::MAX_STEP_EVENTS + 40;
    let (out, d, trace) = observed_run(n, RunBudget::with_fuel(n + 10));
    assert!(matches!(out, RunOutcome::Complete { .. }), "{out:?}");
    assert_eq!(d.steps, n, "counter is exact past the event cap");
    let steps_emitted = trace.iter().filter(|l| l.contains("\"ev\":\"step\"")).count();
    assert_eq!(steps_emitted as u64, obs::MAX_STEP_EVENTS);
    assert_terminal(&trace, "complete");
}

/// Ring mode must emit *nothing* into the JSON sink (the two trace channels
/// are disjoint by construction).
#[test]
fn ring_mode_leaves_sink_empty() {
    let _ = obs::take_trace();
    let before = obs::counters();
    let out = run_budgeted(
        &Stepper { limit: 3 },
        &query(),
        &mut refuse,
        &RunBudget::with_fuel(100),
    );
    assert!(matches!(out, RunOutcome::Complete { .. }));
    let d = obs::counters().since(&before);
    assert_eq!(d.completes, 1, "counters tick in every trace mode");
    assert_eq!(obs::trace_len(), 0, "ring mode must not feed the JSON sink");
}
