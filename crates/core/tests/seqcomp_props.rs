//! Paper §3.5: the homogeneous sequential composition `∘_{A,A,A}` is an
//! *under-approximation* of `⊕` — whenever calls only flow one way, the two
//! operators agree; when the lower component calls back, `∘` goes wrong
//! while `⊕` proceeds.

use compcerto_core::hcomp::HComp;
use compcerto_core::iface::{CQuery, CReply, Signature, C};
use compcerto_core::lts::{run, Lts, RunOutcome, Step, Stuck};
use compcerto_core::seqcomp::SeqComp;
use mem::{Mem, Val};

/// A one-function component: `f_own(n) = n <= 0 ? base : peer(n - 1) + 1`.
#[derive(Clone)]
struct Chainer {
    own: u32,
    peer: Option<u32>,
    base: i32,
}

#[derive(Debug, Clone)]
enum St {
    Start(i32, Mem),
    Done(Val, Mem),
}

impl Lts for Chainer {
    type I = C;
    type O = C;
    type State = St;

    fn name(&self) -> String {
        format!("chainer@{}", self.own)
    }

    fn accepts(&self, q: &CQuery) -> bool {
        q.vf == Val::Ptr(self.own, 0)
    }

    fn initial(&self, q: &CQuery) -> Result<St, Stuck> {
        match q.args.first() {
            Some(Val::Int(n)) => Ok(St::Start(*n, q.mem.clone())),
            _ => Err(Stuck::new("bad argument")),
        }
    }

    fn step(&self, s: &St) -> Step<St, CQuery, CReply> {
        match s {
            St::Start(n, m) => match (self.peer, *n <= 0) {
                (_, true) | (None, _) => {
                    Step::Internal(St::Done(Val::Int(self.base), m.clone()), vec![])
                }
                (Some(peer), false) => Step::External(CQuery {
                    vf: Val::Ptr(peer, 0),
                    sig: Signature::int_fn(1),
                    args: vec![Val::Int(n - 1)],
                    mem: m.clone(),
                }),
            },
            St::Done(v, m) => Step::Final(CReply {
                retval: *v,
                mem: m.clone(),
            }),
        }
    }

    fn resume(&self, s: &St, a: CReply) -> Result<St, Stuck> {
        match s {
            St::Start(_, _) => Ok(St::Done(a.retval.add(Val::Int(1)), a.mem)),
            _ => Err(Stuck::new("bad resume")),
        }
    }
}

fn q(target: u32, n: i32) -> CQuery {
    CQuery {
        vf: Val::Ptr(target, 0),
        sig: Signature::int_fn(1),
        args: vec![Val::Int(n)],
        mem: Mem::new(),
    }
}

#[test]
fn seqcomp_agrees_with_hcomp_when_calls_flow_one_way() {
    // upper(1) calls lower(2); lower never calls back.
    let upper = Chainer {
        own: 1,
        peer: Some(2),
        base: 0,
    };
    let lower = Chainer {
        own: 2,
        peer: None,
        base: 100,
    };
    let seq = SeqComp::new(upper.clone(), lower.clone());
    let par = HComp::new(upper, lower);
    for n in [0, 1, 5] {
        let a = run(&seq, &q(1, n), &mut |_m| None, 10_000).expect_complete();
        let b = run(&par, &q(1, n), &mut |_m| None, 10_000).expect_complete();
        assert_eq!(a.retval, b.retval, "n = {n}");
    }
}

#[test]
fn seqcomp_underapproximates_on_backcalls() {
    // Mutually recursive components: ⊕ resolves the back-call, ∘ cannot
    // (the lower component's question to the upper one has nowhere to go).
    let upper = Chainer {
        own: 1,
        peer: Some(2),
        base: 0,
    };
    let lower = Chainer {
        own: 2,
        peer: Some(1), // calls back!
        base: 100,
    };
    let par = HComp::new(upper.clone(), lower.clone());
    let seq = SeqComp::new(upper, lower);
    // ⊕: full mutual recursion works.
    let b = run(&par, &q(1, 4), &mut |_m| None, 10_000).expect_complete();
    // 4 hops, bottoming in the upper component (base 0): 0 + 4.
    assert_eq!(b.retval, Val::Int(4));
    // ∘: fewer behaviours are defined *internally* — the back-call is not
    // resolved by the composition; it escapes to the environment instead
    // (the "under-approximation" of paper §3.5).
    // n=1: upper calls lower(0) → lower answers base → fine.
    let ok = run(&seq, &q(1, 1), &mut |_m| None, 10_000).expect_complete();
    assert_eq!(ok.retval, Val::Int(101));
    // n=2: lower(1)'s call to the upper component escapes; with a refusing
    // environment the run cannot proceed.
    assert!(matches!(
        run(&seq, &q(1, 2), &mut |_m| None, 10_000),
        RunOutcome::EnvRefused(_)
    ));
}

#[test]
fn seqcomp_outgoing_questions_escape_from_the_bottom() {
    // The lower component's external questions (not directed at the upper
    // one) go to the environment — the `A` side of `L1 ∘ L2 : A ↠ C`.
    let upper = Chainer {
        own: 1,
        peer: Some(2),
        base: 0,
    };
    let lower = Chainer {
        own: 2,
        peer: Some(99), // unknown: escapes
        base: 100,
    };
    let seq = SeqComp::new(upper, lower);
    let mut asked = 0;
    let r = run(
        &seq,
        &q(1, 3),
        &mut |m: &CQuery| {
            asked += 1;
            assert_eq!(m.vf, Val::Ptr(99, 0));
            Some(CReply {
                retval: Val::Int(1000),
                mem: m.mem.clone(),
            })
        },
        10_000,
    )
    .expect_complete();
    assert_eq!(asked, 1);
    // upper: lower(2)+1; lower: env(1)+1 = 1001; total 1002.
    assert_eq!(r.retval, Val::Int(1002));
}
