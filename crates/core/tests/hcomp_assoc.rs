//! Algebraic laws of horizontal composition `⊕` (paper §3.3): on components
//! with disjoint entry points, `⊕` is associative and commutative *as a
//! behaviour* — the flat interaction the environment observes does not depend
//! on how the composite was bracketed. The paper gets this from the
//! categorical structure of its LTS semantics; here it is checked on
//! randomized call topologies.

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use compcerto_core::hcomp::HComp;
use compcerto_core::iface::{CQuery, CReply, Signature, C};
use compcerto_core::lts::{run, Lts, RunOutcome, Step, Stuck};
use mem::{Mem, Val};
use proptest::prelude::*;

/// `f_own(n) = n <= 0 ? base : peer(n - 1) + 1`, with the peer chosen per
/// call as `peers[n % peers.len()]` — a randomizable call topology.
#[derive(Clone, Debug)]
struct Node {
    own: u32,
    peers: Vec<u32>,
    base: i32,
}

#[derive(Debug, Clone)]
enum St {
    Start(i32, Mem),
    Done(Val, Mem),
}

impl Lts for Node {
    type I = C;
    type O = C;
    type State = St;

    fn name(&self) -> String {
        format!("node@{}", self.own)
    }

    fn accepts(&self, q: &CQuery) -> bool {
        q.vf == Val::Ptr(self.own, 0)
    }

    fn initial(&self, q: &CQuery) -> Result<St, Stuck> {
        match q.args.first() {
            Some(Val::Int(n)) => Ok(St::Start(*n, q.mem.clone())),
            _ => Err(Stuck::new("bad argument")),
        }
    }

    fn step(&self, s: &St) -> Step<St, CQuery, CReply> {
        match s {
            St::Start(n, m) => {
                if *n <= 0 || self.peers.is_empty() {
                    Step::Internal(St::Done(Val::Int(self.base), m.clone()), vec![])
                } else {
                    let peer = self.peers[(*n as usize) % self.peers.len()];
                    Step::External(CQuery {
                        vf: Val::Ptr(peer, 0),
                        sig: Signature::int_fn(1),
                        args: vec![Val::Int(n - 1)],
                        mem: m.clone(),
                    })
                }
            }
            St::Done(v, m) => Step::Final(CReply {
                retval: *v,
                mem: m.clone(),
            }),
        }
    }

    fn resume(&self, s: &St, a: CReply) -> Result<St, Stuck> {
        match s {
            St::Start(_, _) => Ok(St::Done(a.retval.add(Val::Int(1)), a.mem)),
            _ => Err(Stuck::new("bad resume")),
        }
    }
}

fn q(target: u32, n: i32) -> CQuery {
    CQuery {
        vf: Val::Ptr(target, 0),
        sig: Signature::int_fn(1),
        args: vec![Val::Int(n)],
        mem: Mem::new(),
    }
}

/// The environment every bracketing is run against: answers any escaped
/// question `m` with `1000 + first argument`.
fn env(m: &CQuery) -> Option<CReply> {
    let n = match m.args.first() {
        Some(Val::Int(n)) => *n,
        _ => return None,
    };
    Some(CReply {
        retval: Val::Int(1000 + n),
        mem: m.mem.clone(),
    })
}

/// Run `l` on `(entry, n)` and summarize the observable outcome.
fn observe<L>(l: &L, entry: u32, n: i32) -> (String, u32)
where
    L: Lts<I = C, O = C>,
{
    let mut escapes = 0;
    let out = run(
        l,
        &q(entry, n),
        &mut |m: &CQuery| {
            escapes += 1;
            env(m)
        },
        100_000,
    );
    let tag = match out {
        RunOutcome::Complete { answer, .. } => format!("ret {}", answer.retval),
        RunOutcome::Wrong { stuck, .. } => format!("wrong: {stuck}"),
        RunOutcome::EnvRefused(q) => format!("refused: {q}"),
        RunOutcome::OutOfFuel { .. } => "out-of-fuel".into(),
        other => format!("budget: {:?}", other.into_answer().err()),
    };
    (tag, escapes)
}

/// Three nodes with entry blocks 1, 2, 3; peers drawn from {1, 2, 3, 99}
/// (99 is nobody: those calls escape to the environment).
fn topology() -> impl Strategy<Value = Vec<Node>> {
    let peer = prop_oneof![Just(1u32), Just(2), Just(3), Just(99)];
    let peers = proptest::collection::vec(peer, 0..3);
    (
        peers.clone(),
        peers.clone(),
        peers,
        any::<i8>(),
        any::<i8>(),
        any::<i8>(),
    )
        .prop_map(|(p1, p2, p3, b1, b2, b3)| {
            vec![
                Node {
                    own: 1,
                    peers: p1,
                    base: b1 as i32,
                },
                Node {
                    own: 2,
                    peers: p2,
                    base: b2 as i32,
                },
                Node {
                    own: 3,
                    peers: p3,
                    base: b3 as i32,
                },
            ]
        })
}

proptest! {
    /// `(A ⊕ B) ⊕ C` and `A ⊕ (B ⊕ C)` produce the same observable outcome
    /// (same answer or same failure, same number of environment escapes) on
    /// every entry point and depth.
    #[test]
    fn hcomp_is_associative(nodes in topology(), entry in 1u32..4, n in 0i32..12) {
        let [a, b, c]: [Node; 3] = nodes.try_into().ok().unwrap();
        let left = HComp::new(HComp::new(a.clone(), b.clone()), c.clone());
        let right = HComp::new(a, HComp::new(b, c));
        prop_assert_eq!(observe(&left, entry, n), observe(&right, entry, n));
    }

    /// `A ⊕ B` and `B ⊕ A` agree when the entry points are disjoint (they
    /// are, by construction: distinct `own` blocks).
    #[test]
    fn hcomp_is_commutative(nodes in topology(), entry in 1u32..3, n in 0i32..12) {
        let [a, b, _]: [Node; 3] = nodes.try_into().ok().unwrap();
        let ab = HComp::new(a.clone(), b.clone());
        let ba = HComp::new(b, a);
        prop_assert_eq!(observe(&ab, entry, n), observe(&ba, entry, n));
    }

    /// Composition only *adds* defined behaviour: whenever the single
    /// component completes against the environment, the composite completes
    /// with the same answer (Thm 3.4's flavour, environment side).
    #[test]
    fn hcomp_preserves_solo_behaviour(nodes in topology(), n in 0i32..12) {
        let [a, b, _]: [Node; 3] = nodes.try_into().ok().unwrap();
        // Only meaningful when A's calls all escape: `⊕` resolves calls to
        // either member (including A itself), the solo run resolves none.
        prop_assume!(a.peers.iter().all(|p| *p != b.own && *p != a.own));
        let solo = observe(&a, a.own, n);
        let both = observe(&HComp::new(a, b), 1, n);
        prop_assert_eq!(solo, both);
    }
}

#[test]
fn three_way_mutual_recursion_through_any_bracketing() {
    // 1 → 2 → 3 → 1 → …, depth 7: bottoming out in node (7 hops from entry 1
    // lands in node 2 with n = 0, base 20), plus one +1 per hop.
    let a = Node {
        own: 1,
        peers: vec![2],
        base: 10,
    };
    let b = Node {
        own: 2,
        peers: vec![3],
        base: 20,
    };
    let c = Node {
        own: 3,
        peers: vec![1],
        base: 30,
    };
    let left = HComp::new(HComp::new(a.clone(), b.clone()), c.clone());
    let right = HComp::new(a, HComp::new(b, c));
    let (tag_l, esc_l) = observe(&left, 1, 7);
    let (tag_r, esc_r) = observe(&right, 1, 7);
    assert_eq!(tag_l, tag_r);
    assert_eq!((esc_l, esc_r), (0, 0), "fully internal");
    assert_eq!(tag_l, "ret 27"); // base 20 + 7 increments
}
