//! Property-based validation of the `Selection` pass at the expression
//! level: for randomly generated Cminor expression trees, the selected
//! expression evaluates to a *refinement* of the original (the `ext`
//! convention's guarantee, paper §4.1), never to something unrelated.

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use compcerto_core::symtab::SymbolTable;
use mem::{Mem, Val};
use minor::cminor::{CmExpr, CmProgram};
use minor::cminorsel::SelProgram;
use minor::selection::selection;
use minor::structured::StructLang;
use minor::{MBinop, MUnop};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn leaf() -> impl Strategy<Value = CmExpr> {
    prop_oneof![
        any::<i32>().prop_map(CmExpr::ConstInt),
        any::<i64>().prop_map(CmExpr::ConstLong),
        (0u32..3).prop_map(CmExpr::Temp),
    ]
}

fn binop32() -> impl Strategy<Value = MBinop> {
    prop_oneof![
        Just(MBinop::Add32),
        Just(MBinop::Sub32),
        Just(MBinop::Mul32),
        Just(MBinop::And32),
        Just(MBinop::Or32),
        Just(MBinop::Xor32),
        Just(MBinop::Shl32),
        Just(MBinop::Cmp32(mem::Cmp::Lt)),
        Just(MBinop::Div32),
    ]
}

fn unop() -> impl Strategy<Value = MUnop> {
    prop_oneof![
        Just(MUnop::Neg32),
        Just(MUnop::Not32),
        Just(MUnop::BoolNot),
        Just(MUnop::SignExt),
        Just(MUnop::Trunc),
    ]
}

fn expr() -> impl Strategy<Value = CmExpr> {
    leaf().prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (unop(), inner.clone()).prop_map(|(op, a)| CmExpr::Unop(op, Box::new(a))),
            (binop32(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| CmExpr::Binop(
                op,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// Evaluate a Cminor expression with fixed temporaries in an empty memory.
fn eval_cm(e: &CmExpr, temps: &BTreeMap<u32, Val>) -> Val {
    let prog = CmProgram::default();
    let tbl = SymbolTable::new();
    let mem = Mem::new();
    prog.eval(&tbl, &(0, 0), temps, &mem, e)
        .unwrap_or(Val::Undef)
}

/// Evaluate the *selected* version of the expression.
fn eval_sel(e: &CmExpr, temps: &BTreeMap<u32, Val>) -> Val {
    // Wrap in a singleton program so `selection` can process it; the body is
    // irrelevant, we reuse the expression selector through a Set statement.
    use minor::GStmt;
    let f = minor::cminor::CmFunction {
        name: "f".into(),
        sig: compcerto_core::iface::Signature::int_fn(0),
        params: vec![],
        stack_size: 0,
        temps: vec![0, 1, 2, 9],
        body: GStmt::Set(9, e.clone()),
    };
    let sel: SelProgram = selection(&CmProgram {
        functions: vec![f],
        externs: vec![],
    });
    let GStmt::Set(9, ref se) = sel.functions[0].body else {
        panic!("selection changed the statement shape");
    };
    let tbl = SymbolTable::new();
    let mem = Mem::new();
    sel.eval(&tbl, &(0, 0), temps, &mem, se)
        .unwrap_or(Val::Undef)
}

proptest! {
    /// The selected expression refines the original: `eval(e) ≤v eval(sel(e))`.
    #[test]
    fn selection_refines_evaluation(
        e in expr(),
        t0 in any::<i32>(),
        t1 in any::<i32>(),
        t2 in any::<i64>(),
    ) {
        let mut temps = BTreeMap::new();
        temps.insert(0u32, Val::Int(t0));
        temps.insert(1u32, Val::Int(t1));
        temps.insert(2u32, Val::Long(t2));
        let v1 = eval_cm(&e, &temps);
        let v2 = eval_sel(&e, &temps);
        prop_assert!(
            v1.lessdef(&v2),
            "selection changed the value: {} vs {} on {:?}",
            v1,
            v2,
            e
        );
    }

    /// Selection with undefined temporaries still only refines (x*0 → 0 is
    /// the canonical case where Undef becomes defined).
    #[test]
    fn selection_refines_undef(e in expr()) {
        let mut temps = BTreeMap::new();
        temps.insert(0u32, Val::Undef);
        temps.insert(1u32, Val::Int(0));
        temps.insert(2u32, Val::Undef);
        let v1 = eval_cm(&e, &temps);
        let v2 = eval_sel(&e, &temps);
        prop_assert!(v1.lessdef(&v2), "{} not ≤v {}", v1, v2);
    }
}
