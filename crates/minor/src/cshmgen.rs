//! The `Cshmgen` pass: type-directed lowering from Clight-mini to
//! Csharpminor (paper Table 3, convention `id ↠ id`).
//!
//! C types disappear: every operation picks its machine width from the
//! operand types, loads and stores become explicit with their chunks, and
//! parameters uniformly become temporaries (memory-resident parameters get an
//! entry store). The memory behaviour is unchanged — the same blocks are
//! allocated in the same order — which is why the pass's simulation
//! convention is the identity.

use std::collections::BTreeMap;
use std::fmt;

use clight::{ast, Ty};
use compcerto_core::symtab::Ident;
use mem::Chunk;

use crate::csharp::{CsExpr, CsFunction, CsProgram, CsStmt};
use crate::op::{MBinop, MUnop};
use crate::structured::{GStmt, TempId};

/// Errors raised by `Cshmgen` (all indicate an ill-typed input program —
/// running [`clight::typecheck`] first prevents them).
#[derive(Debug, Clone, PartialEq)]
pub struct CshmgenError {
    /// Function being translated.
    pub function: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for CshmgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cshmgen in `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for CshmgenError {}

struct FnCtx {
    fname: String,
    /// Clight names lifted to temporaries (from `SimplLocals`), plus
    /// memory-resident parameter shadows.
    name_temps: BTreeMap<Ident, TempId>,
    next_temp: TempId,
    temps: Vec<TempId>,
}

impl FnCtx {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, CshmgenError> {
        Err(CshmgenError {
            function: self.fname.clone(),
            message: message.into(),
        })
    }

    fn fresh(&mut self) -> TempId {
        let t = self.next_temp;
        self.next_temp += 1;
        self.temps.push(t);
        t
    }
}

/// Lower a typed Clight-mini program to Csharpminor.
///
/// # Errors
/// Fails only on ill-typed inputs (see [`CshmgenError`]).
pub fn cshmgen(prog: &ast::Program) -> Result<CsProgram, CshmgenError> {
    let mut out = CsProgram::default();
    for e in &prog.externs {
        out.externs.push((e.name.clone(), e.signature()));
    }
    for f in &prog.functions {
        out.functions.push(translate_function(f)?);
    }
    // Functions defined in this unit may also be referenced through
    // declarations in others; expose their signatures for `sig_of`.
    Ok(out)
}

fn translate_function(f: &ast::Function) -> Result<CsFunction, CshmgenError> {
    let mut ctx = FnCtx {
        fname: f.name.clone(),
        name_temps: f
            .temps
            .iter()
            .filter_map(|(t, _, n)| n.clone().map(|n| (n, *t)))
            .collect(),
        next_temp: f.temps.iter().map(|(t, _, _)| t + 1).max().unwrap_or(0),
        temps: f.temps.iter().map(|(t, _, _)| *t).collect(),
    };

    // Parameters: reuse the lifted temp when SimplLocals created one;
    // otherwise allocate a shadow temp and store it into the memory local.
    let mut params = Vec::with_capacity(f.params.len());
    let mut entry = GStmt::Skip;
    for (pname, pty) in &f.params {
        if let Some(t) = ctx.name_temps.get(pname).copied() {
            params.push(t);
        } else {
            let t = ctx.fresh();
            params.push(t);
            let chunk = chunk_of(&ctx, pty)?;
            entry = GStmt::seq(
                entry,
                GStmt::Store(chunk, CsExpr::AddrOf(pname.clone()), CsExpr::Temp(t)),
            );
        }
    }

    let body = translate_stmt(&mut ctx, &f.body)?;
    Ok(CsFunction {
        name: f.name.clone(),
        sig: f.signature(),
        params,
        vars: f.vars.iter().map(|(n, t)| (n.clone(), t.size())).collect(),
        temps: ctx.temps,
        body: GStmt::seq(entry, body),
    })
}

fn chunk_of(ctx: &FnCtx, ty: &Ty) -> Result<Chunk, CshmgenError> {
    ty.chunk()
        .ok_or(())
        .or_else(|()| ctx.err(format!("no chunk for type {ty}")))
}

fn translate_stmt(ctx: &mut FnCtx, s: &ast::Stmt) -> Result<CsStmt, CshmgenError> {
    match s {
        ast::Stmt::Skip => Ok(GStmt::Skip),
        ast::Stmt::Break => Ok(GStmt::Break),
        ast::Stmt::Continue => Ok(GStmt::Continue),
        ast::Stmt::Assign(lv, rhs) => {
            let chunk = chunk_of(ctx, &lv.ty())?;
            let addr = translate_addr(ctx, lv)?;
            let value = translate_expr(ctx, rhs)?;
            Ok(GStmt::Store(chunk, addr, value))
        }
        ast::Stmt::Set(t, e) => Ok(GStmt::Set(*t, translate_expr(ctx, e)?)),
        ast::Stmt::Call(dest, fname, args) => {
            let args = args
                .iter()
                .map(|a| translate_expr(ctx, a))
                .collect::<Result<Vec<_>, _>>()?;
            match dest {
                ast::CallDest::None => Ok(GStmt::Call(None, fname.clone(), args)),
                ast::CallDest::Temp(t, _) => Ok(GStmt::Call(Some(*t), fname.clone(), args)),
                ast::CallDest::Lvalue(lv) => {
                    let t = ctx.fresh();
                    let chunk = chunk_of(ctx, &lv.ty())?;
                    let addr = translate_addr(ctx, lv)?;
                    Ok(GStmt::seq(
                        GStmt::Call(Some(t), fname.clone(), args),
                        GStmt::Store(chunk, addr, CsExpr::Temp(t)),
                    ))
                }
            }
        }
        ast::Stmt::Seq(a, b) => Ok(GStmt::Seq(
            Box::new(translate_stmt(ctx, a)?),
            Box::new(translate_stmt(ctx, b)?),
        )),
        ast::Stmt::If(c, a, b) => Ok(GStmt::If(
            translate_expr(ctx, c)?,
            Box::new(translate_stmt(ctx, a)?),
            Box::new(translate_stmt(ctx, b)?),
        )),
        ast::Stmt::While(c, body) => Ok(GStmt::While(
            translate_expr(ctx, c)?,
            Box::new(translate_stmt(ctx, body)?),
        )),
        ast::Stmt::Return(None) => Ok(GStmt::Return(None)),
        ast::Stmt::Return(Some(e)) => Ok(GStmt::Return(Some(translate_expr(ctx, e)?))),
    }
}

/// Translate an lvalue to the expression computing its address.
fn translate_addr(ctx: &mut FnCtx, lv: &ast::Expr) -> Result<CsExpr, CshmgenError> {
    match lv {
        ast::Expr::Var(name, _) => {
            if ctx.name_temps.contains_key(name) {
                ctx.err(format!("address of lifted variable `{name}`"))
            } else {
                Ok(CsExpr::AddrOf(name.clone()))
            }
        }
        ast::Expr::Deref(inner, _) => translate_expr(ctx, inner),
        other => ctx.err(format!("not an lvalue: {other}")),
    }
}

fn translate_expr(ctx: &mut FnCtx, e: &ast::Expr) -> Result<CsExpr, CshmgenError> {
    match e {
        ast::Expr::ConstInt(n) => Ok(CsExpr::ConstInt(*n)),
        ast::Expr::ConstLong(n) => Ok(CsExpr::ConstLong(*n)),
        ast::Expr::SizeOf(t) => Ok(CsExpr::ConstLong(t.size())),
        ast::Expr::Temp(t, _) => Ok(CsExpr::Temp(*t)),
        ast::Expr::Var(name, ty) => {
            // An rvalue variable: lifted → temp; memory-resident → load.
            if let Some(t) = ctx.name_temps.get(name) {
                return Ok(CsExpr::Temp(*t));
            }
            let chunk = chunk_of(ctx, ty)?;
            Ok(CsExpr::Load(chunk, Box::new(CsExpr::AddrOf(name.clone()))))
        }
        ast::Expr::Deref(inner, ty) => {
            let chunk = chunk_of(ctx, ty)?;
            Ok(CsExpr::Load(chunk, Box::new(translate_expr(ctx, inner)?)))
        }
        ast::Expr::Addr(lv, _) => translate_addr(ctx, lv),
        ast::Expr::Unop(op, a, ty) => {
            let a_cs = translate_expr(ctx, a)?;
            let mop = match (op, ty) {
                (ast::Unop::Neg, Ty::Int) => MUnop::Neg32,
                (ast::Unop::Neg, Ty::Long) => MUnop::Neg64,
                (ast::Unop::Not, Ty::Int) => MUnop::Not32,
                (ast::Unop::Not, Ty::Long) => MUnop::Not64,
                (ast::Unop::LogicalNot, _) => MUnop::BoolNot,
                (op, ty) => return ctx.err(format!("unary {op} at {ty}")),
            };
            Ok(CsExpr::Unop(mop, Box::new(a_cs)))
        }
        ast::Expr::Binop(op, a, b, ty) => {
            let wa = a.ty();
            let a_cs = translate_expr(ctx, a)?;
            let b_cs = translate_expr(ctx, b)?;
            let _ = ty;
            let wide = !matches!(wa, Ty::Int);
            let mop = machine_binop(*op, wide);
            Ok(CsExpr::Binop(mop, Box::new(a_cs), Box::new(b_cs)))
        }
        ast::Expr::Cast(a, target) => {
            let from = a.ty();
            let a_cs = translate_expr(ctx, a)?;
            Ok(match (&from, target) {
                (Ty::Int, Ty::Long) => CsExpr::Unop(MUnop::SignExt, Box::new(a_cs)),
                (Ty::Long, Ty::Int) => CsExpr::Unop(MUnop::Trunc, Box::new(a_cs)),
                // Identity casts and pointer/long reinterpretations.
                _ => a_cs,
            })
        }
        ast::Expr::Index(_, _, _) => ctx.err("surface Index reached cshmgen"),
    }
}

fn machine_binop(op: ast::Binop, wide: bool) -> MBinop {
    use ast::Binop::*;
    match (op, wide) {
        (Add, false) => MBinop::Add32,
        (Add, true) => MBinop::Add64,
        (Sub, false) => MBinop::Sub32,
        (Sub, true) => MBinop::Sub64,
        (Mul, false) => MBinop::Mul32,
        (Mul, true) => MBinop::Mul64,
        (Div, false) => MBinop::Div32,
        (Div, true) => MBinop::Div64,
        (Mod, false) => MBinop::Mod32,
        (Mod, true) => MBinop::Mod64,
        (And, false) => MBinop::And32,
        (And, true) => MBinop::And64,
        (Or, false) => MBinop::Or32,
        (Or, true) => MBinop::Or64,
        (Xor, false) => MBinop::Xor32,
        (Xor, true) => MBinop::Xor64,
        (Shl, false) => MBinop::Shl32,
        (Shl, true) => MBinop::Shl64,
        (Shr, false) => MBinop::Shr32,
        (Shr, true) => MBinop::Shr64,
        (Cmp(c), false) => MBinop::Cmp32(c),
        (Cmp(c), true) => MBinop::Cmp64(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csharp::CsharpSem;
    use clight::{build_symtab, parse, simpl_locals, typecheck, ClightSem};
    use compcerto_core::iface::{CQuery, CReply};
    use compcerto_core::lts::run;
    use mem::Val;

    /// Run the same query against the Clight and Csharpminor semantics and
    /// require identical replies (the pass's `id ↠ id` convention).
    fn differential(src: &str, fname: &str, args: Vec<Val>) -> CReply {
        let p = typecheck(&parse(src).unwrap()).unwrap();
        let p = simpl_locals(&p);
        let cs = cshmgen(&p).unwrap();
        let tbl = build_symtab(&[&p]).unwrap();
        let mem = tbl.build_init_mem().unwrap();
        let q = CQuery {
            vf: tbl.func_ptr(fname).unwrap(),
            sig: p.sig_of(fname).unwrap(),
            args,
            mem,
        };
        let s1 = ClightSem::new(p, tbl.clone());
        let s2 = CsharpSem::new(cs, tbl);
        let env = |eq: &CQuery| {
            Some(CReply {
                retval: eq.args.first().copied().unwrap_or(Val::Int(0)),
                mem: eq.mem.clone(),
            })
        };
        let r1 = run(&s1, &q, &mut env.clone(), 1_000_000).expect_complete();
        let r2 = run(&s2, &q, &mut env.clone(), 1_000_000).expect_complete();
        assert_eq!(r1.retval, r2.retval, "return values differ");
        assert_eq!(r1.mem, r2.mem, "memories differ (id convention)");
        r2
    }

    #[test]
    fn arithmetic() {
        let r = differential(
            "int f(int a, int b) { return (a + b) * (a - b); }",
            "f",
            vec![Val::Int(7), Val::Int(3)],
        );
        assert_eq!(r.retval, Val::Int(40));
    }

    #[test]
    fn memory_params_and_pointers() {
        let src = "
            int swap_add(int a, int b) {
                int* p; int t;
                p = &a;
                t = *p;
                *p = b;
                return t + a;
            }";
        let r = differential(src, "swap_add", vec![Val::Int(5), Val::Int(9)]);
        assert_eq!(r.retval, Val::Int(14));
    }

    #[test]
    fn loops_and_arrays() {
        let src = "
            long acc[4];
            long sum(int n) {
                int i; long s;
                s = 0L;
                for (i = 0; i < n; i = i + 1) { acc[i] = (long) i; }
                for (i = 0; i < n; i = i + 1) { s = s + acc[i]; }
                return s;
            }";
        let r = differential(src, "sum", vec![Val::Int(4)]);
        assert_eq!(r.retval, Val::Long(6));
    }

    #[test]
    fn internal_and_external_calls() {
        let src = "
            extern int osc(int);
            int helper(int x) { return x * 3; }
            int f(int x) {
                int a; int b;
                a = helper(x);
                b = osc(a);
                return a + b;
            }";
        // env echoes its argument, so osc(a) == a.
        let r = differential(src, "f", vec![Val::Int(2)]);
        assert_eq!(r.retval, Val::Int(12));
    }

    #[test]
    fn casts_and_widths() {
        let src = "
            int f(long x) {
                int lo;
                lo = (int) x;
                return lo + 1;
            }";
        let r = differential(src, "f", vec![Val::Long(0x1_0000_0009)]);
        assert_eq!(r.retval, Val::Int(10));
    }
}
