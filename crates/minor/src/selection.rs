//! The `Selection` pass: operator and addressing-mode selection from Cminor
//! to CminorSel (paper Table 3, convention `wt·ext ↠ wt·ext`).
//!
//! Transformations performed:
//! * constant folding of fully-constant operations;
//! * immediate folding (`x + 3` becomes an add-immediate; commutative
//!   operators canonicalize the constant to the right);
//! * addressing-mode folding (`load [p + 8]` becomes a displaced load;
//!   displacements fold into global addresses);
//! * algebraic simplifications (`x + 0`, `x * 1`, `x * 0`, shifts by 0).
//!
//! Simplifications like `x * 0 → 0` may replace an undefined source value by
//! a defined one — precisely the *refinement* that the `ext` convention
//! (paper §4.1) permits.

use mem::Val;

use crate::cminor::{CmExpr, CmFunction, CmProgram};
use crate::cminorsel::{SelExpr, SelFunction, SelProgram, SelStmt};
use crate::op::MBinop;
use crate::structured::GStmt;

/// Run instruction selection over a Cminor program.
pub fn selection(prog: &CmProgram) -> SelProgram {
    SelProgram {
        functions: prog.functions.iter().map(select_function).collect(),
        externs: prog.externs.clone(),
    }
}

fn select_function(f: &CmFunction) -> SelFunction {
    SelFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        params: f.params.clone(),
        stack_size: f.stack_size,
        temps: f.temps.clone(),
        body: select_stmt(&f.body),
    }
}

fn select_stmt(s: &GStmt<CmExpr>) -> SelStmt {
    match s {
        GStmt::Skip => GStmt::Skip,
        GStmt::Break => GStmt::Break,
        GStmt::Continue => GStmt::Continue,
        GStmt::Set(t, e) => GStmt::Set(*t, select_expr(e)),
        GStmt::Store(chunk, a, v) => GStmt::Store(*chunk, select_expr(a), select_expr(v)),
        GStmt::Call(dest, f, args) => {
            GStmt::Call(*dest, f.clone(), args.iter().map(select_expr).collect())
        }
        GStmt::Seq(a, b) => GStmt::Seq(Box::new(select_stmt(a)), Box::new(select_stmt(b))),
        GStmt::If(c, a, b) => GStmt::If(
            select_expr(c),
            Box::new(select_stmt(a)),
            Box::new(select_stmt(b)),
        ),
        GStmt::While(c, body) => GStmt::While(select_expr(c), Box::new(select_stmt(body))),
        GStmt::Return(e) => GStmt::Return(e.as_ref().map(select_expr)),
    }
}

/// The constant value of a selected expression, if it is one.
fn const_of(e: &SelExpr) -> Option<Val> {
    match e {
        SelExpr::ConstInt(n) => Some(Val::Int(*n)),
        SelExpr::ConstLong(n) => Some(Val::Long(*n)),
        _ => None,
    }
}

fn const_expr(v: Val) -> Option<SelExpr> {
    match v {
        Val::Int(n) => Some(SelExpr::ConstInt(n)),
        Val::Long(n) => Some(SelExpr::ConstLong(n)),
        _ => None,
    }
}

fn is_commutative(op: MBinop) -> bool {
    use MBinop::*;
    matches!(
        op,
        Add32 | Mul32 | And32 | Or32 | Xor32 | Add64 | Mul64 | And64 | Or64 | Xor64
    )
}

fn select_expr(e: &CmExpr) -> SelExpr {
    match e {
        CmExpr::ConstInt(n) => SelExpr::ConstInt(*n),
        CmExpr::ConstLong(n) => SelExpr::ConstLong(*n),
        CmExpr::Temp(t) => SelExpr::Temp(*t),
        CmExpr::AddrStack(ofs) => SelExpr::AddrStack(*ofs),
        CmExpr::AddrGlobal(name) => SelExpr::AddrGlobal(name.clone(), 0),
        CmExpr::Unop(op, a) => SelExpr::Unop(*op, Box::new(select_expr(a))),
        CmExpr::Load(chunk, addr) => {
            let (base, disp) = split_addressing(select_expr(addr));
            SelExpr::Load(*chunk, Box::new(base), disp)
        }
        CmExpr::Binop(op, a, b) => {
            let mut a = select_expr(a);
            let mut b = select_expr(b);
            // Canonicalize constants to the right for commutative operators.
            if is_commutative(*op) && const_of(&a).is_some() && const_of(&b).is_none() {
                std::mem::swap(&mut a, &mut b);
            }
            // Full constant folding.
            if let (Some(ca), Some(cb)) = (const_of(&a), const_of(&b)) {
                if let Some(folded) = op.fold(&ca, &cb) {
                    if let Some(fe) = const_expr(folded) {
                        return fe;
                    }
                }
            }
            // Algebraic simplifications and immediate folding.
            if let Some(cb) = const_of(&b) {
                if let Some(simplified) = simplify(*op, &a, &cb) {
                    return simplified;
                }
                return SelExpr::BinopImm(*op, Box::new(a), cb);
            }
            SelExpr::Binop(*op, Box::new(a), Box::new(b))
        }
    }
}

/// Pull a constant displacement out of an address expression.
fn split_addressing(addr: SelExpr) -> (SelExpr, i64) {
    match addr {
        SelExpr::BinopImm(MBinop::Add64, base, Val::Long(n)) => {
            let (inner, disp) = split_addressing(*base);
            (inner, disp + n)
        }
        SelExpr::AddrGlobal(name, d) => (SelExpr::AddrGlobal(name, d), 0),
        SelExpr::AddrStack(ofs) => (SelExpr::AddrStack(ofs), 0),
        other => (other, 0),
    }
}

/// Strength reductions on `op(a, constant)`. Returns `None` when no
/// simplification applies (the caller then emits an immediate form).
fn simplify(op: MBinop, a: &SelExpr, c: &Val) -> Option<SelExpr> {
    use MBinop::*;
    match (op, c) {
        // x + 0, x - 0, x | 0, x ^ 0, x << 0, x >> 0 → x
        (Add32 | Sub32 | Or32 | Xor32, Val::Int(0))
        | (Add64 | Sub64 | Or64 | Xor64, Val::Long(0))
        | (Shl32 | Shr32 | Shru32 | Shl64 | Shr64 | Shru64, Val::Int(0)) => Some(a.clone()),
        // x * 1, x / 1 → x
        (Mul32 | Div32, Val::Int(1)) | (Mul64 | Div64, Val::Long(1)) => Some(a.clone()),
        // x * 0, x & 0 → 0 (refines undef into 0: allowed by `ext`).
        (Mul32 | And32, Val::Int(0)) => Some(SelExpr::ConstInt(0)),
        (Mul64 | And64, Val::Long(0)) => Some(SelExpr::ConstLong(0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cminor::CminorSem;
    use crate::cminorgen::cminorgen;
    use crate::cminorsel::CminorSelSem;
    use crate::cshmgen::cshmgen;
    use clight::{build_symtab, parse, simpl_locals, typecheck};
    use compcerto_core::iface::{CQuery, CReply};
    use compcerto_core::lts::run;
    use mem::extends;

    fn pipeline(src: &str) -> (CmProgram, SelProgram, compcerto_core::symtab::SymbolTable) {
        let p = simpl_locals(&typecheck(&parse(src).unwrap()).unwrap());
        let cm = cminorgen(&cshmgen(&p).unwrap()).unwrap();
        let sel = selection(&cm);
        let tbl = build_symtab(&[&p]).unwrap();
        (cm, sel, tbl)
    }

    /// Differential check under `wt·ext ↠ wt·ext`: return value refined
    /// (lessdef), memory extended.
    fn differential(src: &str, fname: &str, args: Vec<Val>) -> CReply {
        let (cm, sel, tbl) = pipeline(src);
        let mem = tbl.build_init_mem().unwrap();
        let sig = cm.function(fname).unwrap().sig.clone();
        let q = CQuery {
            vf: tbl.func_ptr(fname).unwrap(),
            sig,
            args,
            mem,
        };
        let s1 = CminorSem::new(cm, tbl.clone());
        let s2 = CminorSelSem::new(sel, tbl);
        let env = |eq: &CQuery| {
            Some(CReply {
                retval: eq.args.first().copied().unwrap_or(Val::Int(0)),
                mem: eq.mem.clone(),
            })
        };
        let r1 = run(&s1, &q, &mut env.clone(), 1_000_000).expect_complete();
        let r2 = run(&s2, &q, &mut env.clone(), 1_000_000).expect_complete();
        assert!(
            r1.retval.lessdef(&r2.retval),
            "retval not refined: {} vs {}",
            r1.retval,
            r2.retval
        );
        assert!(extends(&r1.mem, &r2.mem), "memory not extended");
        r2
    }

    #[test]
    fn folds_constants() {
        let e = CmExpr::Binop(
            MBinop::Add32,
            Box::new(CmExpr::ConstInt(2)),
            Box::new(CmExpr::ConstInt(3)),
        );
        assert_eq!(select_expr(&e), SelExpr::ConstInt(5));
    }

    #[test]
    fn folds_immediates_and_commutes() {
        let e = CmExpr::Binop(
            MBinop::Add32,
            Box::new(CmExpr::ConstInt(3)),
            Box::new(CmExpr::Temp(0)),
        );
        assert_eq!(
            select_expr(&e),
            SelExpr::BinopImm(MBinop::Add32, Box::new(SelExpr::Temp(0)), Val::Int(3))
        );
    }

    #[test]
    fn folds_addressing() {
        // load [t0 + 8] — the displacement lands in the load.
        let e = CmExpr::Load(
            mem::Chunk::I64,
            Box::new(CmExpr::Binop(
                MBinop::Add64,
                Box::new(CmExpr::Temp(0)),
                Box::new(CmExpr::ConstLong(8)),
            )),
        );
        match select_expr(&e) {
            SelExpr::Load(_, base, 8) => assert_eq!(*base, SelExpr::Temp(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simplifies_identities() {
        let x_plus_0 = CmExpr::Binop(
            MBinop::Add32,
            Box::new(CmExpr::Temp(1)),
            Box::new(CmExpr::ConstInt(0)),
        );
        assert_eq!(select_expr(&x_plus_0), SelExpr::Temp(1));
        let x_times_0 = CmExpr::Binop(
            MBinop::Mul64,
            Box::new(CmExpr::Temp(1)),
            Box::new(CmExpr::ConstLong(0)),
        );
        assert_eq!(select_expr(&x_times_0), SelExpr::ConstLong(0));
    }

    #[test]
    fn behaviour_preserved_end_to_end() {
        let src = "
            long dot(long a, long b) {
                long buf[2];
                buf[0] = a * 1;
                buf[1] = b + 0;
                return buf[0] * 2 + buf[1] * 0 + buf[1];
            }";
        let r = differential(src, "dot", vec![Val::Long(21), Val::Long(5)]);
        assert_eq!(r.retval, Val::Long(47));
    }

    #[test]
    fn calls_preserved() {
        let src = "
            extern int ext(int);
            int f(int x) { int r; r = ext(x * 1 + 0); return r + 2 * 3; }";
        let r = differential(src, "f", vec![Val::Int(4)]);
        assert_eq!(r.retval, Val::Int(10));
    }
}
