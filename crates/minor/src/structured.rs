//! A generic open semantics for the structured intermediate languages
//! (Csharpminor, Cminor, CminorSel).
//!
//! These languages share their statement shapes and differ only in their
//! expression language and activation-record discipline; [`StructLang`]
//! captures the differences and [`StructSem`] provides a single `C ↠ C`
//! LTS implementation (paper Def. 3.1) for all of them.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use compcerto_core::iface::{CQuery, CReply, Signature, C};
use compcerto_core::lts::{Lts, Step, Stuck};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{Chunk, Mem, Val};

/// Temporary identifier (register-like local).
pub type TempId = u32;

/// Statements shared by the structured intermediate languages, generic over
/// the expression type `E`.
#[derive(Debug, Clone, PartialEq)]
pub enum GStmt<E> {
    /// No operation.
    Skip,
    /// `$t := e`.
    Set(TempId, E),
    /// `[addr] := value` through `chunk`.
    Store(Chunk, E, E),
    /// `dest := call name(args)`; the callee is a global symbol.
    Call(Option<TempId>, Ident, Vec<E>),
    /// Sequencing.
    Seq(Box<GStmt<E>>, Box<GStmt<E>>),
    /// Conditional.
    If(E, Box<GStmt<E>>, Box<GStmt<E>>),
    /// Loop.
    While(E, Box<GStmt<E>>),
    /// Exit the nearest loop.
    Break,
    /// Re-test the nearest loop.
    Continue,
    /// Return.
    Return(Option<E>),
}

impl<E> GStmt<E> {
    /// Sequence two statements, dropping `Skip`s.
    pub fn seq(a: GStmt<E>, b: GStmt<E>) -> GStmt<E> {
        match (a, b) {
            (GStmt::Skip, b) => b,
            (a, GStmt::Skip) => a,
            (a, b) => GStmt::Seq(Box::new(a), Box::new(b)),
        }
    }
}

/// What distinguishes one structured language from another.
pub trait StructLang {
    /// Function representation.
    type Fun;
    /// Expression representation.
    type Expr: Clone + fmt::Debug;
    /// Per-activation memory environment (allocated blocks).
    type Env: Clone + fmt::Debug;

    /// Language name for diagnostics.
    fn lang_name(&self) -> &'static str;

    /// Find a function defined by this unit.
    fn find_fun(&self, name: &str) -> Option<&Self::Fun>;

    /// Signature of a function or known external.
    fn sig_of(&self, name: &str) -> Option<Signature>;

    /// Signature of a definition.
    fn fun_sig(&self, f: &Self::Fun) -> Signature;

    /// Parameter temporaries, in order.
    fn fun_params<'a>(&self, f: &'a Self::Fun) -> &'a [TempId];

    /// All temporaries of the function (initialized to `Undef`).
    fn fun_temps(&self, f: &Self::Fun) -> Vec<TempId>;

    /// Body.
    fn fun_body<'a>(&self, f: &'a Self::Fun) -> &'a GStmt<Self::Expr>;

    /// Allocate the activation's memory environment.
    fn enter(&self, f: &Self::Fun, mem: &mut Mem) -> Self::Env;

    /// Free the activation's memory environment.
    ///
    /// # Errors
    /// Fails if a block cannot be freed (corrupted permissions).
    fn leave(&self, f: &Self::Fun, env: &Self::Env, mem: &mut Mem) -> Result<(), Stuck>;

    /// Evaluate an expression.
    ///
    /// # Errors
    /// Undefined behaviour (bad loads, unbound temporaries, …).
    fn eval(
        &self,
        symtab: &SymbolTable,
        env: &Self::Env,
        temps: &BTreeMap<TempId, Val>,
        mem: &Mem,
        e: &Self::Expr,
    ) -> Result<Val, Stuck>;
}

/// An activation frame.
#[derive(Debug, Clone)]
pub struct GFrame<Env> {
    fname: Ident,
    env: Env,
    temps: BTreeMap<TempId, Val>,
}

/// Continuations.
#[derive(Debug, Clone)]
pub enum GKont<E, Env> {
    /// Return to the environment.
    Stop,
    /// Run a statement next.
    Seq(GStmt<E>, Rc<GKont<E, Env>>),
    /// Loop re-entry point.
    Loop(E, GStmt<E>, Rc<GKont<E, Env>>),
    /// Return into a suspended internal caller.
    Call {
        /// Result destination.
        dest: Option<TempId>,
        /// Suspended frame.
        frame: GFrame<Env>,
        /// Rest.
        kont: Rc<GKont<E, Env>>,
    },
}

/// States of the generic structured-language LTS.
#[derive(Debug, Clone)]
pub enum GState<E, Env> {
    /// Entering a locally-defined function.
    Entry {
        /// Callee name.
        fname: Ident,
        /// Arguments.
        args: Vec<Val>,
        /// Memory.
        mem: Mem,
        /// Continuation.
        kont: GKont<E, Env>,
    },
    /// Executing a statement.
    Stmt {
        /// Current statement.
        s: GStmt<E>,
        /// Frame.
        frame: GFrame<Env>,
        /// Continuation.
        kont: GKont<E, Env>,
        /// Memory.
        mem: Mem,
    },
    /// Unwinding a return value.
    Returning {
        /// The value.
        v: Val,
        /// Memory.
        mem: Mem,
        /// Continuation (`Stop` or `Call`).
        kont: GKont<E, Env>,
    },
    /// Suspended on an external call.
    External {
        /// Outgoing question.
        q: CQuery,
        /// Result destination.
        dest: Option<TempId>,
        /// Suspended frame.
        frame: GFrame<Env>,
        /// Continuation.
        kont: GKont<E, Env>,
    },
}

/// The generic open semantics of a structured-language unit, over `C ↠ C`.
#[derive(Debug, Clone)]
pub struct StructSem<L> {
    lang: L,
    symtab: SymbolTable,
    label: String,
}

impl<L: StructLang> StructSem<L> {
    /// Wrap a language unit and the shared symbol table.
    pub fn new(lang: L, symtab: SymbolTable) -> StructSem<L> {
        let label = lang.lang_name().to_string();
        StructSem {
            lang,
            symtab,
            label,
        }
    }

    /// Override the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> StructSem<L> {
        self.label = label.into();
        self
    }

    /// The wrapped language unit.
    pub fn lang(&self) -> &L {
        &self.lang
    }

    /// The shared symbol table.
    pub fn symtab(&self) -> &SymbolTable {
        &self.symtab
    }

    fn stuck<T>(&self, msg: impl Into<String>) -> Result<T, Stuck> {
        Err(Stuck::new(format!("{}: {}", self.label, msg.into())))
    }

    fn fun_of_val(&self, vf: &Val) -> Option<(&str, &L::Fun)> {
        match vf {
            Val::Ptr(b, 0) => {
                let name = self.symtab.ident_of(*b)?;
                self.lang.find_fun(name).map(|f| (name, f))
            }
            _ => None,
        }
    }

    fn step_stmt(
        &self,
        s: &GStmt<L::Expr>,
        frame: &GFrame<L::Env>,
        kont: &GKont<L::Expr, L::Env>,
        mem: &Mem,
    ) -> Result<GState<L::Expr, L::Env>, Stuck> {
        let eval = |e: &L::Expr| {
            self.lang
                .eval(&self.symtab, &frame.env, &frame.temps, mem, e)
        };
        match s {
            GStmt::Skip => match kont {
                GKont::Seq(next, k) => Ok(GState::Stmt {
                    s: next.clone(),
                    frame: frame.clone(),
                    kont: (**k).clone(),
                    mem: mem.clone(),
                }),
                GKont::Loop(c, body, k) => Ok(GState::Stmt {
                    s: GStmt::While(c.clone(), Box::new(body.clone())),
                    frame: frame.clone(),
                    kont: (**k).clone(),
                    mem: mem.clone(),
                }),
                GKont::Stop | GKont::Call { .. } => {
                    let f = self
                        .lang
                        .find_fun(&frame.fname)
                        .ok_or_else(|| Stuck::new("frame names unknown function"))?;
                    let mut mem = mem.clone();
                    self.lang.leave(f, &frame.env, &mut mem)?;
                    Ok(GState::Returning {
                        v: Val::Undef,
                        mem,
                        kont: kont.clone(),
                    })
                }
            },
            GStmt::Set(t, e) => {
                let v = eval(e)?;
                let mut frame = frame.clone();
                frame.temps.insert(*t, v);
                Ok(GState::Stmt {
                    s: GStmt::Skip,
                    frame,
                    kont: kont.clone(),
                    mem: mem.clone(),
                })
            }
            GStmt::Store(chunk, addr, value) => {
                let a = eval(addr)?;
                let v = eval(value)?;
                let mut mem = mem.clone();
                if let Err(e) = mem.storev(*chunk, a, v) {
                    return self.stuck(format!("store failed: {e}"));
                }
                Ok(GState::Stmt {
                    s: GStmt::Skip,
                    frame: frame.clone(),
                    kont: kont.clone(),
                    mem,
                })
            }
            GStmt::Call(dest, fname, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval(a)?);
                }
                let Some(vf) = self.symtab.func_ptr(fname) else {
                    return self.stuck(format!("call to unknown symbol `{fname}`"));
                };
                if self.lang.find_fun(fname).is_some() {
                    Ok(GState::Entry {
                        fname: fname.clone(),
                        args: vals,
                        mem: mem.clone(),
                        kont: GKont::Call {
                            dest: *dest,
                            frame: frame.clone(),
                            kont: Rc::new(kont.clone()),
                        },
                    })
                } else {
                    let Some(sig) = self.lang.sig_of(fname) else {
                        return self.stuck(format!("no signature for `{fname}`"));
                    };
                    Ok(GState::External {
                        q: CQuery {
                            vf,
                            sig,
                            args: vals,
                            mem: mem.clone(),
                        },
                        dest: *dest,
                        frame: frame.clone(),
                        kont: kont.clone(),
                    })
                }
            }
            GStmt::Seq(a, b) => Ok(GState::Stmt {
                s: (**a).clone(),
                frame: frame.clone(),
                kont: GKont::Seq((**b).clone(), Rc::new(kont.clone())),
                mem: mem.clone(),
            }),
            GStmt::If(c, a, b) => match eval(c)?.truth() {
                Some(t) => Ok(GState::Stmt {
                    s: if t { (**a).clone() } else { (**b).clone() },
                    frame: frame.clone(),
                    kont: kont.clone(),
                    mem: mem.clone(),
                }),
                None => self.stuck("undefined condition"),
            },
            GStmt::While(c, body) => match eval(c)?.truth() {
                Some(true) => Ok(GState::Stmt {
                    s: (**body).clone(),
                    frame: frame.clone(),
                    kont: GKont::Loop(c.clone(), (**body).clone(), Rc::new(kont.clone())),
                    mem: mem.clone(),
                }),
                Some(false) => Ok(GState::Stmt {
                    s: GStmt::Skip,
                    frame: frame.clone(),
                    kont: kont.clone(),
                    mem: mem.clone(),
                }),
                None => self.stuck("undefined loop condition"),
            },
            GStmt::Break => {
                let mut k = kont.clone();
                loop {
                    match k {
                        GKont::Seq(_, next) => k = (*next).clone(),
                        GKont::Loop(_, _, next) => {
                            return Ok(GState::Stmt {
                                s: GStmt::Skip,
                                frame: frame.clone(),
                                kont: (*next).clone(),
                                mem: mem.clone(),
                            })
                        }
                        GKont::Stop | GKont::Call { .. } => {
                            return self.stuck("break outside a loop")
                        }
                    }
                }
            }
            GStmt::Continue => {
                let mut k = kont.clone();
                loop {
                    match k {
                        GKont::Seq(_, next) => k = (*next).clone(),
                        GKont::Loop(c, body, next) => {
                            return Ok(GState::Stmt {
                                s: GStmt::While(c, Box::new(body)),
                                frame: frame.clone(),
                                kont: (*next).clone(),
                                mem: mem.clone(),
                            })
                        }
                        GKont::Stop | GKont::Call { .. } => {
                            return self.stuck("continue outside a loop")
                        }
                    }
                }
            }
            GStmt::Return(e) => {
                let v = match e {
                    Some(e) => eval(e)?,
                    None => Val::Undef,
                };
                let f = self
                    .lang
                    .find_fun(&frame.fname)
                    .ok_or_else(|| Stuck::new("frame names unknown function"))?;
                let mut mem = mem.clone();
                self.lang.leave(f, &frame.env, &mut mem)?;
                let mut k = kont.clone();
                loop {
                    match k {
                        GKont::Seq(_, next) | GKont::Loop(_, _, next) => k = (*next).clone(),
                        GKont::Stop | GKont::Call { .. } => break,
                    }
                }
                Ok(GState::Returning { v, mem, kont: k })
            }
        }
    }
}

impl<L: StructLang> Lts for StructSem<L> {
    type I = C;
    type O = C;
    type State = GState<L::Expr, L::Env>;

    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, q: &CQuery) -> bool {
        match self.fun_of_val(&q.vf) {
            Some((_, f)) => {
                self.lang.fun_sig(f) == q.sig && q.args.len() == self.lang.fun_params(f).len()
            }
            None => false,
        }
    }

    fn initial(&self, q: &CQuery) -> Result<Self::State, Stuck> {
        let Some((name, _)) = self.fun_of_val(&q.vf) else {
            return self.stuck("query not accepted");
        };
        Ok(GState::Entry {
            fname: name.to_string(),
            args: q.args.clone(),
            mem: q.mem.clone(),
            kont: GKont::Stop,
        })
    }

    fn step(&self, s: &Self::State) -> Step<Self::State, CQuery, CReply> {
        match s {
            GState::Entry {
                fname,
                args,
                mem,
                kont,
            } => {
                let Some(f) = self.lang.find_fun(fname) else {
                    return Step::Stuck(Stuck::new(format!(
                        "{}: entry into unknown `{fname}`",
                        self.label
                    )));
                };
                let params = self.lang.fun_params(f);
                if params.len() != args.len() {
                    return Step::Stuck(Stuck::new(format!(
                        "{}: arity mismatch entering `{fname}`",
                        self.label
                    )));
                }
                let mut mem = mem.clone();
                let env = self.lang.enter(f, &mut mem);
                let mut temps: BTreeMap<TempId, Val> = self
                    .lang
                    .fun_temps(f)
                    .into_iter()
                    .map(|t| (t, Val::Undef))
                    .collect();
                for (t, v) in params.iter().zip(args) {
                    temps.insert(*t, *v);
                }
                Step::Internal(
                    GState::Stmt {
                        s: self.lang.fun_body(f).clone(),
                        frame: GFrame {
                            fname: fname.clone(),
                            env,
                            temps,
                        },
                        kont: kont.clone(),
                        mem,
                    },
                    vec![],
                )
            }
            GState::Stmt {
                s,
                frame,
                kont,
                mem,
            } => match self.step_stmt(s, frame, kont, mem) {
                Ok(next) => Step::Internal(next, vec![]),
                Err(stuck) => Step::Stuck(stuck),
            },
            GState::Returning { v, mem, kont } => match kont {
                GKont::Stop => Step::Final(CReply {
                    retval: *v,
                    mem: mem.clone(),
                }),
                GKont::Call { dest, frame, kont } => {
                    let mut frame = frame.clone();
                    if let Some(t) = dest {
                        frame.temps.insert(*t, *v);
                    }
                    Step::Internal(
                        GState::Stmt {
                            s: GStmt::Skip,
                            frame,
                            kont: (**kont).clone(),
                            mem: mem.clone(),
                        },
                        vec![],
                    )
                }
                _ => Step::Stuck(Stuck::new("return into non-call continuation")),
            },
            GState::External { q, .. } => Step::External(q.clone()),
        }
    }

    fn resume(&self, s: &Self::State, a: CReply) -> Result<Self::State, Stuck> {
        match s {
            GState::External {
                dest, frame, kont, ..
            } => {
                let mut frame = frame.clone();
                if let Some(t) = dest {
                    frame.temps.insert(*t, a.retval);
                }
                Ok(GState::Stmt {
                    s: GStmt::Skip,
                    frame,
                    kont: kont.clone(),
                    mem: a.mem,
                })
            }
            _ => self.stuck("resume in non-external state"),
        }
    }
}
