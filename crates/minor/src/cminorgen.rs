//! The `Cminorgen` pass: merge per-variable blocks into one stack block
//! (paper Table 3, convention `injp ↠ inj`).
//!
//! Every memory-resident local of a Csharpminor function is assigned an
//! offset in a single per-activation stack block. Source and target memories
//! are related by a *non-trivial* injection — each source local block maps
//! into the stack block at its offset — which is exactly the situation
//! paper §4.2 introduces injections for.

use std::collections::BTreeMap;
use std::fmt;

use compcerto_core::symtab::Ident;

use crate::cminor::{CmExpr, CmFunction, CmProgram, CmStmt};
use crate::csharp::{CsExpr, CsFunction, CsProgram};
use crate::structured::GStmt;

/// Error raised when a local's address is required but the variable is
/// unknown (indicates a malformed Csharpminor program).
#[derive(Debug, Clone, PartialEq)]
pub struct CminorgenError {
    /// Function being translated.
    pub function: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for CminorgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cminorgen in `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for CminorgenError {}

/// Compute the stack layout of a function: 8-byte-aligned offsets for each
/// memory-resident local, and the total (8-byte-rounded) frame size.
pub fn layout(vars: &[(Ident, i64)]) -> (BTreeMap<Ident, i64>, i64) {
    let mut offsets = BTreeMap::new();
    let mut next = 0i64;
    for (name, size) in vars {
        next = (next + 7) & !7;
        offsets.insert(name.clone(), next);
        next += size.max(&0);
    }
    (offsets, (next + 7) & !7)
}

/// Lower a Csharpminor program to Cminor.
///
/// # Errors
/// Fails on references to unknown locals (malformed input).
pub fn cminorgen(prog: &CsProgram) -> Result<CmProgram, CminorgenError> {
    let mut out = CmProgram {
        functions: Vec::new(),
        externs: prog.externs.clone(),
    };
    for f in &prog.functions {
        out.functions.push(translate_function(f)?);
    }
    Ok(out)
}

fn translate_function(f: &CsFunction) -> Result<CmFunction, CminorgenError> {
    let (offsets, stack_size) = layout(&f.vars);
    let body = translate_stmt(&f.name, &offsets, &f.body)?;
    Ok(CmFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        params: f.params.clone(),
        stack_size,
        temps: f.temps.clone(),
        body,
    })
}

fn translate_stmt(
    fname: &str,
    offsets: &BTreeMap<Ident, i64>,
    s: &GStmt<CsExpr>,
) -> Result<CmStmt, CminorgenError> {
    Ok(match s {
        GStmt::Skip => GStmt::Skip,
        GStmt::Break => GStmt::Break,
        GStmt::Continue => GStmt::Continue,
        GStmt::Set(t, e) => GStmt::Set(*t, translate_expr(fname, offsets, e)?),
        GStmt::Store(chunk, a, v) => GStmt::Store(
            *chunk,
            translate_expr(fname, offsets, a)?,
            translate_expr(fname, offsets, v)?,
        ),
        GStmt::Call(dest, callee, args) => GStmt::Call(
            *dest,
            callee.clone(),
            args.iter()
                .map(|a| translate_expr(fname, offsets, a))
                .collect::<Result<_, _>>()?,
        ),
        GStmt::Seq(a, b) => GStmt::Seq(
            Box::new(translate_stmt(fname, offsets, a)?),
            Box::new(translate_stmt(fname, offsets, b)?),
        ),
        GStmt::If(c, a, b) => GStmt::If(
            translate_expr(fname, offsets, c)?,
            Box::new(translate_stmt(fname, offsets, a)?),
            Box::new(translate_stmt(fname, offsets, b)?),
        ),
        GStmt::While(c, body) => GStmt::While(
            translate_expr(fname, offsets, c)?,
            Box::new(translate_stmt(fname, offsets, body)?),
        ),
        GStmt::Return(e) => GStmt::Return(match e {
            Some(e) => Some(translate_expr(fname, offsets, e)?),
            None => None,
        }),
    })
}

fn translate_expr(
    fname: &str,
    offsets: &BTreeMap<Ident, i64>,
    e: &CsExpr,
) -> Result<CmExpr, CminorgenError> {
    Ok(match e {
        CsExpr::ConstInt(n) => CmExpr::ConstInt(*n),
        CsExpr::ConstLong(n) => CmExpr::ConstLong(*n),
        CsExpr::Temp(t) => CmExpr::Temp(*t),
        CsExpr::AddrOf(name) => match offsets.get(name) {
            Some(ofs) => CmExpr::AddrStack(*ofs),
            // Not a local: must be a global symbol, resolved at run time.
            None => CmExpr::AddrGlobal(name.clone()),
        },
        CsExpr::Load(chunk, a) => {
            CmExpr::Load(*chunk, Box::new(translate_expr(fname, offsets, a)?))
        }
        CsExpr::Unop(op, a) => CmExpr::Unop(*op, Box::new(translate_expr(fname, offsets, a)?)),
        CsExpr::Binop(op, a, b) => CmExpr::Binop(
            *op,
            Box::new(translate_expr(fname, offsets, a)?),
            Box::new(translate_expr(fname, offsets, b)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cminor::CminorSem;
    use crate::csharp::CsharpSem;
    use crate::cshmgen::cshmgen;
    use clight::{build_symtab, parse, simpl_locals, typecheck};
    use compcerto_core::iface::{CQuery, CReply};
    use compcerto_core::lts::run;
    use mem::{mem_inject, MemInj, Val};

    #[test]
    fn layout_is_aligned() {
        let (offsets, size) = layout(&[("a".into(), 4), ("b".into(), 8), ("c".into(), 1)]);
        assert_eq!(offsets["a"], 0);
        assert_eq!(offsets["b"], 8);
        assert_eq!(offsets["c"], 16);
        assert_eq!(size, 24);
    }

    /// Differential check under the pass's `injp ↠ inj` convention:
    /// return values equal (no pointers escape in these tests) and final
    /// memories injection-related via identity on globals.
    fn differential(src: &str, fname: &str, args: Vec<Val>) -> CReply {
        let p = simpl_locals(&typecheck(&parse(src).unwrap()).unwrap());
        let cs = cshmgen(&p).unwrap();
        let cm = cminorgen(&cs).unwrap();
        let tbl = build_symtab(&[&p]).unwrap();
        let mem = tbl.build_init_mem().unwrap();
        let q = CQuery {
            vf: tbl.func_ptr(fname).unwrap(),
            sig: p.sig_of(fname).unwrap(),
            args,
            mem,
        };
        let s1 = CsharpSem::new(cs, tbl.clone());
        let s2 = CminorSem::new(cm, tbl.clone());
        let env = |eq: &CQuery| {
            Some(CReply {
                retval: eq.args.first().copied().unwrap_or(Val::Int(0)),
                mem: eq.mem.clone(),
            })
        };
        let r1 = run(&s1, &q, &mut env.clone(), 1_000_000).expect_complete();
        let r2 = run(&s2, &q, &mut env.clone(), 1_000_000).expect_complete();
        assert_eq!(r1.retval, r2.retval, "return values differ");
        // Final memories: all locals freed; globals related by identity.
        let f = MemInj::identity_below(tbl.len() as u32);
        assert_eq!(mem_inject(&f, &r1.mem, &r2.mem), Ok(()));
        r2
    }

    #[test]
    fn stack_allocated_locals() {
        let src = "
            int f(int x) {
                int a; int b; int* p;
                p = &a;
                *p = x;
                b = a + 1;
                return b;
            }";
        let r = differential(src, "f", vec![Val::Int(41)]);
        assert_eq!(r.retval, Val::Int(42));
    }

    #[test]
    fn arrays_on_the_stack() {
        let src = "
            long rev3(long x, long y, long z) {
                long a[3];
                a[0] = x; a[1] = y; a[2] = z;
                return a[2] * 100 + a[1] * 10 + a[0];
            }";
        let r = differential(src, "rev3", vec![Val::Long(1), Val::Long(2), Val::Long(3)]);
        assert_eq!(r.retval, Val::Long(321));
    }

    #[test]
    fn recursion_with_stack_frames() {
        let src = "
            int tri(int n) {
                int a[1]; int r;
                a[0] = n;
                if (n <= 0) { return 0; }
                r = tri(n - 1);
                return a[0] + r;
            }";
        let r = differential(src, "tri", vec![Val::Int(5)]);
        assert_eq!(r.retval, Val::Int(15));
    }

    #[test]
    fn globals_still_resolve() {
        let src = "
            int counter = 10;
            int bump(int d) {
                counter = counter + d;
                return counter;
            }";
        let r = differential(src, "bump", vec![Val::Int(5)]);
        assert_eq!(r.retval, Val::Int(15));
    }
}
