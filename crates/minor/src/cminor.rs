//! Cminor: locals are merged into a single stack block per activation
//! (paper Table 3).
//!
//! After `Cminorgen`, a function no longer has named memory locals; it has a
//! `stack_size` and addresses stack data via [`CmExpr::AddrStack`] offsets
//! into the activation's unique stack block.

use std::collections::BTreeMap;

use compcerto_core::iface::Signature;
use compcerto_core::lts::Stuck;
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Mem, Val};

use crate::op::{MBinop, MUnop};
use crate::structured::{GStmt, StructLang, StructSem, TempId};

/// Cminor expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum CmExpr {
    /// 32-bit constant.
    ConstInt(i32),
    /// 64-bit constant.
    ConstLong(i64),
    /// A temporary.
    Temp(TempId),
    /// Address of the activation's stack block at a byte offset.
    AddrStack(i64),
    /// Address of a global symbol.
    AddrGlobal(Ident),
    /// Memory load.
    Load(Chunk, Box<CmExpr>),
    /// Unary operation.
    Unop(MUnop, Box<CmExpr>),
    /// Binary operation.
    Binop(MBinop, Box<CmExpr>, Box<CmExpr>),
}

/// Cminor statements.
pub type CmStmt = GStmt<CmExpr>;

/// A Cminor function.
#[derive(Debug, Clone, PartialEq)]
pub struct CmFunction {
    /// Name.
    pub name: Ident,
    /// Signature.
    pub sig: Signature,
    /// Parameter temporaries.
    pub params: Vec<TempId>,
    /// Size of the unified stack block.
    pub stack_size: i64,
    /// All temporaries.
    pub temps: Vec<TempId>,
    /// Body.
    pub body: CmStmt,
}

/// A Cminor translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CmProgram {
    /// Function definitions.
    pub functions: Vec<CmFunction>,
    /// Known external functions.
    pub externs: Vec<(Ident, Signature)>,
}

impl CmProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&CmFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl StructLang for CmProgram {
    type Fun = CmFunction;
    type Expr = CmExpr;
    type Env = (BlockId, i64);

    fn lang_name(&self) -> &'static str {
        "Cminor"
    }

    fn find_fun(&self, name: &str) -> Option<&CmFunction> {
        self.function(name)
    }

    fn sig_of(&self, name: &str) -> Option<Signature> {
        self.function(name).map(|f| f.sig.clone()).or_else(|| {
            self.externs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
        })
    }

    fn fun_sig(&self, f: &CmFunction) -> Signature {
        f.sig.clone()
    }

    fn fun_params<'a>(&self, f: &'a CmFunction) -> &'a [TempId] {
        &f.params
    }

    fn fun_temps(&self, f: &CmFunction) -> Vec<TempId> {
        f.temps.clone()
    }

    fn fun_body<'a>(&self, f: &'a CmFunction) -> &'a CmStmt {
        &f.body
    }

    fn enter(&self, f: &CmFunction, mem: &mut Mem) -> Self::Env {
        (mem.alloc(0, f.stack_size), f.stack_size)
    }

    fn leave(&self, _f: &CmFunction, env: &Self::Env, mem: &mut Mem) -> Result<(), Stuck> {
        mem.free(env.0, 0, env.1)
            .map_err(|e| Stuck::new(format!("freeing stack block: {e}")))
    }

    fn eval(
        &self,
        symtab: &SymbolTable,
        env: &Self::Env,
        temps: &BTreeMap<TempId, Val>,
        mem: &Mem,
        e: &CmExpr,
    ) -> Result<Val, Stuck> {
        match e {
            CmExpr::ConstInt(n) => Ok(Val::Int(*n)),
            CmExpr::ConstLong(n) => Ok(Val::Long(*n)),
            CmExpr::Temp(t) => temps
                .get(t)
                .copied()
                .ok_or_else(|| Stuck::new(format!("unbound temp $t{t}"))),
            CmExpr::AddrStack(ofs) => Ok(Val::Ptr(env.0, *ofs)),
            CmExpr::AddrGlobal(name) => symtab
                .block_of(name)
                .map(|b| Val::Ptr(b, 0))
                .ok_or_else(|| Stuck::new(format!("unknown symbol `{name}`"))),
            CmExpr::Load(chunk, addr) => {
                let a = self.eval(symtab, env, temps, mem, addr)?;
                mem.loadv(*chunk, a)
                    .map_err(|e| Stuck::new(format!("load failed: {e}")))
            }
            CmExpr::Unop(op, a) => Ok(op.eval(self.eval(symtab, env, temps, mem, a)?)),
            CmExpr::Binop(op, a, b) => Ok(op.eval(
                self.eval(symtab, env, temps, mem, a)?,
                self.eval(symtab, env, temps, mem, b)?,
            )),
        }
    }
}

/// The open semantics `Cminor(p) : C ↠ C`.
pub type CminorSem = StructSem<CmProgram>;

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::CQuery;
    use compcerto_core::lts::run;
    use compcerto_core::symtab::GlobKind;

    #[test]
    fn stack_addressing() {
        // f() { [sp+8] := 5; return load(sp+8); } with stack_size 16.
        let f = CmFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            stack_size: 16,
            temps: vec![],
            body: GStmt::seq(
                GStmt::Store(Chunk::I32, CmExpr::AddrStack(8), CmExpr::ConstInt(5)),
                GStmt::Return(Some(CmExpr::Load(
                    Chunk::I32,
                    Box::new(CmExpr::AddrStack(8)),
                ))),
            ),
        };
        let prog = CmProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("f".into(), GlobKind::Func(Signature::int_fn(0)));
        let mem = tbl.build_init_mem().unwrap();
        let sem = CminorSem::new(prog, tbl.clone());
        let q = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: Signature::int_fn(0),
            args: vec![],
            mem,
        };
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.retval, Val::Int(5));
    }
}
