//! # Structured intermediate languages of CompCertO-rs
//!
//! The middle of the front-end pipeline (paper Table 3):
//!
//! | Language | Pass producing it | Convention |
//! |----------|-------------------|------------|
//! | [Csharpminor](csharp) | [`cshmgen`](cshmgen::cshmgen) | `id ↠ id` |
//! | [Cminor](cminor) | [`cminorgen`](cminorgen::cminorgen) | `injp ↠ inj` |
//! | [CminorSel](cminorsel) | [`selection`](selection::selection) | `wt·ext ↠ wt·ext` |
//!
//! All three share their statement language and a single generic open
//! semantics over `C ↠ C` ([`structured::StructSem`]); they differ in
//! expressions and activation records. Machine-level operators live in
//! [`op`] and are shared with the RTL crate.

pub mod cminor;
pub mod cminorgen;
pub mod cminorsel;
pub mod csharp;
pub mod cshmgen;
pub mod op;
pub mod selection;
pub mod structured;

pub use cminor::{CmExpr, CmFunction, CmProgram, CminorSem};
pub use cminorgen::{cminorgen, CminorgenError};
pub use cminorsel::{CminorSelSem, SelExpr, SelFunction, SelProgram};
pub use csharp::{CsExpr, CsFunction, CsProgram, CsharpSem};
pub use cshmgen::{cshmgen, CshmgenError};
pub use op::{MBinop, MUnop};
pub use selection::selection;
pub use structured::{GStmt, StructLang, StructSem, TempId};
