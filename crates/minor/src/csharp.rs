//! Csharpminor: the first untyped intermediate language (paper Table 3).
//!
//! Expressions operate on machine values with explicit chunks; each local
//! variable still owns its own memory block, and addresses are taken
//! symbolically with [`CsExpr::AddrOf`].

use std::collections::BTreeMap;

use compcerto_core::iface::Signature;
use compcerto_core::lts::Stuck;
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Mem, Val};

use crate::op::{MBinop, MUnop};
use crate::structured::{GStmt, StructLang, StructSem, TempId};

/// Csharpminor expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum CsExpr {
    /// 32-bit constant.
    ConstInt(i32),
    /// 64-bit constant.
    ConstLong(i64),
    /// A temporary.
    Temp(TempId),
    /// Address of a local variable or global symbol.
    AddrOf(Ident),
    /// Memory load.
    Load(Chunk, Box<CsExpr>),
    /// Unary operation.
    Unop(MUnop, Box<CsExpr>),
    /// Binary operation.
    Binop(MBinop, Box<CsExpr>, Box<CsExpr>),
}

/// Csharpminor statements.
pub type CsStmt = GStmt<CsExpr>;

/// A Csharpminor function: parameters and scratch values are temporaries;
/// `vars` lists the memory-resident locals with their sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct CsFunction {
    /// Name.
    pub name: Ident,
    /// Signature.
    pub sig: Signature,
    /// Parameter temporaries, in order.
    pub params: Vec<TempId>,
    /// Memory-resident locals: (name, size in bytes).
    pub vars: Vec<(Ident, i64)>,
    /// All temporaries (superset of `params`).
    pub temps: Vec<TempId>,
    /// Body.
    pub body: CsStmt,
}

/// A Csharpminor translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsProgram {
    /// Function definitions.
    pub functions: Vec<CsFunction>,
    /// Known external functions.
    pub externs: Vec<(Ident, Signature)>,
}

impl CsProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&CsFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl StructLang for CsProgram {
    type Fun = CsFunction;
    type Expr = CsExpr;
    type Env = BTreeMap<Ident, (BlockId, i64)>;

    fn lang_name(&self) -> &'static str {
        "Csharpminor"
    }

    fn find_fun(&self, name: &str) -> Option<&CsFunction> {
        self.function(name)
    }

    fn sig_of(&self, name: &str) -> Option<Signature> {
        self.function(name).map(|f| f.sig.clone()).or_else(|| {
            self.externs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
        })
    }

    fn fun_sig(&self, f: &CsFunction) -> Signature {
        f.sig.clone()
    }

    fn fun_params<'a>(&self, f: &'a CsFunction) -> &'a [TempId] {
        &f.params
    }

    fn fun_temps(&self, f: &CsFunction) -> Vec<TempId> {
        f.temps.clone()
    }

    fn fun_body<'a>(&self, f: &'a CsFunction) -> &'a CsStmt {
        &f.body
    }

    fn enter(&self, f: &CsFunction, mem: &mut Mem) -> Self::Env {
        f.vars
            .iter()
            .map(|(name, size)| (name.clone(), (mem.alloc(0, *size), *size)))
            .collect()
    }

    fn leave(&self, _f: &CsFunction, env: &Self::Env, mem: &mut Mem) -> Result<(), Stuck> {
        for (name, (b, size)) in env {
            mem.free(*b, 0, *size)
                .map_err(|e| Stuck::new(format!("freeing `{name}`: {e}")))?;
        }
        Ok(())
    }

    fn eval(
        &self,
        symtab: &SymbolTable,
        env: &Self::Env,
        temps: &BTreeMap<TempId, Val>,
        mem: &Mem,
        e: &CsExpr,
    ) -> Result<Val, Stuck> {
        match e {
            CsExpr::ConstInt(n) => Ok(Val::Int(*n)),
            CsExpr::ConstLong(n) => Ok(Val::Long(*n)),
            CsExpr::Temp(t) => temps
                .get(t)
                .copied()
                .ok_or_else(|| Stuck::new(format!("unbound temp $t{t}"))),
            CsExpr::AddrOf(name) => {
                if let Some((b, _)) = env.get(name) {
                    return Ok(Val::Ptr(*b, 0));
                }
                symtab
                    .block_of(name)
                    .map(|b| Val::Ptr(b, 0))
                    .ok_or_else(|| Stuck::new(format!("unknown symbol `{name}`")))
            }
            CsExpr::Load(chunk, addr) => {
                let a = self.eval(symtab, env, temps, mem, addr)?;
                mem.loadv(*chunk, a)
                    .map_err(|e| Stuck::new(format!("load failed: {e}")))
            }
            CsExpr::Unop(op, a) => Ok(op.eval(self.eval(symtab, env, temps, mem, a)?)),
            CsExpr::Binop(op, a, b) => Ok(op.eval(
                self.eval(symtab, env, temps, mem, a)?,
                self.eval(symtab, env, temps, mem, b)?,
            )),
        }
    }
}

/// The open semantics `Csharpminor(p) : C ↠ C`.
pub type CsharpSem = StructSem<CsProgram>;

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::CQuery;
    use compcerto_core::lts::run;
    use compcerto_core::symtab::GlobKind;

    fn addi(a: CsExpr, b: CsExpr) -> CsExpr {
        CsExpr::Binop(MBinop::Add32, Box::new(a), Box::new(b))
    }

    #[test]
    fn direct_interpretation() {
        // int f(a, b) { t2 = a + b; return t2 + 1; }
        let f = CsFunction {
            name: "f".into(),
            sig: Signature::int_fn(2),
            params: vec![0, 1],
            vars: vec![],
            temps: vec![0, 1, 2],
            body: GStmt::seq(
                GStmt::Set(2, addi(CsExpr::Temp(0), CsExpr::Temp(1))),
                GStmt::Return(Some(addi(CsExpr::Temp(2), CsExpr::ConstInt(1)))),
            ),
        };
        let prog = CsProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("f".into(), GlobKind::Func(Signature::int_fn(2)));
        let mem = tbl.build_init_mem().unwrap();
        let sem = CsharpSem::new(prog, tbl.clone());
        let q = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: Signature::int_fn(2),
            args: vec![Val::Int(10), Val::Int(20)],
            mem,
        };
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.retval, Val::Int(31));
    }

    #[test]
    fn memory_locals_roundtrip() {
        // int g() { var x[8]; [&x] := 7; return load(&x); }
        let f = CsFunction {
            name: "g".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            vars: vec![("x".into(), 8)],
            temps: vec![],
            body: GStmt::seq(
                GStmt::Store(Chunk::I32, CsExpr::AddrOf("x".into()), CsExpr::ConstInt(7)),
                GStmt::Return(Some(CsExpr::Load(
                    Chunk::I32,
                    Box::new(CsExpr::AddrOf("x".into())),
                ))),
            ),
        };
        let prog = CsProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("g".into(), GlobKind::Func(Signature::int_fn(0)));
        let mem = tbl.build_init_mem().unwrap();
        let sem = CsharpSem::new(prog, tbl.clone());
        let q = CQuery {
            vf: tbl.func_ptr("g").unwrap(),
            sig: Signature::int_fn(0),
            args: vec![],
            mem,
        };
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.retval, Val::Int(7));
    }
}
