//! Machine-level operators shared by Csharpminor, Cminor, CminorSel and RTL.
//!
//! After `Cshmgen`, operations are no longer typed by C types but by machine
//! widths; evaluation is total, returning [`Val::Undef`] on misuse (the
//! semantics then go wrong at the point where a defined value is required).

use std::fmt;

use mem::{Cmp, Val};

/// Unary machine operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MUnop {
    /// 32-bit negation.
    Neg32,
    /// 64-bit negation.
    Neg64,
    /// 32-bit bitwise complement.
    Not32,
    /// 64-bit bitwise complement.
    Not64,
    /// Boolean negation (defined on ints, longs and pointers).
    BoolNot,
    /// Sign-extend 32→64.
    SignExt,
    /// Zero-extend 32→64.
    ZeroExt,
    /// Truncate 64→32.
    Trunc,
}

impl MUnop {
    /// Evaluate the operator.
    pub fn eval(self, v: Val) -> Val {
        match self {
            MUnop::Neg32 | MUnop::Neg64 => v.neg(),
            MUnop::Not32 | MUnop::Not64 => v.not(),
            MUnop::BoolNot => v.bool_not(),
            MUnop::SignExt => v.longofint(),
            MUnop::ZeroExt => v.longofintu(),
            MUnop::Trunc => v.intoflong(),
        }
    }
}

impl fmt::Display for MUnop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MUnop::Neg32 => "neg32",
            MUnop::Neg64 => "neg64",
            MUnop::Not32 => "not32",
            MUnop::Not64 => "not64",
            MUnop::BoolNot => "boolnot",
            MUnop::SignExt => "sext",
            MUnop::ZeroExt => "zext",
            MUnop::Trunc => "trunc",
        };
        f.write_str(s)
    }
}

/// Binary machine operators. The `64` variants also implement pointer
/// arithmetic and pointer comparisons (the memory model's [`Val`] operations
/// handle the pointer cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MBinop {
    /// 32-bit addition.
    Add32,
    /// 32-bit subtraction.
    Sub32,
    /// 32-bit multiplication.
    Mul32,
    /// 32-bit signed division.
    Div32,
    /// 32-bit signed remainder.
    Mod32,
    /// 32-bit and.
    And32,
    /// 32-bit or.
    Or32,
    /// 32-bit xor.
    Xor32,
    /// 32-bit shift left.
    Shl32,
    /// 32-bit arithmetic shift right.
    Shr32,
    /// 32-bit logical shift right.
    Shru32,
    /// 32-bit signed comparison.
    Cmp32(Cmp),
    /// 64-bit addition (incl. pointer + offset).
    Add64,
    /// 64-bit subtraction (incl. pointer differences).
    Sub64,
    /// 64-bit multiplication.
    Mul64,
    /// 64-bit signed division.
    Div64,
    /// 64-bit signed remainder.
    Mod64,
    /// 64-bit and.
    And64,
    /// 64-bit or.
    Or64,
    /// 64-bit xor.
    Xor64,
    /// 64-bit shift left (shift amount is 32-bit).
    Shl64,
    /// 64-bit arithmetic shift right.
    Shr64,
    /// 64-bit logical shift right.
    Shru64,
    /// 64-bit signed comparison (incl. same-block pointer comparison).
    Cmp64(Cmp),
}

impl MBinop {
    /// Evaluate the operator.
    pub fn eval(self, a: Val, b: Val) -> Val {
        use MBinop::*;
        match self {
            Add32 | Add64 => a.add(b),
            Sub32 | Sub64 => a.sub(b),
            Mul32 | Mul64 => a.mul(b),
            Div32 | Div64 => a.divs(b),
            Mod32 | Mod64 => a.mods(b),
            And32 | And64 => a.and(b),
            Or32 | Or64 => a.or(b),
            Xor32 | Xor64 => a.xor(b),
            Shl32 | Shl64 => a.shl(b),
            Shr32 | Shr64 => a.shr(b),
            Shru32 | Shru64 => a.shru(b),
            Cmp32(c) | Cmp64(c) => a.cmp(c, b),
        }
    }

    /// Is the operation a comparison?
    pub fn is_cmp(self) -> bool {
        matches!(self, MBinop::Cmp32(_) | MBinop::Cmp64(_))
    }

    /// Constant-fold the operation if both arguments are constants and the
    /// result is defined and constant (used by `Selection` and `Constprop`).
    pub fn fold(self, a: &Val, b: &Val) -> Option<Val> {
        if !a.is_defined() || !b.is_defined() {
            return None;
        }
        if matches!(a, Val::Ptr(_, _)) || matches!(b, Val::Ptr(_, _)) {
            return None; // pointers are not compile-time constants
        }
        let v = self.eval(*a, *b);
        v.is_defined().then_some(v)
    }
}

impl fmt::Display for MBinop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use MBinop::*;
        match self {
            Add32 => write!(f, "add32"),
            Sub32 => write!(f, "sub32"),
            Mul32 => write!(f, "mul32"),
            Div32 => write!(f, "div32"),
            Mod32 => write!(f, "mod32"),
            And32 => write!(f, "and32"),
            Or32 => write!(f, "or32"),
            Xor32 => write!(f, "xor32"),
            Shl32 => write!(f, "shl32"),
            Shr32 => write!(f, "shr32"),
            Shru32 => write!(f, "shru32"),
            Cmp32(c) => write!(f, "cmp32{c}"),
            Add64 => write!(f, "add64"),
            Sub64 => write!(f, "sub64"),
            Mul64 => write!(f, "mul64"),
            Div64 => write!(f, "div64"),
            Mod64 => write!(f, "mod64"),
            And64 => write!(f, "and64"),
            Or64 => write!(f, "or64"),
            Xor64 => write!(f, "xor64"),
            Shl64 => write!(f, "shl64"),
            Shr64 => write!(f, "shr64"),
            Shru64 => write!(f, "shru64"),
            Cmp64(c) => write!(f, "cmp64{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_val_ops() {
        assert_eq!(MBinop::Add32.eval(Val::Int(2), Val::Int(3)), Val::Int(5));
        assert_eq!(
            MBinop::Add64.eval(Val::Ptr(1, 4), Val::Long(4)),
            Val::Ptr(1, 8)
        );
        assert_eq!(MUnop::Trunc.eval(Val::Long(0x1_0000_0002)), Val::Int(2));
    }

    #[test]
    fn fold_rejects_pointers_and_undef() {
        assert_eq!(MBinop::Add64.fold(&Val::Ptr(1, 0), &Val::Long(4)), None);
        assert_eq!(MBinop::Add32.fold(&Val::Undef, &Val::Int(1)), None);
        assert_eq!(
            MBinop::Mul32.fold(&Val::Int(6), &Val::Int(7)),
            Some(Val::Int(42))
        );
        // Division by zero does not fold.
        assert_eq!(MBinop::Div32.fold(&Val::Int(1), &Val::Int(0)), None);
    }
}
