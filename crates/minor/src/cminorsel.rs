//! CminorSel: Cminor after operator and addressing-mode selection
//! (paper Table 3).
//!
//! Two representation changes distinguish it from Cminor: loads carry a
//! folded constant displacement ([`SelExpr::Load`]), and binary operations
//! may take an immediate operand ([`SelExpr::BinopImm`]) — the shapes a real
//! instruction selector targets.

use std::collections::BTreeMap;

use compcerto_core::iface::Signature;
use compcerto_core::lts::Stuck;
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Mem, Val};

use crate::op::{MBinop, MUnop};
use crate::structured::{GStmt, StructLang, StructSem, TempId};

/// CminorSel expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SelExpr {
    /// 32-bit constant.
    ConstInt(i32),
    /// 64-bit constant.
    ConstLong(i64),
    /// A temporary.
    Temp(TempId),
    /// Stack address at an offset.
    AddrStack(i64),
    /// Global symbol address plus folded displacement.
    AddrGlobal(Ident, i64),
    /// Load with folded displacement: `[e + disp]`.
    Load(Chunk, Box<SelExpr>, i64),
    /// Unary operation.
    Unop(MUnop, Box<SelExpr>),
    /// Binary operation.
    Binop(MBinop, Box<SelExpr>, Box<SelExpr>),
    /// Binary operation with an immediate second operand.
    BinopImm(MBinop, Box<SelExpr>, Val),
}

/// CminorSel statements.
pub type SelStmt = GStmt<SelExpr>;

/// A CminorSel function.
#[derive(Debug, Clone, PartialEq)]
pub struct SelFunction {
    /// Name.
    pub name: Ident,
    /// Signature.
    pub sig: Signature,
    /// Parameter temporaries.
    pub params: Vec<TempId>,
    /// Stack block size.
    pub stack_size: i64,
    /// All temporaries.
    pub temps: Vec<TempId>,
    /// Body.
    pub body: SelStmt,
}

/// A CminorSel translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelProgram {
    /// Function definitions.
    pub functions: Vec<SelFunction>,
    /// Known external functions.
    pub externs: Vec<(Ident, Signature)>,
}

impl SelProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&SelFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl StructLang for SelProgram {
    type Fun = SelFunction;
    type Expr = SelExpr;
    type Env = (BlockId, i64);

    fn lang_name(&self) -> &'static str {
        "CminorSel"
    }

    fn find_fun(&self, name: &str) -> Option<&SelFunction> {
        self.function(name)
    }

    fn sig_of(&self, name: &str) -> Option<Signature> {
        self.function(name).map(|f| f.sig.clone()).or_else(|| {
            self.externs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
        })
    }

    fn fun_sig(&self, f: &SelFunction) -> Signature {
        f.sig.clone()
    }

    fn fun_params<'a>(&self, f: &'a SelFunction) -> &'a [TempId] {
        &f.params
    }

    fn fun_temps(&self, f: &SelFunction) -> Vec<TempId> {
        f.temps.clone()
    }

    fn fun_body<'a>(&self, f: &'a SelFunction) -> &'a SelStmt {
        &f.body
    }

    fn enter(&self, f: &SelFunction, mem: &mut Mem) -> Self::Env {
        (mem.alloc(0, f.stack_size), f.stack_size)
    }

    fn leave(&self, _f: &SelFunction, env: &Self::Env, mem: &mut Mem) -> Result<(), Stuck> {
        mem.free(env.0, 0, env.1)
            .map_err(|e| Stuck::new(format!("freeing stack block: {e}")))
    }

    fn eval(
        &self,
        symtab: &SymbolTable,
        env: &Self::Env,
        temps: &BTreeMap<TempId, Val>,
        mem: &Mem,
        e: &SelExpr,
    ) -> Result<Val, Stuck> {
        match e {
            SelExpr::ConstInt(n) => Ok(Val::Int(*n)),
            SelExpr::ConstLong(n) => Ok(Val::Long(*n)),
            SelExpr::Temp(t) => temps
                .get(t)
                .copied()
                .ok_or_else(|| Stuck::new(format!("unbound temp $t{t}"))),
            SelExpr::AddrStack(ofs) => Ok(Val::Ptr(env.0, *ofs)),
            SelExpr::AddrGlobal(name, disp) => symtab
                .block_of(name)
                .map(|b| Val::Ptr(b, *disp))
                .ok_or_else(|| Stuck::new(format!("unknown symbol `{name}`"))),
            SelExpr::Load(chunk, base, disp) => {
                let a = self
                    .eval(symtab, env, temps, mem, base)?
                    .add(Val::Long(*disp));
                mem.loadv(*chunk, a)
                    .map_err(|e| Stuck::new(format!("load failed: {e}")))
            }
            SelExpr::Unop(op, a) => Ok(op.eval(self.eval(symtab, env, temps, mem, a)?)),
            SelExpr::Binop(op, a, b) => Ok(op.eval(
                self.eval(symtab, env, temps, mem, a)?,
                self.eval(symtab, env, temps, mem, b)?,
            )),
            SelExpr::BinopImm(op, a, imm) => {
                Ok(op.eval(self.eval(symtab, env, temps, mem, a)?, *imm))
            }
        }
    }
}

/// The open semantics `CminorSel(p) : C ↠ C`.
pub type CminorSelSem = StructSem<SelProgram>;
