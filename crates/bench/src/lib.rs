//! Shared fixtures for the evaluation binaries and benches.
//!
//! Every table and figure of the paper's evaluation has a regenerating
//! binary in `src/bin/` (see DESIGN.md §4 for the index); the benches in
//! `benches/` measure the machinery itself, using the offline
//! [`microbench`] harness.

pub mod ckpt;
pub mod microbench;

/// Re-export: the JSON reader moved into the `compiler` crate when the
/// serve cache became its second consumer; the campaign binaries keep
/// importing it as `bench::json`.
pub use compiler::json;

use compcerto_core::symtab::SymbolTable;
use compiler::{compile_all, CompiledUnit, CompilerOptions};

/// The paper's Fig. 1 translation units.
pub const FIG1_B: &str =
    "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }";
/// See [`FIG1_B`].
pub const FIG1_A: &str = "int mult(int n, int p) { return n * p; }";

/// A mid-sized fixture exercising loops, memory and calls.
pub const FIXTURE: &str = "
    const int modulus = 9973;
    long table[8];

    int step(int x) { return (x * 31 + 17) % 9973; }

    int churn(int seed, int rounds) {
        int i; int x; int r;
        x = seed;
        for (i = 0; i < rounds; i = i + 1) {
            r = step(x);
            x = r;
            table[i % 8] = (long) x;
        }
        return x;
    }
";

/// Compile [`FIXTURE`], returning the unit and the shared symbol table.
///
/// # Panics
/// Panics when compilation fails (fixture bug).
pub fn fixture() -> (CompiledUnit, SymbolTable) {
    let (mut units, tbl) =
        compile_all(&[FIXTURE], CompilerOptions::default()).expect("fixture compiles");
    (units.remove(0), tbl)
}

/// Render a two-column table row.
pub fn row(label: &str, value: impl std::fmt::Display) -> String {
    format!("  {label:<28} {value}\n")
}
