//! A minimal, in-repo micro-benchmark harness.
//!
//! The workspace builds fully offline and therefore cannot depend on
//! Criterion; this module provides the *subset* of Criterion's API our bench
//! files use (`benchmark_group`, `bench_with_input`, `bench_function`,
//! `Bencher::iter`, plus the `criterion_group!`/`criterion_main!` macros at
//! the crate root), implemented with plain monotonic-clock timing.
//!
//! Results are medians over several batches, printed as `ns/iter`. This is a
//! relative-trend tool, not a statistics suite: for publication-grade
//! numbers, re-run the same files against real Criterion on a networked
//! machine.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const TARGET: Duration = Duration::from_millis(250);
/// Number of batches the median is taken over.
const BATCHES: usize = 5;

/// Entry point collected by `criterion_main!`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Benchmark a single closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let ns = measure(&mut f);
        println!("{name:<40} {:>12.1} ns/iter", ns);
        self.results.push((name.to_string(), ns));
        self
    }

    /// Print a closing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.results.len());
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` on `input` under the given id.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        let ns = measure(&mut |b: &mut Bencher| f(b, input));
        println!("{label:<40} {:>12.1} ns/iter", ns);
        self.parent.results.push((label, ns));
        self
    }

    /// Close the group (kept for Criterion API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Passed to the benchmarked closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times, recording the elapsed wall-clock.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate an iteration count, then take the median ns/iter over batches.
fn measure(f: &mut impl FnMut(&mut Bencher)) -> f64 {
    // Calibration: start at 1 iteration, grow until a batch costs >= 1/BATCHES
    // of the target budget (capped to keep pathological cases bounded).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * (BATCHES as u32) >= TARGET || iters >= 1 << 20 {
            break;
        }
        // Grow geometrically toward the budget.
        let per = b.elapsed.as_nanos().max(1) as u64;
        let want = TARGET.as_nanos() as u64 / (BATCHES as u64);
        // `max` then `min` rather than `clamp`: when the growth step would
        // overshoot the cap, `clamp(iters * 2, 1 << 20)` has min > max and
        // panics (seen on very cheap benchmarked closures).
        iters = (iters.saturating_mul(want / per + 1))
            .max(iters * 2)
            .min(1 << 20);
    }
    let mut samples: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Group benchmark functions under one named runner (Criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point for a bench binary (Criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive() {
        let ns = measure(&mut |b: &mut Bencher| b.iter(|| std::hint::black_box(1 + 1)));
        assert!(ns > 0.0);
    }
}
