//! Regenerate paper Table 1: the summary of notations, with each row bound
//! to the Rust artifact implementing it.

fn main() {
    println!("Table 1: Summary of notations (cf. paper Table 1)");
    println!("{:-<92}", "");
    println!(
        "{:<26}{:<30}{}",
        "Notation", "Example here", "Rust artifact"
    );
    println!("{:-<92}", "");
    let rows: [(&str, &str, &str); 10] = [
        ("R ∈ R(S1,S2)", "≤v", "mem::Val::lessdef"),
        (
            "R ∈ R_W(S1,S2)",
            "↩→m",
            "mem::mem_inject (Kripke world = MemInj)",
        ),
        ("w ⊩ R", "f ⊩ v1 ↩→v v2", "mem::val_inject(&f, &v1, &v2)"),
        (
            "R ∈ CKLR",
            "injp",
            "compcerto_core::cklr::{Ext, Inj, Injp, VaExt, VaInj}",
        ),
        (
            "A, B, C",
            "C, A, 1",
            "compcerto_core::iface::{C, A, One} (LanguageInterface)",
        ),
        ("R : A1 ⇔ A2", "CL", "compcerto_core::cc::Cl (SimConv)"),
        ("L : A ↠ B", "Clight(p)", "clight::ClightSem (Lts)"),
        (
            "L1 ⊕ L2",
            "Clight(p1) ⊕ Clight(p2)",
            "compcerto_core::hcomp::HComp",
        ),
        (
            "L1 ∘ L2",
            "σ_drv ∘ σ_io ∘ σ_NIC",
            "compcerto_core::seqcomp::SeqComp",
        ),
        (
            "L1 ≤_{R↠S} L2",
            "Thm 3.8",
            "compcerto_core::sim::check_fwd_sim (differential check)",
        ),
    ];
    for (n, e, a) in rows {
        println!("{n:<26}{e:<30}{a}");
    }
    println!();
    println!("In Coq these are definitions and theorems; here each is an executable");
    println!("artifact whose laws are exercised by the test suites (DESIGN.md §1).");
}
