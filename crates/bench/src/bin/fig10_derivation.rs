//! Regenerate paper Fig. 10: the overall structure of the proof of Thm 3.8,
//! as the machine-checked rewriting derivation from the composed per-pass
//! conventions to `C = R* · wt · CA · vainj`.

use compcerto_core::algebra::{derive, goal_convention};
use compiler::registry::{composed_incoming, composed_outgoing};

/// Derivation failures are registry bugs, not runtime conditions — exit
/// with the usage code instead of unwinding (the bins are unwrap-free).
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("fig10_derivation: {msg}");
    std::process::exit(2)
}

fn main() {
    println!("Fig. 10: structure of the Thm 3.8 proof (cf. paper Fig. 10)");
    println!();
    println!("goal convention C = {}", goal_convention());
    println!();

    for (side, chain) in [
        ("incoming", composed_incoming()),
        ("outgoing", composed_outgoing()),
    ] {
        println!("=== {side} side ===");
        println!("composed per-pass conventions (Table 3):");
        println!("  {chain}");
        let d = derive(chain).unwrap_or_else(|e| die(format!("{side} derivation: {e:?}")));
        println!("derivation ({} steps):", d.steps.len());
        print!("{}", d.render());
        if let Err(e) = d.verify() {
            die(format!("{side} derivation step unjustified: {e:?}"));
        }
        println!("verified ✓  (final: {})", d.current());
        println!();
    }
    println!("Each [law] line corresponds to a tile of the paper's Fig. 10 string");
    println!("diagram: Lemma 5.4 tiles move CKLRs through CL/LM/MA, Lemma 5.3 tiles");
    println!("fuse them, Thm 5.6 tiles absorb the C-level residue into R*.");
}
