//! Compile-server benchmark: cold vs warm cache throughput plus the
//! byte-identity invariants (EXPERIMENTS.md row B13, DESIGN.md §14).
//!
//! A block of generated multi-unit programs is pushed through a
//! [`compiler::Server`] twice over one cache directory: the **cold** pass
//! compiles and populates the cache, the **warm** pass must be served
//! entirely from disk. Three determinism anchors are asserted in-process
//! (a violation is a failed run, not a footnote):
//!
//! * every warm artifact is byte-identical to its cold artifact;
//! * the cold responses are byte-identical under `--jobs 1`, `4` and `16`
//!   (an FNV checksum over the response bytes is embedded in the report);
//! * a fresh server process over the same cache directory (a restart)
//!   serves byte-identical warm responses, and a partial edit of one unit
//!   in a three-unit batch hits on the two untouched siblings.
//!
//! Usage:
//!
//! ```text
//! serve_campaign [--out PATH] [--check PATH] [--min-ratio R]
//! ```
//!
//! `--out` writes a `compcerto-serve-bench/1` report (`BENCH_PR9.json`).
//! `--check` re-runs and gates against a committed report: the artifact
//! checksum must match exactly (mandatory — caching must be
//! observationally invisible), and the warm speedup must clear
//! `--min-ratio` (default 5, advisory on boxes with fewer than 4 cores,
//! where timings are too noisy to gate).

use std::process::ExitCode;
use std::time::Instant;

use bench::json::{self, Json};
use compcerto_gen::{generate, GenCfg};
use compiler::{available_parallelism, CompilerOptions, Jobs, ServeConfig, Server};

/// Number of generated batches (one `compile` request each).
const BATCHES: u64 = 24;
/// Warm-pass repetitions (median taken; the cold pass runs once — a
/// second cold pass over the same directory would be a warm pass).
const WARM_REPS: usize = 5;
/// The `--jobs` settings the cold responses must be invariant under.
const JOBS_MATRIX: [u64; 3] = [1, 4, 16];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, b| (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

/// The fixed three-unit batch for the partial-hit invariant: editing one
/// function body must leave its siblings' cache keys untouched.
const PARTIAL_A: &str = "int add(int x, int y) { return x + y; }";
const PARTIAL_B: &str =
    "extern int add(int, int); int twice(int n) { int r; r = add(n, n); return r; }";
const PARTIAL_C: &str = "int scale(int x) { return x * 3 + 7; }";
const PARTIAL_C2: &str = "int scale(int x) { return x * 4 + 7; }";

/// Render one `compile` request frame over the given unit sources.
fn compile_frame(id: u64, sources: &[String]) -> String {
    let units: Vec<String> = sources
        .iter()
        .map(|s| format!("{{\"source\":\"{}\"}}", json::escape(s)))
        .collect();
    format!(
        "{{\"schema\":\"compcerto-serve/1\",\"op\":\"compile\",\"id\":{id},\"units\":[{}]}}",
        units.join(",")
    )
}

/// The generated workload: one multi-unit batch per seed. The programs
/// are deliberately larger than the difftest default — back-end work per
/// unit grows much faster than the front-end parse the warm pass still
/// pays for the symbol table, which is what the cold/warm ratio measures.
fn workload() -> Vec<Vec<String>> {
    let cfg = GenCfg {
        units: 3,
        fns_per_unit: 4,
        stmts_per_fn: 12,
        ..GenCfg::default()
    };
    (0..BATCHES)
        .map(|seed| generate(seed, &cfg).render())
        .collect()
}

/// A response with its cache-state members removed: the bytes that must
/// be identical across cold, warm, restarted and differently-parallel
/// runs.
fn artifacts_only(resp: &str) -> Result<String, String> {
    let stripped = resp
        .replace("\"cache\":\"miss\",", "")
        .replace("\"cache\":\"hit\",", "")
        .replace("\"cache\":\"evict-miss\",", "");
    let stats = stripped
        .rfind(",\"cache\":{")
        .ok_or_else(|| format!("response has no stats object: {resp}"))?;
    Ok(stripped[..stats].to_string())
}

/// The `"cache":{...}` request-stats member of a `compile-result`.
fn request_stats(resp: &str) -> Result<&str, String> {
    let at = resp
        .rfind("\"cache\":{")
        .ok_or_else(|| format!("response has no stats object: {resp}"))?;
    Ok(resp[at..].trim_end_matches('}'))
}

fn fresh_dir(tag: &str) -> Result<String, String> {
    let dir = std::env::temp_dir().join(format!("serve-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    Ok(dir.to_string_lossy().into_owned())
}

fn server(cache_dir: &str, jobs: Jobs) -> Result<Server, String> {
    Server::new(ServeConfig {
        opts: CompilerOptions::validated().with_metrics(),
        jobs,
        cache_dir: cache_dir.to_string(),
    })
}

/// Push every batch through `server` once; returns the elapsed seconds
/// and the raw responses (in batch order).
fn pass(server: &mut Server, frames: &[String]) -> Result<(f64, Vec<String>), String> {
    let t0 = Instant::now();
    let mut responses = Vec::with_capacity(frames.len());
    for f in frames {
        responses.push(
            server
                .handle_line(f)
                .ok_or("server returned no response to a compile frame")?,
        );
    }
    Ok((t0.elapsed().as_secs_f64(), responses))
}

/// Sum the per-request hit/miss/evict tallies over a pass's responses.
fn tally(responses: &[String]) -> Result<(u64, u64, u64), String> {
    let (mut h, mut m, mut e) = (0, 0, 0);
    for r in responses {
        let stats = request_stats(r)?;
        let field = |name: &str| -> Result<u64, String> {
            let tag = format!("\"{name}\":");
            let at = stats
                .find(&tag)
                .ok_or_else(|| format!("stats without `{name}`: {stats}"))?;
            stats[at + tag.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse::<u64>()
                .map_err(|err| format!("bad `{name}`: {err}"))
        };
        h += field("hit")?;
        m += field("miss")?;
        e += field("evict")?;
    }
    Ok((h, m, e))
}

struct Measurement {
    batches: u64,
    units: u64,
    cold_secs: f64,
    warm_secs: f64,
    cold_tally: (u64, u64, u64),
    warm_tally: (u64, u64, u64),
    checksum: u64,
}

fn measure() -> Result<Measurement, String> {
    let batches = workload();
    let units: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let frames: Vec<String> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| compile_frame(i as u64, b))
        .collect();

    // Invariant 1 — `--jobs` invariance: three cold passes over three
    // fresh directories must produce byte-identical responses.
    let mut jobs_responses: Vec<Vec<String>> = Vec::new();
    for jobs in JOBS_MATRIX {
        let dir = fresh_dir(&format!("jobs{jobs}"))?;
        let mut srv = server(&dir, Jobs::N(jobs as usize))?;
        let (_, responses) = pass(&mut srv, &frames)?;
        let _ = std::fs::remove_dir_all(&dir);
        jobs_responses.push(responses);
    }
    for (jobs, responses) in JOBS_MATRIX.iter().zip(&jobs_responses[1..]) {
        if responses != &jobs_responses[0] {
            return Err(format!(
                "cold responses differ between --jobs {} and --jobs {jobs}",
                JOBS_MATRIX[0]
            ));
        }
    }
    let checksum = jobs_responses[0]
        .iter()
        .fold(FNV_OFFSET, |h, r| fnv1a(h, r.as_bytes()));

    // The timed cold/warm passes (jobs auto, one shared directory).
    let dir = fresh_dir("timed")?;
    let mut srv = server(&dir, Jobs::Auto)?;
    let (cold_secs, cold) = pass(&mut srv, &frames)?;
    let cold_tally = tally(&cold)?;
    if cold_tally.0 != 0 || cold_tally.1 != units {
        return Err(format!(
            "cold pass expected 0 hits / {units} misses, got {cold_tally:?}"
        ));
    }

    let mut warm_times = Vec::with_capacity(WARM_REPS);
    let mut warm = Vec::new();
    for _ in 0..WARM_REPS {
        let (secs, responses) = pass(&mut srv, &frames)?;
        warm_times.push(secs);
        warm = responses;
    }
    warm_times.sort_by(f64::total_cmp);
    let warm_secs = warm_times[warm_times.len() / 2];
    let warm_tally = tally(&warm)?;
    if warm_tally.1 != 0 || warm_tally.0 != units {
        return Err(format!(
            "warm pass expected {units} hits / 0 misses, got {warm_tally:?}"
        ));
    }

    // Invariant 2 — warm artifacts are the cold artifacts, byte for byte.
    for (c, w) in cold.iter().zip(&warm) {
        if artifacts_only(c)? != artifacts_only(w)? {
            return Err("a warm artifact differs from its cold compilation".into());
        }
    }

    // Invariant 3 — a restarted server over the same directory serves the
    // same warm bytes (stats included: both are all-hit passes).
    drop(srv);
    let mut restarted = server(&dir, Jobs::Auto)?;
    let (_, warm2) = pass(&mut restarted, &frames)?;
    if warm2 != warm {
        return Err("warm responses changed across a server restart".into());
    }

    // Invariant 4 — partial hit: edit one body in a three-unit batch; the
    // two untouched siblings must hit and serve their cold bytes.
    let three = |c: &str| vec![PARTIAL_A.to_string(), PARTIAL_B.to_string(), c.to_string()];
    let full = restarted
        .handle_line(&compile_frame(100, &three(PARTIAL_C)))
        .ok_or("no response")?;
    let partial = restarted
        .handle_line(&compile_frame(100, &three(PARTIAL_C2)))
        .ok_or("no response")?;
    if request_stats(&partial)? != "\"cache\":{\"hit\":2,\"miss\":1,\"evict\":0" {
        return Err(format!(
            "partial edit expected 2 hits / 1 miss, got: {}",
            request_stats(&partial)?
        ));
    }
    let unit_frames = |resp: &str| -> Vec<String> {
        resp.split("{\"unit\":").skip(1).map(str::to_string).collect()
    };
    let (fu, pu) = (unit_frames(&full), unit_frames(&partial));
    let tagless = |s: &str| s.replace("\"cache\":\"miss\",", "").replace("\"cache\":\"hit\",", "");
    if fu.len() != 3 || pu.len() != 3 || tagless(&fu[0]) != tagless(&pu[0]) || tagless(&fu[1]) != tagless(&pu[1]) {
        return Err("a partial edit invalidated an untouched sibling unit".into());
    }
    let _ = std::fs::remove_dir_all(&dir);

    Ok(Measurement {
        batches: BATCHES,
        units,
        cold_secs,
        warm_secs,
        cold_tally,
        warm_tally,
        checksum,
    })
}

fn report_json(m: &Measurement, cores: usize) -> String {
    let speedup = m.cold_secs / m.warm_secs.max(1e-9);
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"compcerto-serve-bench/1\",\n");
    j.push_str(&format!("  \"batches\": {},\n", m.batches));
    j.push_str(&format!("  \"units\": {},\n", m.units));
    j.push_str(&format!("  \"warm_reps\": {WARM_REPS},\n"));
    j.push_str(&format!(
        "  \"jobs_matrix\": [{}],\n",
        JOBS_MATRIX.map(|n| n.to_string()).join(", ")
    ));
    j.push_str(&format!("  \"cores\": {cores},\n"));
    j.push_str(&format!("  \"cold_secs\": {:.6},\n", m.cold_secs));
    j.push_str(&format!("  \"warm_secs\": {:.6},\n", m.warm_secs));
    j.push_str(&format!("  \"warm_speedup\": {speedup:.2},\n"));
    j.push_str(&format!(
        "  \"cold\": {{\"hit\": {}, \"miss\": {}, \"evict\": {}}},\n",
        m.cold_tally.0, m.cold_tally.1, m.cold_tally.2
    ));
    j.push_str(&format!(
        "  \"warm\": {{\"hit\": {}, \"miss\": {}, \"evict\": {}}},\n",
        m.warm_tally.0, m.warm_tally.1, m.warm_tally.2
    ));
    j.push_str(&format!(
        "  \"artifact_checksum\": \"{:016x}\"\n",
        m.checksum
    ));
    j.push_str("}\n");
    j
}

struct Cli {
    out: Option<String>,
    check: Option<String>,
    min_ratio: f64,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        out: None,
        check: None,
        min_ratio: 5.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => cli.out = Some(args.next().ok_or("--out needs a value")?),
            "--check" => cli.check = Some(args.next().ok_or("--check needs a value")?),
            "--min-ratio" => {
                let v = args.next().ok_or("--min-ratio needs a value")?;
                cli.min_ratio = v
                    .parse()
                    .map_err(|e| format!("bad --min-ratio `{v}`: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cli.out.is_none() && cli.check.is_none() {
        cli.out = Some("BENCH_PR9.json".to_string());
    }
    Ok(cli)
}

fn run(cli: &Cli) -> Result<(), String> {
    let cores = available_parallelism();
    println!("serve_campaign: {BATCHES} batches, warm median of {WARM_REPS}, jobs matrix {JOBS_MATRIX:?}");
    let m = measure()?;
    let speedup = m.cold_secs / m.warm_secs.max(1e-9);
    println!(
        "cold: {:.3}s ({} units compiled), warm: {:.3}s (all {} hits) — {speedup:.2}x",
        m.cold_secs, m.units, m.warm_secs, m.units
    );
    println!("artifact checksum: {:016x} (jobs-invariant, restart-invariant)", m.checksum);

    if let Some(path) = &cli.check {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let doc = json::parse(&src).map_err(|e| format!("`{path}`: {e}"))?;
        let committed_ck = doc
            .get("artifact_checksum")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("`{path}` has no artifact_checksum"))?;
        let now_ck = format!("{:016x}", m.checksum);
        if now_ck != committed_ck {
            return Err(format!(
                "artifact checksum {now_ck} != committed {committed_ck} in `{path}` — \
                 the server's compiled output drifted"
            ));
        }
        println!("checksum gate: matches `{path}` ✓");
        let gated = cores >= 4;
        println!(
            "warm speedup: {speedup:.2}x (floor {:.1}x, {})",
            cli.min_ratio,
            if gated { "gated" } else { "advisory: <4 cores" }
        );
        if gated && speedup < cli.min_ratio {
            return Err(format!(
                "warm-cache speedup regressed: {speedup:.2}x < {:.1}x floor",
                cli.min_ratio
            ));
        }
        return Ok(());
    }

    if let Some(out) = &cli.out {
        std::fs::write(out, report_json(&m, cores))
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: serve_campaign [--out PATH] [--check PATH] [--min-ratio R]");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
