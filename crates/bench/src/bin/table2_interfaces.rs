//! Regenerate paper Table 2: the language interfaces used in CompCertO-rs.
//!
//! The rows are produced from the live types: for each interface a canonical
//! question/answer pair is constructed and rendered, so the table cannot
//! drift from the code.

use compcerto_core::iface::{
    abi, ARegs, CQuery, CReply, LQuery, LReply, LanguageInterface, MQuery, MReply, Signature, A, C,
    L, M, W,
};
use compcerto_core::regs::{Loc, Locset, Regset, NREGS};
use mem::{Mem, Val};

fn main() {
    println!("Table 2: Language interfaces used in CompCertO-rs (cf. paper Table 2)");
    println!("{:-<86}", "");
    println!(
        "{:<6}{:<34}{:<22}{}",
        "Name", "Question", "Answer", "Description"
    );
    println!("{:-<86}", "");

    let sig = Signature::int_fn(2);
    let mem0 = Mem::new();

    // C: source-level calls.
    let cq = CQuery {
        vf: Val::Ptr(0, 0),
        sig: sig.clone(),
        args: vec![Val::Int(3), Val::Int(4)],
        mem: mem0.clone(),
    };
    let cr = CReply {
        retval: Val::Int(7),
        mem: mem0.clone(),
    };
    println!(
        "{:<6}{:<34}{:<22}{}",
        C::NAME,
        format!(
            "vf[sg](v⃗)@m   e.g. {}({},{})@m",
            cq.vf, cq.args[0], cq.args[1]
        ),
        format!("v'@m'  e.g. {}@m'", cr.retval),
        "C calls"
    );

    // L: abstract locations.
    let ls = Locset::new().with(Loc::Reg(abi::PARAM_REGS[0]), Val::Int(3));
    let lq = LQuery {
        vf: Val::Ptr(0, 0),
        sig,
        ls,
        mem: mem0.clone(),
    };
    let _ = LReply {
        ls: lq.ls.clone(),
        mem: mem0.clone(),
    };
    println!(
        "{:<6}{:<34}{:<22}{}",
        L::NAME,
        "vf[sg](ls)@m  (ls: loc → val)",
        "ls'@m'",
        "Abstract locations"
    );

    // M: machine registers + explicit sp/ra.
    let mq = MQuery {
        vf: Val::Ptr(0, 0),
        sp: Val::Ptr(1, 0),
        ra: Val::Undef,
        rs: [Val::Undef; NREGS],
        mem: mem0.clone(),
    };
    let _ = MReply {
        rs: mq.rs,
        mem: mem0.clone(),
    };
    println!(
        "{:<6}{:<34}{:<22}{}",
        M::NAME,
        format!("vf(sp, ra, rs)@m  ({} regs)", NREGS),
        "rs'@m'",
        "Machine registers"
    );

    // A: full architectural register file.
    let ar = ARegs {
        rs: Regset::new(),
        mem: mem0,
    };
    let _ = &ar;
    println!(
        "{:<6}{:<34}{:<22}{}",
        A::NAME,
        format!("rs@m  ({} regs + pc, sp, ra)", NREGS),
        "rs'@m'",
        "Arch-specific"
    );

    println!(
        "{:<6}{:<34}{:<22}{}",
        "1", "(no moves)", "(no moves)", "Empty interface"
    );
    println!(
        "{:<6}{:<34}{:<22}{}",
        W::NAME,
        "*",
        "r : int",
        "Whole-program"
    );
    println!();
    println!(
        "ABI: args in r0..r{}, then Outgoing stack slots; result in r{}; callee-save r8..r13.",
        abi::PARAM_REGS.len() - 1,
        abi::RESULT_REG.0
    );
}
