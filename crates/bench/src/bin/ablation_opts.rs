//! Ablation of the optional optimization passes (DESIGN.md §4, design-choice
//! ablation): code size and execution cost with each optimization removed,
//! demonstrating paper §3.4's point operationally — the optional passes
//! change the *numbers* but never the *convention* (every configuration
//! still passes the Thm 3.8 check).

use compiler::{
    c_query, check_thm38, compile_all, CompilerOptions, ExtLib, WorkloadCfg, WorkloadGen,
};

/// Fixture failures are configuration bugs, not runtime conditions — exit
/// with the usage code instead of unwinding (the bins are unwrap-free).
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("ablation_opts: {msg}");
    std::process::exit(2)
}

struct Config {
    label: &'static str,
    opts: CompilerOptions,
}

fn configs() -> Vec<Config> {
    let on = CompilerOptions::default;
    vec![
        Config {
            label: "all",
            opts: on(),
        },
        Config {
            label: "-tailcall",
            opts: CompilerOptions {
                tailcall: false,
                ..on()
            },
        },
        Config {
            label: "-inlining",
            opts: CompilerOptions {
                inlining: false,
                ..on()
            },
        },
        Config {
            label: "-constprop",
            opts: CompilerOptions {
                constprop: false,
                ..on()
            },
        },
        Config {
            label: "-cse",
            opts: CompilerOptions { cse: false, ..on() },
        },
        Config {
            label: "-deadcode",
            opts: CompilerOptions {
                deadcode: false,
                ..on()
            },
        },
        Config {
            label: "none",
            opts: CompilerOptions::none(),
        },
    ]
}

fn main() {
    // A fixed suite of generated programs shared by all configurations.
    let mut g = WorkloadGen::new(31415);
    let cfg = WorkloadCfg {
        functions: 4,
        stmts_per_fn: 10,
        ..WorkloadCfg::default()
    };
    let mut suite: Vec<(String, usize)> = (0..8).map(|_| g.gen_program(&cfg)).collect();
    // Two fixed programs exercising the passes the generator rarely hits:
    // an inlinable leaf helper, and a tail call.
    suite.push((
        "int sq(int x) { return x * x; }\n\
         int entry(int a) { int r; int s; r = sq(a); s = sq(r); return r + s; }"
            .to_string(),
        1,
    ));
    suite.push((
        "int countdown(int n) { int r; if (n <= 0) { return 0; } r = countdown(n - 1); return r; }\n\
         int entry(int a) { int r; r = countdown(a % 50); return r; }"
            .to_string(),
        1,
    ));
    let query_sets: Vec<Vec<Vec<mem::Val>>> = suite
        .iter()
        .map(|(_, arity)| g.gen_queries(*arity, 3))
        .collect();

    println!("Ablation: optional passes (cf. paper Table 3 † and §3.4)");
    println!("{:-<74}", "");
    println!(
        "{:<12}{:>10}{:>10}{:>12}{:>14}{:>10}",
        "config", "RTL ops", "Asm insts", "src steps", "tgt steps", "Thm 3.8"
    );
    println!("{:-<74}", "");

    for c in configs() {
        let mut rtl_ops = 0usize;
        let mut asm_insts = 0usize;
        let mut src_steps = 0u64;
        let mut tgt_steps = 0u64;
        for ((src, _), queries) in suite.iter().zip(&query_sets) {
            let (units, tbl) = compile_all(&[src], c.opts)
                .unwrap_or_else(|e| die(format!("workload does not compile: {e:?}")));
            let lib = ExtLib::demo(tbl.clone());
            // Count live (non-Nop) RTL instructions: the optimizations blank
            // instructions rather than renumbering them away.
            rtl_ops += units[0]
                .rtl_opt
                .functions
                .iter()
                .flat_map(|f| f.code.values())
                .filter(|i| !matches!(i, rtl::Inst::Nop(_)))
                .count();
            asm_insts += units[0]
                .asm
                .functions
                .iter()
                .map(|f| f.code.len())
                .sum::<usize>();
            for args in queries {
                let q = c_query(&tbl, &units[0], "entry", args.clone());
                let report = check_thm38(&units[0], &tbl, &lib, &q)
                    .unwrap_or_else(|e| panic!("{}: {e}", c.label));
                src_steps += report.source_steps;
                tgt_steps += report.target_steps;
            }
        }
        println!(
            "{:<12}{rtl_ops:>10}{asm_insts:>10}{src_steps:>12}{tgt_steps:>14}{:>10}",
            c.label, "✓"
        );
    }
    println!("{:-<74}", "");
    println!("Shape: removing Deadcode or Constprop visibly grows the generated code");
    println!("and the executed target steps; interactions between passes are real");
    println!("(CSE lengthens live ranges, costing spills). The invariant: every");
    println!("configuration satisfies the same convention C — paper §3.4's");
    println!("†-insensitivity claim, observed rather than proved.");
}
