//! Regenerate paper Table 3: the passes of the compiler, their simulation
//! conventions, and the per-pass code size.
//!
//! The paper column "SLOC" reports proof *overhead* relative to CompCert
//! v3.6; our analog reports the size of each pass's implementation (which in
//! this reproduction includes its convention-checking tests — the runtime
//! counterpart of the proof).

use compiler::registry::{language_registry, pass_registry};
use compiler::sloc::sloc_of;

fn main() {
    println!("Table 3: Passes of CompCertO-rs (cf. paper Table 3)");
    println!("{:-<78}", "");
    println!(
        "{:<16}{:<30}{:>10}   {}",
        "Language/Pass", "Outgoing ↠ Incoming", "SLOC", "module"
    );
    println!("{:-<78}", "");
    let langs = language_registry();
    let passes = pass_registry();
    let mut total = 0usize;
    let mut li = langs.iter().peekable();
    for p in &passes {
        // Interleave the language rows as in the paper (language precedes the
        // passes that consume it).
        while let Some((lang, iface, module)) = li.peek() {
            if *lang == p.source {
                let n = sloc_of(module);
                total += n;
                println!("{:<16}{:<30}{:>10}   {}", lang, iface, n, module);
                li.next();
            } else {
                break;
            }
        }
        let conv = format!("{} ↠ {}", p.outgoing, p.incoming);
        let n = sloc_of(p.module);
        total += n;
        let name = if p.optional {
            format!("{}†", p.name)
        } else {
            p.name.to_string()
        };
        println!("{name:<16}{conv:<30}{n:>10}   {}", p.module);
    }
    for (lang, iface, module) in li {
        let n = sloc_of(module);
        total += n;
        println!("{:<16}{:<30}{:>10}   {}", lang, iface, n, module);
    }
    println!("{:-<78}", "");
    println!("{:<16}{:<30}{total:>10}", "Total", "");
    println!();
    println!("† optional optimization (the final convention C is insensitive to it).");
    println!("Paper takeaway preserved: per-pass overhead is small and localized, with");
    println!("the largest contributions in the Stacking/Asmgen/Mach/Asm group.");
}
