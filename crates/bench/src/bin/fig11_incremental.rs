//! Regenerate paper Fig. 11: incremental composition of the C-level passes.
//!
//! The paper's point: correctness proofs of C-level passes (`CSE`, `Deadcode`
//! … `SimplLocals`) can be pre-composed one at a time *without changing the
//! overall simulation convention*. We replay that incrementally: after
//! appending each pass's convention, the growing prefix still normalizes to
//! the same goal.

use compcerto_core::algebra::{derive, goal_convention, Chain};
use compiler::registry::pass_registry;

/// Derivation failures are registry bugs, not runtime conditions — exit
/// with the usage code instead of unwinding (the bins are unwrap-free).
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("fig11_incremental: {msg}");
    std::process::exit(2)
}

fn main() {
    println!("Fig. 11: incremental composition of C passes (cf. paper Fig. 11)");
    println!("{:-<74}", "");
    println!(
        "{:<16}{:>8}{:>12}   {}",
        "pass appended", "atoms", "deriv steps", "normal form"
    );
    println!("{:-<74}", "");
    let mut prefix = Chain::id();
    for p in pass_registry() {
        prefix = prefix.then(p.incoming.clone());
        // Only full C↠A prefixes normalize to the goal; pad the remainder
        // with the identity tail of the pipeline to complete the game.
        let mut rest = Chain::id();
        let mut seen = false;
        for q in pass_registry() {
            if q.name == p.name {
                seen = true;
                continue;
            }
            if seen {
                rest = rest.then(q.incoming.clone());
            }
        }
        let full = prefix.clone().then(rest);
        let d = derive(full)
            .unwrap_or_else(|e| die(format!("prefix through `{}`: {e:?}", p.name)));
        assert_eq!(d.current(), &goal_convention());
        println!(
            "{:<16}{:>8}{:>12}   {}",
            p.name,
            prefix.len(),
            d.steps.len(),
            d.current()
        );
    }
    println!("{:-<74}", "");
    println!("At every increment the whole-pipeline convention is unchanged — the");
    println!("compiler's interface is insensitive to how many passes have been");
    println!("composed so far (and, per Table 3, to the optional ones entirely).");
}
