//! Interpreter-throughput benchmark for the arena/fused-dispatch hot path
//! (EXPERIMENTS.md row B12, DESIGN.md §13).
//!
//! Every difftest seed runs *seven* interpreters under one budget, so raw
//! stepping speed is the campaign bottleneck. This bin isolates exactly that
//! phase: a fixed 64-seed block is generated and compiled **untimed** (the
//! per-stage programs of [`compiler::StagePrograms`]), then the
//! cross-stage interpretation sweep ([`compiler::check_query`] over every
//! seed and query) is timed, median of 5 repetitions. Two determinism
//! anchors ride along:
//!
//! * an FNV-1a checksum over every query verdict (answers, external-call
//!   traces, final globals) — byte-identical before and after any pure
//!   performance change, on any box;
//! * a per-stage step-rate breakdown attributed via the deterministic
//!   `lts.*` counters (steps per interpreter per second).
//!
//! Usage:
//!
//! ```text
//! interp_campaign [--out PATH] [--before PATH] [--check PATH] [--min-ratio R]
//! ```
//!
//! `--out` writes a `compcerto-interp/1` report; `--before` embeds a prior
//! report's measurement as the `before` block and reports the speedup
//! ratio. `--check` re-measures and gates against a committed report
//! (`BENCH_PR8.json`): the verdict checksum must match exactly (mandatory —
//! the optimization must be observationally invisible), and the seeds/sec
//! ratio against the committed `before` must clear `--min-ratio` (advisory
//! on boxes with fewer than 4 cores, where timings are too noisy to gate).

use std::process::ExitCode;
use std::time::Instant;

use bench::json::{self, Json};
use compcerto_core::iface::CQuery;
use compcerto_core::lts::RunBudget;
use compcerto_core::symtab::SymbolTable;
use compcerto_gen::generate::gen_queries;
use compcerto_gen::{generate, GenCfg};
use compiler::{
    available_parallelism, check_query, compile_all, run_stage, CompilerOptions, ExtLib,
    QueryVerdict, StagePrograms, STAGES,
};
use mem::{Mem, Val};

/// The fixed seed block: interpretation throughput is measured over exactly
/// these generated programs (byte-stable across runs and machines).
const SEEDS: u64 = 64;
/// Incoming queries per seed (the difftest default).
const QUERIES: usize = 3;
/// Fuel per stage execution (the difftest default).
const FUEL: u64 = 2_000_000;
/// Timed sweep repetitions (median taken).
const REPS: usize = 5;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, b| (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

/// One seed's compiled stage programs and query inputs — everything the
/// timed sweep needs, built once outside the timed region.
struct Prepared {
    seed: u64,
    sp: StagePrograms,
    symtab: SymbolTable,
    lib: ExtLib,
    init: Mem,
    vf: Val,
    sig: compcerto_core::iface::Signature,
    queries: Vec<Vec<i32>>,
}

fn prepare(seed: u64) -> Result<Prepared, String> {
    let prog = generate(seed, &GenCfg::default());
    let srcs = prog.render();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let (units, symtab) =
        compile_all(&refs, CompilerOptions::default()).map_err(|e| format!("seed {seed}: {e}"))?;
    let sp = StagePrograms::build(&units).map_err(|e| format!("seed {seed}: {e}"))?;
    let lib = ExtLib::demo(symtab.clone());
    let init = symtab
        .build_init_mem()
        .map_err(|e| format!("seed {seed}: initial memory: {e:?}"))?;
    let (_, entry) = prog.entry();
    let vf = symtab
        .func_ptr(&entry.name)
        .ok_or_else(|| format!("seed {seed}: entry `{}` has no symbol", entry.name))?;
    let sig = sp
        .clight
        .sig_of(&entry.name)
        .ok_or_else(|| format!("seed {seed}: entry `{}` has no signature", entry.name))?;
    let queries = gen_queries(seed, entry.nparams as usize, QUERIES);
    Ok(Prepared {
        seed,
        sp,
        symtab,
        lib,
        init,
        vf,
        sig,
        queries,
    })
}

fn c_query(p: &Prepared, args: &[i32]) -> CQuery {
    CQuery {
        vf: p.vf,
        sig: p.sig.clone(),
        args: args.iter().map(|&a| Val::Int(a)).collect(),
        mem: p.init.clone(),
    }
}

/// One full cross-stage sweep over the prepared block; returns the verdict
/// checksum and the (agree, skip, finding) tallies.
fn sweep(block: &[Prepared], budget: &RunBudget) -> (u64, u64, u64, u64) {
    let mut h = FNV_OFFSET;
    let (mut agrees, mut skips, mut findings) = (0u64, 0u64, 0u64);
    for p in block {
        h = fnv1a(h, &p.seed.to_le_bytes());
        for (qi, args) in p.queries.iter().enumerate() {
            let q = c_query(p, args);
            h = fnv1a(h, &(qi as u64).to_le_bytes());
            match check_query(&p.sp, &p.symtab, &p.lib, &q, budget) {
                QueryVerdict::Agree(obs) => {
                    agrees += 1;
                    h = fnv1a(h, format!("{obs}").as_bytes());
                }
                QueryVerdict::Skipped { stage } => {
                    skips += 1;
                    h = fnv1a(h, format!("skip@{stage}").as_bytes());
                }
                QueryVerdict::Finding { kind, detail } => {
                    findings += 1;
                    h = fnv1a(h, format!("finding:{kind}:{detail}").as_bytes());
                }
            }
        }
    }
    (h, agrees, skips, findings)
}

/// Per-stage throughput: run every (seed, query) pair through a single
/// stage interpreter and attribute its steps via the `lts.steps` counter
/// delta (thread-local, exact — the whole bin is single-threaded).
struct StageRate {
    name: &'static str,
    steps: u64,
    secs: f64,
}

fn stage_rates(block: &[Prepared], budget: &RunBudget) -> Vec<StageRate> {
    let mut out = Vec::with_capacity(STAGES.len());
    for &stage in &STAGES {
        let before = compcerto_core::obs::counters();
        let t0 = Instant::now();
        for p in block {
            for args in &p.queries {
                let q = c_query(p, args);
                // Outcome intentionally discarded: verdicts are anchored by
                // the checksummed sweep; this loop only attributes steps.
                let _ = run_stage(&p.sp, &p.symtab, &p.lib, stage, &q, budget);
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        let steps = compcerto_core::obs::counters().since(&before).steps;
        out.push(StageRate { name: stage, steps, secs });
    }
    out
}

/// One complete measurement: median-of-`REPS` timed sweeps plus the
/// per-stage breakdown.
struct Measurement {
    seeds_per_sec: f64,
    sweep_secs: f64,
    checksum: u64,
    agrees: u64,
    skips: u64,
    findings: u64,
    stages: Vec<StageRate>,
}

fn measure(block: &[Prepared], budget: &RunBudget) -> Result<Measurement, String> {
    let mut times = Vec::with_capacity(REPS);
    let mut result = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = sweep(block, budget);
        times.push(t0.elapsed().as_secs_f64());
        if let Some(prev) = result {
            if prev != r {
                return Err("sweep verdicts changed between repetitions".into());
            }
        }
        result = Some(r);
    }
    times.sort_by(f64::total_cmp);
    let sweep_secs = times[times.len() / 2];
    let (checksum, agrees, skips, findings) =
        result.ok_or("no sweep ran (REPS must be positive)")?;
    let stages = stage_rates(block, budget);
    Ok(Measurement {
        seeds_per_sec: block.len() as f64 / sweep_secs.max(1e-9),
        sweep_secs,
        checksum,
        agrees,
        skips,
        findings,
        stages,
    })
}

fn measurement_json(m: &Measurement, indent: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "{indent}  \"seeds_per_sec\": {:.3},\n",
        m.seeds_per_sec
    ));
    s.push_str(&format!("{indent}  \"sweep_secs\": {:.6},\n", m.sweep_secs));
    s.push_str(&format!("{indent}  \"agrees\": {},\n", m.agrees));
    s.push_str(&format!("{indent}  \"skips\": {},\n", m.skips));
    s.push_str(&format!("{indent}  \"findings\": {},\n", m.findings));
    s.push_str(&format!(
        "{indent}  \"checksum\": \"{:016x}\",\n",
        m.checksum
    ));
    s.push_str(&format!("{indent}  \"stages\": [\n"));
    for (i, r) in m.stages.iter().enumerate() {
        s.push_str(&format!(
            "{indent}    {{\"name\": \"{}\", \"steps\": {}, \"secs\": {:.6}, \
             \"steps_per_sec\": {:.0}}}{}\n",
            r.name,
            r.steps,
            r.secs,
            r.steps as f64 / r.secs.max(1e-9),
            if i + 1 < m.stages.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("{indent}  ]\n"));
    s.push_str(&format!("{indent}}}"));
    s
}

/// Extract the fields `--before`/`--check` need from a prior report: the
/// measured block is `after` when present (a before/after report), else the
/// bare measurement.
fn parsed_measurement(doc: &Json) -> Result<(f64, String), String> {
    let block = doc.get("after").unwrap_or(doc);
    let sps = match block.get("seeds_per_sec") {
        Some(Json::Num(raw)) => raw
            .parse::<f64>()
            .map_err(|e| format!("bad seeds_per_sec: {e}"))?,
        _ => return Err("report has no seeds_per_sec".into()),
    };
    let ck = block
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or("report has no checksum")?;
    Ok((sps, ck.to_string()))
}

/// The `before` block's seeds/sec in a committed before/after report.
fn parsed_before(doc: &Json) -> Option<f64> {
    match doc.get("before")?.get("seeds_per_sec") {
        Some(Json::Num(raw)) => raw.parse::<f64>().ok(),
        _ => None,
    }
}

struct Cli {
    out: Option<String>,
    before: Option<String>,
    check: Option<String>,
    min_ratio: f64,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        out: None,
        before: None,
        check: None,
        min_ratio: 4.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => cli.out = Some(args.next().ok_or("--out needs a value")?),
            "--before" => cli.before = Some(args.next().ok_or("--before needs a value")?),
            "--check" => cli.check = Some(args.next().ok_or("--check needs a value")?),
            "--min-ratio" => {
                let v = args.next().ok_or("--min-ratio needs a value")?;
                cli.min_ratio = v
                    .parse()
                    .map_err(|e| format!("bad --min-ratio `{v}`: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cli.out.is_none() && cli.check.is_none() {
        cli.out = Some("BENCH_PR8.json".to_string());
    }
    Ok(cli)
}

fn load_json(path: &str) -> Result<Json, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    json::parse(&src).map_err(|e| format!("`{path}`: {e}"))
}

fn run(cli: &Cli) -> Result<(), String> {
    let cores = available_parallelism();
    println!(
        "interp_campaign: {SEEDS} seeds x {QUERIES} queries, fuel {FUEL}, median of {REPS}"
    );

    println!("compiling seed block (untimed setup)...");
    let mut block = Vec::with_capacity(SEEDS as usize);
    for seed in 0..SEEDS {
        block.push(prepare(seed)?);
    }
    let budget = RunBudget::with_fuel(FUEL).no_trace();

    let m = measure(&block, &budget)?;
    println!(
        "interpretation sweep: {:.3} seeds/sec (median {:.3}s; {} agree, {} skip, {} findings)",
        m.seeds_per_sec, m.sweep_secs, m.agrees, m.skips, m.findings
    );
    println!("verdict checksum: {:016x}", m.checksum);
    println!("{:-<56}", "");
    println!("{:<14}{:>14}{:>10}{:>16}", "stage", "steps", "secs", "steps/sec");
    for r in &m.stages {
        println!(
            "{:<14}{:>14}{:>10.3}{:>16.0}",
            r.name,
            r.steps,
            r.secs,
            r.steps as f64 / r.secs.max(1e-9)
        );
    }
    println!("{:-<56}", "");

    if let Some(path) = &cli.check {
        let doc = load_json(path)?;
        let (_committed_sps, committed_ck) = parsed_measurement(&doc)?;
        let now_ck = format!("{:016x}", m.checksum);
        if now_ck != committed_ck {
            return Err(format!(
                "verdict checksum {now_ck} != committed {committed_ck} in `{path}` — \
                 the interpreters' observable behaviour drifted"
            ));
        }
        println!("checksum gate: matches `{path}` ✓");
        match parsed_before(&doc) {
            Some(before_sps) => {
                let ratio = m.seeds_per_sec / before_sps.max(1e-9);
                let gated = cores >= 4;
                println!(
                    "throughput: {:.3} seeds/sec vs committed before {:.3} = {ratio:.2}x \
                     (floor {:.1}x, {})",
                    m.seeds_per_sec,
                    before_sps,
                    cli.min_ratio,
                    if gated { "gated" } else { "advisory: <4 cores" }
                );
                if gated && ratio < cli.min_ratio {
                    return Err(format!(
                        "interp throughput regressed: {ratio:.2}x < {:.1}x floor",
                        cli.min_ratio
                    ));
                }
            }
            None => println!("no `before` block in `{path}`; ratio gate skipped"),
        }
        return Ok(());
    }

    // Report emission (`--out`, optional `--before` embedding).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"compcerto-interp/1\",\n");
    j.push_str(&format!("  \"seeds\": {SEEDS},\n"));
    j.push_str(&format!("  \"queries_per_seed\": {QUERIES},\n"));
    j.push_str(&format!("  \"fuel\": {FUEL},\n"));
    j.push_str(&format!("  \"reps\": {REPS},\n"));
    j.push_str(&format!("  \"cores\": {cores},\n"));
    let mut ratio = None;
    if let Some(path) = &cli.before {
        let doc = load_json(path)?;
        let (before_sps, before_ck) = parsed_measurement(&doc)?;
        let now_ck = format!("{:016x}", m.checksum);
        if now_ck != before_ck {
            return Err(format!(
                "verdict checksum {now_ck} != before-measurement {before_ck} in `{path}` — \
                 refusing to report a speedup over different behaviour"
            ));
        }
        ratio = Some(m.seeds_per_sec / before_sps.max(1e-9));
        j.push_str(&format!(
            "  \"before\": {{\n    \"seeds_per_sec\": {before_sps:.3},\n    \
             \"checksum\": \"{before_ck}\"\n  }},\n"
        ));
    }
    j.push_str("  \"after\": ");
    j.push_str(&measurement_json(&m, "  "));
    match ratio {
        Some(r) => {
            j.push_str(",\n");
            j.push_str(&format!("  \"ratio\": {r:.3}\n"));
            println!("speedup vs `--before`: {r:.2}x");
        }
        None => j.push('\n'),
    }
    j.push_str("}\n");

    if let Some(out) = &cli.out {
        std::fs::write(out, j).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: interp_campaign [--out PATH] [--before PATH] [--check PATH] [--min-ratio R]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
