//! The headline experiment: Theorem 3.8 — `Clight(p) ≤_{C↠C} Asm(p')` —
//! checked over a parameter sweep of generated programs and queries, with
//! and without the optional optimizations (the convention `C` must be
//! insensitive to them, paper §3.4).

use compiler::{
    c_query, check_thm38, compile_all, CompilerOptions, ExtLib, WorkloadCfg, WorkloadGen,
};

fn main() {
    println!("Thm 3.8 end-to-end sweep (paper §3.4)");
    println!("{:-<70}", "");
    println!(
        "{:<10}{:>8}{:>10}{:>12}{:>12}{:>10}",
        "config", "progs", "queries", "externals", "tgt steps", "verdict"
    );
    println!("{:-<70}", "");

    for (label, opts) in [
        ("-O1", CompilerOptions::default()),
        ("-O0", CompilerOptions::none()),
    ] {
        let mut g = WorkloadGen::new(777);
        let cfg = WorkloadCfg::default();
        let programs = 10;
        let queries_per = 4;
        let mut externals = 0usize;
        let mut tgt_steps = 0u64;
        let mut checked = 0usize;
        for i in 0..programs {
            let (src, arity) = g.gen_program(&cfg);
            let (units, tbl) =
                compile_all(&[&src], opts).unwrap_or_else(|e| panic!("prog {i}: {e}"));
            let lib = ExtLib::demo(tbl.clone());
            for args in g.gen_queries(arity, queries_per) {
                let q = c_query(&tbl, &units[0], "entry", args.clone());
                let report = check_thm38(&units[0], &tbl, &lib, &q)
                    .unwrap_or_else(|e| panic!("{label} prog {i} args {args:?}: {e}\n{src}"));
                externals += report.external_calls;
                tgt_steps += report.target_steps;
                checked += 1;
            }
        }
        println!(
            "{label:<10}{programs:>8}{checked:>10}{externals:>12}{tgt_steps:>12}{:>10}",
            "✓"
        );
    }
    println!("{:-<70}", "");
    println!("Every execution satisfied the simulation convention C = R*·wt·CA·vainj:");
    println!("control returned through ra with sp restored, callee-save registers");
    println!("preserved, results injection-related, memories injection-related, and");
    println!("every external boundary CA-related (Fig. 6c).");
}
