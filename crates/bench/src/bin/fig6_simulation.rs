//! Regenerate the content of paper Fig. 6: the forward-simulation diagrams,
//! checked at scale — a sweep of generated programs and queries where every
//! initial-state, external-state and final-state edge is verified on the
//! end-to-end pipeline.

use compiler::{
    c_query, check_thm38, compile_all, CompilerOptions, ExtLib, WorkloadCfg, WorkloadGen,
};

fn main() {
    let programs = 12;
    let queries = 4;
    let mut g = WorkloadGen::new(66);
    let cfg = WorkloadCfg::default();

    println!("Fig. 6: forward-simulation diagram checks (cf. paper Fig. 6)");
    println!("sweep: {programs} generated programs × {queries} queries");
    println!("{:-<74}", "");
    println!(
        "{:>4} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "prog", "queries", "externals", "src steps", "tgt steps", "verdict"
    );
    println!("{:-<74}", "");

    let mut total_ext = 0usize;
    let mut total_src = 0u64;
    let mut total_tgt = 0u64;
    for i in 0..programs {
        let (src, arity) = g.gen_program(&cfg);
        let (units, tbl) = compile_all(&[&src], CompilerOptions::default())
            .unwrap_or_else(|e| panic!("program {i} does not compile: {e}"));
        let lib = ExtLib::demo(tbl.clone());
        let mut ext = 0usize;
        let mut s_steps = 0u64;
        let mut t_steps = 0u64;
        for args in g.gen_queries(arity, queries) {
            let q = c_query(&tbl, &units[0], "entry", args.clone());
            let report = check_thm38(&units[0], &tbl, &lib, &q)
                .unwrap_or_else(|e| panic!("program {i}, args {args:?}: {e}\n{src}"));
            ext += report.external_calls;
            s_steps += report.source_steps;
            t_steps += report.target_steps;
        }
        total_ext += ext;
        total_src += s_steps;
        total_tgt += t_steps;
        println!(
            "{i:>4} {queries:>8} {ext:>10} {s_steps:>12} {t_steps:>12} {:>12}",
            "✓"
        );
    }
    println!("{:-<74}", "");
    println!(
        "all edges held: {} initial-state, {} external-state (Fig. 6c), {} final-state",
        programs * queries,
        total_ext,
        programs * queries
    );
    println!(
        "aggregate steps: source {total_src}, target {total_tgt} (ratio {:.2}x)",
        total_tgt as f64 / total_src.max(1) as f64
    );
}
