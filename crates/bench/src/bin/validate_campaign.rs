//! Static-vs-dynamic detection matrix (EXPERIMENTS.md row B6).
//!
//! Two phases:
//!
//! 1. **Soundness-of-the-validators gate** — compile a battery of in-repo
//!    programs (the fixed campaign/example sources plus seeded random
//!    workloads) with the static validation layer on; any diagnostic on an
//!    honest compilation is a validator bug and fails the run.
//! 2. **Sensitivity matrix** — run the fault-injection campaign with both
//!    detection layers and print, per mutation class: mutants generated,
//!    caught statically (translation validators + lints, no execution),
//!    caught dynamically (Thm 3.8 checker), caught by both, caught by
//!    exactly one, and fully escaped.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin validate_campaign -- \
//!     [--seed N] [--per-class N] [--fuel N] [--jobs N|auto]
//! ```
//!
//! Output is byte-deterministic for a given seed and any `--jobs` value
//! (SplitMix64 sites, fuel budgets, ordered maps, index-ordered pool
//! results — no wall-clock anywhere). Exits nonzero if the honest battery
//! is not statically clean, or if any of the 10 mutation classes escapes
//! the static layer (the abstract-interpretation validators closed the
//! last gap, rtl-constant-drift — DESIGN.md §12).

use compiler::{
    compile_all_jobs, par_map, run_campaign, CampaignCfg, CompilerOptions, Jobs, WorkloadCfg,
    WorkloadGen,
};

/// Fixed honest sources: the campaign workload and the example programs.
const FIXED_SOURCES: [(&str, &str); 3] = [
    ("campaign", compiler::faultinj::CAMPAIGN_SRC),
    (
        "mult-sqr",
        "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }",
    ),
    (
        "collatz",
        "
        int collatz_len(int n) {
            int len;
            len = 0;
            while (n > 1) {
                if (n - n / 2 * 2 == 1) { n = 3 * n + 1; } else { n = n / 2; }
                len = len + 1;
            }
            return len;
        }
        int entry(int n) { int l; l = collatz_len(n + 1); return l; }",
    ),
];

/// How many seeded random workload programs the gate compiles.
const WORKLOAD_PROGRAMS: usize = 10;

/// Phase 1: every honest compilation must be statically clean, under both
/// `-O2` (default passes) and `-O0`.
///
/// Workload generation is serial (one RNG stream); the per-program
/// compile+validate work fans out over `jobs` workers, with the report for
/// each program collected in input order so failure messages are
/// deterministic.
fn honest_gate(seed: u64, jobs: Jobs) -> Result<usize, String> {
    let mut sources: Vec<(String, String)> = FIXED_SOURCES
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    let mut gen = WorkloadGen::new(seed);
    let cfg = WorkloadCfg::default();
    for i in 0..WORKLOAD_PROGRAMS {
        let (src, _arity) = gen.gen_program(&cfg);
        sources.push((format!("workload-{i}"), src));
    }
    let per_program: Vec<Result<usize, String>> = par_map(jobs, &sources, |_, (name, src)| {
        let mut checked = 0usize;
        for (level, opts) in [
            ("O2", CompilerOptions::validated()),
            (
                "O0",
                CompilerOptions {
                    validate: true,
                    ..CompilerOptions::none()
                },
            ),
        ] {
            // Units within one program are compiled serially here; the
            // parallelism lives at the program level of the battery.
            let (units, _) = compile_all_jobs(&[src.as_str()], opts, Jobs::N(1))
                .map_err(|e| format!("{name} [{level}] failed to compile: {e}"))?;
            for u in &units {
                if !u.diagnostics.is_empty() {
                    return Err(format!(
                        "{name} [{level}]: {} diagnostic(s) on an honest compilation, e.g. {}",
                        u.diagnostics.len(),
                        u.diagnostics[0]
                    ));
                }
            }
            checked += 1;
        }
        Ok(checked)
    });
    let mut checked = 0usize;
    for r in per_program {
        checked += r?;
    }
    Ok(checked)
}

fn parse_args() -> Result<CampaignCfg, String> {
    let mut cfg = CampaignCfg::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => cfg.seed = take("--seed")?,
            "--per-class" => cfg.per_class = take("--per-class")? as usize,
            "--fuel" => cfg.fuel = take("--fuel")?,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cfg.jobs = Jobs::parse(&v)?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("validate_campaign: {e}");
            std::process::exit(2);
        }
    };

    println!("phase 1: honest-compilation gate (seed={})", cfg.seed);
    match honest_gate(cfg.seed, cfg.jobs) {
        Ok(n) => println!("  {n} compilations statically clean"),
        Err(e) => {
            eprintln!("validate_campaign: honest gate failed: {e}");
            std::process::exit(1);
        }
    }

    println!(
        "phase 2: static-vs-dynamic matrix (seed={} per-class={} fuel={})",
        cfg.seed, cfg.per_class, cfg.fuel
    );
    let report = match run_campaign(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("validate_campaign: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{:<24} {:>8} {:>7} {:>8} {:>5} {:>12} {:>13} {:>8}",
        "class", "mutants", "static", "dynamic", "both", "static-only", "dynamic-only", "escaped"
    );
    for s in &report.stats {
        println!(
            "{:<24} {:>8} {:>7} {:>8} {:>5} {:>12} {:>13} {:>8}",
            s.class.name(),
            s.generated,
            s.static_caught,
            s.detected,
            s.caught_both,
            s.static_caught - s.caught_both,
            s.detected - s.caught_both,
            s.escapes_both(),
        );
    }
    let caught = report.statically_caught_classes();
    println!(
        "classes fully caught statically: {caught}/{}; dynamic escapes: {}",
        report.stats.len(),
        report.total_escapes()
    );
    // Since the abstract-interpretation validators closed the
    // rtl-constant-drift gap (DESIGN.md §12), every class must be fully
    // caught statically — escapes are regressions, not known limitations.
    if caught < report.stats.len() {
        eprintln!(
            "validate_campaign: only {caught}/{} classes caught statically (need all)",
            report.stats.len()
        );
        std::process::exit(1);
    }
}
