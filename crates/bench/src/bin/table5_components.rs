//! Regenerate paper Table 5: significant lines of code per framework
//! component, grouped as in the paper.

use compiler::sloc::{sloc_of, sloc_of_dir};

fn main() {
    println!("Table 5: Significant lines of code in CompCertO-rs (cf. paper Table 5)");
    println!("{:-<64}", "");
    let groups: Vec<(&str, usize)> = vec![
        (
            "Semantic framework (§3)",
            sloc_of("crates/core/src/iface.rs")
                + sloc_of("crates/core/src/lts.rs")
                + sloc_of("crates/core/src/regs.rs")
                + sloc_of("crates/core/src/symtab.rs"),
        ),
        (
            "Horizontal composition (§3.2)",
            sloc_of("crates/core/src/hcomp.rs") + sloc_of("crates/core/src/seqcomp.rs"),
        ),
        (
            "Simulation convention algebra (§2.5)",
            sloc_of("crates/core/src/conv.rs") + sloc_of("crates/core/src/algebra.rs"),
        ),
        (
            "CKLR theory and instances (§4)",
            sloc_of("crates/core/src/cklr.rs")
                + sloc_of("crates/mem/src/extends.rs")
                + sloc_of("crates/mem/src/inject.rs")
                + sloc_of("crates/mem/src/injp.rs"),
        ),
        (
            "Calling conventions CL/LM/MA/CA (App. C)",
            sloc_of("crates/core/src/cc.rs"),
        ),
        (
            "Invariants wt/va (App. B)",
            sloc_of("crates/core/src/invariants.rs") + sloc_of("crates/rtl/src/analysis.rs"),
        ),
        (
            "Simulation checking (Fig. 6)",
            sloc_of("crates/core/src/sim.rs") + sloc_of("crates/compiler/src/harness.rs"),
        ),
        (
            "Memory model substrate (Fig. 4)",
            sloc_of("crates/mem/src/mem.rs")
                + sloc_of("crates/mem/src/value.rs")
                + sloc_of("crates/mem/src/memval.rs")
                + sloc_of("crates/mem/src/chunk.rs")
                + sloc_of("crates/mem/src/perm.rs"),
        ),
        (
            "Languages and passes (Table 3)",
            sloc_of_dir("crates/clight/src")
                + sloc_of_dir("crates/minor/src")
                + sloc_of_dir("crates/rtl/src")
                + sloc_of_dir("crates/backend/src"),
        ),
        (
            "Heterogeneous scenario (Fig. 7)",
            sloc_of_dir("crates/nic/src"),
        ),
    ];
    let mut total = 0;
    for (label, n) in &groups {
        println!("{label:<44}{n:>8}");
        total += n;
    }
    println!("{:-<64}", "");
    println!("{:<44}{total:>8}", "Total");
    println!();
    println!("Paper takeaway preserved: the semantic framework, CKLR theory and");
    println!("convention machinery dominate; per-pass changes stay small (Table 3).");
}
