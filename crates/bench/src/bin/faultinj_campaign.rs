//! Fault-injection campaign (EXPERIMENTS.md row B5): generate seeded
//! mutants per convention-violation class, run each through the Theorem 3.8
//! checker under an explicit budget, and print the sensitivity matrix.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin faultinj_campaign -- \
//!     [--seed N] [--per-class N] [--fuel N] [--jobs N|auto] \
//!     [--ckpt PATH] [--resume] [--max-classes N]
//! ```
//!
//! Output is byte-deterministic for a given seed *and any `--jobs` value*:
//! mutation sites and payloads come from SplitMix64 (generated serially
//! before the probe fan-out), budgets are fuel-based (no wall-clock), and
//! tallies use ordered maps over index-ordered probe results.
//!
//! # Checkpoint/resume (resilience layer, DESIGN.md §11)
//!
//! The campaign's resumable unit is one mutation class
//! ([`compiler::run_campaign_class`] is a pure function of `(cfg, class)` —
//! each class owns its own split of the master RNG). After every completed
//! class a `compcerto-ckpt/1` checkpoint is written atomically; `--resume`
//! reloads the finished rows and continues with the next class, printing a
//! final matrix **byte-identical** to the uninterrupted run (resume
//! progress notes go to stderr so stdout stays comparable). `--max-classes
//! N` stops after N classes this invocation, leaving the checkpoint behind
//! — the hook the CI kill-and-resume smoke uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use bench::ckpt::{self, json_str};
use bench::json::Json;
use compiler::{
    intern_counter_key, intern_error_class, run_campaign_class, CampaignBase, CampaignCfg,
    CampaignReport, ClassStats, Counters, Jobs, MUTATION_CLASSES,
};

struct Cli {
    cfg: CampaignCfg,
    ckpt: String,
    resume: bool,
    max_classes: Option<usize>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        cfg: CampaignCfg::default(),
        ckpt: "FAULTINJ.ckpt".to_string(),
        resume: false,
        max_classes: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => cli.cfg.seed = take("--seed")?,
            "--per-class" => cli.cfg.per_class = take("--per-class")? as usize,
            "--fuel" => cli.cfg.fuel = take("--fuel")?,
            "--max-classes" => cli.max_classes = Some(take("--max-classes")? as usize),
            "--resume" => cli.resume = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.cfg.jobs = Jobs::parse(&v)?;
            }
            "--ckpt" => cli.ckpt = args.next().ok_or("--ckpt needs a value")?.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cli)
}

/// Fingerprint of every result-affecting knob (`--jobs` excluded: the
/// matrix is jobs-invariant by construction).
fn fingerprint(cfg: &CampaignCfg) -> String {
    format!(
        "faultinj seed={} per_class={} fuel={} probes={:?}",
        cfg.seed, cfg.per_class, cfg.fuel, cfg.probe_args
    )
}

fn ckpt_json(fp: &str, stats: &[ClassStats], counters: &Counters) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"{}\",", ckpt::CKPT_SCHEMA);
    j.push_str("  \"bin\": \"faultinj_campaign\",\n");
    let _ = writeln!(j, "  \"cfg\": \"{}\",", json_str(fp));
    let _ = writeln!(j, "  \"completed_classes\": {},", stats.len());
    let cmap: BTreeMap<String, u64> = counters
        .0
        .iter()
        .map(|(k, v)| ((*k).to_string(), *v))
        .collect();
    let _ = writeln!(j, "  \"counters\": {},", ckpt::u64_map_json(&cmap));
    j.push_str("  \"classes\": [\n");
    for (i, s) in stats.iter().enumerate() {
        let emap: BTreeMap<String, u64> = s
            .errors
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v as u64))
            .collect();
        let _ = writeln!(
            j,
            "    {{\"class\": \"{}\", \"generated\": {}, \"detected\": {}, \
             \"static_caught\": {}, \"caught_both\": {}, \"expected_class\": {}, \
             \"errors\": {}}}{}",
            s.class.name(),
            s.generated,
            s.detected,
            s.static_caught,
            s.caught_both,
            s.expected_class,
            ckpt::u64_map_json(&emap),
            if i + 1 < stats.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n");
    j.push_str("}\n");
    j
}

/// Rebuild the completed rows from a validated checkpoint, interning error
/// class names back to their `&'static str` keys.
fn from_ckpt(j: &Json) -> Result<(Vec<ClassStats>, Counters), String> {
    let rows = j
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or("checkpoint: missing `classes`")?;
    if rows.len() > MUTATION_CLASSES.len() {
        return Err(format!(
            "checkpoint: {} classes, campaign only has {}",
            rows.len(),
            MUTATION_CLASSES.len()
        ));
    }
    let mut stats = Vec::with_capacity(rows.len());
    for (ci, row) in rows.iter().enumerate() {
        let name = row
            .get("class")
            .and_then(Json::as_str)
            .ok_or("checkpoint: class row without `class`")?;
        let class = MUTATION_CLASSES[ci];
        if class.name() != name {
            return Err(format!(
                "checkpoint: class {ci} is `{name}`, expected `{}`",
                class.name()
            ));
        }
        let u = |key: &str| -> Result<usize, String> {
            row.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("checkpoint: class `{name}` missing `{key}`"))
        };
        let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
        let emap = ckpt::u64_map(
            row.get("errors")
                .ok_or_else(|| format!("checkpoint: class `{name}` missing `errors`"))?,
            "errors",
        )?;
        for (k, v) in &emap {
            let interned = intern_error_class(k)
                .ok_or_else(|| format!("checkpoint: unknown error class `{k}`"))?;
            errors.insert(interned, *v as usize);
        }
        stats.push(ClassStats {
            class,
            generated: u("generated")?,
            detected: u("detected")?,
            static_caught: u("static_caught")?,
            caught_both: u("caught_both")?,
            expected_class: u("expected_class")?,
            errors,
        });
    }
    let mut counters = Counters::default();
    let cmap = ckpt::u64_map(
        j.get("counters").ok_or("checkpoint: missing `counters`")?,
        "counters",
    )?;
    for (k, v) in &cmap {
        let interned = intern_counter_key(k)
            .ok_or_else(|| format!("checkpoint: unknown counter key `{k}`"))?;
        counters.0.insert(interned, *v);
    }
    Ok((stats, counters))
}

/// `Ok(Some(report))` = campaign complete; `Ok(None)` = paused at a
/// checkpoint (`--max-classes`).
fn run(cli: &Cli) -> Result<Option<CampaignReport>, String> {
    let fp = fingerprint(&cli.cfg);
    let (mut stats, mut counters) = if cli.resume {
        let j = ckpt::load(&cli.ckpt, "faultinj_campaign", &fp)?;
        let (stats, counters) = from_ckpt(&j)?;
        eprintln!(
            "resumed from {}: {}/{} classes already done",
            cli.ckpt,
            stats.len(),
            MUTATION_CLASSES.len()
        );
        (stats, counters)
    } else {
        (Vec::new(), Counters::default())
    };

    if stats.len() < MUTATION_CLASSES.len() {
        let base = CampaignBase::prepare(&cli.cfg)?;
        let mut classes_this_run = 0usize;
        while stats.len() < MUTATION_CLASSES.len() {
            if let Some(max) = cli.max_classes {
                if classes_this_run >= max {
                    eprintln!(
                        "pausing after {max} classes ({} of {} done; checkpoint at {})",
                        stats.len(),
                        MUTATION_CLASSES.len(),
                        cli.ckpt
                    );
                    return Ok(None);
                }
            }
            let (st, c) = run_campaign_class(&cli.cfg, &base, stats.len());
            stats.push(st);
            counters.add(&c);
            classes_this_run += 1;
            ckpt::write_atomic(&cli.ckpt, &ckpt_json(&fp, &stats, &counters))?;
        }
    }
    ckpt::remove(&cli.ckpt);
    Ok(Some(CampaignReport {
        cfg: cli.cfg.clone(),
        stats,
        counters,
    }))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("faultinj_campaign: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(Some(report)) => {
            println!("{report}");
            if report.total_escapes() > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("faultinj_campaign: {e}");
            ExitCode::from(2)
        }
    }
}
