//! Fault-injection campaign (EXPERIMENTS.md row B5): generate seeded
//! mutants per convention-violation class, run each through the Theorem 3.8
//! checker under an explicit budget, and print the sensitivity matrix.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin faultinj_campaign -- \
//!     [--seed N] [--per-class N] [--fuel N] [--jobs N|auto]
//! ```
//!
//! Output is byte-deterministic for a given seed *and any `--jobs` value*:
//! mutation sites and payloads come from SplitMix64 (generated serially
//! before the probe fan-out), budgets are fuel-based (no wall-clock), and
//! tallies use ordered maps over index-ordered probe results.

use compiler::{run_campaign, CampaignCfg, Jobs};

fn parse_args() -> Result<CampaignCfg, String> {
    let mut cfg = CampaignCfg::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => cfg.seed = take("--seed")?,
            "--per-class" => cfg.per_class = take("--per-class")? as usize,
            "--fuel" => cfg.fuel = take("--fuel")?,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cfg.jobs = Jobs::parse(&v)?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("faultinj_campaign: {e}");
            std::process::exit(2);
        }
    };
    match run_campaign(&cfg) {
        Ok(report) => {
            println!("{report}");
            if report.total_escapes() > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("faultinj_campaign: {e}");
            std::process::exit(2);
        }
    }
}
