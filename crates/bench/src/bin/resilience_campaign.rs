//! Resilience campaign (EXPERIMENTS.md row B10): sweep every
//! environment-fault class over a range of injection sites and record the
//! outcome of each injection. The gate this enforces: **no injected
//! environment fault may abort the process or hang the pipeline** — every
//! outcome is either a clean completion, a graceful degradation (dropped
//! telemetry line, deterministic timeout), or a contained panic attributed
//! to the injection.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin resilience_campaign -- \
//!     [--jobs N|auto] [--per-class N] [--out PATH | --check PATH]
//! ```
//!
//! The committed baseline is `RESIL.json` (schema `compcerto-resil/1`);
//! `ci.sh` regenerates it under `--jobs 1` and `--jobs 4`, byte-compares
//! the two, and `--check`s against the committed copy.
//!
//! # Why the report is byte-deterministic under any `--jobs`
//!
//! Three of the four classes (`mem-alloc`, `sink-write`,
//! `deadline-jitter`) arm **thread-local** injection points inside the
//! `par_map` closure; a pool item runs entirely on one worker thread, so
//! each injection's arm, workload, and disarm are confined to that thread
//! regardless of pool width. The `worker-panic` class arms a
//! process-global one-shot and therefore runs serially, asserting after
//! each injection that the self-healing pool produced exactly the
//! unfaulted batch. Outcome labels carry no machine facts (no file:line,
//! no timings) — a contained panic is reported by its injection class, not
//! its payload.

use std::collections::BTreeMap;
use std::process::ExitCode;

use bench::ckpt::json_str;
use compcerto_core::lts::RunBudget;
use compiler::closed::{run_closed_budgeted, Closed};
use compiler::envfault::{FaultClass, FaultPlan, FAULT_CLASSES};
use compiler::{
    compile_all, compile_all_jobs, contain, par_map, CompiledUnit, CompilerOptions, ExtLib, Jobs,
};
use compcerto_core::symtab::SymbolTable;

struct Cli {
    jobs: Jobs,
    per_class: u64,
    out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        jobs: Jobs::Auto,
        per_class: 60,
        out: Some("RESIL.json".to_string()),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--per-class" => {
                cli.per_class = args
                    .next()
                    .ok_or("--per-class needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("--per-class: {e}"))?
                    .max(1);
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = Jobs::parse(&v)?;
            }
            "--out" => cli.out = Some(args.next().ok_or("--out needs a value")?),
            "--check" => {
                cli.check = Some(args.next().ok_or("--check needs a value")?);
                cli.out = None;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

/// The closed workload the thread-local classes inject into: a loop long
/// enough (~30k interpreter steps) that the strided deadline check fires
/// many times, giving the jitter class a real outcome spread.
const CLOSED_SRC: &str = "
    int work(int n) {
        int i; int s;
        s = 0;
        for (i = 0; i < n; i = i + 1) { s = s + i * 3 - (s / 7); }
        return s;
    }
    int main() {
        int r;
        r = work(3000);
        return r % 101;
    }";

/// Independent units for the worker-panic class (one pool item each).
const POOL_SRCS: [&str; 4] = [
    "int f0(int x) { return x * 3 + 1; }",
    "int f1(int x) { int i; int s; s = 0; for (i = 0; i < x; i = i + 1) { s = s + i; } return s; }",
    "int f2(int x) { return x * x - 7; }",
    "int f3(int x) { int y; y = x + 11; return y * 2; }",
];

/// Run the closed workload under `budget`, rendering a stable outcome
/// label (volatile detail stripped: a non-timeout `Stuck` is just
/// "stuck", a timeout is "timed-out").
fn run_closed(unit: &CompiledUnit, symtab: &SymbolTable, budget: &RunBudget) -> String {
    let chi = ExtLib::demo(symtab.clone());
    let closed = Closed::new(unit.clight_sem(symtab), symtab.clone(), "main", chi);
    match run_closed_budgeted(&closed, budget) {
        Ok((code, _)) => format!("complete:{code}"),
        Err(stuck) => {
            if stuck.to_string().contains("deadline budget exceeded") {
                "timed-out".to_string()
            } else {
                "stuck".to_string()
            }
        }
    }
}

/// Sanitize a contained panic into its injection attribution — outcome
/// labels must carry no payload detail (no file:line in the report).
fn panic_label(msg: &str) -> String {
    if msg.contains("injected allocator exhaustion") {
        "contained-panic:alloc-exhaustion".to_string()
    } else {
        "contained-panic:other".to_string()
    }
}

/// A cheap stable digest of a compiled batch (worker-panic runs compare
/// the healed batch against the unfaulted one).
fn batch_digest(units: &[CompiledUnit]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for u in units {
        for b in format!("{:?}", u.asm).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One class's injection sweep: `per_class` outcomes, histogrammed.
struct ClassRow {
    class: FaultClass,
    outcomes: BTreeMap<String, u64>,
}

fn sweep(
    cli: &Cli,
    class: FaultClass,
    unit: &CompiledUnit,
    symtab: &SymbolTable,
) -> ClassRow {
    let sites: Vec<u64> = (1..=cli.per_class).collect();
    let labels: Vec<String> = match class {
        // Thread-local classes: arm inside the closure. A pool item runs
        // entirely on one worker, so the injection is confined to its own
        // run whatever the pool width.
        FaultClass::MemAlloc => par_map(cli.jobs, &sites, |_, &site| {
            FaultPlan { class, site }.arm();
            let budget = RunBudget::with_fuel(100_000).no_trace();
            let out = contain(|| run_closed(unit, symtab, &budget));
            mem::envfault::disarm();
            let _ = mem::envfault::take_fired();
            match out {
                Ok(label) => label,
                Err(msg) => panic_label(&msg),
            }
        }),
        FaultClass::SinkWrite => par_map(cli.jobs, &sites, |_, &site| {
            // Drain this worker's sink from any previous item first.
            let _ = compcerto_core::obs::take_trace();
            let _ = compcerto_core::envfault::take_sink_dropped();
            FaultPlan { class, site }.arm();
            let budget = RunBudget::with_fuel(100_000).json_trace();
            let run = run_closed(unit, symtab, &budget);
            compcerto_core::envfault::disarm();
            let _ = compcerto_core::obs::take_trace();
            let dropped = compcerto_core::envfault::take_sink_dropped();
            format!("dropped:{dropped}:{run}")
        }),
        FaultClass::DeadlineJitter => par_map(cli.jobs, &sites, |_, &site| {
            FaultPlan { class, site }.arm();
            let budget = RunBudget::with_fuel(100_000)
                .deadline(std::time::Duration::from_secs(3600))
                .no_trace();
            let run = run_closed(unit, symtab, &budget);
            compcerto_core::envfault::disarm();
            let _ = compcerto_core::envfault::take_deadline_fired();
            run
        }),
        // Process-global one-shot arm: runs serially by necessity. The
        // assertion is the whole point — the healed batch must be
        // byte-equal to the unfaulted one.
        FaultClass::WorkerPanic => {
            let baseline = match compile_all(&POOL_SRCS, CompilerOptions::default()) {
                Ok((units, _)) => batch_digest(&units),
                Err(e) => {
                    eprintln!("resilience_campaign: pool workload does not compile: {e:?}");
                    std::process::exit(2);
                }
            };
            sites
                .iter()
                .map(|&site| {
                    let item = (site as usize - 1) % POOL_SRCS.len();
                    compiler::envfault::arm_worker_panic(item);
                    let r = compile_all_jobs(&POOL_SRCS, CompilerOptions::default(), Jobs::N(4));
                    let consumed = !compiler::envfault::worker_panic_pending();
                    compiler::envfault::disarm_all();
                    match r {
                        Ok((units, _)) if batch_digest(&units) == baseline && consumed => {
                            format!("healed:item{item}")
                        }
                        Ok(_) => "divergent".to_string(),
                        Err(_) => "failed".to_string(),
                    }
                })
                .collect()
        }
    };
    let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
    for l in labels {
        *outcomes.entry(l).or_insert(0) += 1;
    }
    ClassRow { class, outcomes }
}

fn render(cli: &Cli, rows: &[ClassRow]) -> String {
    let injections = cli.per_class * FAULT_CLASSES.len() as u64;
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"compcerto-resil/1\",\n");
    j.push_str(&format!("  \"per_class\": {},\n", cli.per_class));
    j.push_str(&format!("  \"injections\": {injections},\n"));
    // By construction: reaching this line means every injection returned.
    j.push_str("  \"aborts\": 0,\n");
    j.push_str("  \"classes\": [\n");
    for (i, row) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"class\": \"{}\", \"injections\": {}, \"outcomes\": {{",
            row.class.name(),
            cli.per_class
        ));
        let members: Vec<String> = row
            .outcomes
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_str(k)))
            .collect();
        j.push_str(&members.join(", "));
        j.push_str(&format!(
            "}}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n");
    j.push_str("}\n");
    j
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: resilience_campaign [--jobs N|auto] [--per-class N] \
                 [--out PATH | --check PATH]"
            );
            return ExitCode::from(2);
        }
    };

    // The shared closed workload, compiled once with no faults armed.
    let (unit, symtab) = match compile_all(&[CLOSED_SRC], CompilerOptions::default()) {
        Ok((mut units, symtab)) => (units.remove(0), symtab),
        Err(e) => {
            eprintln!("resilience_campaign: workload does not compile: {e:?}");
            return ExitCode::from(2);
        }
    };

    let rows: Vec<ClassRow> = FAULT_CLASSES
        .iter()
        .map(|&class| {
            let row = sweep(&cli, class, &unit, &symtab);
            println!(
                "{:<16} {} injections, {} distinct outcomes",
                row.class.name(),
                cli.per_class,
                row.outcomes.len()
            );
            row
        })
        .collect();

    // The hard gate: no injection may surface as an unexplained failure.
    let mut bad = 0u64;
    for row in &rows {
        for (label, n) in &row.outcomes {
            let ok = label.starts_with("complete:")
                || label.starts_with("dropped:")
                || label.starts_with("healed:")
                || label == "timed-out"
                || label == "contained-panic:alloc-exhaustion";
            if !ok {
                eprintln!(
                    "unexpected outcome for {}: {label} x{n}",
                    row.class.name()
                );
                bad += n;
            }
        }
    }

    let doc = render(&cli, &rows);
    if let Some(baseline_path) = &cli.check {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read `{baseline_path}`: {e}");
                return ExitCode::from(2);
            }
        };
        if baseline != doc {
            eprintln!("check: `{baseline_path}` differs from the regenerated report");
            return ExitCode::from(1);
        }
        println!("check: resilience outcomes match `{baseline_path}`");
    }
    if let Some(out) = &cli.out {
        if let Err(e) = std::fs::write(out, &doc) {
            eprintln!("error: cannot write `{out}`: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {out}");
    }
    if bad > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
