//! Performance baseline for the throughput stack (EXPERIMENTS.md row B7).
//!
//! Times the hot paths this repo's parallel/dense/zero-copy machinery is
//! built around, serial (`--jobs 1`) against parallel (`--jobs auto`):
//!
//! - compiling a mixed corpus (fixed sources + seeded workload programs)
//!   through the full 19-pass pipeline,
//! - the same corpus under `CompilerOptions::validated()` (translation
//!   validators + lints on every pass boundary — the honest-gate workload),
//! - the fault-injection campaign (serial mutant generation, parallel
//!   probe fan-out),
//! - the dense dataflow solvers (liveness + maybe-uninit over every RTL
//!   function of the corpus), and
//! - one end-to-end Thm 3.8 simulation check.
//!
//! Every workload folds its observable output into an FNV-1a checksum; the
//! run **fails** if any serial/parallel checksum pair disagrees — timing
//! may vary, bytes may not. On a machine with ≥ 4 cores it additionally
//! requires a ≥ 2× campaign speedup; on narrower machines (CI containers)
//! the speedup is reported but not gated.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin perf_campaign -- \
//!     [--quick] [--jobs N|auto] [--out PATH]
//! ```
//!
//! Writes a machine-readable summary (schema `compcerto-perf/1`) to
//! `BENCH_PR3.json` (or `--out`); `ci.sh` runs `--quick` and validates the
//! schema and the checksum equalities.

use std::process::ExitCode;
use std::time::Instant;

use compcerto_validate::{live_out, maybe_uninit};
use compiler::{
    available_parallelism, c_query, check_thm38, compile_all_jobs, run_campaign, try_par_map,
    CampaignCfg, CompilerOptions, ExtLib, Jobs, WorkloadCfg, WorkloadGen,
};
use mem::Val;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a accumulator.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, b| (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

/// Median wall-clock milliseconds over `reps` runs of `f`, plus the result
/// of the last run (all runs are deterministic, so any result would do).
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    match out {
        Some(r) => (median, r),
        // Unreachable: reps.max(1) guarantees at least one run.
        None => unreachable!("timed ran zero reps"),
    }
}

/// Seed for the corpus' generated workload programs.
const CORPUS_SEED: u64 = 2024;

/// Build the benchmark corpus: the repo's fixed example programs plus
/// seeded random workloads (deterministic in `CORPUS_SEED`).
fn corpus(programs: usize) -> Vec<String> {
    let mut srcs: Vec<String> = vec![
        bench::FIG1_A.to_string(),
        bench::FIG1_B.to_string(),
        bench::FIXTURE.to_string(),
        compiler::faultinj::CAMPAIGN_SRC.to_string(),
        "
        int collatz_len(int n) {
            int len;
            len = 0;
            while (n > 1) {
                if (n - n / 2 * 2 == 1) { n = 3 * n + 1; } else { n = n / 2; }
                len = len + 1;
            }
            return len;
        }
        int entry(int n) { int l; l = collatz_len(n + 1); return l; }"
            .to_string(),
    ];
    let mut gen = WorkloadGen::new(CORPUS_SEED);
    let cfg = WorkloadCfg::default();
    for _ in 0..programs {
        let (src, _arity) = gen.gen_program(&cfg);
        srcs.push(src);
    }
    srcs
}

/// Compile the corpus with `jobs` workers — one link unit per program (the
/// generated programs all export `entry`, so they cannot share a symbol
/// table) — and checksum every generated Asm-O function dump, in corpus
/// order.
fn compile_checksum(srcs: &[String], opts: CompilerOptions, jobs: Jobs) -> Result<u64, String> {
    let dumps: Vec<Vec<String>> = try_par_map(jobs, srcs, |_, src| {
        let (units, _tbl) = compile_all_jobs(&[src.as_str()], opts, Jobs::N(1))
            .map_err(|e| format!("{e:?}"))?;
        Ok::<_, String>(
            units
                .iter()
                .flat_map(|u| u.asm.functions.iter().map(|f| f.dump()))
                .collect(),
        )
    })?;
    let mut h = FNV_OFFSET;
    for d in dumps.iter().flatten() {
        h = fnv1a(h, d.as_bytes());
    }
    Ok(h)
}

/// Run the fault-injection campaign with `jobs` workers and checksum its
/// rendered report.
fn campaign_checksum(per_class: usize, jobs: Jobs) -> Result<u64, String> {
    let cfg = CampaignCfg {
        per_class,
        jobs,
        ..CampaignCfg::default()
    };
    let report = run_campaign(&cfg)?;
    Ok(fnv1a(FNV_OFFSET, format!("{report}").as_bytes()))
}

/// Solve liveness + maybe-uninit over every RTL function of the corpus and
/// fold the result sizes into a checksum.
fn dataflow_checksum(srcs: &[String]) -> Result<u64, String> {
    let mut units = Vec::new();
    for src in srcs {
        let (us, _tbl) =
            compile_all_jobs(&[src.as_str()], CompilerOptions::default(), Jobs::N(1))
                .map_err(|e| format!("{e:?}"))?;
        units.extend(us);
    }
    let mut h = FNV_OFFSET;
    for u in &units {
        for f in &u.rtl_opt.functions {
            let lo = live_out(f);
            let entry_defs: std::collections::BTreeSet<u32> = f.params.iter().copied().collect();
            let mu = maybe_uninit(f, &entry_defs);
            for (n, s) in &lo {
                h = fnv1a(h, &n.to_le_bytes());
                h = fnv1a(h, &(s.0.len() as u64).to_le_bytes());
            }
            for (n, s) in &mu {
                h = fnv1a(h, &n.to_le_bytes());
                h = fnv1a(h, &(s.0.len() as u64).to_le_bytes());
            }
        }
    }
    Ok(h)
}

/// One end-to-end Thm 3.8 check on the mid-sized fixture.
fn thm38_once() -> Result<u64, String> {
    let (units, tbl) = compile_all_jobs(
        &[bench::FIXTURE],
        CompilerOptions::default(),
        Jobs::N(1),
    )
    .map_err(|e| format!("{e:?}"))?;
    let lib = ExtLib::demo(tbl.clone());
    let q = c_query(&tbl, &units[0], "churn", vec![Val::Int(3), Val::Int(64)]);
    let report = check_thm38(&units[0], &tbl, &lib, &q).map_err(|e| format!("{e}"))?;
    Ok(fnv1a(
        FNV_OFFSET,
        format!("{}:{}", report.target_steps, report.external_calls).as_bytes(),
    ))
}

struct Cli {
    quick: bool,
    jobs: Jobs,
    out: String,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        jobs: Jobs::Auto,
        out: "BENCH_PR3.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = Jobs::parse(&v)?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a value")?.to_string(),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

fn run(cli: &Cli) -> Result<(String, bool), String> {
    let cores = available_parallelism();
    let jobs_n = cli.jobs.resolve();
    let reps = if cli.quick { 2 } else { 5 };
    let programs = if cli.quick { 4 } else { 12 };
    let per_class = if cli.quick { 6 } else { 25 };
    let srcs = corpus(programs);

    println!("perf_campaign: {} corpus programs, jobs={jobs_n} (of {cores} cores), median of {reps}", srcs.len());
    println!("{:-<72}", "");
    println!(
        "{:<28}{:>12}{:>12}{:>10}  {}",
        "workload", "serial ms", "par ms", "speedup", "checksums"
    );
    println!("{:-<72}", "");

    let mut rows: Vec<(String, f64, f64, u64, u64)> = Vec::new();
    let mut push_row = |label: &str, s_ms: f64, p_ms: f64, s_ck: u64, p_ck: u64| {
        let ok = if s_ck == p_ck { "match" } else { "MISMATCH" };
        println!(
            "{label:<28}{s_ms:>12.2}{p_ms:>12.2}{:>10.2}  {ok}",
            s_ms / p_ms.max(1e-9)
        );
        rows.push((label.to_string(), s_ms, p_ms, s_ck, p_ck));
    };

    // 1. Full pipeline over the corpus.
    let (s_ms, s_ck) =
        timed(reps, || compile_checksum(&srcs, CompilerOptions::default(), Jobs::N(1)));
    let (p_ms, p_ck) = timed(reps, || {
        compile_checksum(&srcs, CompilerOptions::default(), cli.jobs)
    });
    push_row("compile corpus", s_ms, p_ms, s_ck?, p_ck?);

    // 2. Pipeline + static validation layer (the honest-gate workload).
    let (s_ms, s_ck) = timed(reps, || {
        compile_checksum(&srcs, CompilerOptions::validated(), Jobs::N(1))
    });
    let (p_ms, p_ck) = timed(reps, || {
        compile_checksum(&srcs, CompilerOptions::validated(), cli.jobs)
    });
    push_row("compile+validate corpus", s_ms, p_ms, s_ck?, p_ck?);

    // 3. Fault-injection campaign.
    let (s_ms, s_ck) = timed(reps, || campaign_checksum(per_class, Jobs::N(1)));
    let (p_ms, p_ck) = timed(reps, || campaign_checksum(per_class, cli.jobs));
    push_row("faultinj campaign", s_ms, p_ms, s_ck?, p_ck?);

    // 4. Dense dataflow solvers (single-threaded; serial == parallel).
    let (d_ms, d_ck) = timed(reps, || dataflow_checksum(&srcs));
    let d_ck = d_ck?;
    push_row("dataflow (live+uninit)", d_ms, d_ms, d_ck, d_ck);

    // 5. One Thm 3.8 end-to-end check (single-threaded).
    let (t_ms, t_ck) = timed(reps, || thm38_once());
    let t_ck = t_ck?;
    push_row("thm38 fixture check", t_ms, t_ms, t_ck, t_ck);

    println!("{:-<72}", "");

    let checksums_match = rows.iter().all(|(_, _, _, s, p)| s == p);
    let campaign_speedup = rows[2].1 / rows[2].2.max(1e-9);
    let wide_enough = cores >= 4 && jobs_n >= 4;
    let speedup_gated = wide_enough && !cli.quick;
    let speedup_ok = !speedup_gated || campaign_speedup >= 2.0;

    // Hand-rolled JSON: no serde in the workspace (offline builds).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"compcerto-perf/1\",\n");
    j.push_str(&format!("  \"quick\": {},\n", cli.quick));
    j.push_str(&format!("  \"jobs\": {jobs_n},\n"));
    j.push_str(&format!("  \"cores\": {cores},\n"));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str(&format!("  \"corpus_programs\": {},\n", srcs.len()));
    j.push_str(&format!("  \"campaign_per_class\": {per_class},\n"));
    j.push_str("  \"workloads\": [\n");
    for (i, (label, s_ms, p_ms, s_ck, p_ck)) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{label}\", \"serial_ms\": {s_ms:.3}, \"parallel_ms\": {p_ms:.3}, \
             \"speedup\": {:.3}, \"checksum_serial\": \"{s_ck:016x}\", \
             \"checksum_parallel\": \"{p_ck:016x}\"}}{}\n",
            s_ms / p_ms.max(1e-9),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!("  \"campaign_speedup\": {campaign_speedup:.3},\n"));
    j.push_str(&format!("  \"speedup_gated\": {speedup_gated},\n"));
    j.push_str(&format!("  \"checksums_match\": {checksums_match}\n"));
    j.push_str("}\n");

    if !checksums_match {
        return Err("serial/parallel checksum mismatch: parallelism changed output bytes".into());
    }
    if !speedup_ok {
        return Err(format!(
            "campaign speedup {campaign_speedup:.2}x < 2.0x with jobs={jobs_n} on {cores} cores"
        ));
    }
    println!(
        "determinism: all {} serial/parallel checksum pairs match", rows.len()
    );
    if speedup_gated {
        println!("speedup gate: campaign {campaign_speedup:.2}x >= 2.0x ✓");
    } else {
        println!(
            "speedup gate: skipped (cores={cores}, jobs={jobs_n}, quick={}); campaign {campaign_speedup:.2}x",
            cli.quick
        );
    }
    Ok((j, checksums_match))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: perf_campaign [--quick] [--jobs N|auto] [--out PATH]");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok((json, _)) => {
            if let Err(e) = std::fs::write(&cli.out, json) {
                eprintln!("error: cannot write `{}`: {e}", cli.out);
                return ExitCode::from(1);
            }
            println!("wrote {}", cli.out);
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
