//! The separate-compilation experiment: Corollary 3.9 —
//! `Clight(M1) ⊕ … ⊕ Clight(Mn) ≤_{C↠C} Asm(M.s)` — and its Thm 3.5
//! ingredient, checked over multi-unit workloads with cross-unit calls.

use compcerto_core::cc::Ca;
use compcerto_core::conv::SimConv;
use compiler::{c_query, check_cor39, check_thm35, compile_all, CompilerOptions, ExtLib};
use mem::Val;

/// Fixture failures are configuration bugs, not runtime conditions — exit
/// with the usage code instead of unwinding (the bins are unwrap-free).
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("cor39_separate: {msg}");
    std::process::exit(2)
}

/// Generate a two-unit program pair where unit 0 calls into unit 1 `depth`
/// levels deep.
fn make_pair(depth: usize) -> (String, String) {
    let mut u1 = String::from("extern int leaf(int);\n");
    let mut prev = "leaf".to_string();
    for i in 0..depth {
        u1.push_str(&format!(
            "int lvl{i}(int x) {{ int r; r = {prev}(x + {i}); return r + 1; }}\n"
        ));
        prev = format!("lvl{i}");
    }
    u1.push_str(&format!(
        "int top(int x) {{ int r; r = {prev}(x); return r * 2; }}\n"
    ));
    let u2 = "int leaf(int x) { return x * x; }".to_string();
    (u1, u2)
}

fn main() {
    println!("Cor 3.9 separate-compilation sweep (cf. paper §3.4)");
    println!("{:-<66}", "");
    println!(
        "{:<12}{:>10}{:>12}{:>14}{:>12}",
        "call depth", "queries", "Cor 3.9", "Thm 3.5", "crossings"
    );
    println!("{:-<66}", "");
    for depth in [0, 2, 5, 9] {
        let (src1, src2) = make_pair(depth);
        let (units, tbl) = compile_all(&[&src1, &src2], CompilerOptions::default())
            .unwrap_or_else(|e| die(format!("depth {depth}: pair does not compile: {e:?}")));
        let lib = ExtLib::demo(tbl.clone());
        let mut crossings = 0usize;
        let queries = 4;
        for x in [0, 3, -7, 11] {
            let q = c_query(&tbl, &units[0], "top", vec![Val::Int(x)]);
            let report = check_cor39(&units[0], &units[1], &tbl, &lib, &q)
                .unwrap_or_else(|e| panic!("depth {depth}, top({x}): {e}"));
            crossings += report.external_calls;
            let (_, qa) = Ca::new(tbl.len() as u32)
                .transport_query(&q)
                .unwrap_or_else(|| die(format!("depth {depth}: C query does not transport")));
            check_thm35(&units[0].asm, &units[1].asm, &tbl, &lib, &qa)
                .unwrap_or_else(|e| panic!("depth {depth} thm35: {e}"));
        }
        println!(
            "{depth:<12}{queries:>10}{:>12}{:>14}{crossings:>12}",
            "✓", "✓"
        );
    }
    println!("{:-<66}", "");
    println!("Cor 3.9: the ⊕-composition of separately-compiled sources is simulated");
    println!("by the syntactically linked assembly under the uniform convention C;");
    println!("Thm 3.5: semantic composition of Asm components = syntactic linking.");
    println!("(crossings = environment-visible boundaries; cross-unit calls resolve");
    println!("internally in both the ⊕-composite and the linked program.)");
}
