//! Regenerate the content of paper Fig. 5: the horizontal-composition rules,
//! exercised by a mutual-recursion workload whose rule firings are counted
//! by instrumenting the composite LTS.

use bench::{FIG1_A, FIG1_B};
use compcerto_core::hcomp::HComp;
use compcerto_core::lts::{Lts, Step};
use compiler::{c_query, compile_all, CompilerOptions};
use mem::Val;

/// Fixture failures are configuration bugs, not runtime conditions — exit
/// with the usage code instead of unwinding (the bins are unwrap-free).
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("fig5_hcomp_rules: {msg}");
    std::process::exit(2)
}

fn main() {
    println!("Fig. 5: horizontal composition rules (cf. paper Fig. 5)");
    let mutual = "
        extern int is_odd(int);
        int is_even(int n) { int r; if (n == 0) { return 1; } r = is_odd(n - 1); return r; }";
    let mutual2 = "
        extern int is_even(int);
        extern int probe(int);
        int is_odd(int n) { int r; int p; if (n == 0) { return 0; } p = probe(n); r = is_even(n - 1); return r; }";
    let (units, tbl) = compile_all(&[mutual, mutual2], CompilerOptions::default())
        .unwrap_or_else(|e| die(format!("mutual-recursion pair does not compile: {e:?}")));
    let comp = HComp::new(
        units[0].clight_sem(&tbl).with_label("even"),
        units[1].clight_sem(&tbl).with_label("odd"),
    );

    for n in [0, 7, 12] {
        let q = c_query(&tbl, &units[0], "is_even", vec![Val::Int(n)]);
        // Drive manually, counting rule firings by activation-depth changes.
        let mut s = comp
            .initial(&q)
            .unwrap_or_else(|e| die(format!("is_even({n}) query refused: {e}")));
        let (mut pushes, mut pops, mut escapes, mut max_depth) = (0u32, 0u32, 0u32, 0usize);
        let mut last_depth = s.depth();
        let result = loop {
            match comp.step(&s) {
                Step::Internal(next, _) => {
                    let d = next.depth();
                    if d > last_depth {
                        pushes += 1; // rule push
                    }
                    if d < last_depth {
                        pops += 1; // rule pop
                    }
                    max_depth = max_depth.max(d);
                    last_depth = d;
                    s = next;
                }
                Step::External(m) => {
                    // rule x∘ then x•: probe escapes to the environment.
                    escapes += 1;
                    let ans = compcerto_core::iface::CReply {
                        retval: m.args[0],
                        mem: m.mem.clone(),
                    };
                    s = comp
                        .resume(&s, ans)
                        .unwrap_or_else(|e| die(format!("x• does not resume: {e}")));
                }
                Step::Final(r) => break r, // rule i•
                Step::Stuck(x) => panic!("stuck: {x}"),
            }
        };
        println!(
            "is_even({n}) = {:<8} push: {pushes:>3}  pop: {pops:>3}  x∘/x•: {escapes:>3}  max depth: {max_depth:>3}",
            result.retval.to_string()
        );
    }
    println!();
    println!("rules exercised: i∘ (dispatch), run (internal), push/pop (mutual");
    println!("recursion through the activation stack), x∘/x• (environment escape),");
    println!("i• (final answer) — Def. 3.2's (S1+S2)* stack in action.");

    // Fig. 1's two units for flavor: sqr ⊕ mult.
    let (units, tbl) = compile_all(&[FIG1_B, FIG1_A], CompilerOptions::default())
        .unwrap_or_else(|e| die(format!("Fig. 1 units do not compile: {e:?}")));
    let comp = HComp::new(units[0].clight_sem(&tbl), units[1].clight_sem(&tbl));
    let q = c_query(&tbl, &units[0], "sqr", vec![Val::Int(3)]);
    let r = compcerto_core::lts::run(&comp, &q, &mut |_m| None, 10_000).expect_complete();
    println!("\npaper Eqn. (2): sqr(3) · mult(3,3) · 9 · {}", r.retval);
}
