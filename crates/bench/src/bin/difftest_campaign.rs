//! Differential-testing campaign (EXPERIMENTS.md row B8): run the seeded
//! generator → cross-stage oracle over a block of seeds, shrink any finding
//! to a minimal reproducer, and re-run the fault-injection mutation classes
//! against generated programs to measure escape rates on random inputs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin difftest_campaign -- \
//!     [--seeds N] [--seed-base N] [--jobs N|auto] [--quick] \
//!     [--fuel N] [--queries N] [--no-reduce] \
//!     [--escape-seeds N] [--per-class N] [--out PATH]
//! ```
//!
//! Writes a machine-readable summary (schema `compcerto-difftest/1`) to
//! `DIFFTEST.json` (or `--out`). The report is **byte-identical for a given
//! seed block under any `--jobs` setting**: every per-seed verdict is a pure
//! function of `(seed, cfg)`, the fan-out uses the order-preserving worker
//! pool ([`compiler::par_map`]), and the JSON deliberately records no
//! machine facts (no core counts, no timings). `ci.sh` runs `--quick` and
//! fails on any finding; a non-quick sweep exits 1 on findings too, with
//! each finding's shrunk reproducer inlined in the JSON.

use std::collections::BTreeMap;
use std::process::ExitCode;

use compcerto_gen::Coverage;
use compiler::{
    faultinj_escape_rates, par_map, run_seed_obs, Counters, DifftestCfg, Jobs, SeedObs,
    SeedOutcome, SeedReport, STAGES,
};

struct Cli {
    seeds: u64,
    seed_base: u64,
    jobs: Jobs,
    quick: bool,
    fuel: Option<u64>,
    queries: Option<usize>,
    no_reduce: bool,
    escape_seeds: u64,
    per_class: usize,
    out: String,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        seeds: 50,
        seed_base: 0,
        jobs: Jobs::Auto,
        quick: false,
        fuel: None,
        queries: None,
        no_reduce: false,
        escape_seeds: 2,
        per_class: 3,
        out: "DIFFTEST.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seeds" => cli.seeds = take("--seeds")?,
            "--seed-base" => cli.seed_base = take("--seed-base")?,
            "--fuel" => cli.fuel = Some(take("--fuel")?),
            "--queries" => cli.queries = Some(take("--queries")? as usize),
            "--escape-seeds" => cli.escape_seeds = take("--escape-seeds")?,
            "--per-class" => cli.per_class = take("--per-class")? as usize,
            "--quick" => cli.quick = true,
            "--no-reduce" => cli.no_reduce = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = Jobs::parse(&v)?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a value")?.to_string(),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cli.quick {
        cli.seeds = cli.seeds.min(12);
        cli.escape_seeds = cli.escape_seeds.min(1);
        cli.per_class = cli.per_class.min(2);
    }
    Ok(cli)
}

/// Minimal JSON string escaping (no serde in the offline workspace).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn run(cli: &Cli) -> Result<(String, usize), String> {
    let mut cfg = if cli.quick {
        DifftestCfg::quick()
    } else {
        DifftestCfg::default()
    };
    if let Some(fuel) = cli.fuel {
        cfg.fuel = fuel;
    }
    if let Some(q) = cli.queries {
        cfg.queries = q;
    }
    cfg.reduce = !cli.no_reduce;

    let seeds: Vec<u64> = (cli.seed_base..cli.seed_base + cli.seeds).collect();
    println!(
        "difftest_campaign: seeds {}..{} quick={} fuel={} queries={}",
        cli.seed_base,
        cli.seed_base + cli.seeds,
        cli.quick,
        cfg.fuel,
        cfg.queries
    );

    // Phase 1 — the oracle sweep (order-preserving fan-out: the report is
    // the same for every `--jobs` setting). Each seed also contributes its
    // observability bundle: deterministic counters, grammar coverage and
    // the stage pairs actually compared (DESIGN.md §10).
    let reports: Vec<(SeedReport, SeedObs)> =
        par_map(cli.jobs, &seeds, |_, &s| run_seed_obs(s, &cfg));

    // Fold the per-seed observability in seed order (commutative sums and
    // set unions: jobs-invariant by construction).
    let mut obs_counters = Counters::default();
    let mut obs_coverage = Coverage::default();
    let mut stages_compared: std::collections::BTreeSet<&'static str> =
        std::collections::BTreeSet::new();
    for (_, o) in &reports {
        obs_counters.add(&o.counters);
        obs_coverage.merge(&o.coverage);
        stages_compared.extend(o.stages_compared.iter().copied());
    }
    let reports: Vec<SeedReport> = reports.into_iter().map(|(r, _)| r).collect();

    let mut agree = 0usize;
    let mut skipped = 0usize;
    let mut findings: Vec<&SeedReport> = Vec::new();
    let mut queries_run = 0usize;
    let mut queries_skipped = 0usize;
    for r in &reports {
        match &r.outcome {
            SeedOutcome::Agree {
                queries_run: qr,
                queries_skipped: qs,
            } => {
                agree += 1;
                queries_run += qr;
                queries_skipped += qs;
            }
            SeedOutcome::Skipped(_) => skipped += 1,
            SeedOutcome::Finding { kind, detail } => {
                println!("FINDING seed={} kind={kind}: {detail}", r.seed);
                if let Some(rep) = &r.reproducer {
                    println!(
                        "  reduced to {} statements ({} checks, {} rounds):",
                        rep.stmts, rep.stats.checks, rep.stats.rounds
                    );
                    for line in rep.source.lines() {
                        println!("  | {line}");
                    }
                }
                findings.push(r);
            }
        }
    }
    println!(
        "oracle: {agree} agree, {skipped} skipped, {} findings \
         ({queries_run} queries compared, {queries_skipped} budget-skipped)",
        findings.len()
    );

    // Phase 2 — fault-injection escape rates under generated programs.
    let esc_seeds: Vec<u64> = seeds.iter().copied().take(cli.escape_seeds as usize).collect();
    let esc_results = par_map(cli.jobs, &esc_seeds, |_, &s| {
        (s, faultinj_escape_rates(s, &cfg, cli.per_class))
    });
    let mut esc_probed = 0usize;
    let mut esc_skipped = 0usize;
    // class name -> (generated, detected), in MUTATION_CLASSES order.
    let mut matrix: BTreeMap<usize, (&'static str, usize, usize)> = BTreeMap::new();
    for (s, res) in &esc_results {
        match res {
            Ok(rows) => {
                esc_probed += 1;
                for (i, row) in rows.iter().enumerate() {
                    let e = matrix.entry(i).or_insert((row.class.name(), 0, 0));
                    e.1 += row.generated;
                    e.2 += row.detected;
                }
            }
            Err(e) => {
                esc_skipped += 1;
                println!("escape matrix: seed {s} skipped ({e})");
            }
        }
    }
    if esc_probed > 0 {
        println!("escape rates over {esc_probed} generated programs ({} mutants/class/program):", cli.per_class);
        println!("{:<26}{:>10}{:>10}{:>9}", "class", "mutants", "detected", "escaped");
        for (_, (name, generated, detected)) in &matrix {
            println!(
                "{name:<26}{generated:>10}{detected:>10}{:>9}",
                generated - detected
            );
        }
    }

    // The JSON summary: deterministic for the seed block, jobs-independent.
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"compcerto-difftest/1\",\n");
    j.push_str(&format!("  \"quick\": {},\n", cli.quick));
    j.push_str(&format!("  \"seed_base\": {},\n", cli.seed_base));
    j.push_str(&format!("  \"seeds\": {},\n", cli.seeds));
    j.push_str(&format!("  \"fuel\": {},\n", cfg.fuel));
    j.push_str(&format!("  \"queries_per_seed\": {},\n", cfg.queries));
    j.push_str(&format!("  \"agree\": {agree},\n"));
    j.push_str(&format!("  \"skipped\": {skipped},\n"));
    j.push_str(&format!("  \"queries_compared\": {queries_run},\n"));
    j.push_str(&format!("  \"queries_budget_skipped\": {queries_skipped},\n"));
    j.push_str(&format!("  \"findings\": {},\n", findings.len()));
    j.push_str("  \"finding_rows\": [\n");
    for (i, r) in findings.iter().enumerate() {
        let SeedOutcome::Finding { kind, detail } = &r.outcome else {
            continue;
        };
        let (stmts, source) = match &r.reproducer {
            Some(rep) => (rep.stmts as i64, json_str(&rep.source)),
            None => (-1, String::new()),
        };
        j.push_str(&format!(
            "    {{\"seed\": {}, \"kind\": \"{}\", \"detail\": \"{}\", \
             \"reduced_stmts\": {stmts}, \"reproducer\": \"{source}\"}}{}\n",
            r.seed,
            json_str(&format!("{kind}")),
            json_str(detail),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");

    // Observability section (DESIGN.md §10): deterministic counters summed
    // over the seed block, grammar-constructor coverage of the generated
    // programs, and which of the six stage pairs the block exercised. No
    // timings here — wall-clock never enters a committed report.
    let non_baseline = STAGES.len() - 1;
    j.push_str("  \"obs\": {\n");
    j.push_str(&format!(
        "    \"counters\": {},\n",
        obs_counters.to_json_object(4)
    ));
    j.push_str("    \"gen_coverage\": {\n");
    j.push_str(&format!(
        "      \"complete\": {},\n",
        obs_coverage.complete()
    ));
    let missing = obs_coverage.missing();
    j.push_str(&format!(
        "      \"missing\": [{}],\n",
        missing
            .iter()
            .map(|m| format!("\"{}\"", json_str(m)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str("      \"counters\": {\n");
    let entries = obs_coverage.counter_entries();
    for (i, (k, v)) in entries.iter().enumerate() {
        j.push_str(&format!(
            "        \"{k}\": {v}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    j.push_str("      }\n");
    j.push_str("    },\n");
    j.push_str(&format!(
        "    \"stages_compared\": [{}],\n",
        stages_compared
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!(
        "    \"stage_pairs\": \"{}/{}\"\n",
        stages_compared.len(),
        non_baseline
    ));
    j.push_str("  },\n");
    j.push_str("  \"escape_matrix\": {\n");
    j.push_str(&format!("    \"seeds_probed\": {esc_probed},\n"));
    j.push_str(&format!("    \"seeds_skipped\": {esc_skipped},\n"));
    j.push_str(&format!("    \"per_class\": {},\n", cli.per_class));
    j.push_str("    \"rows\": [\n");
    let nrows = matrix.len();
    for (i, (_, (name, generated, detected))) in matrix.iter().enumerate() {
        j.push_str(&format!(
            "      {{\"class\": \"{name}\", \"generated\": {generated}, \
             \"detected\": {detected}, \"escaped\": {}}}{}\n",
            generated - detected,
            if i + 1 < nrows { "," } else { "" }
        ));
    }
    j.push_str("    ]\n");
    j.push_str("  }\n");
    j.push_str("}\n");
    Ok((j, findings.len()))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: difftest_campaign [--seeds N] [--seed-base N] [--jobs N|auto] \
                 [--quick] [--fuel N] [--queries N] [--no-reduce] \
                 [--escape-seeds N] [--per-class N] [--out PATH]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok((json, nfindings)) => {
            if let Err(e) = std::fs::write(&cli.out, json) {
                eprintln!("error: cannot write `{}`: {e}", cli.out);
                return ExitCode::from(1);
            }
            println!("wrote {}", cli.out);
            if nfindings > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
