//! Differential-testing campaign (EXPERIMENTS.md row B8): run the seeded
//! generator → cross-stage oracle over a block of seeds, shrink any finding
//! to a minimal reproducer, and re-run the fault-injection mutation classes
//! against generated programs to measure escape rates on random inputs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin difftest_campaign -- \
//!     [--seeds N] [--seed-base N] [--jobs N|auto] [--quick] \
//!     [--fuel N] [--queries N] [--no-reduce] \
//!     [--escape-seeds N] [--per-class N] [--out PATH] \
//!     [--block N] [--ckpt PATH] [--resume] [--max-blocks N] \
//!     [--check PATH]
//! ```
//!
//! Writes a machine-readable summary (schema `compcerto-difftest/1`) to
//! `DIFFTEST.json` (or `--out`). With `--check PATH` the campaign runs,
//! renders the report and byte-compares it to the committed baseline
//! instead of writing: a mismatch is a regression (exit 1). Before any
//! seed runs, the baseline's own configuration header (`seeds`,
//! `seed_base`, `quick`, `fuel`, `queries_per_seed`) is compared to this
//! invocation's — a mismatch (e.g. checking a 500-seed baseline with
//! `--seeds 50`) is a **usage error (exit 2)** that names the exact
//! regeneration command, never a silent half-comparison. The report is **byte-identical for a given
//! seed block under any `--jobs` setting**: every per-seed verdict is a pure
//! function of `(seed, cfg)`, the fan-out uses the order-preserving worker
//! pool ([`compiler::par_map`]), and the JSON deliberately records no
//! machine facts (no core counts, no timings). `ci.sh` runs `--quick` and
//! fails on any finding; a non-quick sweep exits 1 on findings too, with
//! each finding's shrunk reproducer inlined in the JSON.
//!
//! # Checkpoint/resume (resilience layer, DESIGN.md §11)
//!
//! Seeds are processed in blocks of `--block` (default 16); after each
//! block a `compcerto-ckpt/1` checkpoint is written atomically next to the
//! report (`--ckpt`, default `<out>.ckpt`). A killed campaign restarted
//! with `--resume` continues from the last completed block and produces a
//! final report **byte-identical** to the uninterrupted run — per-seed
//! results are pure and the aggregation is a commutative fold in seed
//! order, so where the process died is unobservable in the output. The
//! checkpoint embeds a fingerprint of every result-affecting flag; resuming
//! under different flags is a usage error. `--max-blocks N` stops after N
//! blocks (leaving the checkpoint behind) — the hook the CI kill-and-resume
//! smoke uses to simulate a mid-campaign kill at a block boundary.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::process::ExitCode;

use bench::ckpt::{self, json_str};
use bench::json::Json;
use compcerto_gen::{EXPR_CONSTRUCTORS, STMT_CONSTRUCTORS};
use compiler::{
    faultinj_escape_rates, par_map, run_seed_obs, DifftestCfg, Jobs, SeedOutcome, SeedReport,
    STAGES,
};

struct Cli {
    seeds: u64,
    seed_base: u64,
    jobs: Jobs,
    quick: bool,
    fuel: Option<u64>,
    queries: Option<usize>,
    no_reduce: bool,
    escape_seeds: u64,
    per_class: usize,
    out: String,
    block: u64,
    ckpt: Option<String>,
    resume: bool,
    max_blocks: Option<u64>,
    check: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        seeds: 50,
        seed_base: 0,
        jobs: Jobs::Auto,
        quick: false,
        fuel: None,
        queries: None,
        no_reduce: false,
        escape_seeds: 2,
        per_class: 3,
        out: "DIFFTEST.json".to_string(),
        block: 16,
        ckpt: None,
        resume: false,
        max_blocks: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seeds" => cli.seeds = take("--seeds")?,
            "--seed-base" => cli.seed_base = take("--seed-base")?,
            "--fuel" => cli.fuel = Some(take("--fuel")?),
            "--queries" => cli.queries = Some(take("--queries")? as usize),
            "--escape-seeds" => cli.escape_seeds = take("--escape-seeds")?,
            "--per-class" => cli.per_class = take("--per-class")? as usize,
            "--block" => cli.block = take("--block")?.max(1),
            "--max-blocks" => cli.max_blocks = Some(take("--max-blocks")?),
            "--quick" => cli.quick = true,
            "--no-reduce" => cli.no_reduce = true,
            "--resume" => cli.resume = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = Jobs::parse(&v)?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a value")?.to_string(),
            "--ckpt" => cli.ckpt = Some(args.next().ok_or("--ckpt needs a value")?.to_string()),
            "--check" => cli.check = Some(args.next().ok_or("--check needs a value")?.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cli.quick {
        cli.seeds = cli.seeds.min(12);
        cli.escape_seeds = cli.escape_seeds.min(1);
        cli.per_class = cli.per_class.min(2);
    }
    Ok(cli)
}

/// One shrunk finding, owned (checkpoints round-trip through JSON).
struct FindingRow {
    seed: u64,
    kind: String,
    detail: String,
    stmts: i64,
    source: String,
}

/// The campaign's phase-1 aggregate: everything the final report needs,
/// with owned keys so a checkpoint can be reloaded. The fold is
/// commutative per seed, which is what makes block-wise accumulation
/// (and therefore resume) byte-equivalent to the one-shot run.
struct Agg {
    completed: u64,
    agree: usize,
    skipped: usize,
    queries_run: usize,
    queries_skipped: usize,
    counters: BTreeMap<String, u64>,
    cov_stmts: BTreeMap<String, u64>,
    cov_exprs: BTreeMap<String, u64>,
    stages: BTreeSet<String>,
    findings: Vec<FindingRow>,
}

impl Agg {
    fn new() -> Agg {
        Agg {
            completed: 0,
            agree: 0,
            skipped: 0,
            queries_run: 0,
            queries_skipped: 0,
            counters: BTreeMap::new(),
            // Pre-populate like `Coverage::default()`: the key set is
            // stable whether or not a constructor was ever reached.
            cov_stmts: STMT_CONSTRUCTORS
                .iter()
                .map(|n| ((*n).to_string(), 0))
                .collect(),
            cov_exprs: EXPR_CONSTRUCTORS
                .iter()
                .map(|n| ((*n).to_string(), 0))
                .collect(),
            stages: BTreeSet::new(),
            findings: Vec::new(),
        }
    }

    /// Fold one seed's report + observability bundle (printing findings as
    /// they are folded, exactly like the pre-checkpoint campaign did).
    fn fold(&mut self, r: &SeedReport, o: &compiler::SeedObs) {
        for (k, v) in &o.counters.0 {
            *self.counters.entry((*k).to_string()).or_insert(0) += v;
        }
        for (k, v) in &o.coverage.stmts {
            *self.cov_stmts.entry((*k).to_string()).or_insert(0) += v;
        }
        for (k, v) in &o.coverage.exprs {
            *self.cov_exprs.entry((*k).to_string()).or_insert(0) += v;
        }
        self.stages
            .extend(o.stages_compared.iter().map(|s| (*s).to_string()));
        match &r.outcome {
            SeedOutcome::Agree {
                queries_run: qr,
                queries_skipped: qs,
            } => {
                self.agree += 1;
                self.queries_run += qr;
                self.queries_skipped += qs;
            }
            SeedOutcome::Skipped(_) => self.skipped += 1,
            SeedOutcome::Finding { kind, detail } => {
                println!("FINDING seed={} kind={kind}: {detail}", r.seed);
                let (stmts, source) = match &r.reproducer {
                    Some(rep) => {
                        println!(
                            "  reduced to {} statements ({} checks, {} rounds):",
                            rep.stmts, rep.stats.checks, rep.stats.rounds
                        );
                        for line in rep.source.lines() {
                            println!("  | {line}");
                        }
                        (rep.stmts as i64, rep.source.clone())
                    }
                    None => (-1, String::new()),
                };
                self.findings.push(FindingRow {
                    seed: r.seed,
                    kind: format!("{kind}"),
                    detail: detail.clone(),
                    stmts,
                    source,
                });
            }
        }
    }

    /// Serialize as a `compcerto-ckpt/1` checkpoint.
    fn to_ckpt_json(&self, fingerprint: &str) -> String {
        let mut j = String::new();
        j.push_str("{\n");
        let _ = writeln!(j, "  \"schema\": \"{}\",", ckpt::CKPT_SCHEMA);
        j.push_str("  \"bin\": \"difftest_campaign\",\n");
        let _ = writeln!(j, "  \"cfg\": \"{}\",", json_str(fingerprint));
        let _ = writeln!(j, "  \"completed\": {},", self.completed);
        let _ = writeln!(j, "  \"agree\": {},", self.agree);
        let _ = writeln!(j, "  \"skipped\": {},", self.skipped);
        let _ = writeln!(j, "  \"queries_run\": {},", self.queries_run);
        let _ = writeln!(j, "  \"queries_skipped\": {},", self.queries_skipped);
        let _ = writeln!(j, "  \"counters\": {},", ckpt::u64_map_json(&self.counters));
        let _ = writeln!(j, "  \"cov_stmts\": {},", ckpt::u64_map_json(&self.cov_stmts));
        let _ = writeln!(j, "  \"cov_exprs\": {},", ckpt::u64_map_json(&self.cov_exprs));
        let stages: Vec<String> = self.stages.iter().map(|s| format!("\"{s}\"")).collect();
        let _ = writeln!(j, "  \"stages\": [{}],", stages.join(", "));
        j.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = writeln!(
                j,
                "    {{\"seed\": {}, \"kind\": \"{}\", \"detail\": \"{}\", \
                 \"stmts\": {}, \"source\": \"{}\"}}{}",
                f.seed,
                json_str(&f.kind),
                json_str(&f.detail),
                f.stmts,
                json_str(&f.source),
                if i + 1 < self.findings.len() { "," } else { "" }
            );
        }
        j.push_str("  ]\n");
        j.push_str("}\n");
        j
    }

    /// Reload from a validated checkpoint document.
    fn from_ckpt(j: &Json) -> Result<Agg, String> {
        let u = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint: missing `{key}`"))
        };
        let mut agg = Agg::new();
        agg.completed = u("completed")?;
        agg.agree = u("agree")? as usize;
        agg.skipped = u("skipped")? as usize;
        agg.queries_run = u("queries_run")? as usize;
        agg.queries_skipped = u("queries_skipped")? as usize;
        agg.counters = ckpt::u64_map(
            j.get("counters").ok_or("checkpoint: missing `counters`")?,
            "counters",
        )?;
        agg.cov_stmts = ckpt::u64_map(
            j.get("cov_stmts").ok_or("checkpoint: missing `cov_stmts`")?,
            "cov_stmts",
        )?;
        agg.cov_exprs = ckpt::u64_map(
            j.get("cov_exprs").ok_or("checkpoint: missing `cov_exprs`")?,
            "cov_exprs",
        )?;
        agg.stages = j
            .get("stages")
            .and_then(Json::as_arr)
            .ok_or("checkpoint: missing `stages`")?
            .iter()
            .filter_map(|s| s.as_str().map(str::to_string))
            .collect();
        for f in j
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("checkpoint: missing `findings`")?
        {
            agg.findings.push(FindingRow {
                seed: f
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("checkpoint: finding without `seed`")?,
                kind: f
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                detail: f
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                stmts: f.get("stmts").and_then(Json::as_i64).unwrap_or(-1),
                source: f
                    .get("source")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        Ok(agg)
    }

    // --- Coverage helpers mirroring `compcerto_gen::Coverage` over owned
    // --- keys (same key sets, same orders, same renderings).

    fn cov_missing(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .cov_stmts
            .iter()
            .filter(|(_, v)| **v == 0)
            .map(|(k, _)| format!("stmt:{k}"))
            .chain(
                self.cov_exprs
                    .iter()
                    .filter(|(_, v)| **v == 0)
                    .map(|(k, _)| format!("expr:{k}")),
            )
            .collect();
        out.sort();
        out
    }

    fn cov_entries(&self) -> Vec<(String, u64)> {
        self.cov_stmts
            .iter()
            .map(|(k, v)| (format!("gen.stmt.{k}"), *v))
            .chain(
                self.cov_exprs
                    .iter()
                    .map(|(k, v)| (format!("gen.expr.{k}"), *v)),
            )
            .collect()
    }

    /// `Counters::to_json_object` over owned keys (same rendering).
    fn counters_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        if self.counters.is_empty() {
            return "{}".to_string();
        }
        let mut s = String::from("{\n");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(s, "{inner}\"{k}\": {v}");
        }
        let _ = write!(s, "\n{pad}}}");
        s
    }
}

/// The fingerprint of every flag that affects report bytes (`--jobs`,
/// `--block` and the checkpoint plumbing deliberately excluded: the report
/// is invariant under them).
fn fingerprint(cli: &Cli, cfg: &DifftestCfg) -> String {
    format!(
        "difftest seed_base={} seeds={} quick={} fuel={} queries={} reduce={} \
         escape_seeds={} per_class={}",
        cli.seed_base,
        cli.seeds,
        cli.quick,
        cfg.fuel,
        cfg.queries,
        cfg.reduce,
        cli.escape_seeds,
        cli.per_class
    )
}

/// Phase-1 outcome: the aggregate, or "paused at a checkpoint" (max-blocks
/// reached with seeds remaining).
enum Phase1 {
    Done(Agg),
    Paused,
}

fn run_phase1(cli: &Cli, cfg: &DifftestCfg, ckpt_path: &str, fp: &str) -> Result<Phase1, String> {
    let mut agg = if cli.resume {
        let j = ckpt::load(ckpt_path, "difftest_campaign", fp)?;
        let agg = Agg::from_ckpt(&j)?;
        println!(
            "resumed from {ckpt_path}: {}/{} seeds already folded",
            agg.completed, cli.seeds
        );
        agg
    } else {
        Agg::new()
    };
    if agg.completed > cli.seeds {
        return Err(format!(
            "checkpoint has {} completed seeds but --seeds is {}",
            agg.completed, cli.seeds
        ));
    }

    let mut blocks_this_run = 0u64;
    while agg.completed < cli.seeds {
        if let Some(max) = cli.max_blocks {
            if blocks_this_run >= max {
                println!(
                    "pausing after {max} blocks ({} of {} seeds folded; checkpoint at {ckpt_path})",
                    agg.completed, cli.seeds
                );
                return Ok(Phase1::Paused);
            }
        }
        let lo = cli.seed_base + agg.completed;
        let n = cli.block.min(cli.seeds - agg.completed);
        let seeds: Vec<u64> = (lo..lo + n).collect();
        // Order-preserving fan-out: the block's reports come back in seed
        // order, so the fold is the serial fold.
        let reports = par_map(cli.jobs, &seeds, |_, &s| run_seed_obs(s, cfg));
        for (r, o) in &reports {
            agg.fold(r, o);
        }
        agg.completed += n;
        blocks_this_run += 1;
        ckpt::write_atomic(ckpt_path, &agg.to_ckpt_json(fp))?;
    }
    Ok(Phase1::Done(agg))
}

/// The effective difftest configuration of this invocation (`--quick`
/// presets, then the explicit overrides).
fn build_cfg(cli: &Cli) -> DifftestCfg {
    let mut cfg = if cli.quick {
        DifftestCfg::quick()
    } else {
        DifftestCfg::default()
    };
    if let Some(fuel) = cli.fuel {
        cfg.fuel = fuel;
    }
    if let Some(q) = cli.queries {
        cfg.queries = q;
    }
    cfg.reduce = !cli.no_reduce;
    cfg
}

/// `--check` preflight: load the baseline and compare its configuration
/// header against this invocation *before any seed runs*. Returns the
/// baseline bytes for the final comparison.
///
/// # Errors
/// Usage errors (exit 2): an unreadable or unparsable baseline, a wrong schema, or
/// a configuration mismatch — each naming the exact regeneration command.
fn load_check_baseline(path: &str, cli: &Cli, cfg: &DifftestCfg) -> Result<String, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("--check: cannot read baseline `{path}`: {e}"))?;
    let j = bench::json::parse(&raw).map_err(|e| format!("--check: baseline `{path}`: {e}"))?;
    let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "compcerto-difftest/1" {
        return Err(format!(
            "--check: baseline `{path}` has schema `{schema}`, not `compcerto-difftest/1`"
        ));
    }
    // The regeneration command for THIS baseline — quoted verbatim in
    // every mismatch message so the fix is a copy-paste, not archaeology.
    let base_seeds = j.get("seeds").and_then(Json::as_u64).unwrap_or(0);
    let regen = format!(
        "cargo run --release -p bench --bin difftest_campaign -- {}--seeds {base_seeds} \
         --jobs auto --out {path}",
        if j.get("quick").and_then(Json::as_bool) == Some(true) {
            "--quick "
        } else {
            ""
        }
    );
    let mismatch = |what: &str, baseline: String, requested: String| {
        format!(
            "--check: baseline `{path}` was generated with {what} {baseline}, but this \
             invocation requests {requested};\n  \
             comparing them would be meaningless — align the flags, or regenerate the \
             baseline with:\n  {regen}"
        )
    };
    if base_seeds != cli.seeds {
        return Err(mismatch("seed count", base_seeds.to_string(), cli.seeds.to_string()));
    }
    let checks: [(&str, u64, u64); 3] = [
        ("seed_base", j.get("seed_base").and_then(Json::as_u64).unwrap_or(0), cli.seed_base),
        ("fuel", j.get("fuel").and_then(Json::as_u64).unwrap_or(0), cfg.fuel),
        (
            "queries_per_seed",
            j.get("queries_per_seed").and_then(Json::as_u64).unwrap_or(0),
            cfg.queries as u64,
        ),
    ];
    for (what, got, want) in checks {
        if got != want {
            return Err(mismatch(what, got.to_string(), want.to_string()));
        }
    }
    let base_quick = j.get("quick").and_then(Json::as_bool).unwrap_or(false);
    if base_quick != cli.quick {
        return Err(mismatch("quick", base_quick.to_string(), cli.quick.to_string()));
    }
    Ok(raw)
}

fn run(cli: &Cli) -> Result<Option<(String, usize)>, String> {
    let cfg = build_cfg(cli);

    let fp = fingerprint(cli, &cfg);
    // In check mode the default checkpoint lives next to the baseline
    // (never clobbering a regeneration run's `<out>.ckpt`).
    let ckpt_path = cli.ckpt.clone().unwrap_or_else(|| match &cli.check {
        Some(b) => format!("{b}.check.ckpt"),
        None => format!("{}.ckpt", cli.out),
    });

    println!(
        "difftest_campaign: seeds {}..{} quick={} fuel={} queries={}",
        cli.seed_base,
        cli.seed_base + cli.seeds,
        cli.quick,
        cfg.fuel,
        cfg.queries
    );

    // Phase 1 — the oracle sweep, block by block with checkpoints.
    let agg = match run_phase1(cli, &cfg, &ckpt_path, &fp)? {
        Phase1::Done(agg) => agg,
        Phase1::Paused => return Ok(None),
    };
    println!(
        "oracle: {} agree, {} skipped, {} findings \
         ({} queries compared, {} budget-skipped)",
        agg.agree,
        agg.skipped,
        agg.findings.len(),
        agg.queries_run,
        agg.queries_skipped
    );

    // Phase 2 — fault-injection escape rates under generated programs.
    // Pure in (seed, cfg) and cheap next to phase 1, so it simply re-runs
    // after a resume — the report stays byte-identical either way.
    let esc_seeds: Vec<u64> = (cli.seed_base..cli.seed_base + cli.seeds)
        .take(cli.escape_seeds as usize)
        .collect();
    let esc_results = par_map(cli.jobs, &esc_seeds, |_, &s| {
        (s, faultinj_escape_rates(s, &cfg, cli.per_class))
    });
    let mut esc_probed = 0usize;
    let mut esc_skipped = 0usize;
    // class name -> (generated, detected), in MUTATION_CLASSES order.
    let mut matrix: BTreeMap<usize, (&'static str, usize, usize)> = BTreeMap::new();
    for (s, res) in &esc_results {
        match res {
            Ok(rows) => {
                esc_probed += 1;
                for (i, row) in rows.iter().enumerate() {
                    let e = matrix.entry(i).or_insert((row.class.name(), 0, 0));
                    e.1 += row.generated;
                    e.2 += row.detected;
                }
            }
            Err(e) => {
                esc_skipped += 1;
                println!("escape matrix: seed {s} skipped ({e})");
            }
        }
    }
    if esc_probed > 0 {
        println!("escape rates over {esc_probed} generated programs ({} mutants/class/program):", cli.per_class);
        println!("{:<26}{:>10}{:>10}{:>9}", "class", "mutants", "detected", "escaped");
        for (_, (name, generated, detected)) in &matrix {
            println!(
                "{name:<26}{generated:>10}{detected:>10}{:>9}",
                generated - detected
            );
        }
    }

    // The JSON summary: deterministic for the seed block, jobs-independent.
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"compcerto-difftest/1\",\n");
    j.push_str(&format!("  \"quick\": {},\n", cli.quick));
    j.push_str(&format!("  \"seed_base\": {},\n", cli.seed_base));
    j.push_str(&format!("  \"seeds\": {},\n", cli.seeds));
    j.push_str(&format!("  \"fuel\": {},\n", cfg.fuel));
    j.push_str(&format!("  \"queries_per_seed\": {},\n", cfg.queries));
    j.push_str(&format!("  \"agree\": {},\n", agg.agree));
    j.push_str(&format!("  \"skipped\": {},\n", agg.skipped));
    j.push_str(&format!("  \"queries_compared\": {},\n", agg.queries_run));
    j.push_str(&format!(
        "  \"queries_budget_skipped\": {},\n",
        agg.queries_skipped
    ));
    j.push_str(&format!("  \"findings\": {},\n", agg.findings.len()));
    j.push_str("  \"finding_rows\": [\n");
    for (i, f) in agg.findings.iter().enumerate() {
        let source = if f.source.is_empty() {
            String::new()
        } else {
            json_str(&f.source)
        };
        j.push_str(&format!(
            "    {{\"seed\": {}, \"kind\": \"{}\", \"detail\": \"{}\", \
             \"reduced_stmts\": {}, \"reproducer\": \"{source}\"}}{}\n",
            f.seed,
            json_str(&f.kind),
            json_str(&f.detail),
            f.stmts,
            if i + 1 < agg.findings.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");

    // Observability section (DESIGN.md §10): deterministic counters summed
    // over the seed block, grammar-constructor coverage of the generated
    // programs, and which of the six stage pairs the block exercised. No
    // timings here — wall-clock never enters a committed report.
    let non_baseline = STAGES.len() - 1;
    j.push_str("  \"obs\": {\n");
    j.push_str(&format!("    \"counters\": {},\n", agg.counters_json(4)));
    j.push_str("    \"gen_coverage\": {\n");
    let missing = agg.cov_missing();
    j.push_str(&format!("      \"complete\": {},\n", missing.is_empty()));
    j.push_str(&format!(
        "      \"missing\": [{}],\n",
        missing
            .iter()
            .map(|m| format!("\"{}\"", json_str(m)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str("      \"counters\": {\n");
    let entries = agg.cov_entries();
    for (i, (k, v)) in entries.iter().enumerate() {
        j.push_str(&format!(
            "        \"{k}\": {v}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    j.push_str("      }\n");
    j.push_str("    },\n");
    j.push_str(&format!(
        "    \"stages_compared\": [{}],\n",
        agg.stages
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!(
        "    \"stage_pairs\": \"{}/{}\"\n",
        agg.stages.len(),
        non_baseline
    ));
    j.push_str("  },\n");
    j.push_str("  \"escape_matrix\": {\n");
    j.push_str(&format!("    \"seeds_probed\": {esc_probed},\n"));
    j.push_str(&format!("    \"seeds_skipped\": {esc_skipped},\n"));
    j.push_str(&format!("    \"per_class\": {},\n", cli.per_class));
    j.push_str("    \"rows\": [\n");
    let nrows = matrix.len();
    for (i, (_, (name, generated, detected))) in matrix.iter().enumerate() {
        j.push_str(&format!(
            "      {{\"class\": \"{name}\", \"generated\": {generated}, \
             \"detected\": {detected}, \"escaped\": {}}}{}\n",
            generated - detected,
            if i + 1 < nrows { "," } else { "" }
        ));
    }
    j.push_str("    ]\n");
    j.push_str("  }\n");
    j.push_str("}\n");
    // The final report replaces the checkpoint.
    ckpt::remove(&ckpt_path);
    Ok(Some((j, agg.findings.len())))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: difftest_campaign [--seeds N] [--seed-base N] [--jobs N|auto] \
                 [--quick] [--fuel N] [--queries N] [--no-reduce] \
                 [--escape-seeds N] [--per-class N] [--out PATH] \
                 [--block N] [--ckpt PATH] [--resume] [--max-blocks N] [--check PATH]"
            );
            return ExitCode::from(2);
        }
    };
    // `--check` preflight: a baseline generated under different flags is
    // rejected as a usage error before any seed runs.
    let baseline = match &cli.check {
        Some(path) => match load_check_baseline(path, &cli, &build_cfg(&cli)) {
            Ok(raw) => Some(raw),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    match run(&cli) {
        Ok(Some((json, nfindings))) => {
            if let Some(want) = baseline {
                let path = cli.check.as_deref().unwrap_or("");
                if json == want {
                    println!("check: report matches {path}");
                    return ExitCode::SUCCESS;
                }
                eprintln!(
                    "error: regenerated report differs from baseline `{path}` \
                     ({} vs {} bytes); the difftest outcome drifted",
                    json.len(),
                    want.len()
                );
                return ExitCode::from(1);
            }
            if let Err(e) = std::fs::write(&cli.out, json) {
                eprintln!("error: cannot write `{}`: {e}", cli.out);
                return ExitCode::from(1);
            }
            println!("wrote {}", cli.out);
            if nfindings > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        // Paused at a checkpoint (--max-blocks): not a failure.
        Ok(None) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
