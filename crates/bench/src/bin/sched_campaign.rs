//! Schedule-exploration campaign (EXPERIMENTS.md row B14): run the
//! N-seeds × M-schedules threaded differential oracle over a block of
//! seeds and summarize agreement plus per-schedule FNV verdict checksums.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin sched_campaign -- \
//!     [--seeds N] [--seed-base N] [--jobs N|auto] [--quick] \
//!     [--fuel N] [--threads N] [--schedules M] [--out PATH] \
//!     [--block N] [--ckpt PATH] [--resume] [--max-blocks N] \
//!     [--check PATH]
//! ```
//!
//! Writes a machine-readable summary (schema `compcerto-sched/1`) to
//! `SCHED.json` (or `--out`). With `--check PATH` the campaign runs,
//! renders the report and byte-compares it to the committed baseline
//! instead of writing: a mismatch is a regression (exit 1). Before any
//! seed runs, the baseline's configuration header is compared to this
//! invocation's — a mismatch is a usage error (exit 2) naming the exact
//! regeneration command. The report is **byte-identical for a given seed
//! block under any `--jobs` setting**: every per-seed verdict is a pure
//! function of `(seed, SchedCfg)`, the fan-out uses the order-preserving
//! worker pool ([`compiler::par_map`]), the checksums fold verdict lines
//! in seed order, and the JSON records no machine facts.
//!
//! # Checkpoint/resume (resilience layer, DESIGN.md §11)
//!
//! Seeds are processed in blocks of `--block` (default 16); after each
//! block a `compcerto-ckpt/1` checkpoint is written atomically next to the
//! report. A killed campaign restarted with `--resume` continues from the
//! last completed block and produces a final report **byte-identical** to
//! the uninterrupted run: per-seed results are pure, the scalar fold is
//! commutative, and the FNV chains are folded strictly in seed order by
//! block, so where the process died is unobservable. `--max-blocks N`
//! stops after N blocks (leaving the checkpoint behind) — the hook the CI
//! kill-and-resume smoke uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use bench::ckpt::{self, json_str};
use bench::json::Json;
use compiler::{
    intern_sched_counter_key, par_map, run_seed_sched_obs, Counters, Jobs, SchedCfg,
    SchedSeedOutcome, SchedSeedReport,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Cli {
    seeds: u64,
    seed_base: u64,
    jobs: Jobs,
    quick: bool,
    fuel: Option<u64>,
    threads: Option<usize>,
    schedules: Option<usize>,
    out: String,
    block: u64,
    ckpt: Option<String>,
    resume: bool,
    max_blocks: Option<u64>,
    check: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        seeds: 64,
        seed_base: 0,
        jobs: Jobs::Auto,
        quick: false,
        fuel: None,
        threads: None,
        schedules: None,
        out: "SCHED.json".to_string(),
        block: 16,
        ckpt: None,
        resume: false,
        max_blocks: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seeds" => cli.seeds = take("--seeds")?,
            "--seed-base" => cli.seed_base = take("--seed-base")?,
            "--fuel" => cli.fuel = Some(take("--fuel")?),
            "--threads" => cli.threads = Some(take("--threads")?.clamp(1, 8) as usize),
            "--schedules" => cli.schedules = Some(take("--schedules")?.clamp(1, 64) as usize),
            "--block" => cli.block = take("--block")?.max(1),
            "--max-blocks" => cli.max_blocks = Some(take("--max-blocks")?),
            "--quick" => cli.quick = true,
            "--resume" => cli.resume = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = Jobs::parse(&v)?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a value")?.to_string(),
            "--ckpt" => cli.ckpt = Some(args.next().ok_or("--ckpt needs a value")?.to_string()),
            "--check" => cli.check = Some(args.next().ok_or("--check needs a value")?.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cli.quick {
        cli.seeds = cli.seeds.min(8);
    }
    Ok(cli)
}

/// The effective oracle configuration of this invocation (`--quick`
/// presets, then the explicit overrides).
fn build_cfg(cli: &Cli) -> SchedCfg {
    let mut cfg = if cli.quick {
        SchedCfg::quick()
    } else {
        SchedCfg::default()
    };
    if let Some(fuel) = cli.fuel {
        cfg.fuel = fuel;
    }
    if let Some(t) = cli.threads {
        cfg.threads = t;
    }
    if let Some(m) = cli.schedules {
        cfg.schedules = m;
    }
    cfg
}

/// One finding, owned (checkpoints round-trip through JSON). The threaded
/// oracle runs no reducer — a threaded counterexample's schedule context is
/// the reproducer.
struct FindingRow {
    seed: u64,
    kind: String,
    detail: String,
}

/// The campaign aggregate. Scalar folds are commutative; the FNV chains
/// are folded strictly in seed order (blocks run in order, `par_map`
/// preserves index order within a block), so block-wise accumulation and
/// resume are byte-equivalent to the one-shot run.
struct Agg {
    completed: u64,
    agree: usize,
    skipped: usize,
    schedules_run: usize,
    schedules_skipped: usize,
    /// FNV-1a over every verdict line in (seed, schedule) order.
    checksum: u64,
    /// Per-schedule-slot FNV-1a chains: entry `j` folds schedule `j`'s
    /// verdict line of every seed, in seed order.
    sched_checksums: Vec<u64>,
    counters: Counters,
    findings: Vec<FindingRow>,
}

impl Agg {
    fn new(nschedules: usize) -> Agg {
        Agg {
            completed: 0,
            agree: 0,
            skipped: 0,
            schedules_run: 0,
            schedules_skipped: 0,
            checksum: FNV_OFFSET,
            sched_checksums: vec![FNV_OFFSET; nschedules],
            counters: Counters::default(),
            findings: Vec::new(),
        }
    }

    /// Fold one seed's report + counter delta (printing findings as they
    /// are folded).
    fn fold(&mut self, r: &SchedSeedReport, c: &Counters) {
        self.counters.add(c);
        for (j, line) in r.verdicts.iter().enumerate() {
            self.checksum = fnv1a(self.checksum, &r.seed.to_le_bytes());
            self.checksum = fnv1a(self.checksum, line.as_bytes());
            if let Some(h) = self.sched_checksums.get_mut(j) {
                *h = fnv1a(*h, &r.seed.to_le_bytes());
                *h = fnv1a(*h, line.as_bytes());
            }
        }
        match &r.outcome {
            SchedSeedOutcome::Agree {
                schedules_run,
                schedules_skipped,
            } => {
                self.agree += 1;
                self.schedules_run += schedules_run;
                self.schedules_skipped += schedules_skipped;
            }
            SchedSeedOutcome::Skipped(_) => self.skipped += 1,
            SchedSeedOutcome::Finding { kind, detail } => {
                println!("FINDING seed={} kind={kind}: {detail}", r.seed);
                self.findings.push(FindingRow {
                    seed: r.seed,
                    kind: format!("{kind}"),
                    detail: detail.clone(),
                });
            }
        }
    }

    /// Serialize as a `compcerto-ckpt/1` checkpoint.
    fn to_ckpt_json(&self, fingerprint: &str) -> String {
        let mut j = String::new();
        j.push_str("{\n");
        let _ = writeln!(j, "  \"schema\": \"{}\",", ckpt::CKPT_SCHEMA);
        j.push_str("  \"bin\": \"sched_campaign\",\n");
        let _ = writeln!(j, "  \"cfg\": \"{}\",", json_str(fingerprint));
        let _ = writeln!(j, "  \"completed\": {},", self.completed);
        let _ = writeln!(j, "  \"agree\": {},", self.agree);
        let _ = writeln!(j, "  \"skipped\": {},", self.skipped);
        let _ = writeln!(j, "  \"schedules_run\": {},", self.schedules_run);
        let _ = writeln!(j, "  \"schedules_skipped\": {},", self.schedules_skipped);
        let _ = writeln!(j, "  \"checksum\": {},", self.checksum);
        let chains: Vec<String> = self.sched_checksums.iter().map(u64::to_string).collect();
        let _ = writeln!(j, "  \"sched_checksums\": [{}],", chains.join(", "));
        let owned: BTreeMap<String, u64> = self
            .counters
            .0
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect();
        let _ = writeln!(j, "  \"counters\": {},", ckpt::u64_map_json(&owned));
        j.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = writeln!(
                j,
                "    {{\"seed\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}{}",
                f.seed,
                json_str(&f.kind),
                json_str(&f.detail),
                if i + 1 < self.findings.len() { "," } else { "" }
            );
        }
        j.push_str("  ]\n");
        j.push_str("}\n");
        j
    }

    /// Reload from a validated checkpoint document, re-interning counter
    /// keys through [`intern_sched_counter_key`].
    fn from_ckpt(j: &Json, nschedules: usize) -> Result<Agg, String> {
        let u = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint: missing `{key}`"))
        };
        let mut agg = Agg::new(nschedules);
        agg.completed = u("completed")?;
        agg.agree = u("agree")? as usize;
        agg.skipped = u("skipped")? as usize;
        agg.schedules_run = u("schedules_run")? as usize;
        agg.schedules_skipped = u("schedules_skipped")? as usize;
        agg.checksum = u("checksum")?;
        let chains = j
            .get("sched_checksums")
            .and_then(Json::as_arr)
            .ok_or("checkpoint: missing `sched_checksums`")?;
        if chains.len() != nschedules {
            return Err(format!(
                "checkpoint: {} schedule chains but --schedules is {nschedules}",
                chains.len()
            ));
        }
        agg.sched_checksums = chains
            .iter()
            .map(|c| c.as_u64().ok_or("checkpoint: non-u64 schedule chain"))
            .collect::<Result<Vec<u64>, &str>>()
            .map_err(str::to_string)?;
        let cmap = ckpt::u64_map(
            j.get("counters").ok_or("checkpoint: missing `counters`")?,
            "counters",
        )?;
        for (k, v) in &cmap {
            let interned = intern_sched_counter_key(k)
                .ok_or_else(|| format!("checkpoint: unknown counter key `{k}`"))?;
            agg.counters.0.insert(interned, *v);
        }
        for f in j
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("checkpoint: missing `findings`")?
        {
            agg.findings.push(FindingRow {
                seed: f
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("checkpoint: finding without `seed`")?,
                kind: f
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                detail: f
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        Ok(agg)
    }
}

/// The fingerprint of every flag that affects report bytes (`--jobs`,
/// `--block` and the checkpoint plumbing deliberately excluded: the report
/// is invariant under them).
fn fingerprint(cli: &Cli, cfg: &SchedCfg) -> String {
    format!(
        "sched seed_base={} seeds={} quick={} fuel={} threads={} schedules={}",
        cli.seed_base, cli.seeds, cli.quick, cfg.fuel, cfg.threads, cfg.schedules
    )
}

/// Phase-1 outcome: the aggregate, or "paused at a checkpoint".
enum Phase1 {
    Done(Agg),
    Paused,
}

fn run_phase1(cli: &Cli, cfg: &SchedCfg, ckpt_path: &str, fp: &str) -> Result<Phase1, String> {
    let mut agg = if cli.resume {
        let j = ckpt::load(ckpt_path, "sched_campaign", fp)?;
        let agg = Agg::from_ckpt(&j, cfg.schedules)?;
        println!(
            "resumed from {ckpt_path}: {}/{} seeds already folded",
            agg.completed, cli.seeds
        );
        agg
    } else {
        Agg::new(cfg.schedules)
    };
    if agg.completed > cli.seeds {
        return Err(format!(
            "checkpoint has {} completed seeds but --seeds is {}",
            agg.completed, cli.seeds
        ));
    }

    let mut blocks_this_run = 0u64;
    while agg.completed < cli.seeds {
        if let Some(max) = cli.max_blocks {
            if blocks_this_run >= max {
                println!(
                    "pausing after {max} blocks ({} of {} seeds folded; checkpoint at {ckpt_path})",
                    agg.completed, cli.seeds
                );
                return Ok(Phase1::Paused);
            }
        }
        let lo = cli.seed_base + agg.completed;
        let n = cli.block.min(cli.seeds - agg.completed);
        let seeds: Vec<u64> = (lo..lo + n).collect();
        // Order-preserving fan-out: the block's reports come back in seed
        // order, so the FNV chains fold exactly as in a serial run.
        let reports = par_map(cli.jobs, &seeds, |_, &s| run_seed_sched_obs(s, cfg));
        for (r, c) in &reports {
            agg.fold(r, c);
        }
        agg.completed += n;
        blocks_this_run += 1;
        ckpt::write_atomic(ckpt_path, &agg.to_ckpt_json(fp))?;
    }
    Ok(Phase1::Done(agg))
}

/// `--check` preflight: load the baseline and compare its configuration
/// header against this invocation *before any seed runs*. Returns the
/// baseline bytes for the final comparison.
///
/// # Errors
/// Usage errors (exit 2): an unreadable or unparsable baseline, a wrong
/// schema, or a configuration mismatch — each naming the exact
/// regeneration command.
fn load_check_baseline(path: &str, cli: &Cli, cfg: &SchedCfg) -> Result<String, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("--check: cannot read baseline `{path}`: {e}"))?;
    let j = bench::json::parse(&raw).map_err(|e| format!("--check: baseline `{path}`: {e}"))?;
    let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "compcerto-sched/1" {
        return Err(format!(
            "--check: baseline `{path}` has schema `{schema}`, not `compcerto-sched/1`"
        ));
    }
    let base_seeds = j.get("seeds").and_then(Json::as_u64).unwrap_or(0);
    let regen = format!(
        "cargo run --release -p bench --bin sched_campaign -- {}--seeds {base_seeds} \
         --jobs auto --out {path}",
        if j.get("quick").and_then(Json::as_bool) == Some(true) {
            "--quick "
        } else {
            ""
        }
    );
    let mismatch = |what: &str, baseline: String, requested: String| {
        format!(
            "--check: baseline `{path}` was generated with {what} {baseline}, but this \
             invocation requests {requested};\n  \
             comparing them would be meaningless — align the flags, or regenerate the \
             baseline with:\n  {regen}"
        )
    };
    if base_seeds != cli.seeds {
        return Err(mismatch(
            "seed count",
            base_seeds.to_string(),
            cli.seeds.to_string(),
        ));
    }
    let checks: [(&str, u64, u64); 4] = [
        (
            "seed_base",
            j.get("seed_base").and_then(Json::as_u64).unwrap_or(0),
            cli.seed_base,
        ),
        ("fuel", j.get("fuel").and_then(Json::as_u64).unwrap_or(0), cfg.fuel),
        (
            "threads",
            j.get("threads").and_then(Json::as_u64).unwrap_or(0),
            cfg.threads as u64,
        ),
        (
            "schedules_per_seed",
            j.get("schedules_per_seed")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            cfg.schedules as u64,
        ),
    ];
    for (what, got, want) in checks {
        if got != want {
            return Err(mismatch(what, got.to_string(), want.to_string()));
        }
    }
    let base_quick = j.get("quick").and_then(Json::as_bool).unwrap_or(false);
    if base_quick != cli.quick {
        return Err(mismatch(
            "quick",
            base_quick.to_string(),
            cli.quick.to_string(),
        ));
    }
    Ok(raw)
}

/// Render the final `compcerto-sched/1` report.
fn render_report(cli: &Cli, cfg: &SchedCfg, agg: &Agg) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"compcerto-sched/1\",\n");
    let _ = writeln!(j, "  \"quick\": {},", cli.quick);
    let _ = writeln!(j, "  \"seed_base\": {},", cli.seed_base);
    let _ = writeln!(j, "  \"seeds\": {},", cli.seeds);
    let _ = writeln!(j, "  \"fuel\": {},", cfg.fuel);
    let _ = writeln!(j, "  \"threads\": {},", cfg.threads);
    let _ = writeln!(j, "  \"schedules_per_seed\": {},", cfg.schedules);
    let _ = writeln!(j, "  \"agree\": {},", agg.agree);
    let _ = writeln!(j, "  \"skipped\": {},", agg.skipped);
    let _ = writeln!(j, "  \"schedules_compared\": {},", agg.schedules_run);
    let _ = writeln!(
        j,
        "  \"schedules_budget_skipped\": {},",
        agg.schedules_skipped
    );
    let _ = writeln!(j, "  \"findings\": {},", agg.findings.len());
    j.push_str("  \"finding_rows\": [\n");
    for (i, f) in agg.findings.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"seed\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}{}",
            f.seed,
            json_str(&f.kind),
            json_str(&f.detail),
            if i + 1 < agg.findings.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"verdict_checksum\": \"{:016x}\",", agg.checksum);
    j.push_str("  \"schedule_checksums\": [\n");
    for (i, h) in agg.sched_checksums.iter().enumerate() {
        let _ = writeln!(
            j,
            "    \"{h:016x}\"{}",
            if i + 1 < agg.sched_checksums.len() {
                ","
            } else {
                ""
            }
        );
    }
    j.push_str("  ],\n");
    // Observability: deterministic counters summed over the seed block
    // (standard delta keys plus the `lts.sched.*` family). No timings —
    // wall-clock never enters a committed report.
    j.push_str("  \"obs\": {\n");
    let _ = writeln!(j, "    \"counters\": {}", agg.counters.to_json_object(4));
    j.push_str("  }\n");
    j.push_str("}\n");
    j
}

fn run(cli: &Cli) -> Result<Option<(String, usize)>, String> {
    let cfg = build_cfg(cli);
    let fp = fingerprint(cli, &cfg);
    let ckpt_path = cli.ckpt.clone().unwrap_or_else(|| match &cli.check {
        Some(b) => format!("{b}.check.ckpt"),
        None => format!("{}.ckpt", cli.out),
    });

    println!(
        "sched_campaign: seeds {}..{} quick={} fuel={} threads={} schedules={}",
        cli.seed_base,
        cli.seed_base + cli.seeds,
        cli.quick,
        cfg.fuel,
        cfg.threads,
        cfg.schedules
    );

    let agg = match run_phase1(cli, &cfg, &ckpt_path, &fp)? {
        Phase1::Done(agg) => agg,
        Phase1::Paused => return Ok(None),
    };
    println!(
        "oracle: {} agree, {} skipped, {} findings \
         ({} schedules compared, {} budget-skipped; checksum {:016x})",
        agg.agree,
        agg.skipped,
        agg.findings.len(),
        agg.schedules_run,
        agg.schedules_skipped,
        agg.checksum
    );

    let json = render_report(cli, &cfg, &agg);
    // The final report replaces the checkpoint.
    ckpt::remove(&ckpt_path);
    Ok(Some((json, agg.findings.len())))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: sched_campaign [--seeds N] [--seed-base N] [--jobs N|auto] \
                 [--quick] [--fuel N] [--threads N] [--schedules M] [--out PATH] \
                 [--block N] [--ckpt PATH] [--resume] [--max-blocks N] [--check PATH]"
            );
            return ExitCode::from(2);
        }
    };
    // `--check` preflight: a baseline generated under different flags is
    // rejected as a usage error before any seed runs.
    let baseline = match &cli.check {
        Some(path) => match load_check_baseline(path, &cli, &build_cfg(&cli)) {
            Ok(raw) => Some(raw),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    match run(&cli) {
        Ok(Some((json, nfindings))) => {
            if let Some(want) = baseline {
                let path = cli.check.as_deref().unwrap_or("");
                if json == want {
                    println!("check: report matches {path}");
                    return ExitCode::SUCCESS;
                }
                eprintln!(
                    "error: regenerated report differs from baseline `{path}` \
                     ({} vs {} bytes); the threaded-oracle outcome drifted",
                    json.len(),
                    want.len()
                );
                return ExitCode::from(1);
            }
            if let Err(e) = std::fs::write(&cli.out, json) {
                eprintln!("error: cannot write `{}`: {e}", cli.out);
                return ExitCode::from(1);
            }
            println!("wrote {}", cli.out);
            if nfindings > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        // Paused at a checkpoint (--max-blocks): not a failure.
        Ok(None) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
