//! Regenerate paper Table 4: the taxonomy of CompCert extensions in terms of
//! their game models, with each semantic-model shape instantiated in this
//! framework to show it is expressible.

use backend::AsmSem;
use bench::fixture;
use compcerto_core::iface::{LanguageInterface, A, C, W};
use compcerto_core::lts::Lts;

fn main() {
    let (unit, tbl) = fixture();
    println!("Table 4: Taxonomy of CompCert extensions (cf. paper Table 4)");
    println!("{:-<76}", "");
    println!(
        "{:<24}{:<28}{}",
        "Variant", "Semantic model", "Expressible here as"
    );
    println!("{:-<76}", "");
    println!(
        "{:<24}{:<28}{}",
        "(Sep)CompCert",
        "χ: 1↠C ⊢ 1↠W",
        format!("closed runner over {} (exit status)", W::NAME)
    );
    println!(
        "{:<24}{:<28}{}",
        "CompCertX", "χ: 1↠C×A ⊢ 1↠C×A", "per-layer queries against a fixed χ (ExtLib)"
    );
    println!(
        "{:<24}{:<28}{}",
        "Comp. CompCert",
        "C ↠ C",
        format!("ClightSem/RtlSem (interface {})", C::NAME)
    );
    println!(
        "{:<24}{:<28}{}",
        "CompCertM", "C×A ↠ C×A", "paired C/A oracles (ExtLib::answer_c/answer_a)"
    );
    println!(
        "{:<24}{:<28}{}",
        "CompCertO", "A ↠ A  (A ∈ L ⊇ {C, A})", "any Lts<I = O = X>; see below"
    );
    println!("{:-<76}", "");

    // Demonstrate the CompCertO row: the same framework hosts components at
    // several interfaces simultaneously.
    let clight = unit.clight_sem(&tbl);
    let asm: AsmSem = unit.asm_sem(&tbl);
    println!("live instantiations in this build:");
    println!("  {:<22} : {} ↠ {}", clight.name(), C::NAME, C::NAME);
    println!("  {:<22} : {} ↠ {}", asm.name(), A::NAME, A::NAME);
    println!("  σ_NIC                  : Net ↠ IO   (crates/nic)");
    println!("  σ_io                   : IO ↠ C    (crates/nic)");
    println!();
    println!("The parameterized interface (paper's `A ∈ L`) is the LanguageInterface");
    println!("trait: adding Net and IO required no change to the framework.");
}
