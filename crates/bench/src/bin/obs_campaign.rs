//! Observability campaign (EXPERIMENTS.md row B9): regenerate and gate the
//! committed `OBS.json` — the deterministic counter baseline of the
//! observability layer (DESIGN.md §10).
//!
//! Three phases:
//!
//! 1. **Golden compile** — the five committed golden workloads
//!    (`crates/compiler/tests/golden/*.c`, embedded at build time) are
//!    compiled with metrics on; their per-unit deterministic counters
//!    (IR sizes, solver iterations, memory-model traffic) are aggregated.
//! 2. **Difftest sweep** — a block of seeds runs through
//!    [`compiler::run_seed_obs`]: the cross-stage oracle under full
//!    observability. Per-seed counter deltas, generator grammar coverage and
//!    the compared stage pairs are folded in seed order (commutative sums
//!    and set unions: the bag is byte-identical for every `--jobs` setting).
//! 3. **Overhead probe** — the golden workloads are compiled in a loop with
//!    metrics off and again with metrics on; the wall-clock ratio is
//!    reported under `timings_ms` (volatile, stripped by the normalizer)
//!    and optionally gated by `--max-overhead PCT` (with an absolute slack
//!    so sub-millisecond noise cannot flake CI).
//!
//! `--check PATH` compares the freshly computed document against a
//! committed baseline through [`compiler::normalize_metrics_json`] — i.e.
//! after stripping the volatile `pool`/`timings_ms` sections — and exits
//! nonzero on drift. Counters are gated; wall-clock never is.
//!
//! ```text
//! cargo run --release -p bench --bin obs_campaign -- \
//!     [--seeds N] [--jobs N|auto] [--reps N] [--max-overhead PCT] \
//!     [--out PATH | --check PATH]
//! ```

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

use compcerto_gen::Coverage;
use compiler::{
    compile_all, normalize_metrics_json, par_map, pool_stats, run_seed_obs, CompilerOptions,
    Counters, DifftestCfg, Jobs, MetricsReport, SeedOutcome, OBS_SCHEMA, STAGES,
};

/// The five golden workloads, embedded so the binary is cwd-independent.
const GOLDEN: [(&str, &str); 5] = [
    ("arith", include_str!("../../../compiler/tests/golden/arith.c")),
    ("branch", include_str!("../../../compiler/tests/golden/branch.c")),
    ("calls", include_str!("../../../compiler/tests/golden/calls.c")),
    ("loop", include_str!("../../../compiler/tests/golden/loop.c")),
    ("memory", include_str!("../../../compiler/tests/golden/memory.c")),
];

struct Cli {
    seeds: u64,
    jobs: Jobs,
    reps: usize,
    max_overhead: Option<f64>,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        seeds: 16,
        jobs: Jobs::Auto,
        reps: 40,
        max_overhead: None,
        out: "OBS.json".to_string(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seeds" => {
                cli.seeds = args
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--reps" => {
                cli.reps = args
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--max-overhead" => {
                cli.max_overhead = Some(
                    args.next()
                        .ok_or("--max-overhead needs a value")?
                        .parse()
                        .map_err(|e| format!("--max-overhead: {e}"))?,
                );
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = Jobs::parse(&v)?;
            }
            "--out" => cli.out = args.next().ok_or("--out needs a value")?,
            "--check" => cli.check = Some(args.next().ok_or("--check needs a value")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

/// Compile every golden workload once; returns the aggregate report.
fn golden_phase() -> Result<MetricsReport, String> {
    let srcs: Vec<&str> = GOLDEN.iter().map(|(_, s)| *s).collect();
    let (units, _symtab) = compile_all(&srcs, CompilerOptions::validated().with_metrics())
        .map_err(|e| format!("golden workloads failed to compile: {e}"))?;
    Ok(MetricsReport::from_units("golden-compile", &units))
}

/// Wall-clock of `reps` compilations of the golden block under `opts`.
fn time_compiles(reps: usize, opts: CompilerOptions) -> Result<f64, String> {
    let srcs: Vec<&str> = GOLDEN.iter().map(|(_, s)| *s).collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        let (units, _) =
            compile_all(&srcs, opts).map_err(|e| format!("overhead probe compile: {e}"))?;
        // Keep the optimizer honest.
        std::hint::black_box(units.len());
    }
    Ok(t0.elapsed().as_secs_f64() * 1000.0)
}

struct DifftestPhase {
    agree: usize,
    skipped: usize,
    findings: usize,
    counters: Counters,
    coverage: Coverage,
    stages: BTreeSet<&'static str>,
}

fn difftest_phase(seeds: u64, jobs: Jobs) -> DifftestPhase {
    let cfg = DifftestCfg::quick();
    let block: Vec<u64> = (0..seeds).collect();
    let results = par_map(jobs, &block, |_, &s| run_seed_obs(s, &cfg));
    let mut out = DifftestPhase {
        agree: 0,
        skipped: 0,
        findings: 0,
        counters: Counters::default(),
        coverage: Coverage::default(),
        stages: BTreeSet::new(),
    };
    for (report, obs) in &results {
        match &report.outcome {
            SeedOutcome::Agree { .. } => out.agree += 1,
            SeedOutcome::Skipped(_) => out.skipped += 1,
            SeedOutcome::Finding { .. } => out.findings += 1,
        }
        out.counters.add(&obs.counters);
        out.coverage.merge(&obs.coverage);
        out.stages.extend(obs.stages_compared.iter().copied());
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cli: &Cli,
    golden: &MetricsReport,
    dt: &DifftestPhase,
    off_ms: f64,
    on_ms: f64,
) -> String {
    let overhead_pct = if off_ms > 0.0 {
        (on_ms - off_ms) / off_ms * 100.0
    } else {
        0.0
    };
    let pool = pool_stats();
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"schema\": \"{OBS_SCHEMA}\",\n"));
    j.push_str("  \"kind\": \"obs-campaign\",\n");
    j.push_str(&format!(
        "  \"items\": {},\n",
        golden.items + cli.seeds
    ));
    j.push_str("  \"golden\": {\n");
    j.push_str(&format!("    \"units\": {},\n", golden.items));
    j.push_str(&format!(
        "    \"counters\": {}\n",
        golden.counters.to_json_object(4)
    ));
    j.push_str("  },\n");
    j.push_str("  \"difftest\": {\n");
    j.push_str(&format!("    \"seeds\": {},\n", cli.seeds));
    j.push_str(&format!("    \"agree\": {},\n", dt.agree));
    j.push_str(&format!("    \"skipped\": {},\n", dt.skipped));
    j.push_str(&format!("    \"findings\": {},\n", dt.findings));
    j.push_str(&format!(
        "    \"counters\": {},\n",
        dt.counters.to_json_object(4)
    ));
    j.push_str("    \"gen_coverage\": {\n");
    j.push_str(&format!("      \"complete\": {},\n", dt.coverage.complete()));
    j.push_str(&format!(
        "      \"missing\": [{}],\n",
        dt.coverage
            .missing()
            .iter()
            .map(|m| format!("\"{m}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str("      \"counters\": {\n");
    let entries = dt.coverage.counter_entries();
    for (i, (k, v)) in entries.iter().enumerate() {
        j.push_str(&format!(
            "        \"{k}\": {v}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    j.push_str("      }\n");
    j.push_str("    },\n");
    j.push_str(&format!(
        "    \"stages_compared\": [{}],\n",
        dt.stages
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!(
        "    \"stage_pairs\": \"{}/{}\"\n",
        dt.stages.len(),
        STAGES.len() - 1
    ));
    j.push_str("  },\n");
    j.push_str("  \"pool\": {\n");
    j.push_str(&format!("    \"pools\": {},\n", pool.pools));
    j.push_str(&format!("    \"items\": {},\n", pool.items));
    j.push_str(&format!("    \"workers_max\": {},\n", pool.workers_max));
    j.push_str(&format!(
        "    \"busiest_worker_items\": {}\n",
        pool.busiest_worker_items
    ));
    j.push_str("  },\n");
    j.push_str("  \"timings_ms\": {\n");
    j.push_str(&format!("    \"golden_compile\": {:.3},\n", golden.total_ms));
    j.push_str(&format!(
        "    \"overhead_probe\": {{\"reps\": {}, \"metrics_off\": {off_ms:.3}, \
         \"metrics_on\": {on_ms:.3}, \"overhead_pct\": {overhead_pct:.2}}}\n",
        cli.reps
    ));
    j.push_str("  }\n");
    j.push_str("}\n");
    j
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    println!(
        "obs_campaign: seeds={} reps={} (quick difftest profile)",
        cli.seeds, cli.reps
    );

    // Phase 1 — golden compile metrics.
    let golden = golden_phase()?;
    println!(
        "golden: {} units, {} counter keys",
        golden.items,
        golden.counters.0.len()
    );

    // Phase 2 — observed difftest sweep.
    let dt = difftest_phase(cli.seeds, cli.jobs);
    println!(
        "difftest: {} agree, {} skipped, {} findings, stage pairs {}/{}, \
         grammar coverage complete: {}",
        dt.agree,
        dt.skipped,
        dt.findings,
        dt.stages.len(),
        STAGES.len() - 1,
        dt.coverage.complete()
    );

    // Phase 3 — overhead probe (volatile; reported, optionally gated with
    // absolute slack).
    let off_ms = time_compiles(cli.reps, CompilerOptions::validated())?;
    let on_ms = time_compiles(cli.reps, CompilerOptions::validated().with_metrics())?;
    let overhead_pct = if off_ms > 0.0 {
        (on_ms - off_ms) / off_ms * 100.0
    } else {
        0.0
    };
    println!(
        "overhead probe: metrics off {off_ms:.1} ms, on {on_ms:.1} ms ({overhead_pct:+.2}%)"
    );

    let doc = render_json(cli, &golden, &dt, off_ms, on_ms);
    let mut failed = false;

    if dt.findings > 0 {
        eprintln!("error: difftest sweep produced {} finding(s)", dt.findings);
        failed = true;
    }
    if !dt.coverage.complete() {
        eprintln!(
            "error: grammar coverage incomplete, missing: {:?}",
            dt.coverage.missing()
        );
        failed = true;
    }
    if let Some(max) = cli.max_overhead {
        // Absolute slack: tiny workloads measure in single-digit
        // milliseconds where scheduler noise dwarfs any real cost.
        const SLACK_MS: f64 = 50.0;
        if on_ms > off_ms * (1.0 + max / 100.0) + SLACK_MS {
            eprintln!(
                "error: metrics overhead {overhead_pct:.2}% exceeds the {max:.1}% gate \
                 (off {off_ms:.1} ms, on {on_ms:.1} ms, slack {SLACK_MS} ms)"
            );
            failed = true;
        } else {
            println!("overhead gate: within {max:.1}% (+{SLACK_MS} ms slack)");
        }
    }

    if let Some(baseline_path) = &cli.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
        let want = normalize_metrics_json(&baseline)
            .map_err(|e| format!("baseline `{baseline_path}`: {e}"))?;
        let got = normalize_metrics_json(&doc)?;
        if want == got {
            println!("check: counters match `{baseline_path}` (normalized)");
        } else {
            eprintln!(
                "error: deterministic counters drifted from `{baseline_path}`; \
                 regenerate with `cargo run --release -p bench --bin obs_campaign` \
                 and commit the diff if intended"
            );
            for (lw, lg) in want.lines().zip(got.lines()) {
                if lw != lg {
                    eprintln!("  baseline: {lw}");
                    eprintln!("  current:  {lg}");
                }
            }
            failed = true;
        }
    } else {
        std::fs::write(&cli.out, &doc).map_err(|e| format!("cannot write `{}`: {e}", cli.out))?;
        println!("wrote {}", cli.out);
    }

    Ok(if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: obs_campaign [--seeds N] [--jobs N|auto] [--reps N] \
                 [--max-overhead PCT] [--out PATH | --check PATH]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
