//! Regenerate the content of paper Fig. 3: vertical composition of
//! simulations. Two adjacent pass simulations are checked individually, then
//! the composite (source of the first against target of the second) is
//! checked under the *composed* convention — Def. 3.6 / Thm. 3.7 in action.

use bench::FIXTURE;
use compcerto_core::cklr::{CklrC, Ext};
use compcerto_core::conv::ComposeConv;
use compcerto_core::iface::{CQuery, CReply};
use compcerto_core::sim::check_fwd_sim;
use compiler::{c_query, compile_all, CompilerOptions};
use mem::Val;
use minor::{CminorSelSem, CminorSem};
use rtl::RtlSem;

/// Fixture/simulation failures are configuration bugs, not runtime
/// conditions — exit with the usage code instead of unwinding.
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("fig3_vertical: {msg}");
    std::process::exit(2)
}

fn main() {
    // Build three adjacent levels: Cminor --Selection--> CminorSel
    // --RTLgen--> RTL.
    let (units, tbl) = compile_all(&[FIXTURE], CompilerOptions::default())
        .unwrap_or_else(|e| die(format!("fixture does not compile: {e:?}")));
    let u = &units[0];
    let l1 = CminorSem::new(u.cminor.clone(), tbl.clone());
    let l2 = CminorSelSem::new(u.cminorsel.clone(), tbl.clone());
    let l3 = RtlSem::new(u.rtl.clone(), tbl.clone());
    let q = c_query(&tbl, u, "churn", vec![Val::Int(5), Val::Int(20)]);
    let ext = CklrC { k: Ext };
    let mut env = |m: &CQuery| {
        Some(CReply {
            retval: m.args.first().copied().unwrap_or(Val::Int(0)),
            mem: m.mem.clone(),
        })
    };

    println!("Fig. 3: vertical composition of simulations (cf. paper Fig. 3)");
    println!();
    println!(
        "L1 = Cminor({})   L2 = CminorSel(..)   L3 = RTL(..)",
        "churn"
    );
    println!("R = S = ext (both passes use `ext`-flavoured conventions)");
    println!();

    // Individual simulations (the premises of Fig. 3).
    let r12 = check_fwd_sim(&l1, &l2, &ext, &ext, &q, &mut env, 5_000_000)
        .unwrap_or_else(|e| die(format!("L1 ≤ext L2 (Selection): {e}")));
    println!(
        "premise 1: Cminor ≤_ext CminorSel    ✓  ({} / {} steps)",
        r12.source_steps, r12.target_steps
    );
    let r23 = check_fwd_sim(&l2, &l3, &ext, &ext, &q, &mut env, 5_000_000)
        .unwrap_or_else(|e| die(format!("L2 ≤ext L3 (RTLgen): {e}")));
    println!(
        "premise 2: CminorSel ≤_ext RTL       ✓  ({} / {} steps)",
        r23.source_steps, r23.target_steps
    );

    // The composite, under the composed convention ext · ext (Def. 3.6).
    let composed = ComposeConv::new(CklrC { k: Ext }, CklrC { k: Ext });
    let r13 = check_fwd_sim(&l1, &l3, &composed, &composed, &q, &mut env, 5_000_000)
        .unwrap_or_else(|e| die(format!("L1 ≤ext·ext L3 (vertical composition): {e}")));
    println!(
        "conclusion: Cminor ≤_(ext·ext) RTL   ✓  ({} / {} steps)",
        r13.source_steps, r13.target_steps
    );
    println!();
    println!("and by Lemma 5.3 (ext · ext ≡ ext) the composite also checks at ext:");
    let r13e = check_fwd_sim(&l1, &l3, &ext, &ext, &q, &mut env, 5_000_000)
        .unwrap_or_else(|e| die(format!("L1 ≤ext L3 after fusing the convention: {e}")));
    println!(
        "            Cminor ≤_ext RTL         ✓  ({} / {} steps)",
        r13e.source_steps, r13e.target_steps
    );
}
