//! Campaign checkpoint/resume helpers (resilience layer, DESIGN.md §11).
//!
//! Long campaigns die for infrastructure reasons — OOM killers, CI
//! timeouts, a laptop lid. A campaign that loses three hours of seeds to a
//! kill signal is not resilient, whatever its oracle does. The campaign
//! bins therefore write a small JSON checkpoint (schema
//! [`CKPT_SCHEMA`]) after every completed block of work, and `--resume`
//! continues from the last completed block. Two invariants make this safe:
//!
//! * **Byte-identical results.** Campaign aggregation is commutative
//!   per-seed/per-class folding, so "fold blocks 0..k from the checkpoint,
//!   then keep going" produces exactly the bytes of the uninterrupted run
//!   (`ci.sh` kill-and-resume smoke asserts this).
//! * **Config fingerprinting.** A checkpoint embeds a fingerprint of every
//!   result-affecting flag; resuming under a different configuration is a
//!   usage error (exit 2), never a silently mixed report.
//!
//! Checkpoints are written atomically (temp file + rename) so a kill
//! *during* a checkpoint write leaves the previous checkpoint intact.

use std::collections::BTreeMap;

use compiler::json::{self, Json};

/// Schema stamped on every campaign checkpoint.
pub const CKPT_SCHEMA: &str = "compcerto-ckpt/1";

/// Minimal JSON string escaping (no serde in the offline workspace). The
/// exact inverse of what [`compiler::json`] unescapes.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write `contents` to `path` atomically: a kill mid-write leaves either
/// the old checkpoint or the new one, never a torn file.
///
/// # Errors
/// Reports the failing filesystem operation.
pub fn write_atomic(path: &str, contents: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write `{tmp}`: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename `{tmp}` -> `{path}`: {e}"))
}

/// Load and validate a checkpoint: the file must parse, carry
/// [`CKPT_SCHEMA`], name the expected `bin`, and match the caller's config
/// `fingerprint` exactly.
///
/// # Errors
/// A message suitable for a usage error (exit 2): missing file, parse
/// failure, or a schema/bin/fingerprint mismatch.
pub fn load(path: &str, bin: &str, fingerprint: &str) -> Result<Json, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint `{path}`: {e}"))?;
    let j = json::parse(&src).map_err(|e| format!("checkpoint `{path}`: {e}"))?;
    let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != CKPT_SCHEMA {
        return Err(format!(
            "checkpoint `{path}`: schema `{schema}` != `{CKPT_SCHEMA}`"
        ));
    }
    let got_bin = j.get("bin").and_then(Json::as_str).unwrap_or("");
    if got_bin != bin {
        return Err(format!(
            "checkpoint `{path}` belongs to `{got_bin}`, not `{bin}`"
        ));
    }
    let got_fp = j.get("cfg").and_then(Json::as_str).unwrap_or("");
    if got_fp != fingerprint {
        return Err(format!(
            "checkpoint `{path}` was taken under a different configuration\n  \
             checkpoint: {got_fp}\n  requested:  {fingerprint}"
        ));
    }
    Ok(j)
}

/// Remove a checkpoint file (after the final report was written). Missing
/// files are fine; other errors are reported but non-fatal by convention.
pub fn remove(path: &str) {
    if let Err(e) = std::fs::remove_file(path) {
        if e.kind() != std::io::ErrorKind::NotFound {
            eprintln!("warning: cannot remove checkpoint `{path}`: {e}");
        }
    }
}

/// Decode a JSON object whose members are all unsigned integers.
///
/// # Errors
/// Reports the first non-integer member.
pub fn u64_map(j: &Json, what: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (k, v) in j.as_obj().ok_or_else(|| format!("{what}: not an object"))? {
        let n = v
            .as_u64()
            .ok_or_else(|| format!("{what}.{k}: not a u64"))?;
        out.insert(k.clone(), n);
    }
    Ok(out)
}

/// Encode a `String -> u64` map as a compact single-line JSON object (the
/// checkpoint format; key order is the map's, i.e. deterministic).
#[must_use]
pub fn u64_map_json(map: &BTreeMap<String, u64>) -> String {
    let members: Vec<String> = map
        .iter()
        .map(|(k, v)| format!("\"{}\": {v}", json_str(k)))
        .collect();
    format!("{{{}}}", members.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_then_load_round_trips() {
        let dir = std::env::temp_dir();
        let path = dir
            .join("compcerto_ckpt_test.json")
            .to_string_lossy()
            .into_owned();
        let body = format!(
            "{{\"schema\": \"{CKPT_SCHEMA}\", \"bin\": \"t\", \"cfg\": \"a=1\", \"completed\": 7}}"
        );
        write_atomic(&path, &body).expect("write");
        let j = load(&path, "t", "a=1").expect("load");
        assert_eq!(j.get("completed").and_then(Json::as_u64), Some(7));
        // Wrong fingerprint or bin is a usage error.
        assert!(load(&path, "t", "a=2").is_err());
        assert!(load(&path, "other", "a=1").is_err());
        remove(&path);
        assert!(load(&path, "t", "a=1").is_err());
    }

    #[test]
    fn u64_map_round_trips_through_json() {
        let mut m = BTreeMap::new();
        m.insert("lts.runs".to_string(), u64::MAX - 1);
        m.insert("mem.allocs".to_string(), 0);
        let encoded = u64_map_json(&m);
        let parsed = compiler::json::parse(&encoded).expect("parses");
        let back = u64_map(&parsed, "m").expect("decodes");
        assert_eq!(back, m);
    }
}
