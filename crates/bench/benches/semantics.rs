//! B2 (added experiment): interpreter throughput at every language level and
//! the overhead of horizontal composition, over a call-depth sweep.

use bench::microbench::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use compcerto_core::cc::Ca;
use compcerto_core::conv::SimConv;
use compcerto_core::hcomp::HComp;
use compcerto_core::lts::run;
use compiler::{c_query, compile_all, CompilerOptions};
use mem::Val;

const FIB: &str = "
    int fib(int n) {
        int a; int b;
        if (n < 2) { return n; }
        a = fib(n - 1);
        b = fib(n - 2);
        return a + b;
    }
";

fn bench_levels(c: &mut Criterion) {
    let (units, tbl) = compile_all(&[FIB], CompilerOptions::default()).unwrap();
    let u = &units[0];
    let mut group = c.benchmark_group("semantics");
    for n in [8, 12] {
        let q = c_query(&tbl, u, "fib", vec![Val::Int(n)]);
        let clight = u.clight_sem(&tbl);
        group.bench_with_input(BenchmarkId::new("Clight", n), &q, |b, q| {
            b.iter(|| run(&clight, black_box(q), &mut |_m| None, 100_000_000).expect_complete())
        });
        let rtl = rtl::RtlSem::new(u.rtl_opt.clone(), tbl.clone());
        group.bench_with_input(BenchmarkId::new("RTL", n), &q, |b, q| {
            b.iter(|| run(&rtl, black_box(q), &mut |_m| None, 100_000_000).expect_complete())
        });
        let asm = u.asm_sem(&tbl);
        let (_, qa) = Ca::new(tbl.len() as u32).transport_query(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("Asm", n), &qa, |b, qa| {
            b.iter(|| run(&asm, black_box(qa), &mut |_m| None, 100_000_000).expect_complete())
        });
    }
    group.finish();
}

fn bench_hcomp_overhead(c: &mut Criterion) {
    // Mutual recursion across two components vs the linked single component.
    let even = "extern int is_odd(int); int is_even(int n) { int r; if (n == 0) { return 1; } r = is_odd(n - 1); return r; }";
    let odd = "extern int is_even(int); int is_odd(int n) { int r; if (n == 0) { return 0; } r = is_even(n - 1); return r; }";
    let (units, tbl) = compile_all(&[even, odd], CompilerOptions::default()).unwrap();
    let mut group = c.benchmark_group("hcomp");
    for n in [50, 200] {
        let q = c_query(&tbl, &units[0], "is_even", vec![Val::Int(n)]);
        let composed = HComp::new(units[0].clight_sem(&tbl), units[1].clight_sem(&tbl));
        group.bench_with_input(BenchmarkId::new("Clight ⊕ Clight", n), &q, |b, q| {
            b.iter(|| run(&composed, black_box(q), &mut |_m| None, 100_000_000).expect_complete())
        });
        let linked_clight = clight::link(&units[0].clight, &units[1].clight).expect("sources link");
        let whole = clight::ClightSem::new(linked_clight, tbl.clone());
        group.bench_with_input(BenchmarkId::new("Clight(linked)", n), &q, |b, q| {
            b.iter(|| run(&whole, black_box(q), &mut |_m| None, 100_000_000).expect_complete())
        });
        let linked_asm = backend::link_asm(&units[0].asm, &units[1].asm).unwrap();
        let asm = backend::AsmSem::new(linked_asm, tbl.clone());
        let (_, qa) = Ca::new(tbl.len() as u32).transport_query(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("Asm(linked)", n), &qa, |b, qa| {
            b.iter(|| run(&asm, black_box(qa), &mut |_m| None, 100_000_000).expect_complete())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_levels, bench_hcomp_overhead);
criterion_main!(benches);
