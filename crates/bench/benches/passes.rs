//! B1 (added experiment): compile-time per pass over a program-size sweep.
//!
//! Not in the paper — its evaluation is structural — but a production
//! compiler library needs to know where its time goes.

use bench::microbench::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use clight::{build_symtab, parse, simpl_locals, typecheck};
use compiler::{WorkloadCfg, WorkloadGen};
use minor::{cminorgen, cshmgen, selection};
use rtl::{renumber, rtlgen, Romem};

/// Generate a source of roughly `n` functions.
fn source(n: usize) -> String {
    let mut g = WorkloadGen::new(1234);
    let cfg = WorkloadCfg {
        functions: n,
        stmts_per_fn: 10,
        external_calls: false,
        ..WorkloadCfg::default()
    };
    g.gen_program(&cfg).0
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("passes");
    for n in [2usize, 8, 24] {
        let src = source(n);
        let typed = typecheck(&parse(&src).unwrap()).unwrap();
        let tbl = build_symtab(&[&typed]).unwrap();
        let simpl = simpl_locals(&typed);
        let cs = cshmgen(&simpl).unwrap();
        let cm = cminorgen(&cs).unwrap();
        let sel = selection(&cm);
        let r = renumber(&rtlgen(&sel));
        let romem = Romem::new(&tbl);
        let ltl = backend::allocation(&r);
        let lin = backend::debugvar(&backend::cleanup_labels(&backend::linearize(
            &backend::tunneling(&ltl),
        )));
        let mach = backend::stacking(&lin).unwrap();

        group.bench_with_input(BenchmarkId::new("parse+typecheck", n), &src, |b, s| {
            b.iter(|| typecheck(&parse(black_box(s)).unwrap()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("SimplLocals", n), &typed, |b, p| {
            b.iter(|| simpl_locals(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("Cshmgen", n), &simpl, |b, p| {
            b.iter(|| cshmgen(black_box(p)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("Cminorgen", n), &cs, |b, p| {
            b.iter(|| cminorgen(black_box(p)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("Selection", n), &cm, |b, p| {
            b.iter(|| selection(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("RTLgen", n), &sel, |b, p| {
            b.iter(|| rtlgen(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("Constprop", n), &r, |b, p| {
            b.iter(|| rtl::constprop(black_box(p), &romem))
        });
        group.bench_with_input(BenchmarkId::new("CSE", n), &r, |b, p| {
            b.iter(|| rtl::cse(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("Deadcode", n), &r, |b, p| {
            b.iter(|| rtl::deadcode(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("Inlining", n), &r, |b, p| {
            b.iter(|| rtl::inlining(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("Allocation", n), &r, |b, p| {
            b.iter(|| backend::allocation(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("Linearize", n), &ltl, |b, p| {
            b.iter(|| backend::linearize(&backend::tunneling(black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("Stacking", n), &lin, |b, p| {
            b.iter(|| backend::stacking(black_box(p)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("Asmgen", n), &mach, |b, p| {
            b.iter(|| backend::asmgen(black_box(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
