//! B3 (added experiment): throughput of the differential simulation checker
//! and of the convention-algebra derivation engine.

use bench::microbench::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use compcerto_core::algebra::derive;
use compiler::registry::composed_incoming;
use compiler::{c_query, check_thm38, compile_all, CompilerOptions, ExtLib};
use mem::Val;

const CHURN: &str = "
    extern int inc(int);
    int churn(int seed, int rounds) {
        int i; int x; int r;
        x = seed;
        for (i = 0; i < rounds; i = i + 1) {
            r = inc(x);
            x = (r * 31 + 7) % 1000;
        }
        return x;
    }
";

fn bench_simcheck(c: &mut Criterion) {
    let (units, tbl) = compile_all(&[CHURN], CompilerOptions::default()).unwrap();
    let lib = ExtLib::demo(tbl.clone());
    let mut group = c.benchmark_group("simcheck");
    // Each external call is a Fig. 6c boundary check (injection inference +
    // memory relation decision), so rounds sweep the checker's hot path.
    for rounds in [1, 8, 32] {
        let q = c_query(
            &tbl,
            &units[0],
            "churn",
            vec![Val::Int(5), Val::Int(rounds)],
        );
        group.bench_with_input(BenchmarkId::new("thm38_boundaries", rounds), &q, |b, q| {
            b.iter(|| check_thm38(&units[0], &tbl, &lib, black_box(q)).expect("holds"))
        });
    }
    group.finish();
}

fn bench_derivation(c: &mut Criterion) {
    let chain = composed_incoming();
    c.bench_function("algebra_derivation", |b| {
        b.iter(|| {
            let d = derive(black_box(chain.clone())).expect("derives");
            d.verify().expect("verifies");
            d.steps.len()
        })
    });
}

criterion_group!(benches, bench_simcheck, bench_derivation);
criterion_main!(benches);
