//! Contract tests for `difftest_campaign --check` (ISSUE 9 satellite):
//! checking against a baseline generated under different flags must be a
//! hard usage error (exit 2) that names the regeneration command — never a
//! silent comparison of incomparable reports — while a matching rerun
//! exits 0 and a drifted report exits 1.

use std::path::PathBuf;
use std::process::Output;

fn campaign(args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_difftest_campaign"))
        .args(args)
        .output()
        .expect("spawn difftest_campaign")
}

/// Generate a tiny quick-mode baseline under `tag` and return its path.
fn make_baseline(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "difftest-check-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    let out = dir.join("base.json");
    let gen = campaign(&[
        "--quick",
        "--seeds",
        "4",
        "--jobs",
        "auto",
        "--out",
        out.to_str().expect("path"),
    ]);
    assert!(
        gen.status.success(),
        "baseline generation failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );
    out
}

#[test]
fn check_passes_against_a_fresh_baseline() {
    let base = make_baseline("pass");
    // A different --jobs must not matter: the report is jobs-invariant.
    let out = campaign(&["--quick", "--seeds", "4", "--jobs", "1", "--check", base.to_str().expect("path")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("check: report matches"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(base.parent().expect("dir"));
}

#[test]
fn seed_count_mismatch_is_a_usage_error_naming_the_regen_command() {
    let base = make_baseline("seeds");
    let out = campaign(&["--quick", "--seeds", "7", "--check", base.to_str().expect("path")]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "a seed-count mismatch must be exit 2, got: {:?}",
        out.status.code()
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("seed count"), "{err}");
    // The message must hand the user the exact regeneration command.
    assert!(
        err.contains("difftest_campaign -- --quick --seeds 4 --jobs auto --out"),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(base.parent().expect("dir"));
}

#[test]
fn quick_flag_mismatch_is_a_usage_error() {
    let base = make_baseline("quick");
    // Same seed count, but the baseline was quick and this run is not.
    let out = campaign(&["--seeds", "4", "--check", base.to_str().expect("path")]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quick") && err.contains("regenerate"), "{err}");
    let _ = std::fs::remove_dir_all(base.parent().expect("dir"));
}

#[test]
fn drifted_baseline_is_a_check_failure_not_a_usage_error() {
    let base = make_baseline("drift");
    let raw = std::fs::read_to_string(&base).expect("read baseline");
    // Tamper with a result member (not the config header): the preflight
    // passes, the byte comparison catches it.
    std::fs::write(&base, raw.replace("\"agree\": 4", "\"agree\": 3")).expect("tamper");
    let out = campaign(&["--quick", "--seeds", "4", "--check", base.to_str().expect("path")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("differs from baseline"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(base.parent().expect("dir"));
}

#[test]
fn missing_baseline_is_a_usage_error() {
    let out = campaign(&["--quick", "--seeds", "4", "--check", "/nonexistent/base.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
