//! Direct unit tests for the Linear and Mach open semantics (control flow,
//! slot traffic, parameter access) on hand-written programs — independent of
//! the passes that normally produce them.

use backend::linear::{LinFunction, LinInst, LinProgram, LinearSem};
use backend::ltl::LOp;
use backend::mach::{MOp, MachFunction, MachInst, MachProgram, MachSem};
use compcerto_core::iface::{abi, LQuery, LReply, MQuery, MReply, Signature};
use compcerto_core::lts::{run, RunOutcome};
use compcerto_core::regs::{Loc, Locset, Mreg, NREGS};
use compcerto_core::symtab::{GlobKind, SymbolTable};
use mem::{Chunk, Mem, Val};
use minor::MBinop;

fn table(name: &str, sig: Signature) -> SymbolTable {
    let mut t = SymbolTable::new();
    t.define(name.into(), GlobKind::Func(sig));
    t
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

#[test]
fn linear_loop_with_labels() {
    // sum(n) via an explicit label/branch loop:
    //   r4 := 0; L0: if n == 0 goto L1; r4 += n; n -= 1; goto L0; L1: ret r4
    let r = |i: u8| Loc::Reg(Mreg(i));
    let f = LinFunction {
        name: "sum".into(),
        sig: Signature::int_fn(1),
        stack_size: 0,
        locals_size: 0,
        outgoing_size: 0,
        used_callee_save: vec![],
        debug: vec![],
        code: vec![
            LinInst::Op(LOp::Int(0), r(4)),
            LinInst::Label(0),
            LinInst::Op(
                LOp::BinopImm(MBinop::Cmp32(mem::Cmp::Eq), r(0), Val::Int(0)),
                r(5),
            ),
            LinInst::CondGoto(r(5), 1),
            LinInst::Op(LOp::Binop(MBinop::Add32, r(4), r(0)), r(4)),
            LinInst::Op(LOp::BinopImm(MBinop::Sub32, r(0), Val::Int(1)), r(0)),
            LinInst::Goto(0),
            LinInst::Label(1),
            LinInst::Op(LOp::Move(r(4)), r(0)),
            LinInst::Return,
        ],
    };
    let tbl = table("sum", Signature::int_fn(1));
    let sem = LinearSem::new(
        LinProgram {
            functions: vec![f],
            externs: vec![],
        },
        tbl.clone(),
    );
    let q = LQuery {
        vf: tbl.func_ptr("sum").unwrap(),
        sig: Signature::int_fn(1),
        ls: Locset::new().with(r(0), Val::Int(10)),
        mem: tbl.build_init_mem().unwrap(),
    };
    let reply = run(&sem, &q, &mut |_: &LQuery| None::<LReply>, 10_000).expect_complete();
    assert_eq!(reply.ls.get(Loc::Reg(abi::RESULT_REG)), Val::Int(55));
}

#[test]
fn linear_missing_label_goes_wrong() {
    let f = LinFunction {
        name: "f".into(),
        sig: Signature::int_fn(0),
        stack_size: 0,
        locals_size: 0,
        outgoing_size: 0,
        used_callee_save: vec![],
        debug: vec![],
        code: vec![LinInst::Goto(42), LinInst::Return],
    };
    let tbl = table("f", Signature::int_fn(0));
    let sem = LinearSem::new(
        LinProgram {
            functions: vec![f],
            externs: vec![],
        },
        tbl.clone(),
    );
    let q = LQuery {
        vf: tbl.func_ptr("f").unwrap(),
        sig: Signature::int_fn(0),
        ls: Locset::new(),
        mem: tbl.build_init_mem().unwrap(),
    };
    assert!(matches!(
        run(&sem, &q, &mut |_: &LQuery| None::<LReply>, 1000),
        RunOutcome::Wrong { .. }
    ));
}

#[test]
fn linear_incoming_slots_readable() {
    // Read a stack-passed parameter through its Incoming location.
    let f = LinFunction {
        name: "get5th".into(),
        sig: Signature::int_fn(5),
        stack_size: 0,
        locals_size: 0,
        outgoing_size: 0,
        used_callee_save: vec![],
        debug: vec![],
        code: vec![
            LinInst::Op(LOp::Move(Loc::Incoming(0)), Loc::Reg(abi::RESULT_REG)),
            LinInst::Return,
        ],
    };
    let tbl = table("get5th", Signature::int_fn(5));
    let sem = LinearSem::new(
        LinProgram {
            functions: vec![f],
            externs: vec![],
        },
        tbl.clone(),
    );
    // The caller's locset has the fifth argument in Outgoing(0); entering
    // the function shifts it to Incoming(0).
    let mut ls = Locset::new();
    for (i, l) in abi::loc_arguments(&Signature::int_fn(5))
        .into_iter()
        .enumerate()
    {
        ls.set(l, Val::Int(i as i32 * 10));
    }
    let q = LQuery {
        vf: tbl.func_ptr("get5th").unwrap(),
        sig: Signature::int_fn(5),
        ls,
        mem: tbl.build_init_mem().unwrap(),
    };
    let reply = run(&sem, &q, &mut |_: &LQuery| None::<LReply>, 1000).expect_complete();
    assert_eq!(reply.ls.get(Loc::Reg(abi::RESULT_REG)), Val::Int(40));
}

// ---------------------------------------------------------------------------
// Mach
// ---------------------------------------------------------------------------

fn mach_query(tbl: &SymbolTable, name: &str, rs: [Val; NREGS], mem: Mem, sp: Val) -> MQuery {
    MQuery {
        vf: tbl.func_ptr(name).unwrap(),
        sp,
        ra: Val::Undef,
        rs,
        mem,
    }
}

#[test]
fn mach_frame_slots_roundtrip() {
    // Spill a value to the frame and reload it.
    let f = MachFunction {
        name: "spill".into(),
        sig: Signature::int_fn(1),
        frame_size: 32,
        stackdata_ofs: 24,
        outgoing_ofs: 32,
        code: vec![
            MachInst::SetStack(Mreg(0), 16),
            MachInst::Op(MOp::Int(0), Mreg(0)),
            MachInst::GetStack(16, Mreg(1)),
            MachInst::Op(MOp::Move(Mreg(1)), Mreg(0)),
            MachInst::Return,
        ],
    };
    let tbl = table("spill", Signature::int_fn(1));
    let sem = MachSem::new(
        MachProgram {
            functions: vec![f],
            externs: vec![],
        },
        tbl.clone(),
    );
    let mut rs = [Val::Undef; NREGS];
    rs[0] = Val::Int(77);
    let mut mem = tbl.build_init_mem().unwrap();
    let spb = mem.alloc(0, 0);
    let q = mach_query(&tbl, "spill", rs, mem, Val::Ptr(spb, 0));
    let reply = run(&sem, &q, &mut |_: &MQuery| None::<MReply>, 1000).expect_complete();
    assert_eq!(reply.rs[abi::RESULT_REG.index()], Val::Int(77));
}

#[test]
fn mach_getparam_reads_callers_region() {
    let f = MachFunction {
        name: "param".into(),
        sig: Signature::int_fn(5),
        frame_size: 16,
        stackdata_ofs: 16,
        outgoing_ofs: 16,
        code: vec![MachInst::GetParam(0, Mreg(0)), MachInst::Return],
    };
    let tbl = table("param", Signature::int_fn(5));
    let sem = MachSem::new(
        MachProgram {
            functions: vec![f],
            externs: vec![],
        },
        tbl.clone(),
    );
    let mut mem = tbl.build_init_mem().unwrap();
    let spb = mem.alloc(0, 8);
    mem.store(Chunk::Any64, spb, 0, Val::Int(123)).unwrap();
    let q = mach_query(&tbl, "param", [Val::Undef; NREGS], mem, Val::Ptr(spb, 0));
    let reply = run(&sem, &q, &mut |_: &MQuery| None::<MReply>, 1000).expect_complete();
    assert_eq!(reply.rs[abi::RESULT_REG.index()], Val::Int(123));
}

#[test]
fn mach_frames_freed_on_return() {
    let f = MachFunction {
        name: "noop".into(),
        sig: Signature::int_fn(0),
        frame_size: 64,
        stackdata_ofs: 16,
        outgoing_ofs: 64,
        code: vec![MachInst::Op(MOp::Int(0), Mreg(0)), MachInst::Return],
    };
    let tbl = table("noop", Signature::int_fn(0));
    let sem = MachSem::new(
        MachProgram {
            functions: vec![f],
            externs: vec![],
        },
        tbl.clone(),
    );
    let mut mem = tbl.build_init_mem().unwrap();
    let spb = mem.alloc(0, 0);
    let before = mem.next_block();
    let q = mach_query(&tbl, "noop", [Val::Undef; NREGS], mem, Val::Ptr(spb, 0));
    let reply = run(&sem, &q, &mut |_: &MQuery| None::<MReply>, 1000).expect_complete();
    // Exactly one frame allocated, and it is gone at return.
    assert_eq!(reply.mem.next_block(), before + 1);
    assert!(!reply.mem.valid_block(before));
}

#[test]
fn mach_frame_address_points_at_stackdata() {
    // FrameAddr + Store/Load through the merged stack data.
    let f = MachFunction {
        name: "sd".into(),
        sig: Signature::int_fn(1),
        frame_size: 48,
        stackdata_ofs: 24,
        outgoing_ofs: 48,
        code: vec![
            MachInst::Op(MOp::FrameAddr(24), Mreg(1)),
            MachInst::Store(Chunk::I32, Mreg(1), 0, Mreg(0)),
            MachInst::Op(MOp::Int(0), Mreg(0)),
            MachInst::Load(Chunk::I32, Mreg(1), 0, Mreg(0)),
            MachInst::Return,
        ],
    };
    let tbl = table("sd", Signature::int_fn(1));
    let sem = MachSem::new(
        MachProgram {
            functions: vec![f],
            externs: vec![],
        },
        tbl.clone(),
    );
    let mut rs = [Val::Undef; NREGS];
    rs[0] = Val::Int(31);
    let mut mem = tbl.build_init_mem().unwrap();
    let spb = mem.alloc(0, 0);
    let q = mach_query(&tbl, "sd", rs, mem, Val::Ptr(spb, 0));
    let reply = run(&sem, &q, &mut |_: &MQuery| None::<MReply>, 1000).expect_complete();
    assert_eq!(reply.rs[abi::RESULT_REG.index()], Val::Int(31));
}
