//! The remaining Table 3 rows checked at their exact conventions: the
//! L-interface passes (`Tunneling : ext ↠ ext`, `Linearize`/`CleanupLabels`/
//! `Debugvar : id ↠ id`) via the differential simulation checker.

use backend::{allocation, cleanup_labels, debugvar, linearize, tunneling, LinearSem, LtlSem};
use compcerto_core::cklr::{CklrL, Ext};
use compcerto_core::conv::IdConv;
use compcerto_core::iface::{abi, LQuery, LReply, Signature, L};
use compcerto_core::lts::Env;
use compcerto_core::regs::{Loc, Locset, Mreg};
use compcerto_core::sim::check_fwd_sim;
use compcerto_core::symtab::SymbolTable;
use mem::Val;

/// Build the LTL program for a source text (front end + allocation).
fn to_ltl(src: &str) -> (backend::LtlProgram, SymbolTable) {
    use clight::{build_symtab, parse, simpl_locals, typecheck};
    use minor::{cminorgen, cshmgen, selection};
    let p = simpl_locals(&typecheck(&parse(src).unwrap()).unwrap());
    let r = rtl::renumber(&rtl::rtlgen(&selection(
        &cminorgen(&cshmgen(&p).unwrap()).unwrap(),
    )));
    let tbl = build_symtab(&[&p]).unwrap();
    (allocation(&r), tbl)
}

fn l_query(tbl: &SymbolTable, fname: &str, sig: Signature, args: &[Val]) -> LQuery {
    let mut ls = Locset::new();
    for (v, l) in args.iter().zip(abi::loc_arguments(&sig)) {
        ls.set(l, *v);
    }
    // Callee-save sentinels make preservation observable.
    for (i, r) in abi::CALLEE_SAVE.iter().enumerate() {
        ls.set(Loc::Reg(*r), Val::Long(4000 + i as i64));
    }
    LQuery {
        vf: tbl.func_ptr(fname).unwrap(),
        sig,
        ls,
        mem: tbl.build_init_mem().unwrap(),
    }
}

fn l_env() -> impl FnMut(&LQuery) -> Option<LReply> {
    |m: &LQuery| {
        let mut ls = Locset::new();
        for r in Mreg::all() {
            if abi::is_callee_save(r) {
                ls.set(Loc::Reg(r), m.ls.get(Loc::Reg(r)));
            }
        }
        let x = m.ls.get(Loc::Reg(abi::PARAM_REGS[0]));
        ls.set(Loc::Reg(abi::RESULT_REG), x.add(Val::Int(1)));
        Some(LReply {
            ls,
            mem: m.mem.clone(),
        })
    }
}

const SRC: &str = "
    extern int inc(int);
    int entry(int a, int b) {
        int c; int d; int r;
        c = a * b;
        if (c > 10) { d = c - a; } else { d = c + b; }
        r = inc(d);
        return r + c;
    }";

#[test]
fn tunneling_at_ext_l() {
    let (ltl, tbl) = to_ltl(SRC);
    let tunneled = tunneling(&ltl);
    let sig = ltl.function("entry").unwrap().sig.clone();
    let q = l_query(&tbl, "entry", sig, &[Val::Int(4), Val::Int(7)]);
    let ext_l = CklrL { k: Ext };
    let mut env = l_env();
    let env: &mut Env<'_, LQuery, LReply> = &mut env;
    check_fwd_sim(
        &LtlSem::new(ltl, tbl.clone()),
        &LtlSem::new(tunneled, tbl),
        &ext_l,
        &ext_l,
        &q,
        env,
        1_000_000,
    )
    .expect("Tunneling simulation at ext ↠ ext (L interface)");
}

#[test]
fn linearize_cleanup_debugvar_at_id_l() {
    let (ltl, tbl) = to_ltl(SRC);
    let tunneled = tunneling(&ltl);
    let lin0 = linearize(&tunneled);
    let lin1 = cleanup_labels(&lin0);
    let lin2 = debugvar(&lin1);
    let sig = ltl.function("entry").unwrap().sig.clone();
    let q = l_query(&tbl, "entry", sig, &[Val::Int(3), Val::Int(9)]);
    let id = IdConv::<L>::new();
    let mut env = l_env();
    let env: &mut Env<'_, LQuery, LReply> = &mut env;

    // Linearize: LTL vs Linear at id ↠ id.
    check_fwd_sim(
        &LtlSem::new(tunneled, tbl.clone()),
        &LinearSem::new(lin0.clone(), tbl.clone()),
        &id,
        &id,
        &q,
        env,
        1_000_000,
    )
    .expect("Linearize simulation at id ↠ id");

    // CleanupLabels and Debugvar: Linear vs Linear at id ↠ id.
    let mut env = l_env();
    let env: &mut Env<'_, LQuery, LReply> = &mut env;
    check_fwd_sim(
        &LinearSem::new(lin0, tbl.clone()),
        &LinearSem::new(lin1.clone(), tbl.clone()),
        &id,
        &id,
        &q,
        env,
        1_000_000,
    )
    .expect("CleanupLabels simulation at id ↠ id");

    let mut env = l_env();
    let env: &mut Env<'_, LQuery, LReply> = &mut env;
    check_fwd_sim(
        &LinearSem::new(lin1, tbl.clone()),
        &LinearSem::new(lin2, tbl),
        &id,
        &id,
        &q,
        env,
        1_000_000,
    )
    .expect("Debugvar simulation at id ↠ id");
}

#[test]
fn tunneling_detects_broken_redirect() {
    // Sabotage the tunneled program: make one branch target wrong.
    let (ltl, tbl) = to_ltl(SRC);
    let mut bad = tunneling(&ltl);
    let f = bad
        .functions
        .iter_mut()
        .find(|f| f.name == "entry")
        .unwrap();
    // Redirect the first conditional's then-branch to its else-branch.
    for inst in f.code.values_mut() {
        if let backend::LtlInst::Cond(_, t, e) = inst {
            if t != e {
                *t = *e;
                break;
            }
        }
    }
    let sig = ltl.function("entry").unwrap().sig.clone();
    let q = l_query(&tbl, "entry", sig, &[Val::Int(4), Val::Int(7)]);
    let ext_l = CklrL { k: Ext };
    let mut env = l_env();
    let env: &mut Env<'_, LQuery, LReply> = &mut env;
    let res = check_fwd_sim(
        &LtlSem::new(ltl, tbl.clone()),
        &LtlSem::new(bad, tbl),
        &ext_l,
        &ext_l,
        &q,
        env,
        1_000_000,
    );
    assert!(res.is_err(), "broken redirect must be caught");
}
