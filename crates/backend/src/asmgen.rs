//! The `Asmgen` pass: emit Asm-O code from Mach
//! (paper Table 3, convention `ext·MA ↠ ext·MA`; App. C.3).
//!
//! Each function gets a prologue (`AllocFrame` + `SaveRa`) and epilogue
//! (`RestoreRa` + `FreeFrame` + `Ret`); around calls, `sp` is temporarily
//! advanced to the outgoing-arguments area so the callee's incoming `sp`
//! matches the `M`-level convention.
//!
//! `asmgen` also returns the *return-address map* used to build the
//! [`crate::mach::RaOracle`] (CompCert's `return_address_offset`): for each
//! Mach call site, the Asm-level address execution resumes at — this is what
//! lets the `MA` convention require `ra` equality between the two levels.

use std::collections::BTreeMap;
use std::sync::Arc;

use compcerto_core::symtab::SymbolTable;
use mem::{Chunk, Val};

use crate::asm::{AsmFunction, AsmInst, AsmProgram};
use crate::mach::{MOp, MachFunction, MachInst, MachProgram, RaOracle};

/// Map from (function, Mach pc of a call) to the Asm instruction index at
/// which execution resumes after the call.
pub type RaMap = BTreeMap<(String, usize), i64>;

/// Offset of the return-address save slot (fixed by `Stacking`'s layout).
const RA_SLOT: i64 = 8;

/// Lower a Mach program to Asm-O, returning the return-address map.
pub fn asmgen(prog: &MachProgram) -> (AsmProgram, RaMap) {
    let mut ra_map = RaMap::new();
    let functions = prog
        .functions
        .iter()
        .map(|f| gen_function(f, &mut ra_map))
        .collect();
    (
        AsmProgram {
            functions,
            externs: prog.externs.clone(),
        },
        ra_map,
    )
}

/// Build the oracle for [`crate::mach::MachSem::with_ra_oracle`] from the
/// return-address map.
pub fn make_ra_oracle(ra_map: RaMap, symtab: SymbolTable) -> RaOracle {
    Arc::new(move |fname: &str, mach_pc: usize| {
        match (
            ra_map.get(&(fname.to_string(), mach_pc)),
            symtab.block_of(fname),
        ) {
            (Some(idx), Some(b)) => Val::Ptr(b, *idx),
            _ => Val::Undef,
        }
    })
}

fn gen_function(f: &MachFunction, ra_map: &mut RaMap) -> AsmFunction {
    let mut code: Vec<AsmInst> = Vec::new();
    code.push(AsmInst::AllocFrame(f.frame_size));
    code.push(AsmInst::SaveRa(RA_SLOT));
    for (mach_pc, inst) in f.code.iter().enumerate() {
        match inst {
            MachInst::Label(l) => code.push(AsmInst::Label(*l)),
            MachInst::Goto(l) => code.push(AsmInst::Jmp(*l)),
            MachInst::CondGoto(r, l) => code.push(AsmInst::Jcc(*r, *l)),
            MachInst::Op(op, dst) => match op {
                MOp::Move(s) => code.push(AsmInst::Mov(*dst, *s)),
                MOp::Int(n) => code.push(AsmInst::MovImm32(*dst, *n)),
                MOp::Long(n) => code.push(AsmInst::MovImm64(*dst, *n)),
                MOp::AddrGlobal(s, d) => code.push(AsmInst::LoadSym(*dst, s.clone(), *d)),
                MOp::FrameAddr(o) => code.push(AsmInst::LeaSp(*dst, *o)),
                MOp::Unop(m, a) => code.push(AsmInst::Unop(*m, *dst, *a)),
                MOp::Binop(m, a, b) => code.push(AsmInst::Binop(*m, *dst, *a, *b)),
                MOp::BinopImm(m, a, i) => code.push(AsmInst::BinopImm(*m, *dst, *a, *i)),
            },
            MachInst::Load(c, base, disp, dst) => {
                code.push(AsmInst::Load(*c, *dst, *base, *disp));
            }
            MachInst::Store(c, base, disp, src) => {
                code.push(AsmInst::Store(*c, *src, *base, *disp));
            }
            MachInst::GetStack(o, dst) => code.push(AsmInst::LoadSp(Chunk::Any64, *dst, *o)),
            MachInst::SetStack(src, o) => code.push(AsmInst::StoreSp(Chunk::Any64, *src, *o)),
            MachInst::GetParam(o, dst) => {
                // The parent sp sits in the link slot; use dst as carrier.
                code.push(AsmInst::LoadSp(Chunk::Any64, *dst, 0));
                code.push(AsmInst::Load(Chunk::Any64, *dst, *dst, *o));
            }
            MachInst::Call(callee, _sig) => {
                code.push(AsmInst::AddSp(f.outgoing_ofs));
                let call_idx = code.len() as i64;
                code.push(AsmInst::Call(callee.clone()));
                // Execution resumes at the instruction after the call.
                ra_map.insert((f.name.clone(), mach_pc), call_idx + 1);
                code.push(AsmInst::AddSp(-f.outgoing_ofs));
            }
            MachInst::Return => {
                code.push(AsmInst::RestoreRa(RA_SLOT));
                code.push(AsmInst::FreeFrame(f.frame_size));
                code.push(AsmInst::Ret);
            }
        }
    }
    AsmFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::AsmSem;
    use crate::mach::MachSem;
    use crate::stacking::{stacking, tests::backend_to_linear};
    use compcerto_core::cc::Ma;
    use compcerto_core::conv::SimConv;
    use compcerto_core::iface::{abi, ARegs, MQuery, MReply, Signature};
    use compcerto_core::lts::run;
    use compcerto_core::regs::NREGS;
    use compcerto_core::symtab::SymbolTable;
    use mem::{extends, Chunk, Val};

    fn make_mquery(tbl: &SymbolTable, fname: &str, sig: &Signature, args: &[Val]) -> MQuery {
        let mut m = tbl.build_init_mem().unwrap();
        let asize = abi::size_arguments(sig);
        let spb = m.alloc(0, asize.max(0));
        for (i, v) in args.iter().enumerate().skip(abi::PARAM_REGS.len()) {
            let ofs = ((i - abi::PARAM_REGS.len()) as i64) * 8;
            m.store(Chunk::Any64, spb, ofs, *v).unwrap();
        }
        let rab = m.alloc(0, 0);
        let mut rs = [Val::Undef; NREGS];
        for (i, v) in args.iter().enumerate().take(abi::PARAM_REGS.len()) {
            rs[abi::PARAM_REGS[i].index()] = *v;
        }
        for (i, r) in abi::CALLEE_SAVE.iter().enumerate() {
            rs[r.index()] = Val::Long(9000 + i as i64);
        }
        MQuery {
            vf: tbl.func_ptr(fname).unwrap(),
            sp: Val::Ptr(spb, 0),
            ra: Val::Ptr(rab, 0),
            rs,
            mem: m,
        }
    }

    /// Differential check for `Asmgen` under `ext·MA`: MA-related questions
    /// produce replies with equal-or-refined registers, `pc = ra`, `sp`
    /// restored, and extension-related memories.
    fn differential(src: &str, fname: &str, args: Vec<Val>) -> ARegs {
        let (lin, tbl) = backend_to_linear(src);
        let mach = stacking(&lin).unwrap();
        let (asm, ra_map) = asmgen(&mach);
        let oracle = make_ra_oracle(ra_map, tbl.clone());

        let sig = lin.function(fname).unwrap().sig.clone();
        let qm = make_mquery(&tbl, fname, &sig, &args);
        let (w, qa) = Ma.transport_query(&qm).expect("MA marshals");
        assert_eq!(Ma.match_query(&qm, &qa).len(), 1);

        let s1 = MachSem::new(mach, tbl.clone()).with_ra_oracle(oracle);
        let s2 = AsmSem::new(asm, tbl);
        let r1 = run(&s1, &qm, &mut |_: &MQuery| None::<MReply>, 4_000_000).expect_complete();
        let r2 = run(&s2, &qa, &mut |_: &ARegs| None::<ARegs>, 4_000_000).expect_complete();

        // Control returned to the environment's return address, stack intact.
        assert_eq!(r2.rs.pc, w.ra);
        assert_eq!(r2.rs.sp, w.sp);
        // Registers refined pointwise (Mach leaves more Undefs around).
        for i in 0..NREGS {
            assert!(
                r1.rs[i].lessdef(&r2.rs.regs[i]),
                "r{i} differs: {} vs {}",
                r1.rs[i],
                r2.rs.regs[i]
            );
        }
        // Memories extension-related: Asm writes links and return addresses
        // into slots Mach leaves undefined.
        assert!(extends(&r1.mem, &r2.mem), "memories not ext-related");
        r2
    }

    #[test]
    fn straightline() {
        let r = differential(
            "int f(int a, int b) { return (a + b) * (a - b); }",
            "f",
            vec![Val::Int(10), Val::Int(4)],
        );
        assert_eq!(r.rs.get(abi::RESULT_REG), Val::Int(84));
    }

    #[test]
    fn loops_and_memory() {
        let src = "
            long f(long n) {
                long a[4]; long s; int i;
                for (i = 0; i < 4; i = i + 1) { a[i] = n * (long) (i + 1); }
                s = 0L;
                for (i = 0; i < 4; i = i + 1) { s = s + a[i]; }
                return s;
            }";
        let r = differential(src, "f", vec![Val::Long(3)]);
        assert_eq!(r.rs.get(abi::RESULT_REG), Val::Long(30));
    }

    #[test]
    fn internal_calls_and_ra_discipline() {
        let src = "
            int dbl(int x) { return x + x; }
            int f(int a) { int b; int c; b = dbl(a); c = dbl(b); return c + 1; }";
        let r = differential(src, "f", vec![Val::Int(5)]);
        assert_eq!(r.rs.get(abi::RESULT_REG), Val::Int(21));
    }

    #[test]
    fn callee_save_preserved_at_machine_level() {
        let src = "
            int id(int x) { return x; }
            int f(int a) { int b; b = id(a); return a + b; }";
        let r = differential(src, "f", vec![Val::Int(8)]);
        for (i, reg) in abi::CALLEE_SAVE.iter().enumerate() {
            assert_eq!(r.rs.get(*reg), Val::Long(9000 + i as i64));
        }
        assert_eq!(r.rs.get(abi::RESULT_REG), Val::Int(16));
    }

    #[test]
    fn stack_args_through_the_whole_backend() {
        let src = "
            int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b + c + d + e + f;
            }
            int g(int x) { int r; r = sum6(x, 2, 3, 4, 5, 6); return r; }";
        let r = differential(src, "g", vec![Val::Int(1)]);
        assert_eq!(r.rs.get(abi::RESULT_REG), Val::Int(21));
    }

    #[test]
    fn recursion_at_machine_level() {
        let src = "
            int fib(int n) {
                int a; int b;
                if (n < 2) { return n; }
                a = fib(n - 1);
                b = fib(n - 2);
                return a + b;
            }";
        let r = differential(src, "fib", vec![Val::Int(10)]);
        assert_eq!(r.rs.get(abi::RESULT_REG), Val::Int(55));
    }
}
