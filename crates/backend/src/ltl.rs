//! LTL: RTL after register allocation — operands are abstract *locations*
//! (machine registers and stack slots), and calls use the fixed ABI
//! locations (paper Table 3; language interface `L`, Table 2).
//!
//! The semantics models the callee-save guarantee relationally, as CompCert
//! does: when control returns (to a caller or to the environment), callee-save
//! registers are forced back to the values the caller had
//! (`return_regs`), so a miscompiled component that clobbers them is caught
//! by the `CL`/`LM` convention checks rather than silently propagated.

use std::collections::BTreeMap;

use compcerto_core::iface::{abi, LQuery, LReply, Signature, L};
use compcerto_core::lts::{Lts, Step, Stuck};
use compcerto_core::regs::{Loc, Locset, Mreg};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Mem, Val};
use minor::{MBinop, MUnop};

/// A CFG node.
pub type Node = u32;

/// Pure operations over locations.
#[derive(Debug, Clone, PartialEq)]
pub enum LOp {
    /// Copy a location.
    Move(Loc),
    /// 32-bit constant.
    Int(i32),
    /// 64-bit constant.
    Long(i64),
    /// Global address plus displacement.
    AddrGlobal(Ident, i64),
    /// Address within the activation's stack-data block.
    AddrStack(i64),
    /// Unary operation.
    Unop(MUnop, Loc),
    /// Binary operation.
    Binop(MBinop, Loc, Loc),
    /// Binary operation with immediate.
    BinopImm(MBinop, Loc, Val),
}

/// LTL instructions (CFG form).
#[derive(Debug, Clone, PartialEq)]
pub enum LtlInst {
    /// `dst := op`.
    Op(LOp, Loc, Node),
    /// `dst := chunk[addr_loc + disp]`.
    Load(Chunk, Loc, i64, Loc, Node),
    /// `chunk[addr_loc + disp] := src`.
    Store(Chunk, Loc, i64, Loc, Node),
    /// Call through the ABI locations (arguments pre-placed, result in the
    /// result register).
    Call(Ident, Signature, Node),
    /// Branch on the truth of a location.
    Cond(Loc, Node, Node),
    /// No-op.
    Nop(Node),
    /// Return (result pre-placed in the result register).
    Return,
}

impl LtlInst {
    /// Successors in the CFG.
    pub fn successors(&self) -> Vec<Node> {
        match self {
            LtlInst::Op(_, _, n)
            | LtlInst::Load(_, _, _, _, n)
            | LtlInst::Store(_, _, _, _, n)
            | LtlInst::Call(_, _, n)
            | LtlInst::Nop(n) => vec![*n],
            LtlInst::Cond(_, t, f) => vec![*t, *f],
            LtlInst::Return => vec![],
        }
    }
}

/// An LTL function.
#[derive(Debug, Clone, PartialEq)]
pub struct LtlFunction {
    /// Name.
    pub name: Ident,
    /// Signature.
    pub sig: Signature,
    /// Stack-data block size (from Cminor).
    pub stack_size: i64,
    /// Size of the spill area (`Local` slots), in bytes.
    pub locals_size: i64,
    /// Size of the outgoing-arguments area, in bytes.
    pub outgoing_size: i64,
    /// Callee-save registers this function may write.
    pub used_callee_save: Vec<Mreg>,
    /// Entry node.
    pub entry: Node,
    /// The CFG.
    pub code: BTreeMap<Node, LtlInst>,
}

/// An LTL translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LtlProgram {
    /// Function definitions.
    pub functions: Vec<LtlFunction>,
    /// Known externals.
    pub externs: Vec<(Ident, Signature)>,
}

impl LtlProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&LtlFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Signature of a definition or external.
    pub fn sig_of(&self, name: &str) -> Option<Signature> {
        self.function(name).map(|f| f.sig.clone()).or_else(|| {
            self.externs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
        })
    }

    /// Map functions through `f`.
    pub fn map_functions(&self, f: impl Fn(&LtlFunction) -> LtlFunction) -> LtlProgram {
        LtlProgram {
            functions: self.functions.iter().map(f).collect(),
            externs: self.externs.clone(),
        }
    }
}

/// `return_regs caller callee` (CompCert): callee-save registers come from
/// the caller's location map (modelling their preservation), everything else
/// from the callee's; stack slots come from the caller.
pub fn return_regs(caller: &Locset, callee: &Locset) -> Locset {
    let mut out = Locset::new();
    for (l, v) in caller.iter() {
        out.set(l, v);
    }
    for r in Mreg::all() {
        if abi::is_callee_save(r) {
            out.set(Loc::Reg(r), caller.get(Loc::Reg(r)));
        } else {
            out.set(Loc::Reg(r), callee.get(Loc::Reg(r)));
        }
    }
    out
}

/// An LTL activation.
#[derive(Debug, Clone)]
pub struct LtlFrame {
    fname: Ident,
    pc: Node,
    ls: Locset,
    /// Location map at entry (for `return_regs` on the way out).
    entry_ls: Locset,
    sp: BlockId,
}

/// States of the LTL LTS.
#[derive(Debug, Clone)]
pub enum LtlState {
    /// Entering an internal function.
    Call {
        /// Callee.
        fname: Ident,
        /// Locations at the call.
        ls: Locset,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<LtlFrame>,
    },
    /// Executing.
    Exec {
        /// Active frame.
        cur: LtlFrame,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<LtlFrame>,
    },
    /// Suspended on an external call.
    External {
        /// The question.
        q: LQuery,
        /// Active frame.
        cur: LtlFrame,
        /// Suspended callers.
        stack: Vec<LtlFrame>,
    },
    /// Returning: the callee's final location map propagates to the caller.
    Ret {
        /// Callee's final locations.
        ls: Locset,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<LtlFrame>,
    },
}

/// The open semantics `LTL(p) : L ↠ L`.
#[derive(Debug, Clone)]
pub struct LtlSem {
    prog: LtlProgram,
    symtab: SymbolTable,
    label: String,
}

impl LtlSem {
    /// Wrap a program with the shared symbol table.
    pub fn new(prog: LtlProgram, symtab: SymbolTable) -> LtlSem {
        LtlSem {
            prog,
            symtab,
            label: "LTL".into(),
        }
    }

    /// Override the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> LtlSem {
        self.label = label.into();
        self
    }

    /// The program.
    pub fn program(&self) -> &LtlProgram {
        &self.prog
    }

    /// The symbol table.
    pub fn symtab(&self) -> &SymbolTable {
        &self.symtab
    }

    fn stuck<T>(&self, msg: impl Into<String>) -> Result<T, Stuck> {
        Err(Stuck::new(format!("{}: {}", self.label, msg.into())))
    }

    fn eval_op(&self, frame: &LtlFrame, op: &LOp) -> Result<Val, Stuck> {
        Ok(match op {
            LOp::Move(l) => frame.ls.get(*l),
            LOp::Int(n) => Val::Int(*n),
            LOp::Long(n) => Val::Long(*n),
            LOp::AddrGlobal(s, d) => match self.symtab.block_of(s) {
                Some(b) => Val::Ptr(b, *d),
                None => return self.stuck(format!("unknown symbol `{s}`")),
            },
            LOp::AddrStack(o) => Val::Ptr(frame.sp, *o),
            LOp::Unop(m, l) => m.eval(frame.ls.get(*l)),
            LOp::Binop(m, a, b) => m.eval(frame.ls.get(*a), frame.ls.get(*b)),
            LOp::BinopImm(m, a, i) => m.eval(frame.ls.get(*a), *i),
        })
    }

    fn exec_inst(
        &self,
        f: &LtlFunction,
        cur: &LtlFrame,
        mem: &Mem,
        stack: &[LtlFrame],
    ) -> Result<LtlState, Stuck> {
        let Some(inst) = f.code.get(&cur.pc) else {
            return self.stuck(format!("no instruction at {}:{}", cur.fname, cur.pc));
        };
        match inst {
            LtlInst::Nop(n) => Ok(LtlState::Exec {
                cur: LtlFrame {
                    pc: *n,
                    ..cur.clone()
                },
                mem: mem.clone(),
                stack: stack.to_vec(),
            }),
            LtlInst::Op(op, dst, n) => {
                let v = self.eval_op(cur, op)?;
                let mut frame = cur.clone();
                frame.ls.set(*dst, v);
                frame.pc = *n;
                Ok(LtlState::Exec {
                    cur: frame,
                    mem: mem.clone(),
                    stack: stack.to_vec(),
                })
            }
            LtlInst::Load(chunk, base, disp, dst, n) => {
                let addr = cur.ls.get(*base).add(Val::Long(*disp));
                let v = match mem.loadv(*chunk, addr) {
                    Ok(v) => v,
                    Err(e) => return self.stuck(format!("load failed: {e}")),
                };
                let mut frame = cur.clone();
                frame.ls.set(*dst, v);
                frame.pc = *n;
                Ok(LtlState::Exec {
                    cur: frame,
                    mem: mem.clone(),
                    stack: stack.to_vec(),
                })
            }
            LtlInst::Store(chunk, base, disp, src, n) => {
                let addr = cur.ls.get(*base).add(Val::Long(*disp));
                let mut mem = mem.clone();
                if let Err(e) = mem.storev(*chunk, addr, cur.ls.get(*src)) {
                    return self.stuck(format!("store failed: {e}"));
                }
                Ok(LtlState::Exec {
                    cur: LtlFrame {
                        pc: *n,
                        ..cur.clone()
                    },
                    mem,
                    stack: stack.to_vec(),
                })
            }
            LtlInst::Cond(l, t, e) => match cur.ls.get(*l).truth() {
                Some(b) => Ok(LtlState::Exec {
                    cur: LtlFrame {
                        pc: if b { *t } else { *e },
                        ..cur.clone()
                    },
                    mem: mem.clone(),
                    stack: stack.to_vec(),
                }),
                None => self.stuck("undefined branch condition"),
            },
            LtlInst::Call(callee, sig, _) => {
                if self.prog.function(callee).is_some() {
                    let mut stack = stack.to_vec();
                    stack.push(cur.clone());
                    Ok(LtlState::Call {
                        fname: callee.clone(),
                        ls: cur.ls.clone(),
                        mem: mem.clone(),
                        stack,
                    })
                } else {
                    let Some(vf) = self.symtab.func_ptr(callee) else {
                        return self.stuck(format!("unknown callee `{callee}`"));
                    };
                    Ok(LtlState::External {
                        q: LQuery {
                            vf,
                            sig: sig.clone(),
                            ls: cur.ls.clone(),
                            mem: mem.clone(),
                        },
                        cur: cur.clone(),
                        stack: stack.to_vec(),
                    })
                }
            }
            LtlInst::Return => {
                let mut mem = mem.clone();
                if let Err(e) = mem.free(cur.sp, 0, f.stack_size) {
                    return self.stuck(format!("freeing stack data: {e}"));
                }
                // The caller (or environment) sees callee-save registers
                // restored per `return_regs`.
                let ls = return_regs(&cur.entry_ls, &cur.ls);
                Ok(LtlState::Ret {
                    ls,
                    mem,
                    stack: stack.to_vec(),
                })
            }
        }
    }
}

impl Lts for LtlSem {
    type I = L;
    type O = L;
    type State = LtlState;

    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, q: &LQuery) -> bool {
        match &q.vf {
            Val::Ptr(b, 0) => match self.symtab.ident_of(*b) {
                Some(name) => self
                    .prog
                    .function(name)
                    .map(|f| f.sig == q.sig)
                    .unwrap_or(false),
                None => false,
            },
            _ => false,
        }
    }

    fn initial(&self, q: &LQuery) -> Result<LtlState, Stuck> {
        if !self.accepts(q) {
            return self.stuck("query not accepted");
        }
        let Val::Ptr(b, 0) = q.vf else {
            return self.stuck("accepted query has a non-pointer vf");
        };
        let Some(name) = self.symtab.ident_of(b) else {
            return self.stuck("accepted query names an unknown block");
        };
        Ok(LtlState::Call {
            fname: name.to_string(),
            ls: q.ls.clone(),
            mem: q.mem.clone(),
            stack: vec![],
        })
    }

    fn step(&self, s: &LtlState) -> Step<LtlState, LQuery, LReply> {
        match s {
            LtlState::Call {
                fname,
                ls,
                mem,
                stack,
            } => {
                let Some(f) = self.prog.function(fname) else {
                    return Step::Stuck(Stuck::new(format!("unknown function `{fname}`")));
                };
                let mut mem = mem.clone();
                let sp = mem.alloc(0, f.stack_size);
                // Callee view: the caller's outgoing slots become incoming.
                let entry_ls = ls.shift_incoming();
                Step::Internal(
                    LtlState::Exec {
                        cur: LtlFrame {
                            fname: fname.clone(),
                            pc: f.entry,
                            ls: entry_ls.clone(),
                            entry_ls,
                            sp,
                        },
                        mem,
                        stack: stack.clone(),
                    },
                    vec![],
                )
            }
            LtlState::Exec { cur, mem, stack } => {
                let Some(f) = self.prog.function(&cur.fname) else {
                    return Step::Stuck(Stuck::new("frame names unknown function"));
                };
                match self.exec_inst(f, cur, mem, stack) {
                    Ok(next) => Step::Internal(next, vec![]),
                    Err(stuck) => Step::Stuck(stuck),
                }
            }
            LtlState::Ret { ls, mem, stack } => {
                if stack.is_empty() {
                    return Step::Final(LReply {
                        ls: ls.clone(),
                        mem: mem.clone(),
                    });
                }
                let mut stack = stack.clone();
                let Some(mut caller) = stack.pop() else {
                    return Step::Stuck(Stuck::new("return with no caller frame"));
                };
                let Some(cf) = self.prog.function(&caller.fname) else {
                    return Step::Stuck(Stuck::new("caller frame names unknown function"));
                };
                let Some(LtlInst::Call(_, _, next)) = cf.code.get(&caller.pc) else {
                    return Step::Stuck(Stuck::new("caller pc is not at a call"));
                };
                caller.ls = return_regs(&caller.ls, ls);
                caller.pc = *next;
                Step::Internal(
                    LtlState::Exec {
                        cur: caller,
                        mem: mem.clone(),
                        stack,
                    },
                    vec![],
                )
            }
            LtlState::External { q, .. } => Step::External(q.clone()),
        }
    }

    fn resume(&self, s: &LtlState, a: LReply) -> Result<LtlState, Stuck> {
        match s {
            LtlState::External { cur, stack, .. } => {
                let Some(f) = self.prog.function(&cur.fname) else {
                    return self.stuck("frame names unknown function");
                };
                let Some(LtlInst::Call(_, _, next)) = f.code.get(&cur.pc) else {
                    return self.stuck("external frame pc is not at a call");
                };
                let mut frame = cur.clone();
                frame.ls = return_regs(&cur.ls, &a.ls);
                frame.pc = *next;
                Ok(LtlState::Exec {
                    cur: frame,
                    mem: a.mem,
                    stack: stack.clone(),
                })
            }
            _ => self.stuck("resume in non-external state"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::lts::run;
    use compcerto_core::symtab::GlobKind;

    /// `int addmul(a, b) = a * b + a`, hand-allocated:
    /// args in r0, r1; result in r0.
    fn sample() -> (LtlSem, Mem) {
        let r = |i: u8| Loc::Reg(Mreg(i));
        let mut code = BTreeMap::new();
        code.insert(
            0,
            LtlInst::Op(LOp::Binop(MBinop::Mul32, r(0), r(1)), r(4), 1),
        );
        code.insert(
            1,
            LtlInst::Op(LOp::Binop(MBinop::Add32, r(4), r(0)), r(0), 2),
        );
        code.insert(2, LtlInst::Return);
        let f = LtlFunction {
            name: "addmul".into(),
            sig: Signature::int_fn(2),
            stack_size: 0,
            locals_size: 0,
            outgoing_size: 0,
            used_callee_save: vec![],
            entry: 0,
            code,
        };
        let prog = LtlProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("addmul".into(), GlobKind::Func(Signature::int_fn(2)));
        let mem = tbl.build_init_mem().unwrap();
        (LtlSem::new(prog, tbl), mem)
    }

    #[test]
    fn executes_with_abi_locations() {
        let (sem, mem) = sample();
        let ls = Locset::new()
            .with(Loc::Reg(Mreg(0)), Val::Int(6))
            .with(Loc::Reg(Mreg(1)), Val::Int(7));
        let q = LQuery {
            vf: sem.symtab().func_ptr("addmul").unwrap(),
            sig: Signature::int_fn(2),
            ls,
            mem,
        };
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.ls.get(Loc::Reg(abi::RESULT_REG)), Val::Int(48));
    }

    #[test]
    fn callee_save_registers_are_restored() {
        let (sem, mem) = sample();
        let ls = Locset::new()
            .with(Loc::Reg(Mreg(0)), Val::Int(1))
            .with(Loc::Reg(Mreg(1)), Val::Int(2))
            .with(Loc::Reg(Mreg(8)), Val::Int(1234)); // callee-save
        let q = LQuery {
            vf: sem.symtab().func_ptr("addmul").unwrap(),
            sig: Signature::int_fn(2),
            ls,
            mem,
        };
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.ls.get(Loc::Reg(Mreg(8))), Val::Int(1234));
    }

    #[test]
    fn return_regs_mixes_correctly() {
        let caller = Locset::new()
            .with(Loc::Reg(Mreg(8)), Val::Int(1))
            .with(Loc::Reg(Mreg(0)), Val::Int(2));
        let callee = Locset::new()
            .with(Loc::Reg(Mreg(8)), Val::Int(99))
            .with(Loc::Reg(Mreg(0)), Val::Int(42));
        let out = return_regs(&caller, &callee);
        assert_eq!(out.get(Loc::Reg(Mreg(8))), Val::Int(1)); // callee-save: caller's
        assert_eq!(out.get(Loc::Reg(Mreg(0))), Val::Int(42)); // result: callee's
    }
}
