//! Linear: LTL with instructions in a list, labels, and explicit branches
//! (paper Table 3; language interface `L`).

use std::collections::BTreeMap;

use compcerto_core::iface::{LQuery, LReply, Signature, L};
use compcerto_core::lts::{Batch, Event, Lts, Step, Stuck};
use compcerto_core::regs::{Loc, Locset, Mreg};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Mem, Val};

use crate::ltl::{return_regs, LOp};

/// A branch label.
pub type Label = u32;

/// Linear instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum LinInst {
    /// `dst := op`.
    Op(LOp, Loc),
    /// `dst := chunk[addr + disp]`.
    Load(Chunk, Loc, i64, Loc),
    /// `chunk[addr + disp] := src`.
    Store(Chunk, Loc, i64, Loc),
    /// ABI call.
    Call(Ident, Signature),
    /// A jump target.
    Label(Label),
    /// Unconditional branch.
    Goto(Label),
    /// Branch when the location is true; fall through otherwise.
    CondGoto(Loc, Label),
    /// Return.
    Return,
}

/// A Linear function.
#[derive(Debug, Clone, PartialEq)]
pub struct LinFunction {
    /// Name.
    pub name: Ident,
    /// Signature.
    pub sig: Signature,
    /// Stack-data size.
    pub stack_size: i64,
    /// Spill-area size.
    pub locals_size: i64,
    /// Outgoing-arguments area size.
    pub outgoing_size: i64,
    /// Callee-save registers written by the body.
    pub used_callee_save: Vec<Mreg>,
    /// Debug-variable annotations (maintained by the `Debugvar` pass).
    pub debug: Vec<(String, Loc)>,
    /// Instruction list.
    pub code: Vec<LinInst>,
}

impl LinFunction {
    /// Index of a label in the code, if present.
    pub fn label_index(&self, l: Label) -> Option<usize> {
        self.code
            .iter()
            .position(|i| matches!(i, LinInst::Label(x) if *x == l))
    }
}

/// A Linear translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinProgram {
    /// Function definitions.
    pub functions: Vec<LinFunction>,
    /// Known externals.
    pub externs: Vec<(Ident, Signature)>,
}

impl LinProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&LinFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Map functions through `f`.
    pub fn map_functions(&self, f: impl Fn(&LinFunction) -> LinFunction) -> LinProgram {
        LinProgram {
            functions: self.functions.iter().map(f).collect(),
            externs: self.externs.clone(),
        }
    }
}

/// A Linear activation.
#[derive(Debug, Clone)]
pub struct LinFrame {
    fname: Ident,
    pc: usize,
    ls: Locset,
    entry_ls: Locset,
    sp: BlockId,
}

/// States of the Linear LTS.
#[derive(Debug, Clone)]
pub enum LinState {
    /// Entering an internal function.
    Call {
        /// Callee.
        fname: Ident,
        /// Locations.
        ls: Locset,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<LinFrame>,
    },
    /// Executing.
    Exec {
        /// Active frame.
        cur: LinFrame,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<LinFrame>,
    },
    /// Suspended on an external call.
    External {
        /// The question.
        q: LQuery,
        /// Active frame.
        cur: LinFrame,
        /// Suspended callers.
        stack: Vec<LinFrame>,
    },
    /// Returning.
    Ret {
        /// Final locations.
        ls: Locset,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<LinFrame>,
    },
}

/// The open semantics `Linear(p) : L ↠ L`.
#[derive(Debug, Clone)]
pub struct LinearSem {
    prog: LinProgram,
    symtab: SymbolTable,
    label: String,
    /// Function index by name (first definition wins, like
    /// [`LinProgram::function`]); drives the batched fast path.
    fidx_of_name: BTreeMap<Ident, usize>,
    /// Per-function label → instruction index, parallel to
    /// `prog.functions`.
    labels: Vec<BTreeMap<Label, usize>>,
}

impl LinearSem {
    /// Wrap a program with the shared symbol table.
    pub fn new(prog: LinProgram, symtab: SymbolTable) -> LinearSem {
        let mut fidx_of_name = BTreeMap::new();
        let mut labels = Vec::with_capacity(prog.functions.len());
        for (i, f) in prog.functions.iter().enumerate() {
            fidx_of_name.entry(f.name.clone()).or_insert(i);
            labels.push(label_targets(f));
        }
        LinearSem {
            prog,
            symtab,
            label: "Linear".into(),
            fidx_of_name,
            labels,
        }
    }

    /// Override the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> LinearSem {
        self.label = label.into();
        self
    }

    /// The program.
    pub fn program(&self) -> &LinProgram {
        &self.prog
    }

    /// The symbol table.
    pub fn symtab(&self) -> &SymbolTable {
        &self.symtab
    }

    fn stuck<T>(&self, msg: impl Into<String>) -> Result<T, Stuck> {
        Err(Stuck::new(format!("{}: {}", self.label, msg.into())))
    }

    fn eval_op(&self, frame: &LinFrame, op: &LOp) -> Result<Val, Stuck> {
        Ok(match op {
            LOp::Move(l) => frame.ls.get(*l),
            LOp::Int(n) => Val::Int(*n),
            LOp::Long(n) => Val::Long(*n),
            LOp::AddrGlobal(s, d) => match self.symtab.block_of(s) {
                Some(b) => Val::Ptr(b, *d),
                None => return self.stuck(format!("unknown symbol `{s}`")),
            },
            LOp::AddrStack(o) => Val::Ptr(frame.sp, *o),
            LOp::Unop(m, l) => m.eval(frame.ls.get(*l)),
            LOp::Binop(m, a, b) => m.eval(frame.ls.get(*a), frame.ls.get(*b)),
            LOp::BinopImm(m, a, i) => m.eval(frame.ls.get(*a), *i),
        })
    }

    fn exec_inst(
        &self,
        f: &LinFunction,
        cur: &LinFrame,
        mem: &Mem,
        stack: &[LinFrame],
    ) -> Result<LinState, Stuck> {
        let Some(inst) = f.code.get(cur.pc) else {
            return self.stuck(format!("pc {} past end of `{}`", cur.pc, cur.fname));
        };
        let seq = |frame: LinFrame, mem: Mem| LinState::Exec {
            cur: frame,
            mem,
            stack: stack.to_vec(),
        };
        match inst {
            LinInst::Label(_) => {
                let mut frame = cur.clone();
                frame.pc += 1;
                Ok(seq(frame, mem.clone()))
            }
            LinInst::Op(op, dst) => {
                let v = self.eval_op(cur, op)?;
                let mut frame = cur.clone();
                frame.ls.set(*dst, v);
                frame.pc += 1;
                Ok(seq(frame, mem.clone()))
            }
            LinInst::Load(chunk, base, disp, dst) => {
                let addr = cur.ls.get(*base).add(Val::Long(*disp));
                let v = match mem.loadv(*chunk, addr) {
                    Ok(v) => v,
                    Err(e) => return self.stuck(format!("load failed: {e}")),
                };
                let mut frame = cur.clone();
                frame.ls.set(*dst, v);
                frame.pc += 1;
                Ok(seq(frame, mem.clone()))
            }
            LinInst::Store(chunk, base, disp, src) => {
                let addr = cur.ls.get(*base).add(Val::Long(*disp));
                let mut mem2 = mem.clone();
                if let Err(e) = mem2.storev(*chunk, addr, cur.ls.get(*src)) {
                    return self.stuck(format!("store failed: {e}"));
                }
                let mut frame = cur.clone();
                frame.pc += 1;
                Ok(seq(frame, mem2))
            }
            LinInst::Goto(l) => match f.label_index(*l) {
                Some(i) => {
                    let mut frame = cur.clone();
                    frame.pc = i;
                    Ok(seq(frame, mem.clone()))
                }
                None => self.stuck(format!("missing label {l}")),
            },
            LinInst::CondGoto(loc, l) => match cur.ls.get(*loc).truth() {
                Some(true) => match f.label_index(*l) {
                    Some(i) => {
                        let mut frame = cur.clone();
                        frame.pc = i;
                        Ok(seq(frame, mem.clone()))
                    }
                    None => self.stuck(format!("missing label {l}")),
                },
                Some(false) => {
                    let mut frame = cur.clone();
                    frame.pc += 1;
                    Ok(seq(frame, mem.clone()))
                }
                None => self.stuck("undefined branch condition"),
            },
            LinInst::Call(callee, sig) => {
                if self.prog.function(callee).is_some() {
                    let mut stack = stack.to_vec();
                    stack.push(cur.clone());
                    Ok(LinState::Call {
                        fname: callee.clone(),
                        ls: cur.ls.clone(),
                        mem: mem.clone(),
                        stack,
                    })
                } else {
                    let Some(vf) = self.symtab.func_ptr(callee) else {
                        return self.stuck(format!("unknown callee `{callee}`"));
                    };
                    Ok(LinState::External {
                        q: LQuery {
                            vf,
                            sig: sig.clone(),
                            ls: cur.ls.clone(),
                            mem: mem.clone(),
                        },
                        cur: cur.clone(),
                        stack: stack.to_vec(),
                    })
                }
            }
            LinInst::Return => {
                let mut mem = mem.clone();
                if let Err(e) = mem.free(cur.sp, 0, f.stack_size) {
                    return self.stuck(format!("freeing stack data: {e}"));
                }
                let ls = return_regs(&cur.entry_ls, &cur.ls);
                Ok(LinState::Ret {
                    ls,
                    mem,
                    stack: stack.to_vec(),
                })
            }
        }
    }
}

impl Lts for LinearSem {
    type I = L;
    type O = L;
    type State = LinState;

    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, q: &LQuery) -> bool {
        match &q.vf {
            Val::Ptr(b, 0) => match self.symtab.ident_of(*b) {
                Some(name) => self
                    .prog
                    .function(name)
                    .map(|f| f.sig == q.sig)
                    .unwrap_or(false),
                None => false,
            },
            _ => false,
        }
    }

    fn initial(&self, q: &LQuery) -> Result<LinState, Stuck> {
        if !self.accepts(q) {
            return self.stuck("query not accepted");
        }
        let Val::Ptr(b, 0) = q.vf else {
            return self.stuck("accepted query has a non-pointer vf");
        };
        let Some(name) = self.symtab.ident_of(b) else {
            return self.stuck("accepted query names an unknown block");
        };
        Ok(LinState::Call {
            fname: name.to_string(),
            ls: q.ls.clone(),
            mem: q.mem.clone(),
            stack: vec![],
        })
    }

    fn step(&self, s: &LinState) -> Step<LinState, LQuery, LReply> {
        match s {
            LinState::Call {
                fname,
                ls,
                mem,
                stack,
            } => {
                let Some(f) = self.prog.function(fname) else {
                    return Step::Stuck(Stuck::new(format!("unknown function `{fname}`")));
                };
                let mut mem = mem.clone();
                let sp = mem.alloc(0, f.stack_size);
                let entry_ls = ls.shift_incoming();
                Step::Internal(
                    LinState::Exec {
                        cur: LinFrame {
                            fname: fname.clone(),
                            pc: 0,
                            ls: entry_ls.clone(),
                            entry_ls,
                            sp,
                        },
                        mem,
                        stack: stack.clone(),
                    },
                    vec![],
                )
            }
            LinState::Exec { cur, mem, stack } => {
                let Some(f) = self.prog.function(&cur.fname) else {
                    return Step::Stuck(Stuck::new("frame names unknown function"));
                };
                match self.exec_inst(f, cur, mem, stack) {
                    Ok(next) => Step::Internal(next, vec![]),
                    Err(stuck) => Step::Stuck(stuck),
                }
            }
            LinState::Ret { ls, mem, stack } => {
                if stack.is_empty() {
                    return Step::Final(LReply {
                        ls: ls.clone(),
                        mem: mem.clone(),
                    });
                }
                let mut stack = stack.clone();
                let Some(mut caller) = stack.pop() else {
                    return Step::Stuck(Stuck::new("return with no caller frame"));
                };
                caller.ls = return_regs(&caller.ls, ls);
                caller.pc += 1;
                Step::Internal(
                    LinState::Exec {
                        cur: caller,
                        mem: mem.clone(),
                        stack,
                    },
                    vec![],
                )
            }
            LinState::External { q, .. } => Step::External(q.clone()),
        }
    }

    /// The batched fast path (DESIGN.md §13): identical transitions, stuck
    /// messages, fuel accounting, and memory-op sequence as single-stepping,
    /// but executed in place — no per-instruction frame/locset/memory clones,
    /// no caller-stack copies, and label targets from the precomputed maps.
    #[allow(clippy::too_many_lines)]
    fn step_batch(
        &self,
        s: &mut LinState,
        fuel_left: u64,
        _events: &mut Vec<Event>,
    ) -> Batch<LQuery, LReply> {
        let prefixed = |msg: String| Stuck::new(format!("{}: {msg}", self.label));
        let mut st = std::mem::replace(
            s,
            LinState::Ret {
                ls: Locset::new(),
                mem: Mem::new(),
                stack: Vec::new(),
            },
        );
        let mut n: u64 = 0;
        loop {
            match st {
                // Only reachable at batch entry: external calls made inside
                // the batch return directly from the `Exec` arm below.
                LinState::External { q, cur, stack } => {
                    let out = q.clone();
                    *s = LinState::External { q, cur, stack };
                    return Batch::External(n, out);
                }
                LinState::Call {
                    fname,
                    ls,
                    mut mem,
                    stack,
                } => {
                    if n == fuel_left {
                        *s = LinState::Call {
                            fname,
                            ls,
                            mem,
                            stack,
                        };
                        return Batch::Ran(n);
                    }
                    let Some(&fi) = self.fidx_of_name.get(&fname) else {
                        return Batch::Stuck(n, Stuck::new(format!("unknown function `{fname}`")));
                    };
                    let f = &self.prog.functions[fi];
                    let sp = mem.alloc(0, f.stack_size);
                    let entry_ls = ls.shift_incoming();
                    n += 1;
                    st = LinState::Exec {
                        cur: LinFrame {
                            fname,
                            pc: 0,
                            ls: entry_ls.clone(),
                            entry_ls,
                            sp,
                        },
                        mem,
                        stack,
                    };
                }
                LinState::Exec {
                    mut cur,
                    mut mem,
                    mut stack,
                } => {
                    let Some(&fi) = self.fidx_of_name.get(&cur.fname) else {
                        return Batch::Stuck(n, Stuck::new("frame names unknown function"));
                    };
                    let f = &self.prog.functions[fi];
                    let labels = &self.labels[fi];
                    loop {
                        if n == fuel_left {
                            *s = LinState::Exec { cur, mem, stack };
                            return Batch::Ran(n);
                        }
                        let Some(inst) = f.code.get(cur.pc) else {
                            return Batch::Stuck(
                                n,
                                prefixed(format!("pc {} past end of `{}`", cur.pc, cur.fname)),
                            );
                        };
                        match inst {
                            LinInst::Label(_) => {
                                cur.pc += 1;
                                n += 1;
                            }
                            LinInst::Op(op, dst) => {
                                let v = match self.eval_op(&cur, op) {
                                    Ok(v) => v,
                                    Err(e) => return Batch::Stuck(n, e),
                                };
                                cur.ls.set(*dst, v);
                                cur.pc += 1;
                                n += 1;
                            }
                            LinInst::Load(chunk, base, disp, dst) => {
                                let addr = cur.ls.get(*base).add(Val::Long(*disp));
                                let v = match mem.loadv(*chunk, addr) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        return Batch::Stuck(
                                            n,
                                            prefixed(format!("load failed: {e}")),
                                        )
                                    }
                                };
                                cur.ls.set(*dst, v);
                                cur.pc += 1;
                                n += 1;
                            }
                            LinInst::Store(chunk, base, disp, src) => {
                                let addr = cur.ls.get(*base).add(Val::Long(*disp));
                                if let Err(e) = mem.storev(*chunk, addr, cur.ls.get(*src)) {
                                    return Batch::Stuck(
                                        n,
                                        prefixed(format!("store failed: {e}")),
                                    );
                                }
                                cur.pc += 1;
                                n += 1;
                            }
                            LinInst::Goto(l) => match labels.get(l) {
                                Some(&i) => {
                                    cur.pc = i;
                                    n += 1;
                                }
                                None => {
                                    return Batch::Stuck(n, prefixed(format!("missing label {l}")))
                                }
                            },
                            LinInst::CondGoto(loc, l) => match cur.ls.get(*loc).truth() {
                                Some(true) => match labels.get(l) {
                                    Some(&i) => {
                                        cur.pc = i;
                                        n += 1;
                                    }
                                    None => {
                                        return Batch::Stuck(
                                            n,
                                            prefixed(format!("missing label {l}")),
                                        )
                                    }
                                },
                                Some(false) => {
                                    cur.pc += 1;
                                    n += 1;
                                }
                                None => {
                                    return Batch::Stuck(
                                        n,
                                        prefixed("undefined branch condition".into()),
                                    )
                                }
                            },
                            LinInst::Call(callee, sig) => {
                                if self.fidx_of_name.contains_key(callee) {
                                    let fname = callee.clone();
                                    let ls = cur.ls.clone();
                                    stack.push(cur);
                                    n += 1;
                                    st = LinState::Call {
                                        fname,
                                        ls,
                                        mem,
                                        stack,
                                    };
                                    break;
                                }
                                let Some(vf) = self.symtab.func_ptr(callee) else {
                                    return Batch::Stuck(
                                        n,
                                        prefixed(format!("unknown callee `{callee}`")),
                                    );
                                };
                                n += 1;
                                let q = LQuery {
                                    vf,
                                    sig: sig.clone(),
                                    ls: cur.ls.clone(),
                                    mem,
                                };
                                let out = q.clone();
                                *s = LinState::External { q, cur, stack };
                                return if n == fuel_left {
                                    Batch::Ran(n)
                                } else {
                                    Batch::External(n, out)
                                };
                            }
                            LinInst::Return => {
                                if let Err(e) = mem.free(cur.sp, 0, f.stack_size) {
                                    return Batch::Stuck(
                                        n,
                                        prefixed(format!("freeing stack data: {e}")),
                                    );
                                }
                                let ls = return_regs(&cur.entry_ls, &cur.ls);
                                n += 1;
                                st = LinState::Ret { ls, mem, stack };
                                break;
                            }
                        }
                    }
                }
                LinState::Ret { ls, mem, mut stack } => {
                    if n == fuel_left {
                        *s = LinState::Ret { ls, mem, stack };
                        return Batch::Ran(n);
                    }
                    if stack.is_empty() {
                        return Batch::Final(n, LReply { ls, mem });
                    }
                    let Some(mut caller) = stack.pop() else {
                        return Batch::Stuck(n, Stuck::new("return with no caller frame"));
                    };
                    caller.ls = return_regs(&caller.ls, &ls);
                    caller.pc += 1;
                    n += 1;
                    st = LinState::Exec {
                        cur: caller,
                        mem,
                        stack,
                    };
                }
            }
        }
    }

    fn resume(&self, s: &LinState, a: LReply) -> Result<LinState, Stuck> {
        match s {
            LinState::External { cur, stack, .. } => {
                let mut frame = cur.clone();
                frame.ls = return_regs(&cur.ls, &a.ls);
                frame.pc += 1;
                Ok(LinState::Exec {
                    cur: frame,
                    mem: a.mem,
                    stack: stack.clone(),
                })
            }
            _ => self.stuck("resume in non-external state"),
        }
    }
}

/// Map from labels to instruction indices (used by `Linearize` tests and the
/// `CleanupLabels` pass).
pub fn label_targets(f: &LinFunction) -> BTreeMap<Label, usize> {
    f.code
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| match inst {
            LinInst::Label(l) => Some((*l, i)),
            _ => None,
        })
        .collect()
}
