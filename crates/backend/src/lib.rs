//! # Back end of CompCertO-rs: LTL, Linear, Mach, Asm
//!
//! The languages and passes from `Allocation` down to `Asmgen`
//! (paper Table 3), each over its own language interface (Table 2):
//!
//! | Pass | Module | Convention |
//! |------|--------|------------|
//! | Allocation | [`alloc`] | `wt·ext·CL ↠ wt·ext·CL` |
//! | Tunneling | [`tunneling`] | `ext ↠ ext` |
//! | Linearize | [`linearize`] | `id ↠ id` |
//! | CleanupLabels | [`cleanup`] | `id ↠ id` |
//! | Debugvar | [`debugvar`] | `id ↠ id` |
//! | Stacking | [`stacking`] | `injp·LM ↠ LM·inj` |
//! | Asmgen | [`asmgen`] | `ext·MA ↠ ext·MA` |
//!
//! [`asm`] also provides the syntactic linking operator `+` on Asm programs,
//! the substrate of paper Thm. 3.5.

pub mod alloc;
pub mod asm;
pub mod asmgen;
pub mod cleanup;
pub mod debugvar;
pub mod linear;
pub mod linearize;
pub mod ltl;
pub mod mach;
pub mod stacking;
pub mod tunneling;

pub use alloc::{allocation, allocation_witness};
pub use asm::{link_asm, AsmFunction, AsmInst, AsmProgram, AsmSem};
pub use asmgen::asmgen;
pub use cleanup::cleanup_labels;
pub use debugvar::debugvar;
pub use linear::{LinFunction, LinInst, LinProgram, LinearSem};
pub use linearize::linearize;
pub use ltl::{LOp, LtlFunction, LtlInst, LtlProgram, LtlSem};
pub use mach::{MachFunction, MachInst, MachProgram, MachSem, RaOracle};
pub use stacking::{frame_layout, stacking, FrameLayout};
pub use tunneling::tunneling;
