//! The `Allocation` pass: linear-scan register allocation from RTL to LTL
//! (paper Table 3, convention `wt·ext·CL ↠ wt·ext·CL`).
//!
//! Pseudo-registers are mapped to machine registers or `Local` spill slots:
//!
//! * values live across a call must survive the callee — they go to
//!   callee-save registers or spill slots;
//! * short-lived values use caller-save registers;
//! * calls are rewritten to the ABI: arguments move into `r0..r3` and
//!   `Outgoing` slots (paper App. C.1 `loc_arguments`), results come back in
//!   the result register.
//!
//! RTL tail calls are devolved into call + return here (a documented
//! simplification: the stack-space guarantee of `Tailcall` is exercised at
//! the RTL level only, see DESIGN.md).

use std::collections::BTreeMap;

use compcerto_core::iface::{abi, Signature};
use compcerto_core::regs::{Loc, Mreg};
use rtl::{liveness, Inst, Node, PReg, RtlFunction, RtlOp, RtlProgram};

use crate::ltl::{LOp, LtlFunction, LtlInst, LtlProgram};

/// Caller-save registers available for allocation.
const CALLER_SAVE_POOL: [Mreg; 4] = [Mreg(4), Mreg(5), Mreg(6), Mreg(7)];
/// Scratch registers reserved for spill traffic.
const SCRATCH0: Mreg = Mreg(14);
const SCRATCH1: Mreg = Mreg(15);

/// Run register allocation over every function.
pub fn allocation(prog: &RtlProgram) -> LtlProgram {
    LtlProgram {
        functions: prog.functions.iter().map(alloc_function).collect(),
        externs: prog.externs.clone(),
    }
}

/// A live interval over the linearized instruction order.
#[derive(Debug, Clone)]
struct Interval {
    reg: PReg,
    start: usize,
    end: usize,
    crosses_call: bool,
}

/// Recompute the allocator's assignment for `f` as an *untrusted witness*
/// (in the spirit of Rideau & Leroy's validated register allocation): the
/// mapping from pseudo-registers to locations, the spill-area size, and the
/// callee-save registers the allocation writes. `assign_locations` is a pure
/// function of the RTL CFG's *structure* (DFS order, live ranges), so the
/// witness is invariant under node renumbering — translation validators can
/// recompute it from the pre-allocation RTL and check the emitted LTL
/// against it without trusting the emitter.
pub fn allocation_witness(f: &RtlFunction) -> (BTreeMap<PReg, Loc>, i64, Vec<Mreg>) {
    assign_locations(f)
}

/// Compute the allocation of pseudo-registers to locations.
fn assign_locations(f: &RtlFunction) -> (BTreeMap<PReg, Loc>, i64, Vec<Mreg>) {
    // Linearize the CFG (DFS from entry) to position instructions.
    let mut order: Vec<Node> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![f.entry];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) || !f.code.contains_key(&n) {
            continue;
        }
        order.push(n);
        for s in f.code[&n].successors().into_iter().rev() {
            stack.push(s);
        }
    }
    let live_out = liveness(f);

    // Intervals: positions where a pseudo-register is defined, used or live.
    let mut ranges: BTreeMap<PReg, (usize, usize)> = BTreeMap::new();
    let mut call_positions: Vec<usize> = Vec::new();
    let touch = |r: PReg, p: usize, ranges: &mut BTreeMap<PReg, (usize, usize)>| {
        let e = ranges.entry(r).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for (pos, n) in order.iter().enumerate() {
        let inst = &f.code[n];
        if matches!(inst, Inst::Call(_, _, _, _, _) | Inst::Tailcall(_, _, _)) {
            call_positions.push(pos);
        }
        for r in inst.uses() {
            touch(r, pos, &mut ranges);
        }
        if let Some(d) = inst.def() {
            touch(d, pos, &mut ranges);
        }
        for r in live_out.get(n).into_iter().flatten() {
            touch(*r, pos, &mut ranges);
        }
    }
    // Parameters are live from position 0.
    for p in &f.params {
        touch(*p, 0, &mut ranges);
    }

    let mut intervals: Vec<Interval> = ranges
        .into_iter()
        .map(|(reg, (start, end))| Interval {
            reg,
            start,
            end,
            crosses_call: call_positions.iter().any(|c| start < *c && *c <= end),
        })
        .collect();
    intervals.sort_by_key(|i| (i.start, i.end));

    // Linear scan.
    let mut free_caller: Vec<Mreg> = CALLER_SAVE_POOL.to_vec();
    let mut free_callee: Vec<Mreg> = abi::CALLEE_SAVE.to_vec();
    let mut active: Vec<(usize, Mreg, bool)> = Vec::new(); // (end, reg, callee_save)
    let mut assignment: BTreeMap<PReg, Loc> = BTreeMap::new();
    let mut next_slot: i64 = 0;
    let mut used_callee_save: Vec<Mreg> = Vec::new();

    for iv in &intervals {
        // Expire finished intervals.
        active.retain(|(end, r, cs)| {
            if *end < iv.start {
                if *cs {
                    free_callee.push(*r);
                } else {
                    free_caller.push(*r);
                }
                false
            } else {
                true
            }
        });
        let pick = if iv.crosses_call {
            free_callee.pop().map(|r| (r, true))
        } else {
            free_caller
                .pop()
                .map(|r| (r, false))
                .or_else(|| free_callee.pop().map(|r| (r, true)))
        };
        match pick {
            Some((r, cs)) => {
                if cs && !used_callee_save.contains(&r) {
                    used_callee_save.push(r);
                }
                active.push((iv.end, r, cs));
                assignment.insert(iv.reg, Loc::Reg(r));
            }
            None => {
                assignment.insert(iv.reg, Loc::Local(next_slot));
                next_slot += 8;
            }
        }
    }
    (assignment, next_slot, used_callee_save)
}

struct Emitter {
    code: BTreeMap<Node, LtlInst>,
    next_node: Node,
}

impl Emitter {
    /// Append an instruction with a fresh id, returning it.
    fn fresh(&mut self, inst: LtlInst) -> Node {
        let n = self.next_node;
        self.next_node += 1;
        self.code.insert(n, inst);
        n
    }

    /// Emit a chain of instructions anchored at `anchor`; `mk` receives the
    /// final successor and builds the list front-to-back.
    fn chain(&mut self, anchor: Node, insts: Vec<LtlInstTemplate>, next: Node) {
        // Build backwards.
        let mut succ = next;
        let mut nodes: Vec<(LtlInstTemplate, Node)> = Vec::new();
        for t in insts.into_iter().rev() {
            nodes.push((t, succ));
            succ = 0; // placeholder, fixed below
        }
        // Reverse back and materialize: first at anchor, rest fresh.
        nodes.reverse();
        let mut ids: Vec<Node> = vec![anchor];
        for _ in 1..nodes.len() {
            let n = self.next_node;
            self.next_node += 1;
            ids.push(n);
        }
        for (i, (t, _)) in nodes.iter().enumerate() {
            let succ = if i + 1 < ids.len() { ids[i + 1] } else { next };
            self.code.insert(ids[i], t.clone().finish(succ));
        }
        if nodes.is_empty() {
            self.code.insert(anchor, LtlInst::Nop(next));
        }
    }
}

/// An instruction awaiting its successor.
#[derive(Debug, Clone)]
enum LtlInstTemplate {
    Op(LOp, Loc),
    Load(mem::Chunk, Loc, i64, Loc),
    Store(mem::Chunk, Loc, i64, Loc),
    Call(String, Signature),
    Return,
}

impl LtlInstTemplate {
    fn finish(self, next: Node) -> LtlInst {
        match self {
            LtlInstTemplate::Op(op, d) => LtlInst::Op(op, d, next),
            LtlInstTemplate::Load(c, b, disp, d) => LtlInst::Load(c, b, disp, d, next),
            LtlInstTemplate::Store(c, b, disp, s) => LtlInst::Store(c, b, disp, s, next),
            LtlInstTemplate::Call(f, sig) => LtlInst::Call(f, sig, next),
            LtlInstTemplate::Return => LtlInst::Return,
        }
    }
}

/// Plan register operands: return the register holding the value, emitting a
/// reload when the value lives in a slot.
fn in_reg(loc: Loc, scratch: Mreg, pre: &mut Vec<LtlInstTemplate>) -> Loc {
    match loc {
        Loc::Reg(_) => loc,
        slot => {
            pre.push(LtlInstTemplate::Op(LOp::Move(slot), Loc::Reg(scratch)));
            Loc::Reg(scratch)
        }
    }
}

fn alloc_function(f: &RtlFunction) -> LtlFunction {
    let (assignment, locals_size, used_callee_save) = assign_locations(f);
    let loc = |r: PReg| assignment.get(&r).copied().unwrap_or(Loc::Reg(SCRATCH0));

    let max_node = f.code.keys().max().copied().unwrap_or(0);
    let mut em = Emitter {
        code: BTreeMap::new(),
        next_node: max_node + 2,
    };
    let mut outgoing_size: i64 = 0;

    // Entry: move parameters from ABI locations to assigned locations.
    let entry_anchor = max_node + 1;
    {
        let mut moves = Vec::new();
        for (i, p) in f.params.iter().enumerate() {
            let src = abi::loc_arguments(&f.sig)
                .get(i)
                .copied()
                .unwrap_or(Loc::Reg(abi::PARAM_REGS[0]));
            // The callee reads stack parameters as Incoming slots.
            let src = match src {
                Loc::Outgoing(o) => Loc::Incoming(o),
                other => other,
            };
            moves.push(LtlInstTemplate::Op(LOp::Move(src), loc(*p)));
        }
        em.chain(entry_anchor, moves, f.entry);
    }

    for (n, inst) in &f.code {
        let anchor = *n;
        match inst {
            Inst::Nop(next) => {
                em.code.insert(anchor, LtlInst::Nop(*next));
            }
            Inst::Op(op, dst, next) => {
                let mut pre = Vec::new();
                let lop = match op {
                    RtlOp::Move(r) => LOp::Move(loc(*r)),
                    RtlOp::Int(k) => LOp::Int(*k),
                    RtlOp::Long(k) => LOp::Long(*k),
                    RtlOp::AddrGlobal(s, d) => LOp::AddrGlobal(s.clone(), *d),
                    RtlOp::AddrStack(o) => LOp::AddrStack(*o),
                    RtlOp::Unop(m, r) => LOp::Unop(*m, in_reg(loc(*r), SCRATCH0, &mut pre)),
                    RtlOp::Binop(m, a, b) => {
                        let la = in_reg(loc(*a), SCRATCH0, &mut pre);
                        let lb = in_reg(loc(*b), SCRATCH1, &mut pre);
                        LOp::Binop(*m, la, lb)
                    }
                    RtlOp::BinopImm(m, a, i) => {
                        LOp::BinopImm(*m, in_reg(loc(*a), SCRATCH0, &mut pre), *i)
                    }
                };
                let d = loc(*dst);
                match (matches!(lop, LOp::Move(_)), &d) {
                    // Moves can target slots directly; other ops compute into
                    // a register first.
                    (false, Loc::Local(_) | Loc::Incoming(_) | Loc::Outgoing(_)) => {
                        pre.push(LtlInstTemplate::Op(lop, Loc::Reg(SCRATCH0)));
                        pre.push(LtlInstTemplate::Op(LOp::Move(Loc::Reg(SCRATCH0)), d));
                    }
                    _ => pre.push(LtlInstTemplate::Op(lop, d)),
                }
                em.chain(anchor, pre, *next);
            }
            Inst::Load(chunk, base, disp, dst, next) => {
                let mut pre = Vec::new();
                let b = in_reg(loc(*base), SCRATCH0, &mut pre);
                let d = loc(*dst);
                match d {
                    Loc::Reg(_) => pre.push(LtlInstTemplate::Load(*chunk, b, *disp, d)),
                    slot => {
                        pre.push(LtlInstTemplate::Load(*chunk, b, *disp, Loc::Reg(SCRATCH1)));
                        pre.push(LtlInstTemplate::Op(LOp::Move(Loc::Reg(SCRATCH1)), slot));
                    }
                }
                em.chain(anchor, pre, *next);
            }
            Inst::Store(chunk, base, disp, src, next) => {
                let mut pre = Vec::new();
                let b = in_reg(loc(*base), SCRATCH0, &mut pre);
                let s = in_reg(loc(*src), SCRATCH1, &mut pre);
                pre.push(LtlInstTemplate::Store(*chunk, b, *disp, s));
                em.chain(anchor, pre, *next);
            }
            Inst::Cond(r, t, e) => match loc(*r) {
                Loc::Reg(_) => {
                    em.code.insert(anchor, LtlInst::Cond(loc(*r), *t, *e));
                }
                slot => {
                    let cond = em.fresh(LtlInst::Cond(Loc::Reg(SCRATCH0), *t, *e));
                    em.code.insert(
                        anchor,
                        LtlInst::Op(LOp::Move(slot), Loc::Reg(SCRATCH0), cond),
                    );
                }
            },
            Inst::Call(sig, callee, args, dest, next) => {
                let mut pre = Vec::new();
                outgoing_size = outgoing_size.max(abi::size_arguments(sig));
                for (a, dst) in args.iter().zip(abi::loc_arguments(sig)) {
                    pre.push(LtlInstTemplate::Op(LOp::Move(loc(*a)), dst));
                }
                pre.push(LtlInstTemplate::Call(callee.clone(), sig.clone()));
                if let Some(d) = dest {
                    pre.push(LtlInstTemplate::Op(
                        LOp::Move(Loc::Reg(abi::RESULT_REG)),
                        loc(*d),
                    ));
                }
                em.chain(anchor, pre, *next);
            }
            // Tail calls are devolved into call + return (the stack-space
            // guarantee of `Tailcall` is exercised at the RTL level only).
            Inst::Tailcall(sig, callee, args) => {
                let mut pre = Vec::new();
                outgoing_size = outgoing_size.max(abi::size_arguments(sig));
                for (a, dst) in args.iter().zip(abi::loc_arguments(sig)) {
                    pre.push(LtlInstTemplate::Op(LOp::Move(loc(*a)), dst));
                }
                pre.push(LtlInstTemplate::Call(callee.clone(), sig.clone()));
                pre.push(LtlInstTemplate::Return);
                em.chain(anchor, pre, 0);
            }
            Inst::Return(r) => {
                let mut pre = Vec::new();
                if let Some(r) = r {
                    pre.push(LtlInstTemplate::Op(
                        LOp::Move(loc(*r)),
                        Loc::Reg(abi::RESULT_REG),
                    ));
                }
                pre.push(LtlInstTemplate::Return);
                em.chain(anchor, pre, 0);
            }
        }
    }

    LtlFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        stack_size: f.stack_size,
        locals_size,
        outgoing_size,
        used_callee_save,
        entry: entry_anchor,
        code: em.code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::LtlSem;
    use compcerto_core::cc::Cl;
    use compcerto_core::conv::SimConv;
    use compcerto_core::iface::{CQuery, CReply, LQuery, LReply};
    use compcerto_core::lts::run;
    use mem::Val;
    use rtl::RtlSem;

    fn build(src: &str) -> (RtlProgram, LtlProgram, compcerto_core::symtab::SymbolTable) {
        use clight::{build_symtab, parse, simpl_locals, typecheck};
        use minor::{cminorgen, cshmgen, selection};
        let p = simpl_locals(&typecheck(&parse(src).unwrap()).unwrap());
        let r = rtl::renumber(&rtl::rtlgen(&selection(
            &cminorgen(&cshmgen(&p).unwrap()).unwrap(),
        )));
        let l = allocation(&r);
        let tbl = build_symtab(&[&p]).unwrap();
        (r, l, tbl)
    }

    /// Differential check under the `CL` convention: run RTL at the C level
    /// and LTL at the L level on CL-related questions, and require CL-related
    /// answers (paper App. C.1).
    fn differential(src: &str, fname: &str, args: Vec<Val>) -> (CReply, LReply) {
        let (r, l, tbl) = build(src);
        let mem = tbl.build_init_mem().unwrap();
        let sig = r.function(fname).unwrap().sig.clone();
        let qc = CQuery {
            vf: tbl.func_ptr(fname).unwrap(),
            sig: sig.clone(),
            args,
            mem,
        };
        let (w, ql) = Cl.transport_query(&qc).expect("CL marshals");
        assert_eq!(Cl.match_query(&qc, &ql).len(), 1);

        let s1 = RtlSem::new(r, tbl.clone());
        let s2 = LtlSem::new(l, tbl);
        let r1 = run(&s1, &qc, &mut |_: &CQuery| None::<CReply>, 1_000_000).expect_complete();
        let r2 = run(&s2, &ql, &mut |_: &LQuery| None::<LReply>, 1_000_000).expect_complete();
        assert!(
            Cl.match_reply(&w, &r1, &r2),
            "replies not CL-related: {} vs ls[r0]={}",
            r1.retval,
            r2.ls.get(Loc::Reg(abi::RESULT_REG))
        );
        (r1, r2)
    }

    #[test]
    fn straightline_allocation() {
        let (r1, _) = differential(
            "int f(int a, int b) { return a * b + a - b; }",
            "f",
            vec![Val::Int(9), Val::Int(5)],
        );
        assert_eq!(r1.retval, Val::Int(49));
    }

    #[test]
    fn values_survive_calls() {
        // `a` must survive the internal call: forced into callee-save or a
        // spill slot by the allocator.
        let src = "
            int id(int x) { return x; }
            int f(int a) {
                int b;
                b = id(a + 1);
                return a * 100 + b;
            }";
        let (r1, _) = differential(src, "f", vec![Val::Int(3)]);
        assert_eq!(r1.retval, Val::Int(304));
    }

    #[test]
    fn many_live_values_spill() {
        // Nine simultaneously-live values exceed the register pools.
        let src = "
            int f(int a, int b) {
                int c; int d; int e; int g; int h; int i; int j;
                c = a + b; d = a - b; e = a * 2; g = b * 2;
                h = a + 1; i = b + 1; j = a * b;
                return c + d + e + g + h + i + j;
            }";
        let (r1, _) = differential(src, "f", vec![Val::Int(7), Val::Int(3)]);
        assert_eq!(r1.retval, Val::Int(10 + 4 + 14 + 6 + 8 + 4 + 21));
    }

    #[test]
    fn stack_args_roundtrip() {
        // Six parameters: two arrive in Incoming slots.
        let src = "
            int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b + c + d + e + f;
            }";
        let (r1, _) = differential(src, "sum6", (1..=6).map(Val::Int).collect());
        assert_eq!(r1.retval, Val::Int(21));
    }

    #[test]
    fn callee_save_is_used_and_preserved() {
        let src = "
            int id(int x) { return x; }
            int f(int a) { int b; b = id(a); return a + b; }";
        let (_, l, tbl) = build(src);
        let f = l.function("f").unwrap();
        assert!(
            !f.used_callee_save.is_empty() || f.locals_size > 0,
            "call-crossing value must be protected"
        );
        // And the environment's callee-save registers come back intact.
        let mem = tbl.build_init_mem().unwrap();
        let ls = compcerto_core::regs::Locset::new()
            .with(Loc::Reg(Mreg(0)), Val::Int(5))
            .with(Loc::Reg(Mreg(9)), Val::Long(777));
        let q = LQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: Signature::int_fn(1),
            ls,
            mem,
        };
        let sem = LtlSem::new(l, tbl);
        let r = run(&sem, &q, &mut |_: &LQuery| None::<LReply>, 1_000_000).expect_complete();
        assert_eq!(r.ls.get(Loc::Reg(Mreg(9))), Val::Long(777));
        assert_eq!(r.ls.get(Loc::Reg(abi::RESULT_REG)), Val::Int(10));
    }
}
