//! The `Stacking` pass: lay out concrete activation records
//! (paper Table 3, convention `injp·LM ↠ LM·inj`; App. C.2).
//!
//! Linear's abstract stack slots and the separate Cminor stack-data block are
//! consolidated into a single frame block:
//!
//! ```text
//!   0 ..  8   back link (written by Asm's AllocFrame)
//!   8 .. 16   return-address save slot (written by Asm prologue)
//!  16 .. +cs  callee-save save area
//!     .. +lo  spill slots (Linear `Local` slots)
//!     .. +sd  merged Cminor stack data
//!     .. +out outgoing-arguments area (the callee's `sp` points here)
//! ```
//!
//! The Linear-level memory *injects* into the Mach-level memory (the
//! stack-data block maps into the frame at `stackdata_ofs`), and the
//! argument-passing region is exactly the `LM` convention's protected region
//! (paper Fig. 13): the separation that caused "much pain in previous
//! CompCert extensions" is a constraint of the convention here.

use std::fmt;

use compcerto_core::regs::{Loc, Mreg};

use crate::linear::{LinFunction, LinInst, LinProgram};
use crate::ltl::LOp;
use crate::mach::{MOp, MachFunction, MachInst, MachProgram};

/// Scratch register for slot-to-slot moves.
const SCRATCH: Mreg = Mreg(15);

/// The concrete layout of a function's frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// Offset of the back-link slot.
    pub link_ofs: i64,
    /// Offset of the return-address save slot.
    pub ra_ofs: i64,
    /// Offset of the callee-save area.
    pub cs_ofs: i64,
    /// Offset of the spill-slot area.
    pub locals_ofs: i64,
    /// Offset of the merged stack data.
    pub stackdata_ofs: i64,
    /// Offset of the outgoing-arguments area.
    pub outgoing_ofs: i64,
    /// Total frame size.
    pub size: i64,
}

/// Compute the frame layout of a Linear function.
pub fn frame_layout(f: &LinFunction) -> FrameLayout {
    let cs_ofs = 16;
    let locals_ofs = cs_ofs + 8 * f.used_callee_save.len() as i64;
    let stackdata_ofs = locals_ofs + f.locals_size;
    let outgoing_ofs = stackdata_ofs + f.stack_size;
    // Round the stack-data boundary to 8 (Cminor data is 8-aligned already).
    let size = outgoing_ofs + f.outgoing_size;
    FrameLayout {
        link_ofs: 0,
        ra_ofs: 8,
        cs_ofs,
        locals_ofs,
        stackdata_ofs,
        outgoing_ofs,
        size,
    }
}

/// Errors raised by `Stacking` (all indicate input not produced by the
/// allocator, e.g. a non-move operation with stack-slot operands).
#[derive(Debug, Clone, PartialEq)]
pub struct StackingError {
    /// Function being translated.
    pub function: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for StackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stacking in `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for StackingError {}

/// Lower a Linear program to Mach.
///
/// # Errors
/// Fails on instructions whose operands are not in the allocator's normal
/// form (see [`StackingError`]).
pub fn stacking(prog: &LinProgram) -> Result<MachProgram, StackingError> {
    Ok(MachProgram {
        functions: prog
            .functions
            .iter()
            .map(stack_function)
            .collect::<Result<_, _>>()?,
        externs: prog.externs.clone(),
    })
}

struct Ctx<'f> {
    f: &'f LinFunction,
    layout: FrameLayout,
}

impl Ctx<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, StackingError> {
        Err(StackingError {
            function: self.f.name.clone(),
            message: message.into(),
        })
    }

    fn reg(&self, l: Loc) -> Result<Mreg, StackingError> {
        match l {
            Loc::Reg(r) => Ok(r),
            other => self.err(format!("expected a register operand, got {other}")),
        }
    }

    /// Frame offset of a slot location.
    fn slot_ofs(&self, l: Loc) -> Result<i64, StackingError> {
        match l {
            Loc::Local(o) => Ok(self.layout.locals_ofs + o),
            Loc::Outgoing(o) => Ok(self.layout.outgoing_ofs + o),
            other => self.err(format!("not a frame slot: {other}")),
        }
    }
}

fn stack_function(f: &LinFunction) -> Result<MachFunction, StackingError> {
    let layout = frame_layout(f);
    let ctx = Ctx {
        f,
        layout: layout.clone(),
    };
    let mut code: Vec<MachInst> = Vec::new();

    // Prologue: save used callee-save registers.
    for (i, r) in f.used_callee_save.iter().enumerate() {
        code.push(MachInst::SetStack(*r, layout.cs_ofs + 8 * i as i64));
    }

    for inst in &f.code {
        translate_inst(&ctx, inst, &mut code)?;
    }
    Ok(MachFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        frame_size: layout.size,
        stackdata_ofs: layout.stackdata_ofs,
        outgoing_ofs: layout.outgoing_ofs,
        code,
    })
}

fn translate_inst(
    ctx: &Ctx<'_>,
    inst: &LinInst,
    out: &mut Vec<MachInst>,
) -> Result<(), StackingError> {
    match inst {
        LinInst::Label(l) => out.push(MachInst::Label(*l)),
        LinInst::Goto(l) => out.push(MachInst::Goto(*l)),
        LinInst::CondGoto(l, target) => {
            let r = ctx.reg(*l)?;
            out.push(MachInst::CondGoto(r, *target));
        }
        LinInst::Call(callee, sig) => out.push(MachInst::Call(callee.clone(), sig.clone())),
        LinInst::Return => {
            // Epilogue: restore callee-saves, then return.
            for (i, r) in ctx.f.used_callee_save.iter().enumerate() {
                out.push(MachInst::GetStack(ctx.layout.cs_ofs + 8 * i as i64, *r));
            }
            out.push(MachInst::Return);
        }
        LinInst::Load(chunk, base, disp, dst) => {
            let b = ctx.reg(*base)?;
            let d = ctx.reg(*dst)?;
            out.push(MachInst::Load(*chunk, b, *disp, d));
        }
        LinInst::Store(chunk, base, disp, src) => {
            let b = ctx.reg(*base)?;
            let s = ctx.reg(*src)?;
            out.push(MachInst::Store(*chunk, b, *disp, s));
        }
        LinInst::Op(LOp::Move(src), dst) => match (*src, *dst) {
            (Loc::Reg(s), Loc::Reg(d)) => out.push(MachInst::Op(MOp::Move(s), d)),
            (Loc::Incoming(o), Loc::Reg(d)) => out.push(MachInst::GetParam(o, d)),
            (src @ (Loc::Local(_) | Loc::Outgoing(_)), Loc::Reg(d)) => {
                out.push(MachInst::GetStack(ctx.slot_ofs(src)?, d));
            }
            (Loc::Reg(s), dst @ (Loc::Local(_) | Loc::Outgoing(_))) => {
                out.push(MachInst::SetStack(s, ctx.slot_ofs(dst)?));
            }
            (Loc::Incoming(o), dst @ (Loc::Local(_) | Loc::Outgoing(_))) => {
                out.push(MachInst::GetParam(o, SCRATCH));
                out.push(MachInst::SetStack(SCRATCH, ctx.slot_ofs(dst)?));
            }
            (
                src @ (Loc::Local(_) | Loc::Outgoing(_)),
                dst @ (Loc::Local(_) | Loc::Outgoing(_)),
            ) => {
                out.push(MachInst::GetStack(ctx.slot_ofs(src)?, SCRATCH));
                out.push(MachInst::SetStack(SCRATCH, ctx.slot_ofs(dst)?));
            }
            (s, d) => return ctx.err(format!("unsupported move {s} -> {d}")),
        },
        LinInst::Op(op, dst) => {
            let d = ctx.reg(*dst)?;
            let mop = match op {
                LOp::Move(_) => unreachable!("handled above"),
                LOp::Int(n) => MOp::Int(*n),
                LOp::Long(n) => MOp::Long(*n),
                LOp::AddrGlobal(s, disp) => MOp::AddrGlobal(s.clone(), *disp),
                // The merged stack data lives at stackdata_ofs in the frame.
                LOp::AddrStack(o) => MOp::FrameAddr(ctx.layout.stackdata_ofs + o),
                LOp::Unop(m, a) => MOp::Unop(*m, ctx.reg(*a)?),
                LOp::Binop(m, a, b) => MOp::Binop(*m, ctx.reg(*a)?, ctx.reg(*b)?),
                LOp::BinopImm(m, a, i) => MOp::BinopImm(*m, ctx.reg(*a)?, *i),
            };
            out.push(MachInst::Op(mop, d));
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::alloc::allocation;
    use crate::cleanup::cleanup_labels;
    use crate::debugvar::debugvar;
    use crate::linear::{LinProgram, LinearSem};
    use crate::linearize::linearize;
    use crate::mach::MachSem;
    use crate::tunneling::tunneling;
    use compcerto_core::iface::{abi, LQuery, LReply, MQuery, MReply, Signature};
    use compcerto_core::lts::run;
    use compcerto_core::regs::NREGS;
    use compcerto_core::symtab::SymbolTable;
    use mem::{mem_inject, Chunk, MemInj, Val};

    pub(crate) fn backend_to_linear(src: &str) -> (LinProgram, SymbolTable) {
        use clight::{build_symtab, parse, simpl_locals, typecheck};
        use minor::{cminorgen, cshmgen, selection};
        let p = simpl_locals(&typecheck(&parse(src).unwrap()).unwrap());
        let r = rtl::renumber(&rtl::rtlgen(&selection(
            &cminorgen(&cshmgen(&p).unwrap()).unwrap(),
        )));
        let lin = debugvar(&cleanup_labels(&linearize(&tunneling(&allocation(&r)))));
        let tbl = build_symtab(&[&p]).unwrap();
        (lin, tbl)
    }

    /// Build matching Linear (L-level) and Mach (M-level) queries for a
    /// C-level call intent, sharing the argument region per the LM
    /// convention.
    fn make_queries(
        tbl: &SymbolTable,
        fname: &str,
        sig: &Signature,
        args: &[Val],
    ) -> (LQuery, MQuery) {
        let mut m = tbl.build_init_mem().unwrap();
        let asize = abi::size_arguments(sig);
        let spb = m.alloc(0, asize.max(0));
        for (i, v) in args.iter().enumerate().skip(abi::PARAM_REGS.len()) {
            let ofs = ((i - abi::PARAM_REGS.len()) as i64) * 8;
            m.store(Chunk::Any64, spb, ofs, *v).unwrap();
        }
        let mut rs = [Val::Undef; NREGS];
        for (i, v) in args.iter().enumerate().take(abi::PARAM_REGS.len()) {
            rs[abi::PARAM_REGS[i].index()] = *v;
        }
        // Sentinels in callee-save registers so preservation is observable.
        for (i, r) in abi::CALLEE_SAVE.iter().enumerate() {
            rs[r.index()] = Val::Long(7000 + i as i64);
        }
        let vf = tbl.func_ptr(fname).unwrap();
        let qm = MQuery {
            vf,
            sp: Val::Ptr(spb, 0),
            ra: Val::Undef,
            rs,
            mem: m,
        };
        let (_, ql) = compcerto_core::cc::Lm
            .source_of_with_sig(sig, &qm)
            .expect("LM source view");
        (ql, qm)
    }

    /// Differential check for `Stacking` under (the observable content of)
    /// `injp·LM ↠ LM·inj`: result register agrees, callee-save registers
    /// are preserved, and the final memories are injection-related.
    fn differential(src: &str, fname: &str, args: Vec<Val>) -> (LReply, MReply) {
        let (lin, tbl) = backend_to_linear(src);
        let mach = stacking(&lin).unwrap();
        let sig = lin.function(fname).unwrap().sig.clone();
        let (ql, qm) = make_queries(&tbl, fname, &sig, &args);

        let s1 = LinearSem::new(lin, tbl.clone());
        let s2 = MachSem::new(mach, tbl.clone());
        let r1 = run(&s1, &ql, &mut |_: &LQuery| None::<LReply>, 2_000_000).expect_complete();
        let r2 = run(&s2, &qm, &mut |_: &MQuery| None::<MReply>, 2_000_000).expect_complete();

        // Result agreement (rs' ≡R ls', App. C.2).
        if sig.ret.is_some() {
            let res = abi::loc_result(&sig);
            let v1 = r1.ls.get(Loc::Reg(res));
            let v2 = r2.rs[res.index()];
            assert!(v1.lessdef(&v2), "result differs: {v1} vs {v2}");
        }
        // Callee-save preservation (rs' ≡CS rs): the query put sentinel
        // values there; they must come back unchanged.
        for r in abi::CALLEE_SAVE {
            assert_eq!(
                qm.rs[r.index()],
                r2.rs[r.index()],
                "callee-save {r} clobbered"
            );
        }
        // Final memories injection-related via identity on globals (all
        // activations freed on return).
        let f = MemInj::identity_below(tbl.len() as u32);
        assert_eq!(mem_inject(&f, &r1.mem, &r2.mem), Ok(()));
        (r1, r2)
    }

    #[test]
    fn layout_is_ordered() {
        let f = LinFunction {
            name: "f".into(),
            sig: Signature::int_fn(1),
            stack_size: 24,
            locals_size: 16,
            outgoing_size: 8,
            used_callee_save: vec![Mreg(8), Mreg(9)],
            debug: vec![],
            code: vec![],
        };
        let l = frame_layout(&f);
        assert_eq!(l.cs_ofs, 16);
        assert_eq!(l.locals_ofs, 32);
        assert_eq!(l.stackdata_ofs, 48);
        assert_eq!(l.outgoing_ofs, 72);
        assert_eq!(l.size, 80);
    }

    #[test]
    fn straightline() {
        let (_, r2) = differential(
            "int f(int a, int b) { return a * b + 7; }",
            "f",
            vec![Val::Int(6), Val::Int(6)],
        );
        assert_eq!(r2.rs[abi::RESULT_REG.index()], Val::Int(43));
    }

    #[test]
    fn stack_data_merged_into_frame() {
        let src = "
            long f(long x) {
                long a[3];
                a[0] = x; a[1] = x * 2; a[2] = a[0] + a[1];
                return a[2];
            }";
        let (_, r2) = differential(src, "f", vec![Val::Long(7)]);
        assert_eq!(r2.rs[abi::RESULT_REG.index()], Val::Long(21));
    }

    #[test]
    fn internal_calls_and_callee_save() {
        let src = "
            int id(int x) { return x; }
            int f(int a) { int b; b = id(a + 1); return a * 10 + b; }";
        let (_, r2) = differential(src, "f", vec![Val::Int(4)]);
        assert_eq!(r2.rs[abi::RESULT_REG.index()], Val::Int(45));
    }

    #[test]
    fn stack_passed_arguments() {
        let src = "
            int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b + c + d + e + f;
            }";
        let (_, r2) = differential(src, "sum6", (1..=6).map(Val::Int).collect());
        assert_eq!(r2.rs[abi::RESULT_REG.index()], Val::Int(21));
    }

    #[test]
    fn nested_calls_with_stack_args() {
        // An internal call that itself passes arguments on the stack.
        let src = "
            int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b + c + d + e + f;
            }
            int g(int x) {
                int r;
                r = sum6(x, x, x, x, x, x);
                return r;
            }";
        let (_, r2) = differential(src, "g", vec![Val::Int(3)]);
        assert_eq!(r2.rs[abi::RESULT_REG.index()], Val::Int(18));
    }

    #[test]
    fn recursion_with_frames() {
        let src = "
            int fact(int n) {
                int r;
                if (n <= 1) { return 1; }
                r = fact(n - 1);
                return n * r;
            }";
        let (_, r2) = differential(src, "fact", vec![Val::Int(6)]);
        assert_eq!(r2.rs[abi::RESULT_REG.index()], Val::Int(720));
    }
}
