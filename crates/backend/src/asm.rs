//! Asm-O: the target assembly language (paper Table 3; language interface
//! `A`, Table 2) and its syntactic linking operator `+` (paper Thm. 3.5).
//!
//! All control state lives in the register file: `pc` is a pointer into a
//! function's code block (`Ptr(block, index)`), `call` saves the return
//! address in `ra`, `ret` jumps to it. The open semantics is activated by an
//! arbitrary register file `rs@m` with `pc` pointing at one of the unit's
//! functions; it suspends on an external question whenever `pc` reaches a
//! function block the unit does not define, and its final states are those
//! where `pc` equals the activation's initial `ra` (the environment's return
//! address).

use std::collections::BTreeMap;
use std::fmt;

use compcerto_core::iface::{ARegs, Signature, A};
use compcerto_core::lts::{Batch, Event, Lts, Step, Stuck};
use compcerto_core::regs::{Mreg, Regset};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Val};
use minor::{MBinop, MUnop};

/// A branch label.
pub type Label = u32;

/// Asm-O instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmInst {
    /// `dst := imm32`.
    MovImm32(Mreg, i32),
    /// `dst := imm64`.
    MovImm64(Mreg, i64),
    /// `dst := src`.
    Mov(Mreg, Mreg),
    /// `dst := &symbol + disp`.
    LoadSym(Mreg, Ident, i64),
    /// `dst := sp + ofs` (frame addresses).
    LeaSp(Mreg, i64),
    /// `dst := op src`.
    Unop(MUnop, Mreg, Mreg),
    /// `dst := op a b`.
    Binop(MBinop, Mreg, Mreg, Mreg),
    /// `dst := op a imm`.
    BinopImm(MBinop, Mreg, Mreg, Val),
    /// `dst := chunk[base + disp]`.
    Load(Chunk, Mreg, Mreg, i64),
    /// `chunk[base + disp] := src`.
    Store(Chunk, Mreg, Mreg, i64),
    /// `dst := chunk[sp + ofs]` (frame slots).
    LoadSp(Chunk, Mreg, i64),
    /// `chunk[sp + ofs] := src`.
    StoreSp(Chunk, Mreg, i64),
    /// `sp := sp + imm` (switch to/from the outgoing-arguments area around
    /// calls).
    AddSp(i64),
    /// Allocate a frame block of the given size, store the old `sp` in its
    /// link slot (offset 0), and point `sp` at it.
    AllocFrame(i64),
    /// Load the link slot, free the frame block, restore `sp`.
    FreeFrame(i64),
    /// `[sp + ofs] := ra` (prologue).
    SaveRa(i64),
    /// `ra := [sp + ofs]` (epilogue).
    RestoreRa(i64),
    /// A jump target.
    Label(Label),
    /// Unconditional branch.
    Jmp(Label),
    /// Branch when the register is true.
    Jcc(Mreg, Label),
    /// `ra := pc+1; pc := &symbol`.
    Call(Ident),
    /// `pc := ra`.
    Ret,
}

/// An Asm-O function: a flat instruction sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmFunction {
    /// Name.
    pub name: Ident,
    /// Signature (metadata; the machine does not check it).
    pub sig: Signature,
    /// Code.
    pub code: Vec<AsmInst>,
}

impl AsmFunction {
    /// Index of a label.
    pub fn label_index(&self, l: Label) -> Option<usize> {
        self.code
            .iter()
            .position(|i| matches!(i, AsmInst::Label(x) if *x == l))
    }

    /// Pretty-print the function.
    pub fn dump(&self) -> String {
        let mut out = format!("{}:\n", self.name);
        for (i, inst) in self.code.iter().enumerate() {
            out.push_str(&format!("  {i:>4}: {inst:?}\n"));
        }
        out
    }
}

/// An Asm-O translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AsmProgram {
    /// Function definitions.
    pub functions: Vec<AsmFunction>,
    /// Known externals.
    pub externs: Vec<(Ident, Signature)>,
}

impl AsmProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&AsmFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Error from [`link_asm`].
#[derive(Debug, Clone, PartialEq)]
pub enum AsmLinkError {
    /// A function is defined by both units.
    Duplicate(Ident),
    /// Declared and defined signatures disagree.
    SignatureMismatch(Ident),
}

impl fmt::Display for AsmLinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmLinkError::Duplicate(s) => write!(f, "function `{s}` defined twice"),
            AsmLinkError::SignatureMismatch(s) => {
                write!(f, "declaration of `{s}` does not match its definition")
            }
        }
    }
}

impl std::error::Error for AsmLinkError {}

/// Syntactic linking of Asm programs (CompCert's `+`, the substrate of paper
/// Thm. 3.5): the union of definitions, with externals resolved against the
/// other unit.
///
/// # Errors
/// Duplicate definitions and signature mismatches are rejected.
pub fn link_asm(p1: &AsmProgram, p2: &AsmProgram) -> Result<AsmProgram, AsmLinkError> {
    let mut out = p1.clone();
    for f in &p2.functions {
        if out.function(&f.name).is_some() {
            return Err(AsmLinkError::Duplicate(f.name.clone()));
        }
        out.functions.push(f.clone());
    }
    for (n, sig) in &p2.externs {
        if let Some(f) = out.function(n) {
            if f.sig != *sig {
                return Err(AsmLinkError::SignatureMismatch(n.clone()));
            }
            continue;
        }
        if !out.externs.iter().any(|(m, _)| m == n) {
            out.externs.push((n.clone(), sig.clone()));
        }
    }
    for (n, sig) in &p1.externs {
        if let Some(f) = p2.function(n) {
            if f.sig != *sig {
                return Err(AsmLinkError::SignatureMismatch(n.clone()));
            }
        }
    }
    let defined: Vec<Ident> = out.functions.iter().map(|f| f.name.clone()).collect();
    out.externs.retain(|(n, _)| !defined.contains(n));
    Ok(out)
}

/// The Asm machine state.
#[derive(Debug, Clone)]
pub struct AsmState {
    /// Register file.
    pub rs: Regset,
    /// Memory.
    pub mem: mem::Mem,
    /// The activation's return sentinel: the machine is final when
    /// `pc == ra0`.
    pub ra0: Val,
}

/// The open semantics `Asm(p) : A ↠ A`.
#[derive(Debug, Clone)]
pub struct AsmSem {
    prog: AsmProgram,
    symtab: SymbolTable,
    label: String,
    /// Per-symtab-block function index (first definition wins, like
    /// [`AsmProgram::function`]); drives the batched fast path.
    func_of_block: Vec<Option<usize>>,
    /// Per-symtab-block "declared function this unit does not define" flag
    /// (the external-suspension test of `step`).
    foreign_block: Vec<bool>,
    /// Per-function label → instruction index, parallel to
    /// `prog.functions`.
    labels: Vec<BTreeMap<Label, usize>>,
}

impl AsmSem {
    /// Wrap a program with the shared symbol table.
    pub fn new(prog: AsmProgram, symtab: SymbolTable) -> AsmSem {
        let labels: Vec<BTreeMap<Label, usize>> = prog
            .functions
            .iter()
            .map(|f| {
                f.code
                    .iter()
                    .enumerate()
                    .filter_map(|(i, inst)| match inst {
                        AsmInst::Label(l) => Some((*l, i)),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let mut func_of_block = Vec::with_capacity(symtab.len());
        let mut foreign_block = Vec::with_capacity(symtab.len());
        for b in 0..symtab.len() as u32 {
            let fidx = symtab
                .ident_of(b)
                .and_then(|name| prog.functions.iter().position(|f| f.name == name));
            let is_fn = symtab.sig_of_ptr(&Val::Ptr(b, 0)).is_some();
            foreign_block.push(is_fn && fidx.is_none());
            func_of_block.push(fidx);
        }
        AsmSem {
            prog,
            symtab,
            label: "Asm".into(),
            func_of_block,
            foreign_block,
            labels,
        }
    }

    /// Override the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> AsmSem {
        self.label = label.into();
        self
    }

    /// The program.
    pub fn program(&self) -> &AsmProgram {
        &self.prog
    }

    /// The symbol table.
    pub fn symtab(&self) -> &SymbolTable {
        &self.symtab
    }

    fn stuck<T>(&self, msg: impl Into<String>) -> Result<T, Stuck> {
        Err(Stuck::new(format!("{}: {}", self.label, msg.into())))
    }

    fn function_at(&self, pc: &Val) -> Option<(&str, &AsmFunction, usize)> {
        match pc {
            Val::Ptr(b, idx) => {
                let name = self.symtab.ident_of(*b)?;
                let f = self.prog.function(name)?;
                Some((name, f, *idx as usize))
            }
            _ => None,
        }
    }

    /// Execute one instruction.
    fn exec(&self, st: &AsmState) -> Result<AsmState, Stuck> {
        let Val::Ptr(fb, _) = st.rs.pc else {
            return self.stuck(format!("pc is not a code pointer: {}", st.rs.pc));
        };
        let Some((_, f, idx)) = self.function_at(&st.rs.pc) else {
            return self.stuck("pc outside this unit's code");
        };
        let Some(inst) = f.code.get(idx) else {
            return self.stuck(format!("pc {} past end of `{}`", idx, f.name));
        };
        let mut rs = st.rs.clone();
        let mut mem = st.mem.clone();
        let next = Val::Ptr(fb, idx as i64 + 1);
        rs.pc = next;
        match inst {
            AsmInst::Label(_) => {}
            AsmInst::MovImm32(d, n) => rs.set(*d, Val::Int(*n)),
            AsmInst::MovImm64(d, n) => rs.set(*d, Val::Long(*n)),
            AsmInst::Mov(d, s) => {
                let v = rs.get(*s);
                rs.set(*d, v);
            }
            AsmInst::LoadSym(d, s, disp) => match self.symtab.block_of(s) {
                Some(b) => rs.set(*d, Val::Ptr(b, *disp)),
                None => return self.stuck(format!("unknown symbol `{s}`")),
            },
            AsmInst::LeaSp(d, ofs) => {
                let v = rs.sp.add(Val::Long(*ofs));
                rs.set(*d, v);
            }
            AsmInst::Unop(m, d, s) => {
                let v = m.eval(rs.get(*s));
                rs.set(*d, v);
            }
            AsmInst::Binop(m, d, a, b) => {
                let v = m.eval(rs.get(*a), rs.get(*b));
                rs.set(*d, v);
            }
            AsmInst::BinopImm(m, d, a, i) => {
                let v = m.eval(rs.get(*a), *i);
                rs.set(*d, v);
            }
            AsmInst::Load(c, d, base, disp) => {
                let addr = rs.get(*base).add(Val::Long(*disp));
                match mem.loadv(*c, addr) {
                    Ok(v) => rs.set(*d, v),
                    Err(e) => return self.stuck(format!("load failed: {e}")),
                }
            }
            AsmInst::Store(c, s, base, disp) => {
                let addr = rs.get(*base).add(Val::Long(*disp));
                if let Err(e) = mem.storev(*c, addr, rs.get(*s)) {
                    return self.stuck(format!("store failed: {e}"));
                }
            }
            AsmInst::LoadSp(c, d, ofs) => {
                let addr = rs.sp.add(Val::Long(*ofs));
                match mem.loadv(*c, addr) {
                    Ok(v) => rs.set(*d, v),
                    Err(e) => return self.stuck(format!("frame load failed: {e}")),
                }
            }
            AsmInst::StoreSp(c, s, ofs) => {
                let addr = rs.sp.add(Val::Long(*ofs));
                if let Err(e) = mem.storev(*c, addr, rs.get(*s)) {
                    return self.stuck(format!("frame store failed: {e}"));
                }
            }
            AsmInst::AddSp(imm) => {
                rs.sp = rs.sp.add(Val::Long(*imm));
            }
            AsmInst::AllocFrame(size) => {
                let b = mem.alloc(0, *size);
                if let Err(e) = mem.store(Chunk::Any64, b, 0, rs.sp) {
                    return self.stuck(format!("storing link: {e}"));
                }
                rs.sp = Val::Ptr(b, 0);
            }
            AsmInst::FreeFrame(size) => {
                let Val::Ptr(b, 0) = rs.sp else {
                    return self.stuck("sp is not a frame base");
                };
                let link = match mem.load(Chunk::Any64, b, 0) {
                    Ok(v) => v,
                    Err(e) => return self.stuck(format!("loading link: {e}")),
                };
                if let Err(e) = mem.free(b, 0, *size) {
                    return self.stuck(format!("freeing frame: {e}"));
                }
                rs.sp = link;
            }
            AsmInst::SaveRa(ofs) => {
                let addr = rs.sp.add(Val::Long(*ofs));
                if let Err(e) = mem.storev(Chunk::Any64, addr, rs.ra) {
                    return self.stuck(format!("saving ra: {e}"));
                }
            }
            AsmInst::RestoreRa(ofs) => {
                let addr = rs.sp.add(Val::Long(*ofs));
                match mem.loadv(Chunk::Any64, addr) {
                    Ok(v) => rs.ra = v,
                    Err(e) => return self.stuck(format!("restoring ra: {e}")),
                }
            }
            AsmInst::Jmp(l) => match f.label_index(*l) {
                Some(i) => rs.pc = Val::Ptr(fb, i as i64),
                None => return self.stuck(format!("missing label {l}")),
            },
            AsmInst::Jcc(r, l) => match rs.get(*r).truth() {
                Some(true) => match f.label_index(*l) {
                    Some(i) => rs.pc = Val::Ptr(fb, i as i64),
                    None => return self.stuck(format!("missing label {l}")),
                },
                Some(false) => {}
                None => return self.stuck("undefined branch condition"),
            },
            AsmInst::Call(callee) => match self.symtab.func_ptr(callee) {
                Some(target) => {
                    rs.ra = next;
                    rs.pc = target;
                }
                None => return self.stuck(format!("unknown callee `{callee}`")),
            },
            AsmInst::Ret => {
                rs.pc = rs.ra;
            }
        }
        Ok(AsmState {
            rs,
            mem,
            ra0: st.ra0,
        })
    }
}

impl Lts for AsmSem {
    type I = A;
    type O = A;
    type State = AsmState;

    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, q: &ARegs) -> bool {
        matches!(self.function_at(&q.rs.pc), Some((_, _, 0)))
    }

    fn initial(&self, q: &ARegs) -> Result<AsmState, Stuck> {
        if !self.accepts(q) {
            return self.stuck("query not accepted");
        }
        Ok(AsmState {
            rs: q.rs.clone(),
            mem: q.mem.clone(),
            ra0: q.rs.ra,
        })
    }

    fn step(&self, s: &AsmState) -> Step<AsmState, ARegs, ARegs> {
        // Final: control returned to the environment's return address.
        if s.rs.pc == s.ra0 && s.rs.pc.is_defined() {
            return Step::Final(ARegs {
                rs: s.rs.clone(),
                mem: s.mem.clone(),
            });
        }
        // External: pc entered a function this unit does not define.
        if let Val::Ptr(b, 0) = s.rs.pc {
            let is_foreign_fn = self.symtab.sig_of_ptr(&Val::Ptr(b, 0)).is_some()
                && self
                    .symtab
                    .ident_of(b)
                    .map(|n| self.prog.function(n).is_none())
                    .unwrap_or(false);
            if is_foreign_fn {
                return Step::External(ARegs {
                    rs: s.rs.clone(),
                    mem: s.mem.clone(),
                });
            }
        }
        match self.exec(s) {
            Ok(next) => Step::Internal(next, vec![]),
            Err(stuck) => Step::Stuck(stuck),
        }
    }

    /// The batched fast path (DESIGN.md §13): identical transitions, stuck
    /// messages, fuel accounting, and memory-op sequence as single-stepping,
    /// executed in place. Code-block resolution is cached while `pc` stays
    /// in one function; label targets come from the precomputed maps.
    #[allow(clippy::too_many_lines)]
    fn step_batch(
        &self,
        s: &mut AsmState,
        fuel_left: u64,
        _events: &mut Vec<Event>,
    ) -> Batch<ARegs, ARegs> {
        let prefixed = |msg: String| Stuck::new(format!("{}: {msg}", self.label));
        let mut n: u64 = 0;
        let mut cached: Option<(BlockId, usize)> = None;
        loop {
            if n == fuel_left {
                return Batch::Ran(n);
            }
            // Final: control returned to the environment's return address.
            if s.rs.pc == s.ra0 && s.rs.pc.is_defined() {
                return Batch::Final(
                    n,
                    ARegs {
                        rs: s.rs.clone(),
                        mem: s.mem.clone(),
                    },
                );
            }
            // External: pc entered a function this unit does not define.
            if let Val::Ptr(b, 0) = s.rs.pc {
                if self.foreign_block.get(b as usize).copied().unwrap_or(false) {
                    return Batch::External(
                        n,
                        ARegs {
                            rs: s.rs.clone(),
                            mem: s.mem.clone(),
                        },
                    );
                }
            }
            let Val::Ptr(fb, idx) = s.rs.pc else {
                return Batch::Stuck(
                    n,
                    prefixed(format!("pc is not a code pointer: {}", s.rs.pc)),
                );
            };
            let fi = match cached {
                Some((cb, fi)) if cb == fb => fi,
                _ => {
                    let Some(fi) = self.func_of_block.get(fb as usize).copied().flatten() else {
                        return Batch::Stuck(n, prefixed("pc outside this unit's code".into()));
                    };
                    cached = Some((fb, fi));
                    fi
                }
            };
            let f = &self.prog.functions[fi];
            let labels = &self.labels[fi];
            let idx = idx as usize;
            let Some(inst) = f.code.get(idx) else {
                return Batch::Stuck(n, prefixed(format!("pc {} past end of `{}`", idx, f.name)));
            };
            let next = Val::Ptr(fb, idx as i64 + 1);
            s.rs.pc = next;
            match inst {
                AsmInst::Label(_) => {}
                AsmInst::MovImm32(d, v) => s.rs.set(*d, Val::Int(*v)),
                AsmInst::MovImm64(d, v) => s.rs.set(*d, Val::Long(*v)),
                AsmInst::Mov(d, src) => {
                    let v = s.rs.get(*src);
                    s.rs.set(*d, v);
                }
                AsmInst::LoadSym(d, sym, disp) => match self.symtab.block_of(sym) {
                    Some(b) => s.rs.set(*d, Val::Ptr(b, *disp)),
                    None => return Batch::Stuck(n, prefixed(format!("unknown symbol `{sym}`"))),
                },
                AsmInst::LeaSp(d, ofs) => {
                    let v = s.rs.sp.add(Val::Long(*ofs));
                    s.rs.set(*d, v);
                }
                AsmInst::Unop(m, d, src) => {
                    let v = m.eval(s.rs.get(*src));
                    s.rs.set(*d, v);
                }
                AsmInst::Binop(m, d, a, b) => {
                    let v = m.eval(s.rs.get(*a), s.rs.get(*b));
                    s.rs.set(*d, v);
                }
                AsmInst::BinopImm(m, d, a, i) => {
                    let v = m.eval(s.rs.get(*a), *i);
                    s.rs.set(*d, v);
                }
                AsmInst::Load(c, d, base, disp) => {
                    let addr = s.rs.get(*base).add(Val::Long(*disp));
                    match s.mem.loadv(*c, addr) {
                        Ok(v) => s.rs.set(*d, v),
                        Err(e) => {
                            return Batch::Stuck(n, prefixed(format!("load failed: {e}")))
                        }
                    }
                }
                AsmInst::Store(c, src, base, disp) => {
                    let addr = s.rs.get(*base).add(Val::Long(*disp));
                    if let Err(e) = s.mem.storev(*c, addr, s.rs.get(*src)) {
                        return Batch::Stuck(n, prefixed(format!("store failed: {e}")));
                    }
                }
                AsmInst::LoadSp(c, d, ofs) => {
                    let addr = s.rs.sp.add(Val::Long(*ofs));
                    match s.mem.loadv(*c, addr) {
                        Ok(v) => s.rs.set(*d, v),
                        Err(e) => {
                            return Batch::Stuck(n, prefixed(format!("frame load failed: {e}")))
                        }
                    }
                }
                AsmInst::StoreSp(c, src, ofs) => {
                    let addr = s.rs.sp.add(Val::Long(*ofs));
                    if let Err(e) = s.mem.storev(*c, addr, s.rs.get(*src)) {
                        return Batch::Stuck(n, prefixed(format!("frame store failed: {e}")));
                    }
                }
                AsmInst::AddSp(imm) => {
                    s.rs.sp = s.rs.sp.add(Val::Long(*imm));
                }
                AsmInst::AllocFrame(size) => {
                    let b = s.mem.alloc(0, *size);
                    if let Err(e) = s.mem.store(Chunk::Any64, b, 0, s.rs.sp) {
                        return Batch::Stuck(n, prefixed(format!("storing link: {e}")));
                    }
                    s.rs.sp = Val::Ptr(b, 0);
                }
                AsmInst::FreeFrame(size) => {
                    let Val::Ptr(b, 0) = s.rs.sp else {
                        return Batch::Stuck(n, prefixed("sp is not a frame base".into()));
                    };
                    let link = match s.mem.load(Chunk::Any64, b, 0) {
                        Ok(v) => v,
                        Err(e) => {
                            return Batch::Stuck(n, prefixed(format!("loading link: {e}")))
                        }
                    };
                    if let Err(e) = s.mem.free(b, 0, *size) {
                        return Batch::Stuck(n, prefixed(format!("freeing frame: {e}")));
                    }
                    s.rs.sp = link;
                }
                AsmInst::SaveRa(ofs) => {
                    let addr = s.rs.sp.add(Val::Long(*ofs));
                    if let Err(e) = s.mem.storev(Chunk::Any64, addr, s.rs.ra) {
                        return Batch::Stuck(n, prefixed(format!("saving ra: {e}")));
                    }
                }
                AsmInst::RestoreRa(ofs) => {
                    let addr = s.rs.sp.add(Val::Long(*ofs));
                    match s.mem.loadv(Chunk::Any64, addr) {
                        Ok(v) => s.rs.ra = v,
                        Err(e) => {
                            return Batch::Stuck(n, prefixed(format!("restoring ra: {e}")))
                        }
                    }
                }
                AsmInst::Jmp(l) => match labels.get(l) {
                    Some(&i) => s.rs.pc = Val::Ptr(fb, i as i64),
                    None => return Batch::Stuck(n, prefixed(format!("missing label {l}"))),
                },
                AsmInst::Jcc(r, l) => match s.rs.get(*r).truth() {
                    Some(true) => match labels.get(l) {
                        Some(&i) => s.rs.pc = Val::Ptr(fb, i as i64),
                        None => return Batch::Stuck(n, prefixed(format!("missing label {l}"))),
                    },
                    Some(false) => {}
                    None => {
                        return Batch::Stuck(n, prefixed("undefined branch condition".into()))
                    }
                },
                AsmInst::Call(callee) => match self.symtab.func_ptr(callee) {
                    Some(target) => {
                        s.rs.ra = next;
                        s.rs.pc = target;
                    }
                    None => {
                        return Batch::Stuck(n, prefixed(format!("unknown callee `{callee}`")))
                    }
                },
                AsmInst::Ret => {
                    s.rs.pc = s.rs.ra;
                }
            }
            n += 1;
        }
    }

    fn resume(&self, s: &AsmState, a: ARegs) -> Result<AsmState, Stuck> {
        // The environment's answer replaces the machine state wholesale; the
        // reply's pc is the return address the caller placed in `ra`.
        Ok(AsmState {
            rs: a.rs,
            mem: a.mem,
            ra0: s.ra0,
        })
    }

    fn measure(&self, s: &AsmState) -> compcerto_core::lts::StateMeasure {
        // Assembly has no structured call stack to count (frames are memory
        // blocks); the live-byte footprint covers both heap and frames.
        compcerto_core::lts::StateMeasure {
            mem_bytes: s.mem.allocated_bytes(),
            call_depth: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::abi;
    use compcerto_core::lts::run;
    use compcerto_core::symtab::GlobKind;
    use mem::Mem;

    /// Hand-written `add1`: r0 := r0 + 1; ret.
    fn sample() -> (AsmSem, Mem) {
        let f = AsmFunction {
            name: "add1".into(),
            sig: Signature::int_fn(1),
            code: vec![
                AsmInst::BinopImm(MBinop::Add32, Mreg(0), Mreg(0), Val::Int(1)),
                AsmInst::Ret,
            ],
        };
        let prog = AsmProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("add1".into(), GlobKind::Func(Signature::int_fn(1)));
        let mem = tbl.build_init_mem().unwrap();
        (AsmSem::new(prog, tbl), mem)
    }

    fn query(sem: &AsmSem, mem: &Mem, n: i32) -> ARegs {
        let mut m = mem.clone();
        let rab = m.alloc(0, 0);
        let mut rs = Regset::new();
        rs.pc = sem.symtab().func_ptr("add1").unwrap();
        rs.ra = Val::Ptr(rab, 0);
        rs.sp = Val::Ptr(rab, 0);
        rs.set(abi::PARAM_REGS[0], Val::Int(n));
        ARegs { rs, mem: m }
    }

    #[test]
    fn executes_and_returns_via_ra() {
        let (sem, mem) = sample();
        let q = query(&sem, &mem, 41);
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.rs.get(abi::RESULT_REG), Val::Int(42));
        assert_eq!(r.rs.pc, q.rs.ra);
    }

    #[test]
    fn rejects_mid_function_entry() {
        let (sem, mem) = sample();
        let mut q = query(&sem, &mem, 1);
        q.rs.pc = q.rs.pc.add(Val::Long(1));
        assert!(!sem.accepts(&q));
    }

    #[test]
    fn linking_merges_units() {
        let f = AsmFunction {
            name: "a".into(),
            sig: Signature::int_fn(0),
            code: vec![AsmInst::Ret],
        };
        let g = AsmFunction {
            name: "b".into(),
            sig: Signature::int_fn(0),
            code: vec![AsmInst::Ret],
        };
        let p1 = AsmProgram {
            functions: vec![f.clone()],
            externs: vec![("b".into(), Signature::int_fn(0))],
        };
        let p2 = AsmProgram {
            functions: vec![g],
            externs: vec![],
        };
        let merged = link_asm(&p1, &p2).unwrap();
        assert_eq!(merged.functions.len(), 2);
        assert!(merged.externs.is_empty());
        // Duplicates rejected.
        let p3 = AsmProgram {
            functions: vec![f],
            externs: vec![],
        };
        assert_eq!(link_asm(&p1, &p3), Err(AsmLinkError::Duplicate("a".into())));
    }

    #[test]
    fn frame_alloc_free_roundtrip() {
        let f = AsmFunction {
            name: "framed".into(),
            sig: Signature::int_fn(0),
            code: vec![
                AsmInst::AllocFrame(32),
                AsmInst::SaveRa(8),
                AsmInst::MovImm32(Mreg(0), 7),
                AsmInst::StoreSp(Chunk::Any64, Mreg(0), 16),
                AsmInst::LoadSp(Chunk::Any64, Mreg(1), 16),
                AsmInst::RestoreRa(8),
                AsmInst::FreeFrame(32),
                AsmInst::Ret,
            ],
        };
        let prog = AsmProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("framed".into(), GlobKind::Func(Signature::int_fn(0)));
        let mem0 = tbl.build_init_mem().unwrap();
        let sem = AsmSem::new(prog, tbl.clone());
        let mut m = mem0;
        let rab = m.alloc(0, 0);
        let mut rs = Regset::new();
        rs.pc = tbl.func_ptr("framed").unwrap();
        rs.ra = Val::Ptr(rab, 0);
        rs.sp = Val::Ptr(rab, 0);
        let q = ARegs { rs, mem: m };
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.rs.get(Mreg(1)), Val::Int(7));
        // sp restored, frame freed.
        assert_eq!(r.rs.sp, q.rs.sp);
    }
}
