//! Mach: Linear with concrete activation records (paper Table 3; language
//! interface `M`, Table 2).
//!
//! Each activation owns a frame block laid out by `Stacking`
//! (see [`crate::stacking::FrameLayout`]); spill slots and the former
//! Cminor stack data live inside it, stack-passed arguments are read from the
//! *caller's* frame through the incoming stack pointer (`GetParam`), and
//! callee-save registers are saved/restored explicitly by generated code.
//!
//! Return addresses are opaque at this level; the [`RaOracle`] predicts the
//! Asm-level return address for outgoing calls (CompCert's
//! `return_address_offset`), letting the `MA` convention check `ra` equality
//! between Mach and Asm executions.

use std::collections::BTreeMap;
use std::sync::Arc;

use compcerto_core::iface::{MQuery, MReply, Signature, M};
use compcerto_core::lts::{Batch, Event, Lts, Step, Stuck};
use compcerto_core::regs::{Mreg, NREGS};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Mem, Val};
use minor::{MBinop, MUnop};

/// A branch label.
pub type Label = u32;

/// Pure operations over machine registers.
#[derive(Debug, Clone, PartialEq)]
pub enum MOp {
    /// Copy a register.
    Move(Mreg),
    /// 32-bit constant.
    Int(i32),
    /// 64-bit constant.
    Long(i64),
    /// Global address plus displacement.
    AddrGlobal(Ident, i64),
    /// Address within the own frame (used for the merged stack data).
    FrameAddr(i64),
    /// Unary operation.
    Unop(MUnop, Mreg),
    /// Binary operation.
    Binop(MBinop, Mreg, Mreg),
    /// Binary operation with immediate.
    BinopImm(MBinop, Mreg, Val),
}

/// Mach instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum MachInst {
    /// `dst := op`.
    Op(MOp, Mreg),
    /// `dst := chunk[base + disp]`.
    Load(Chunk, Mreg, i64, Mreg),
    /// `chunk[base + disp] := src`.
    Store(Chunk, Mreg, i64, Mreg),
    /// Read an own-frame slot (untyped 8-byte).
    GetStack(i64, Mreg),
    /// Write an own-frame slot.
    SetStack(Mreg, i64),
    /// Read a stack-passed parameter from the caller's outgoing area.
    GetParam(i64, Mreg),
    /// ABI call.
    Call(Ident, Signature),
    /// A jump target.
    Label(Label),
    /// Unconditional branch.
    Goto(Label),
    /// Conditional branch.
    CondGoto(Mreg, Label),
    /// Return (frame freed by the semantics; epilogue code restored
    /// callee-saves already).
    Return,
}

/// A Mach function.
#[derive(Debug, Clone, PartialEq)]
pub struct MachFunction {
    /// Name.
    pub name: Ident,
    /// Signature.
    pub sig: Signature,
    /// Total frame size in bytes.
    pub frame_size: i64,
    /// Offset of the merged Cminor stack data within the frame.
    pub stackdata_ofs: i64,
    /// Offset of the outgoing-arguments area within the frame.
    pub outgoing_ofs: i64,
    /// Instruction list.
    pub code: Vec<MachInst>,
}

impl MachFunction {
    /// Index of a label.
    pub fn label_index(&self, l: Label) -> Option<usize> {
        self.code
            .iter()
            .position(|i| matches!(i, MachInst::Label(x) if *x == l))
    }
}

/// A Mach translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachProgram {
    /// Function definitions.
    pub functions: Vec<MachFunction>,
    /// Known externals.
    pub externs: Vec<(Ident, Signature)>,
}

impl MachProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&MachFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Oracle predicting the Asm-level return address of a call at a Mach
/// program point (CompCert's `return_address_offset`). Built by `Asmgen`;
/// before it runs, the default oracle answers `Undef`.
pub type RaOracle = Arc<dyn Fn(&str, usize) -> Val + Send + Sync>;

/// A Mach activation.
#[derive(Debug, Clone)]
pub struct MachFrame {
    fname: Ident,
    pc: usize,
    regs: [Val; NREGS],
    /// Own frame block.
    fp: BlockId,
    /// Incoming stack pointer (caller's outgoing area).
    parent_sp: Val,
}

/// States of the Mach LTS.
#[derive(Debug, Clone)]
pub enum MachState {
    /// Entering an internal function.
    Call {
        /// Callee.
        fname: Ident,
        /// Registers.
        regs: [Val; NREGS],
        /// Stack pointer handed to the callee.
        sp: Val,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<MachFrame>,
    },
    /// Executing.
    Exec {
        /// Active frame.
        cur: MachFrame,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<MachFrame>,
    },
    /// Suspended on an external call.
    External {
        /// The question.
        q: MQuery,
        /// Active frame.
        cur: MachFrame,
        /// Suspended callers.
        stack: Vec<MachFrame>,
    },
    /// Returning.
    Ret {
        /// Registers at return.
        regs: [Val; NREGS],
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<MachFrame>,
    },
}

/// The open semantics `Mach(p) : M ↠ M`.
#[derive(Clone)]
pub struct MachSem {
    prog: MachProgram,
    symtab: SymbolTable,
    ra_oracle: RaOracle,
    label: String,
    /// Function index by name (first definition wins, like
    /// [`MachProgram::function`]); drives the batched fast path.
    fidx_of_name: BTreeMap<Ident, usize>,
    /// Per-function label → instruction index, parallel to
    /// `prog.functions`.
    labels: Vec<BTreeMap<Label, usize>>,
}

impl std::fmt::Debug for MachSem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachSem")
            .field("label", &self.label)
            .finish()
    }
}

impl MachSem {
    /// Wrap a program; the return-address oracle defaults to `Undef`.
    pub fn new(prog: MachProgram, symtab: SymbolTable) -> MachSem {
        let mut fidx_of_name = BTreeMap::new();
        let mut labels = Vec::with_capacity(prog.functions.len());
        for (i, f) in prog.functions.iter().enumerate() {
            fidx_of_name.entry(f.name.clone()).or_insert(i);
            labels.push(label_targets(f));
        }
        MachSem {
            prog,
            symtab,
            ra_oracle: Arc::new(|_, _| Val::Undef),
            label: "Mach".into(),
            fidx_of_name,
            labels,
        }
    }

    /// Install the return-address oracle produced by `Asmgen`.
    pub fn with_ra_oracle(mut self, oracle: RaOracle) -> MachSem {
        self.ra_oracle = oracle;
        self
    }

    /// Override the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> MachSem {
        self.label = label.into();
        self
    }

    /// The program.
    pub fn program(&self) -> &MachProgram {
        &self.prog
    }

    /// The symbol table.
    pub fn symtab(&self) -> &SymbolTable {
        &self.symtab
    }

    fn stuck<T>(&self, msg: impl Into<String>) -> Result<T, Stuck> {
        Err(Stuck::new(format!("{}: {}", self.label, msg.into())))
    }

    fn eval_op(&self, frame: &MachFrame, op: &MOp) -> Result<Val, Stuck> {
        Ok(match op {
            MOp::Move(r) => frame.regs[r.index()],
            MOp::Int(n) => Val::Int(*n),
            MOp::Long(n) => Val::Long(*n),
            MOp::AddrGlobal(s, d) => match self.symtab.block_of(s) {
                Some(b) => Val::Ptr(b, *d),
                None => return self.stuck(format!("unknown symbol `{s}`")),
            },
            MOp::FrameAddr(o) => Val::Ptr(frame.fp, *o),
            MOp::Unop(m, r) => m.eval(frame.regs[r.index()]),
            MOp::Binop(m, a, b) => m.eval(frame.regs[a.index()], frame.regs[b.index()]),
            MOp::BinopImm(m, a, i) => m.eval(frame.regs[a.index()], *i),
        })
    }

    fn exec_inst(
        &self,
        f: &MachFunction,
        cur: &MachFrame,
        mem: &Mem,
        stack: &[MachFrame],
    ) -> Result<MachState, Stuck> {
        let Some(inst) = f.code.get(cur.pc) else {
            return self.stuck(format!("pc {} past end of `{}`", cur.pc, cur.fname));
        };
        let seq = |frame: MachFrame, mem: Mem| MachState::Exec {
            cur: frame,
            mem,
            stack: stack.to_vec(),
        };
        match inst {
            MachInst::Label(_) => {
                let mut fr = cur.clone();
                fr.pc += 1;
                Ok(seq(fr, mem.clone()))
            }
            MachInst::Op(op, dst) => {
                let v = self.eval_op(cur, op)?;
                let mut fr = cur.clone();
                fr.regs[dst.index()] = v;
                fr.pc += 1;
                Ok(seq(fr, mem.clone()))
            }
            MachInst::Load(chunk, base, disp, dst) => {
                let addr = cur.regs[base.index()].add(Val::Long(*disp));
                let v = match mem.loadv(*chunk, addr) {
                    Ok(v) => v,
                    Err(e) => return self.stuck(format!("load failed: {e}")),
                };
                let mut fr = cur.clone();
                fr.regs[dst.index()] = v;
                fr.pc += 1;
                Ok(seq(fr, mem.clone()))
            }
            MachInst::Store(chunk, base, disp, src) => {
                let addr = cur.regs[base.index()].add(Val::Long(*disp));
                let mut mem2 = mem.clone();
                if let Err(e) = mem2.storev(*chunk, addr, cur.regs[src.index()]) {
                    return self.stuck(format!("store failed: {e}"));
                }
                let mut fr = cur.clone();
                fr.pc += 1;
                Ok(seq(fr, mem2))
            }
            MachInst::GetStack(ofs, dst) => {
                let v = match mem.load(Chunk::Any64, cur.fp, *ofs) {
                    Ok(v) => v,
                    Err(e) => return self.stuck(format!("getstack failed: {e}")),
                };
                let mut fr = cur.clone();
                fr.regs[dst.index()] = v;
                fr.pc += 1;
                Ok(seq(fr, mem.clone()))
            }
            MachInst::SetStack(src, ofs) => {
                let mut mem2 = mem.clone();
                if let Err(e) = mem2.store(Chunk::Any64, cur.fp, *ofs, cur.regs[src.index()]) {
                    return self.stuck(format!("setstack failed: {e}"));
                }
                let mut fr = cur.clone();
                fr.pc += 1;
                Ok(seq(fr, mem2))
            }
            MachInst::GetParam(ofs, dst) => {
                let v = match mem.loadv(Chunk::Any64, cur.parent_sp.add(Val::Long(*ofs))) {
                    Ok(v) => v,
                    Err(e) => return self.stuck(format!("getparam failed: {e}")),
                };
                let mut fr = cur.clone();
                fr.regs[dst.index()] = v;
                fr.pc += 1;
                Ok(seq(fr, mem.clone()))
            }
            MachInst::Goto(l) => match f.label_index(*l) {
                Some(i) => {
                    let mut fr = cur.clone();
                    fr.pc = i;
                    Ok(seq(fr, mem.clone()))
                }
                None => self.stuck(format!("missing label {l}")),
            },
            MachInst::CondGoto(r, l) => match cur.regs[r.index()].truth() {
                Some(true) => match f.label_index(*l) {
                    Some(i) => {
                        let mut fr = cur.clone();
                        fr.pc = i;
                        Ok(seq(fr, mem.clone()))
                    }
                    None => self.stuck(format!("missing label {l}")),
                },
                Some(false) => {
                    let mut fr = cur.clone();
                    fr.pc += 1;
                    Ok(seq(fr, mem.clone()))
                }
                None => self.stuck("undefined branch condition"),
            },
            MachInst::Call(callee, _sig) => {
                // The callee's stack pointer is this frame's outgoing area.
                let sp = Val::Ptr(cur.fp, f.outgoing_ofs);
                if self.prog.function(callee).is_some() {
                    let mut stack = stack.to_vec();
                    stack.push(cur.clone());
                    Ok(MachState::Call {
                        fname: callee.clone(),
                        regs: cur.regs,
                        sp,
                        mem: mem.clone(),
                        stack,
                    })
                } else {
                    let Some(vf) = self.symtab.func_ptr(callee) else {
                        return self.stuck(format!("unknown callee `{callee}`"));
                    };
                    let ra = (self.ra_oracle)(&cur.fname, cur.pc);
                    Ok(MachState::External {
                        q: MQuery {
                            vf,
                            sp,
                            ra,
                            rs: cur.regs,
                            mem: mem.clone(),
                        },
                        cur: cur.clone(),
                        stack: stack.to_vec(),
                    })
                }
            }
            MachInst::Return => {
                let Some(f) = self.prog.function(&cur.fname) else {
                    return self.stuck("frame names unknown function");
                };
                let mut mem = mem.clone();
                if let Err(e) = mem.free(cur.fp, 0, f.frame_size) {
                    return self.stuck(format!("freeing frame: {e}"));
                }
                Ok(MachState::Ret {
                    regs: cur.regs,
                    mem,
                    stack: stack.to_vec(),
                })
            }
        }
    }
}

impl Lts for MachSem {
    type I = M;
    type O = M;
    type State = MachState;

    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, q: &MQuery) -> bool {
        match &q.vf {
            Val::Ptr(b, 0) => self
                .symtab
                .ident_of(*b)
                .and_then(|n| self.prog.function(n))
                .is_some(),
            _ => false,
        }
    }

    fn initial(&self, q: &MQuery) -> Result<MachState, Stuck> {
        if !self.accepts(q) {
            return self.stuck("query not accepted");
        }
        let Val::Ptr(b, 0) = q.vf else {
            return self.stuck("accepted query has a non-pointer vf");
        };
        let Some(name) = self.symtab.ident_of(b) else {
            return self.stuck("accepted query names an unknown block");
        };
        Ok(MachState::Call {
            fname: name.to_string(),
            regs: q.rs,
            sp: q.sp,
            mem: q.mem.clone(),
            stack: vec![],
        })
    }

    fn step(&self, s: &MachState) -> Step<MachState, MQuery, MReply> {
        match s {
            MachState::Call {
                fname,
                regs,
                sp,
                mem,
                stack,
            } => {
                let Some(f) = self.prog.function(fname) else {
                    return Step::Stuck(Stuck::new(format!("unknown function `{fname}`")));
                };
                let mut mem = mem.clone();
                let fp = mem.alloc(0, f.frame_size);
                Step::Internal(
                    MachState::Exec {
                        cur: MachFrame {
                            fname: fname.clone(),
                            pc: 0,
                            regs: *regs,
                            fp,
                            parent_sp: *sp,
                        },
                        mem,
                        stack: stack.clone(),
                    },
                    vec![],
                )
            }
            MachState::Exec { cur, mem, stack } => {
                let Some(f) = self.prog.function(&cur.fname) else {
                    return Step::Stuck(Stuck::new("frame names unknown function"));
                };
                match self.exec_inst(f, cur, mem, stack) {
                    Ok(next) => Step::Internal(next, vec![]),
                    Err(stuck) => Step::Stuck(stuck),
                }
            }
            MachState::Ret { regs, mem, stack } => {
                if stack.is_empty() {
                    return Step::Final(MReply {
                        rs: *regs,
                        mem: mem.clone(),
                    });
                }
                let mut stack = stack.clone();
                let Some(mut caller) = stack.pop() else {
                    return Step::Stuck(Stuck::new("return with no caller frame"));
                };
                caller.regs = *regs;
                caller.pc += 1;
                Step::Internal(
                    MachState::Exec {
                        cur: caller,
                        mem: mem.clone(),
                        stack,
                    },
                    vec![],
                )
            }
            MachState::External { q, .. } => Step::External(q.clone()),
        }
    }

    /// The batched fast path (DESIGN.md §13): identical transitions, stuck
    /// messages, fuel accounting, and memory-op sequence as single-stepping,
    /// executed in place with precomputed name/label tables.
    #[allow(clippy::too_many_lines)]
    fn step_batch(
        &self,
        s: &mut MachState,
        fuel_left: u64,
        _events: &mut Vec<Event>,
    ) -> Batch<MQuery, MReply> {
        let prefixed = |msg: String| Stuck::new(format!("{}: {msg}", self.label));
        let mut st = std::mem::replace(
            s,
            MachState::Ret {
                regs: [Val::Undef; NREGS],
                mem: Mem::new(),
                stack: Vec::new(),
            },
        );
        let mut n: u64 = 0;
        loop {
            match st {
                // Only reachable at batch entry (externals inside the batch
                // return directly from the `Exec` arm).
                MachState::External { q, cur, stack } => {
                    let out = q.clone();
                    *s = MachState::External { q, cur, stack };
                    return Batch::External(n, out);
                }
                MachState::Call {
                    fname,
                    regs,
                    sp,
                    mut mem,
                    stack,
                } => {
                    if n == fuel_left {
                        *s = MachState::Call {
                            fname,
                            regs,
                            sp,
                            mem,
                            stack,
                        };
                        return Batch::Ran(n);
                    }
                    let Some(&fi) = self.fidx_of_name.get(&fname) else {
                        return Batch::Stuck(n, Stuck::new(format!("unknown function `{fname}`")));
                    };
                    let f = &self.prog.functions[fi];
                    let fp = mem.alloc(0, f.frame_size);
                    n += 1;
                    st = MachState::Exec {
                        cur: MachFrame {
                            fname,
                            pc: 0,
                            regs,
                            fp,
                            parent_sp: sp,
                        },
                        mem,
                        stack,
                    };
                }
                MachState::Exec {
                    mut cur,
                    mut mem,
                    mut stack,
                } => {
                    let Some(&fi) = self.fidx_of_name.get(&cur.fname) else {
                        return Batch::Stuck(n, Stuck::new("frame names unknown function"));
                    };
                    let f = &self.prog.functions[fi];
                    let labels = &self.labels[fi];
                    loop {
                        if n == fuel_left {
                            *s = MachState::Exec { cur, mem, stack };
                            return Batch::Ran(n);
                        }
                        let Some(inst) = f.code.get(cur.pc) else {
                            return Batch::Stuck(
                                n,
                                prefixed(format!("pc {} past end of `{}`", cur.pc, cur.fname)),
                            );
                        };
                        match inst {
                            MachInst::Label(_) => {
                                cur.pc += 1;
                                n += 1;
                            }
                            MachInst::Op(op, dst) => {
                                let v = match self.eval_op(&cur, op) {
                                    Ok(v) => v,
                                    Err(e) => return Batch::Stuck(n, e),
                                };
                                cur.regs[dst.index()] = v;
                                cur.pc += 1;
                                n += 1;
                            }
                            MachInst::Load(chunk, base, disp, dst) => {
                                let addr = cur.regs[base.index()].add(Val::Long(*disp));
                                let v = match mem.loadv(*chunk, addr) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        return Batch::Stuck(
                                            n,
                                            prefixed(format!("load failed: {e}")),
                                        )
                                    }
                                };
                                cur.regs[dst.index()] = v;
                                cur.pc += 1;
                                n += 1;
                            }
                            MachInst::Store(chunk, base, disp, src) => {
                                let addr = cur.regs[base.index()].add(Val::Long(*disp));
                                if let Err(e) = mem.storev(*chunk, addr, cur.regs[src.index()]) {
                                    return Batch::Stuck(
                                        n,
                                        prefixed(format!("store failed: {e}")),
                                    );
                                }
                                cur.pc += 1;
                                n += 1;
                            }
                            MachInst::GetStack(ofs, dst) => {
                                let v = match mem.load(Chunk::Any64, cur.fp, *ofs) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        return Batch::Stuck(
                                            n,
                                            prefixed(format!("getstack failed: {e}")),
                                        )
                                    }
                                };
                                cur.regs[dst.index()] = v;
                                cur.pc += 1;
                                n += 1;
                            }
                            MachInst::SetStack(src, ofs) => {
                                if let Err(e) =
                                    mem.store(Chunk::Any64, cur.fp, *ofs, cur.regs[src.index()])
                                {
                                    return Batch::Stuck(
                                        n,
                                        prefixed(format!("setstack failed: {e}")),
                                    );
                                }
                                cur.pc += 1;
                                n += 1;
                            }
                            MachInst::GetParam(ofs, dst) => {
                                let v = match mem
                                    .loadv(Chunk::Any64, cur.parent_sp.add(Val::Long(*ofs)))
                                {
                                    Ok(v) => v,
                                    Err(e) => {
                                        return Batch::Stuck(
                                            n,
                                            prefixed(format!("getparam failed: {e}")),
                                        )
                                    }
                                };
                                cur.regs[dst.index()] = v;
                                cur.pc += 1;
                                n += 1;
                            }
                            MachInst::Goto(l) => match labels.get(l) {
                                Some(&i) => {
                                    cur.pc = i;
                                    n += 1;
                                }
                                None => {
                                    return Batch::Stuck(n, prefixed(format!("missing label {l}")))
                                }
                            },
                            MachInst::CondGoto(r, l) => match cur.regs[r.index()].truth() {
                                Some(true) => match labels.get(l) {
                                    Some(&i) => {
                                        cur.pc = i;
                                        n += 1;
                                    }
                                    None => {
                                        return Batch::Stuck(
                                            n,
                                            prefixed(format!("missing label {l}")),
                                        )
                                    }
                                },
                                Some(false) => {
                                    cur.pc += 1;
                                    n += 1;
                                }
                                None => {
                                    return Batch::Stuck(
                                        n,
                                        prefixed("undefined branch condition".into()),
                                    )
                                }
                            },
                            MachInst::Call(callee, _sig) => {
                                let sp = Val::Ptr(cur.fp, f.outgoing_ofs);
                                if self.fidx_of_name.contains_key(callee) {
                                    let fname = callee.clone();
                                    let regs = cur.regs;
                                    stack.push(cur);
                                    n += 1;
                                    st = MachState::Call {
                                        fname,
                                        regs,
                                        sp,
                                        mem,
                                        stack,
                                    };
                                    break;
                                }
                                let Some(vf) = self.symtab.func_ptr(callee) else {
                                    return Batch::Stuck(
                                        n,
                                        prefixed(format!("unknown callee `{callee}`")),
                                    );
                                };
                                let ra = (self.ra_oracle)(&cur.fname, cur.pc);
                                n += 1;
                                let q = MQuery {
                                    vf,
                                    sp,
                                    ra,
                                    rs: cur.regs,
                                    mem,
                                };
                                let out = q.clone();
                                *s = MachState::External { q, cur, stack };
                                return if n == fuel_left {
                                    Batch::Ran(n)
                                } else {
                                    Batch::External(n, out)
                                };
                            }
                            MachInst::Return => {
                                if let Err(e) = mem.free(cur.fp, 0, f.frame_size) {
                                    return Batch::Stuck(
                                        n,
                                        prefixed(format!("freeing frame: {e}")),
                                    );
                                }
                                let regs = cur.regs;
                                n += 1;
                                st = MachState::Ret { regs, mem, stack };
                                break;
                            }
                        }
                    }
                }
                MachState::Ret {
                    regs,
                    mem,
                    mut stack,
                } => {
                    if n == fuel_left {
                        *s = MachState::Ret { regs, mem, stack };
                        return Batch::Ran(n);
                    }
                    if stack.is_empty() {
                        return Batch::Final(n, MReply { rs: regs, mem });
                    }
                    let Some(mut caller) = stack.pop() else {
                        return Batch::Stuck(n, Stuck::new("return with no caller frame"));
                    };
                    caller.regs = regs;
                    caller.pc += 1;
                    n += 1;
                    st = MachState::Exec {
                        cur: caller,
                        mem,
                        stack,
                    };
                }
            }
        }
    }

    fn resume(&self, s: &MachState, a: MReply) -> Result<MachState, Stuck> {
        match s {
            MachState::External { cur, stack, .. } => {
                let mut frame = cur.clone();
                frame.regs = a.rs;
                frame.pc += 1;
                Ok(MachState::Exec {
                    cur: frame,
                    mem: a.mem,
                    stack: stack.clone(),
                })
            }
            _ => self.stuck("resume in non-external state"),
        }
    }
}

/// Map from labels to indices.
pub fn label_targets(f: &MachFunction) -> BTreeMap<Label, usize> {
    f.code
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| match inst {
            MachInst::Label(l) => Some((*l, i)),
            _ => None,
        })
        .collect()
}
