//! The `Debugvar` pass: attach debug-variable annotations to Linear
//! functions (paper Table 3, convention `id ↠ id`).
//!
//! CompCert's `Debugvar` threads the availability of source variables through
//! the code for the debugger; it never changes behaviour. Our analog records,
//! per function, where each parameter lives at entry (its ABI location).

use compcerto_core::iface::abi;
use compcerto_core::regs::Loc;

use crate::linear::LinProgram;

/// Annotate every function with parameter-location debug info.
pub fn debugvar(prog: &LinProgram) -> LinProgram {
    prog.map_functions(|f| {
        let mut out = f.clone();
        out.debug = abi::loc_arguments(&f.sig)
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                // Parameters arrive in Incoming slots from the callee's view.
                let l = match l {
                    Loc::Outgoing(o) => Loc::Incoming(o),
                    other => other,
                };
                (format!("arg{i}"), l)
            })
            .collect();
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinFunction;
    use compcerto_core::iface::Signature;
    use compcerto_core::regs::Mreg;

    #[test]
    fn annotations_added_code_unchanged() {
        let f = LinFunction {
            name: "f".into(),
            sig: Signature::int_fn(5),
            stack_size: 0,
            locals_size: 0,
            outgoing_size: 0,
            used_callee_save: vec![],
            debug: vec![],
            code: vec![crate::linear::LinInst::Return],
        };
        let prog = LinProgram {
            functions: vec![f.clone()],
            externs: vec![],
        };
        let out = debugvar(&prog);
        let g = &out.functions[0];
        assert_eq!(g.code, f.code);
        assert_eq!(g.debug.len(), 5);
        assert_eq!(g.debug[0], ("arg0".into(), Loc::Reg(Mreg(0))));
        assert_eq!(g.debug[4], ("arg4".into(), Loc::Incoming(0)));
    }
}
