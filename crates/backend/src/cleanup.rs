//! The `CleanupLabels` pass: drop labels no branch targets
//! (paper Table 3, convention `id ↠ id`).

use std::collections::BTreeSet;

use crate::linear::{Label, LinFunction, LinInst, LinProgram};

/// Remove unreferenced labels from every function.
pub fn cleanup_labels(prog: &LinProgram) -> LinProgram {
    prog.map_functions(cleanup_function)
}

fn cleanup_function(f: &LinFunction) -> LinFunction {
    let targets: BTreeSet<Label> = f
        .code
        .iter()
        .filter_map(|i| match i {
            LinInst::Goto(l) | LinInst::CondGoto(_, l) => Some(*l),
            _ => None,
        })
        .collect();
    let mut out = f.clone();
    out.code.retain(|i| match i {
        LinInst::Label(l) => targets.contains(l),
        _ => true,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::LOp;
    use compcerto_core::iface::Signature;
    use compcerto_core::regs::{Loc, Mreg};

    #[test]
    fn drops_only_unreferenced_labels() {
        let f = LinFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            stack_size: 0,
            locals_size: 0,
            outgoing_size: 0,
            used_callee_save: vec![],
            debug: vec![],
            code: vec![
                LinInst::Label(0),
                LinInst::Op(LOp::Int(1), Loc::Reg(Mreg(0))),
                LinInst::Label(1),
                LinInst::CondGoto(Loc::Reg(Mreg(0)), 1),
                LinInst::Label(2),
                LinInst::Return,
            ],
        };
        let out = cleanup_function(&f);
        let labels: Vec<Label> = out
            .code
            .iter()
            .filter_map(|i| match i {
                LinInst::Label(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec![1]);
        assert_eq!(out.code.len(), 4);
    }
}
