//! The `Tunneling` pass: shorten chains of no-op jumps in LTL
//! (paper Table 3, convention `ext ↠ ext`).

use std::collections::BTreeMap;

use crate::ltl::{LtlFunction, LtlInst, LtlProgram, Node};

/// Run branch tunneling over every function.
pub fn tunneling(prog: &LtlProgram) -> LtlProgram {
    prog.map_functions(tunnel_function)
}

/// Follow chains of `Nop` nodes to their ultimate target (with cycle
/// protection: a `Nop` loop tunnels to itself).
fn resolve(code: &BTreeMap<Node, LtlInst>, mut n: Node) -> Node {
    let mut hops = 0;
    while let Some(LtlInst::Nop(next)) = code.get(&n) {
        n = *next;
        hops += 1;
        if hops > code.len() {
            break; // Nop cycle: diverging code, leave as-is
        }
    }
    n
}

fn tunnel_function(f: &LtlFunction) -> LtlFunction {
    let mut out = f.clone();
    let rn = |n: &Node| resolve(&f.code, *n);
    for (n, inst) in &f.code {
        let new = match inst {
            LtlInst::Op(op, d, nn) => LtlInst::Op(op.clone(), *d, rn(nn)),
            LtlInst::Load(c, b, disp, d, nn) => LtlInst::Load(*c, *b, *disp, *d, rn(nn)),
            LtlInst::Store(c, b, disp, s, nn) => LtlInst::Store(*c, *b, *disp, *s, rn(nn)),
            LtlInst::Call(f2, sig, nn) => LtlInst::Call(f2.clone(), sig.clone(), rn(nn)),
            LtlInst::Cond(l, t, e) => LtlInst::Cond(*l, rn(t), rn(e)),
            LtlInst::Nop(nn) => LtlInst::Nop(rn(nn)),
            LtlInst::Return => LtlInst::Return,
        };
        out.code.insert(*n, new);
    }
    out.entry = rn(&f.entry);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::LOp;
    use compcerto_core::iface::Signature;
    use compcerto_core::regs::{Loc, Mreg};

    #[test]
    fn collapses_nop_chains() {
        let mut code = BTreeMap::new();
        code.insert(0, LtlInst::Nop(1));
        code.insert(1, LtlInst::Nop(2));
        code.insert(2, LtlInst::Op(LOp::Int(1), Loc::Reg(Mreg(0)), 3));
        code.insert(3, LtlInst::Return);
        let f = LtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            stack_size: 0,
            locals_size: 0,
            outgoing_size: 0,
            used_callee_save: vec![],
            entry: 0,
            code,
        };
        let out = tunnel_function(&f);
        assert_eq!(out.entry, 2);
        assert_eq!(out.code[&2], LtlInst::Op(LOp::Int(1), Loc::Reg(Mreg(0)), 3));
    }

    #[test]
    fn nop_cycles_do_not_hang() {
        let mut code = BTreeMap::new();
        code.insert(0, LtlInst::Nop(1));
        code.insert(1, LtlInst::Nop(0));
        let f = LtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            stack_size: 0,
            locals_size: 0,
            outgoing_size: 0,
            used_callee_save: vec![],
            entry: 0,
            code,
        };
        let _ = tunnel_function(&f); // must terminate
    }
}
