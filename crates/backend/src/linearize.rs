//! The `Linearize` pass: order the LTL control-flow graph into a Linear
//! instruction list (paper Table 3, convention `id ↠ id`).
//!
//! Nodes are laid out in depth-first order; a branch to the instruction that
//! happens to come next falls through, every other edge becomes an explicit
//! `Goto`. Every node gets a `Label` (the later `CleanupLabels` pass removes
//! the unreferenced ones).

use std::collections::BTreeSet;

use crate::linear::{LinFunction, LinInst, LinProgram};
use crate::ltl::{LtlFunction, LtlInst, LtlProgram, Node};

/// Linearize every function.
pub fn linearize(prog: &LtlProgram) -> LinProgram {
    LinProgram {
        functions: prog.functions.iter().map(linearize_function).collect(),
        externs: prog.externs.clone(),
    }
}

fn linearize_function(f: &LtlFunction) -> LinFunction {
    // Depth-first ordering from the entry.
    let mut order: Vec<Node> = Vec::new();
    let mut seen: BTreeSet<Node> = BTreeSet::new();
    let mut stack = vec![f.entry];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) || !f.code.contains_key(&n) {
            continue;
        }
        order.push(n);
        for s in f.code[&n].successors().into_iter().rev() {
            stack.push(s);
        }
    }

    let mut code: Vec<LinInst> = Vec::new();
    for (i, n) in order.iter().enumerate() {
        code.push(LinInst::Label(*n));
        let next_in_order = order.get(i + 1).copied();
        let fallthrough = |target: Node, code: &mut Vec<LinInst>| {
            if next_in_order != Some(target) {
                code.push(LinInst::Goto(target));
            }
        };
        match &f.code[n] {
            LtlInst::Nop(t) => fallthrough(*t, &mut code),
            LtlInst::Op(op, d, t) => {
                code.push(LinInst::Op(op.clone(), *d));
                fallthrough(*t, &mut code);
            }
            LtlInst::Load(c, b, disp, d, t) => {
                code.push(LinInst::Load(*c, *b, *disp, *d));
                fallthrough(*t, &mut code);
            }
            LtlInst::Store(c, b, disp, s, t) => {
                code.push(LinInst::Store(*c, *b, *disp, *s));
                fallthrough(*t, &mut code);
            }
            LtlInst::Call(callee, sig, t) => {
                code.push(LinInst::Call(callee.clone(), sig.clone()));
                fallthrough(*t, &mut code);
            }
            LtlInst::Cond(l, t, e) => {
                code.push(LinInst::CondGoto(*l, *t));
                fallthrough(*e, &mut code);
            }
            LtlInst::Return => code.push(LinInst::Return),
        }
    }
    LinFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        stack_size: f.stack_size,
        locals_size: f.locals_size,
        outgoing_size: f.outgoing_size,
        used_callee_save: f.used_callee_save.clone(),
        debug: vec![],
        code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::LOp;
    use compcerto_core::iface::Signature;
    use compcerto_core::regs::{Loc, Mreg};
    use std::collections::BTreeMap;

    #[test]
    fn straightline_falls_through() {
        let mut code = BTreeMap::new();
        code.insert(0, LtlInst::Op(LOp::Int(1), Loc::Reg(Mreg(0)), 1));
        code.insert(1, LtlInst::Return);
        let f = LtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            stack_size: 0,
            locals_size: 0,
            outgoing_size: 0,
            used_callee_save: vec![],
            entry: 0,
            code,
        };
        let out = linearize_function(&f);
        // No Goto needed anywhere.
        assert!(!out.code.iter().any(|i| matches!(i, LinInst::Goto(_))));
    }

    #[test]
    fn branches_get_explicit_gotos() {
        let mut code = BTreeMap::new();
        code.insert(0, LtlInst::Cond(Loc::Reg(Mreg(0)), 1, 2));
        code.insert(1, LtlInst::Return);
        code.insert(2, LtlInst::Op(LOp::Int(5), Loc::Reg(Mreg(0)), 1));
        let f = LtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(1),
            stack_size: 0,
            locals_size: 0,
            outgoing_size: 0,
            used_callee_save: vec![],
            entry: 0,
            code,
        };
        let out = linearize_function(&f);
        assert!(out
            .code
            .iter()
            .any(|i| matches!(i, LinInst::CondGoto(_, 1))));
        // Node 2's successor 1 appears before it in DFS order: needs a Goto.
        assert!(out.code.iter().any(|i| matches!(i, LinInst::Goto(1))));
    }
}
