//! Soundness battery for the abstract-interpretation layer (DESIGN.md §12).
//!
//! The contract under test is concretization: for every execution of a
//! program and every node the interpreter visits, the concrete value of
//! each register is a member of γ(abstract value) solved for that node —
//! `Bot` concretizes to {Undef} (the register is unwritten), intervals
//! contain exactly defined machine integers of their width, pointer values
//! pin provenance and displacement, and `Top` is everything.
//!
//! Programs come from the differential-testing generator (`compcerto-gen`):
//! well-defined by construction, multi-unit, covering the `buf`/`acc`
//! global idioms and external calls. A fixed 200-seed block runs always-on;
//! the `proptest` feature extends the same check to arbitrary seeds.
//! Interval-lattice law tests (join/widen monotonicity, top/bottom) ride
//! along at the bottom.

use std::collections::BTreeMap;

use compcerto_core::iface::CQuery;
use compcerto_core::lts::{Lts, Step};
use compcerto_core::symtab::SymbolTable;
use compcerto_gen::generate::{gen_queries, generate};
use compcerto_gen::GenCfg;
use compcerto_validate::value_facts_program;
use compiler::{compile_all, CompilerOptions, ExtLib};
use mem::Val;
use rtl::{Itv, Node, Romem, RtlProgram, RtlSem, RtlState, VaEnv, VaVal};

/// Concatenate the per-unit RTL programs (function names are program-unique;
/// externs are deduplicated against the defined set).
fn merge_rtl(programs: &[&RtlProgram]) -> RtlProgram {
    let mut out = RtlProgram::default();
    for p in programs {
        out.functions.extend(p.functions.iter().cloned());
    }
    let defined: Vec<&str> = out.functions.iter().map(|f| f.name.as_str()).collect();
    for p in programs {
        for (n, s) in &p.externs {
            if !defined.contains(&n.as_str()) && !out.externs.iter().any(|(m, _)| m == n) {
                out.externs.push((n.clone(), s.clone()));
            }
        }
    }
    out
}

/// Is the concrete value `val` (None = the register was never written) a
/// member of γ(`v`)?
fn conforms(v: &VaVal, val: Option<&Val>, symtab: &SymbolTable, sp: mem::BlockId) -> bool {
    match v {
        VaVal::Top => true,
        // γ(Bot) = {Undef}: the register is unwritten on every path here.
        VaVal::Bot => matches!(val, None | Some(Val::Undef)),
        VaVal::I32(itv) => matches!(val, Some(Val::Int(n)) if itv.contains(i64::from(*n))),
        VaVal::I64(itv) => matches!(val, Some(Val::Long(n)) if itv.contains(*n)),
        VaVal::Global(s, d) => {
            matches!(val, Some(Val::Ptr(b, o)) if symtab.block_of(s) == Some(*b) && o == d)
        }
        VaVal::Stack(d) => matches!(val, Some(Val::Ptr(b, o)) if *b == sp && o == d),
    }
}

/// Step the RTL semantics on one query, checking every visited node's
/// abstract environment against the live register file. Returns the number
/// of (node, register) facts checked and the final return value (None when
/// the run hit the step cap or the environment refused a call).
fn run_and_check(
    sem: &RtlSem,
    facts: &BTreeMap<String, BTreeMap<Node, VaEnv>>,
    lib: &ExtLib,
    q: &CQuery,
    seed: u64,
) -> (u64, Option<Val>) {
    let mut s = match sem.initial(q) {
        Ok(s) => s,
        Err(e) => panic!("seed {seed}: initial state rejected: {e}"),
    };
    let mut checked = 0u64;
    for _ in 0..1_000_000u64 {
        if let RtlState::Exec { cur, .. } = &s {
            let envs = facts
                .get(cur.fname())
                .unwrap_or_else(|| panic!("seed {seed}: no facts for `{}`", cur.fname()));
            let env = envs.get(&cur.pc()).unwrap_or_else(|| {
                panic!(
                    "seed {seed}: visited node {}:{} has no abstract environment",
                    cur.fname(),
                    cur.pc()
                )
            });
            for (r, v) in env.iter() {
                let concrete = cur.regs().get(&r);
                assert!(
                    conforms(v, concrete, sem.symtab(), cur.sp()),
                    "seed {seed}: at {}:{} register r{r} has concrete {:?} outside γ({v})",
                    cur.fname(),
                    cur.pc(),
                    concrete,
                );
                checked += 1;
            }
        }
        match sem.step(&s) {
            Step::Internal(s2, _) => s = s2,
            Step::Final(ans) => return (checked, Some(ans.retval)),
            Step::External(oq) => match lib.answer_c(&oq) {
                Some(reply) => match sem.resume(&s, reply) {
                    Ok(s2) => s = s2,
                    Err(e) => panic!("seed {seed}: resume rejected: {e}"),
                },
                None => return (checked, None),
            },
            Step::Stuck(e) => panic!("seed {seed}: generated program got stuck: {e}"),
        }
    }
    (checked, None)
}

/// The whole check for one generator seed: compile, solve value facts on the
/// `Vprop` input snapshot, concretize them along every query's execution,
/// and demand the fully optimized RTL agrees with the snapshot on every
/// completed run (the end-to-end soundness of the vprop/ndce rewrites).
fn check_seed(seed: u64) -> u64 {
    let prog = generate(seed, &GenCfg::quick());
    let srcs = prog.render();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let (units, symtab) = match compile_all(&refs, CompilerOptions::default()) {
        Ok(x) => x,
        Err(e) => panic!("seed {seed}: generated program failed to compile: {e}"),
    };
    let vprop_in = merge_rtl(&units.iter().map(|u| &u.rtl_vprop_in).collect::<Vec<_>>());
    let rtl_opt = merge_rtl(&units.iter().map(|u| &u.rtl_opt).collect::<Vec<_>>());
    let romem = Romem::new(&symtab);
    let facts = value_facts_program(&vprop_in, &romem);

    let (_, entry) = prog.entry();
    let sig = vprop_in
        .functions
        .iter()
        .find(|f| f.name == entry.name)
        .map(|f| f.sig.clone())
        .unwrap_or_else(|| panic!("seed {seed}: entry `{}` missing from RTL", entry.name));
    let Some(vf) = symtab.func_ptr(&entry.name) else {
        panic!("seed {seed}: entry `{}` not in the symbol table", entry.name);
    };
    let lib = ExtLib::demo(symtab.clone());
    let sem = RtlSem::new(vprop_in, symtab.clone());
    let opt_sem = RtlSem::new(rtl_opt, symtab.clone());

    let mut checked = 0u64;
    for args in gen_queries(seed, entry.nparams as usize, 3) {
        let mem = match symtab.build_init_mem() {
            Ok(m) => m,
            Err(e) => panic!("seed {seed}: initial memory: {e:?}"),
        };
        let q = CQuery {
            vf: vf.clone(),
            sig: sig.clone(),
            args: args.iter().map(|n| Val::Int(*n)).collect(),
            mem,
        };
        let (n, base) = run_and_check(&sem, &facts, &lib, &q, seed);
        checked += n;
        // No-facts run of the optimized program: final answers must agree.
        let (_, opt) = run_and_check(&opt_sem, &value_facts_program(opt_sem.program(), &romem), &lib, &q, seed);
        if let (Some(a), Some(b)) = (&base, &opt) {
            assert_eq!(
                a, b,
                "seed {seed}: optimized RTL disagrees with the vprop input on {args:?}"
            );
        }
    }
    checked
}

/// The always-on fixed block: 200 generator seeds, every visited node
/// concretization-checked. Also pins that the block exercises a
/// substantial number of facts (a regression guard against the solver
/// silently producing empty environments).
#[test]
fn fixed_seed_block_concretizes() {
    let mut total = 0u64;
    for seed in 0..200u64 {
        total += check_seed(seed);
    }
    assert!(
        total > 100_000,
        "the 200-seed block checked only {total} facts — solver output collapsed?"
    );
}

// ---------------------------------------------------------------------------
// Interval-lattice laws (deterministic sample grid)
// ---------------------------------------------------------------------------

const SAMPLES: [i64; 9] = [
    i32::MIN as i64,
    -100,
    -1,
    0,
    1,
    7,
    100,
    i32::MAX as i64,
    0x7FFF_FFFF_FFFF,
];

fn sample_itvs() -> Vec<Itv> {
    let mut out = vec![Itv::full32(), Itv::full64()];
    for &a in &SAMPLES {
        out.push(Itv::point(a));
        for &b in &SAMPLES {
            if a <= b {
                out.push(Itv::range(a, b));
            }
        }
    }
    out
}

#[test]
fn itv_join_is_an_upper_bound_and_commutes() {
    for a in sample_itvs() {
        for b in sample_itvs() {
            let j = a.join(&b);
            assert_eq!(j, b.join(&a), "join must commute: {a} vs {b}");
            for &n in &SAMPLES {
                if a.contains(n) || b.contains(n) {
                    assert!(j.contains(n), "{j} must contain {n} from {a} ⊔ {b}");
                }
            }
        }
    }
}

#[test]
fn itv_widen_is_monotone_and_terminates() {
    let (lo, hi) = (i64::from(i32::MIN), i64::from(i32::MAX));
    for a in sample_itvs() {
        for b in sample_itvs() {
            let grown = a.join(&b);
            let w = a.widen(&grown, lo, hi);
            // Widening covers the grown interval (soundness)...
            for &n in &SAMPLES {
                if grown.contains(n) && n >= lo && n <= hi {
                    assert!(w.contains(n), "widen({a}, {grown}) = {w} lost {n}");
                }
            }
            // ...and widening a second time with itself is a fixpoint
            // (termination: each bound jumps straight to the extreme).
            assert_eq!(w.widen(&w, lo, hi), w, "widen must idempote at {w}");
        }
    }
}

#[test]
fn vaval_join_laws_top_and_bottom() {
    let samples = [
        VaVal::Bot,
        VaVal::int(3),
        VaVal::I32(Itv::range(0, 9)),
        VaVal::I64(Itv::point(-4)),
        VaVal::Global("buf".into(), 8),
        VaVal::Stack(0),
        VaVal::Top,
    ];
    for v in &samples {
        assert_eq!(v.join(&VaVal::Top), VaVal::Top, "Top absorbs {v}");
        assert_eq!(v.join(v), v.clone(), "join must be idempotent at {v}");
        // γ(Bot) = {Undef}: joining Bot with any defined value is Top
        // (nothing smaller contains both Undef and a defined value).
        let expect = match v {
            VaVal::Bot => VaVal::Bot,
            _ => VaVal::Top,
        };
        assert_eq!(v.join(&VaVal::Bot), expect, "Bot join law at {v}");
        for w in &samples {
            assert_eq!(v.join(w), w.join(v), "join must commute: {v} vs {w}");
        }
    }
}

// ---------------------------------------------------------------------------
// Any-seed extension (requires the optional `proptest` feature; the crate
// is not vendored — see Cargo.toml)
// ---------------------------------------------------------------------------

#[cfg(feature = "proptest")]
mod any_seed {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn concretization_holds_on_arbitrary_seeds(seed in 200u64..1_000_000u64) {
            super::check_seed(seed);
        }
    }
}
