//! Abstract-interpretation solvers over RTL and the translation validators
//! for the analysis-driven optimization pair (DESIGN.md §12).
//!
//! The *domains* (intervals, pointer provenance, neededness masks and their
//! transfer functions) live in [`rtl::absint`]; this module owns the
//! fixpoint engines that run them — a forward interval **value analysis**
//! with widening and a backward **neededness** analysis — plus the two
//! a-posteriori validators, [`validate_constprop`] and [`validate_deadcode`],
//! that re-justify every rewrite of the untrusted `vprop`/`ndce` passes
//! from facts recomputed on the pass *input*.
//!
//! The driver computes the facts once per function and hands them to the
//! passes as plain data; the validators recompute byte-identical facts (the
//! worklists pop in a deterministic order), so an honest compile is clean
//! by construction while any divergence — an optimizer bug, or a fault
//! injected between the snapshot and the backend (the `rtl-constant-drift`
//! class) — surfaces as a structured [`Diagnostic`].
//!
//! Both solvers tick their own thread-local effort counters
//! ([`value_solver_iterations`], [`needed_solver_iterations`]) for the
//! `solver.*` observability taxonomy.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use rtl::absint::{
    eval_op_va, op_arg_needs, NeedEnv, Needs, VaEnv, VaVal,
};
use rtl::ndce::{deletable, NeedFacts};
use rtl::vprop::{rewrite_cond, rewrite_op, VaFacts};
use rtl::{Inst, JoinSemiLattice, Node, Romem, RtlFunction, RtlProgram};

use crate::cfg::reverse_postorder;
use crate::diag::Diagnostic;

/// Growing joins tolerated at a node before the interval bounds are
/// widened to the width extremes (loop-carried counters settle in one or
/// two trips around a loop; anything still growing after that widens).
const WIDEN_AFTER: u32 = 2;

thread_local! {
    static VALUE_ITERATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static NEEDED_ITERATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Cumulative worklist pops of the interval value analysis on this thread
/// (deterministic: the worklist pops in exact RPO).
#[must_use]
pub fn value_solver_iterations() -> u64 {
    VALUE_ITERATIONS.with(std::cell::Cell::get)
}

/// Cumulative worklist pops of the neededness analysis on this thread
/// (deterministic: the worklist pops in exact postorder).
#[must_use]
pub fn needed_solver_iterations() -> u64 {
    NEEDED_ITERATIONS.with(std::cell::Cell::get)
}

/// Dense node numbering: reverse postorder of the reachable subgraph, then
/// any unreachable nodes in ascending id order (same convention as
/// [`crate::dataflow`]).
fn dense_order(f: &RtlFunction) -> (Vec<Node>, HashMap<Node, usize>) {
    let mut order = reverse_postorder(f);
    let mut seen: BTreeSet<Node> = order.iter().copied().collect();
    for n in f.code.keys() {
        if seen.insert(*n) {
            order.push(*n);
        }
    }
    let idx = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    (order, idx)
}

/// The abstract environment *after* executing `inst` in `env` (registers
/// only — memory is summarized by the read-only-globals view `romem`).
fn value_transfer(env: &VaEnv, inst: &Inst, romem: &Romem) -> VaEnv {
    let mut out = env.clone();
    match inst {
        Inst::Op(op, dst, _) => {
            out.set(*dst, eval_op_va(env, op));
        }
        Inst::Load(chunk, base, disp, dst, _) => {
            let v = match env.get(*base) {
                VaVal::Global(s, d) => match romem.load(*chunk, s, d + disp) {
                    Some(v) => VaVal::of_const(&v),
                    None => VaVal::Top,
                },
                _ => VaVal::Top,
            };
            out.set(*dst, v);
        }
        Inst::Call(_, _, _, dst, _) => {
            if let Some(d) = dst {
                out.set(*d, VaVal::Top);
            }
        }
        // Stores don't touch registers; the memory they write is never the
        // read-only region `romem` folds from.
        Inst::Store(_, _, _, _, _)
        | Inst::Cond(_, _, _)
        | Inst::Nop(_)
        | Inst::Tailcall(_, _, _)
        | Inst::Return(_) => {}
    }
    out
}

/// Forward interval value analysis of one function: the abstract register
/// environment *before* each reachable node. Parameters enter at `Top`
/// (the caller is unknown), every other register at `Bot` (= unwritten,
/// reads as `Undef`). Join points that keep growing are widened after
/// [`WIDEN_AFTER`] growing joins, so loops terminate.
#[must_use]
pub fn value_facts(f: &RtlFunction, romem: &Romem) -> BTreeMap<Node, VaEnv> {
    if !f.code.contains_key(&f.entry) {
        return BTreeMap::new();
    }
    let (order, idx) = dense_order(f);
    let mut state: Vec<Option<VaEnv>> = order.iter().map(|_| None).collect();
    let mut grows: Vec<u32> = vec![0; order.len()];
    let Some(&ei) = idx.get(&f.entry) else {
        return BTreeMap::new();
    };
    let mut entry_env = VaEnv::default();
    for p in &f.params {
        entry_env.set(*p, VaVal::Top);
    }
    state[ei] = Some(entry_env);
    let mut work: BTreeSet<usize> = BTreeSet::from([ei]);
    while let Some(i) = work.pop_first() {
        VALUE_ITERATIONS.with(|c| c.set(c.get() + 1));
        let n = order[i];
        let Some(inst) = f.code.get(&n) else { continue };
        let Some(before) = state[i].as_ref() else { continue };
        let after = value_transfer(before, inst, romem);
        for s in inst.successors() {
            let Some(&si) = idx.get(&s) else { continue };
            let changed = match state[si].as_mut() {
                Some(cur) => {
                    let mut joined = cur.clone();
                    if joined.join_in_place(&after) {
                        grows[si] += 1;
                        if grows[si] > WIDEN_AFTER {
                            joined = cur.widen(&joined);
                        }
                        *cur = joined;
                        true
                    } else {
                        false
                    }
                }
                None => {
                    state[si] = Some(after.clone());
                    true
                }
            };
            if changed {
                work.insert(si);
            }
        }
    }
    order
        .iter()
        .zip(state)
        .filter_map(|(n, s)| s.map(|s| (*n, s)))
        .collect()
}

/// The needed-*before* environment of `inst` given the needed-after
/// environment `out`: kill the definition, then charge each used register
/// with the need the operator structure assigns it (floored — a live
/// result never propagates `Nothing` to its operands, see `rtl::absint`).
fn needed_transfer(inst: &Inst, out: &NeedEnv) -> NeedEnv {
    let mut inn = out.clone();
    if let Some(d) = inst.def() {
        inn.kill(d);
    }
    match inst {
        Inst::Op(op, dst, _) => {
            let nv = out.get(*dst);
            for (r, n) in op.uses().iter().zip(op_arg_needs(op, nv)) {
                inn.add(*r, n);
            }
        }
        Inst::Load(_, base, _, dst, _) => {
            // A load whose result is dead is deletable, so its address is
            // unneeded *by this instruction*; otherwise the address must be
            // exact.
            if !out.get(*dst).is_nothing() {
                inn.add(*base, Needs::All);
            }
        }
        _ => {
            for r in inst.uses() {
                inn.add(r, Needs::All);
            }
        }
    }
    inn
}

/// Backward neededness analysis of one function: what the continuation
/// *after* each node observes of every register (`Nothing` entries are
/// implicit). Solved over all nodes (unreachable code is trivially dead).
#[must_use]
pub fn neededness(f: &RtlFunction) -> BTreeMap<Node, NeedEnv> {
    let (order, idx) = dense_order(f);
    // Dense predecessor lists, each edge once.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
    for (i, n) in order.iter().enumerate() {
        let Some(inst) = f.code.get(n) else { continue };
        let mut succs = inst.successors();
        succs.sort_unstable();
        succs.dedup();
        for s in succs {
            if let Some(&si) = idx.get(&s) {
                preds[si].push(i);
            }
        }
    }
    // state[i] = needed-BEFORE node i (its "in" env).
    let mut state: Vec<Option<NeedEnv>> = order.iter().map(|_| None).collect();
    let mut work: BTreeSet<usize> = (0..order.len()).collect();
    while let Some(i) = work.pop_last() {
        NEEDED_ITERATIONS.with(|c| c.set(c.get() + 1));
        let n = order[i];
        let Some(inst) = f.code.get(&n) else { continue };
        let mut out = NeedEnv::default();
        for s in inst.successors() {
            if let Some(&si) = idx.get(&s) {
                if let Some(ss) = state[si].as_ref() {
                    out.join_in_place(ss);
                }
            }
        }
        let inn = needed_transfer(inst, &out);
        let changed = match state[i].as_mut() {
            Some(cur) => cur.join_in_place(&inn),
            None => {
                state[i] = Some(inn);
                true
            }
        };
        if changed {
            work.extend(preds[i].iter().copied());
        }
    }
    // Publish needed-AFTER per node: the join of the successors' in-envs.
    let mut out_map = BTreeMap::new();
    for (i, n) in order.iter().enumerate() {
        let Some(inst) = f.code.get(n) else { continue };
        let mut out = NeedEnv::default();
        for s in inst.successors() {
            if let Some(&si) = idx.get(&s) {
                if let Some(ss) = state[si].as_ref() {
                    out.join_in_place(ss);
                }
            }
        }
        let _ = i;
        out_map.insert(*n, out);
    }
    out_map
}

/// Solve the value analysis for every function of a program, keyed by
/// function name — the fact set `rtl::vprop` consumes.
#[must_use]
pub fn value_facts_program(prog: &RtlProgram, romem: &Romem) -> VaFacts {
    prog.functions
        .iter()
        .map(|f| (f.name.clone(), value_facts(f, romem)))
        .collect()
}

/// Solve the neededness analysis for every function of a program, keyed by
/// function name — the fact set `rtl::ndce` consumes.
#[must_use]
pub fn needed_facts_program(prog: &RtlProgram) -> NeedFacts {
    prog.functions
        .iter()
        .map(|f| (f.name.clone(), neededness(f)))
        .collect()
}

// ---------------------------------------------------------------------------
// Translation validators
// ---------------------------------------------------------------------------

/// Shape checks shared by both validators: the passes rewrite instructions
/// in place and never add, remove, or re-key nodes, functions, or any
/// function metadata.
fn check_shape(
    pass: &'static str,
    input: &RtlProgram,
    output: &RtlProgram,
    out: &mut Vec<Diagnostic>,
) -> bool {
    let rule_shape: &'static str = match pass {
        "constprop" => "constprop.shape",
        _ => "deadcode.shape",
    };
    if input.functions.len() != output.functions.len() {
        out.push(Diagnostic::new(
            pass,
            "<program>",
            None,
            rule_shape,
            format!(
                "function count changed: {} -> {}",
                input.functions.len(),
                output.functions.len()
            ),
        ));
        return false;
    }
    let mut ok = true;
    for (fi, fo) in input.functions.iter().zip(&output.functions) {
        if fi.name != fo.name {
            out.push(Diagnostic::new(
                pass,
                &fi.name,
                None,
                rule_shape,
                format!("function renamed to `{}`", fo.name),
            ));
            ok = false;
            continue;
        }
        if fi.sig != fo.sig
            || fi.params != fo.params
            || fi.stack_size != fo.stack_size
            || fi.entry != fo.entry
        {
            out.push(Diagnostic::new(
                pass,
                &fi.name,
                None,
                rule_shape,
                "signature/params/stack/entry changed",
            ));
            ok = false;
        }
        if fi.code.len() != fo.code.len()
            || fi.code.keys().zip(fo.code.keys()).any(|(a, b)| a != b)
        {
            out.push(Diagnostic::new(
                pass,
                &fi.name,
                None,
                rule_shape,
                "node key set changed",
            ));
            ok = false;
        }
    }
    ok
}

/// Validate a `vprop` (analysis-driven constant propagation) run: recompute
/// the interval facts on the pass *input* and require every differing node
/// to be exactly the rewrite those facts justify. `O(program)` and
/// deterministic — honest compiles are provably clean because the pass and
/// the validator consult the same canonical rewrite function.
#[must_use]
pub fn validate_constprop(
    input: &RtlProgram,
    output: &RtlProgram,
    romem: &Romem,
) -> Vec<Diagnostic> {
    const PASS: &str = "constprop";
    let mut out = Vec::new();
    if !check_shape(PASS, input, output, &mut out) {
        return out;
    }
    for (fi, fo) in input.functions.iter().zip(&output.functions) {
        let facts = value_facts(fi, romem);
        for (n, ii) in &fi.code {
            let Some(io) = fo.code.get(n) else { continue };
            if ii == io {
                continue;
            }
            let justified = match (ii, io, facts.get(n)) {
                // A rewritten node needs solved facts; an unreachable node
                // has none and must be untouched.
                (_, _, None) => false,
                (Inst::Op(op, dst, next), Inst::Op(op2, dst2, next2), Some(env)) => {
                    dst == dst2 && next == next2 && rewrite_op(env, op).as_ref() == Some(op2)
                }
                (Inst::Cond(r, t, e), Inst::Nop(_), Some(env)) => {
                    rewrite_cond(env, *r, *t, *e).as_ref() == Some(io)
                }
                _ => false,
            };
            if !justified {
                out.push(Diagnostic::new(
                    PASS,
                    &fi.name,
                    Some(*n),
                    "constprop.unjustified-rewrite",
                    format!("`{ii}` became `{io}` but the value facts do not justify it"),
                ));
            }
        }
    }
    out
}

/// Validate an `ndce` (neededness dead-code elimination) run: recompute the
/// neededness facts on the pass *input* and require every differing node to
/// be the deletion of a pure instruction whose result is needed at
/// `Nothing`. Any other divergence — including a drifted constant injected
/// after the snapshot (`rtl-constant-drift`) — is a finding.
#[must_use]
pub fn validate_deadcode(input: &RtlProgram, output: &RtlProgram) -> Vec<Diagnostic> {
    const PASS: &str = "deadcode";
    let mut out = Vec::new();
    if !check_shape(PASS, input, output, &mut out) {
        return out;
    }
    for (fi, fo) in input.functions.iter().zip(&output.functions) {
        let facts = neededness(fi);
        for (n, ii) in &fi.code {
            let Some(io) = fo.code.get(n) else { continue };
            if ii == io {
                continue;
            }
            let justified = deletable(ii)
                && matches!(
                    (ii.def(), ii.successors().as_slice(), io),
                    (Some(dst), [next], Inst::Nop(next2))
                        if next == next2
                            && facts.get(n).map(|env| env.get(dst).is_nothing())
                                == Some(true)
                );
            if !justified {
                out.push(Diagnostic::new(
                    PASS,
                    &fi.name,
                    Some(*n),
                    "deadcode.unjustified-removal",
                    format!("`{ii}` became `{io}` but its result is still needed"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use compcerto_core::symtab::SymbolTable;
    use mem::{Cmp, Val};
    use minor::MBinop;
    use rtl::absint::Itv;
    use rtl::{ndce, vprop, RtlOp};

    fn fun(name: &str, params: Vec<u32>, code: Vec<(Node, Inst)>) -> RtlFunction {
        RtlFunction {
            name: name.into(),
            sig: Signature::int_fn(params.len()),
            params,
            stack_size: 0,
            entry: 0,
            code: code.into_iter().collect(),
            next_reg: 16,
        }
    }

    fn prog(f: RtlFunction) -> RtlProgram {
        RtlProgram {
            functions: vec![f],
            externs: vec![],
        }
    }

    fn romem() -> Romem {
        Romem::new(&SymbolTable::new())
    }

    /// A counting loop: i := 0; while (i < 8) i := i + 1; return i.
    fn counting_loop() -> RtlProgram {
        prog(fun(
            "loop",
            vec![],
            vec![
                (0, Inst::Op(RtlOp::Int(0), 1, 1)),
                (
                    1,
                    Inst::Op(RtlOp::BinopImm(MBinop::Cmp32(Cmp::Lt), 1, Val::Int(8)), 2, 2),
                ),
                (2, Inst::Cond(2, 3, 4)),
                (3, Inst::Op(RtlOp::BinopImm(MBinop::Add32, 1, Val::Int(1)), 1, 1)),
                (4, Inst::Return(Some(1))),
            ],
        ))
    }

    #[test]
    fn widening_terminates_and_bounds_the_counter() {
        let p = counting_loop();
        let facts = value_facts(&p.functions[0], &romem());
        // At the loop header the counter has widened to a genuine 32-bit
        // interval — in particular it is *defined* (never Top), which is
        // the fact branch folding builds on. (The `+1` over the widened
        // interval may wrap, so the bounds honestly reach the width
        // extremes: `Cond` reads a materialized boolean register, leaving
        // no relational guard to refine the counter against.)
        let VaVal::I32(itv) = facts[&1].get(1).clone() else {
            panic!("counter should be an interval, got {}", facts[&1].get(1));
        };
        assert!(itv.contains(0) && itv.contains(7));
        // The analysis must have terminated with a finite iteration count.
        assert!(value_solver_iterations() > 0);
    }

    #[test]
    fn honest_vprop_run_validates_clean() {
        let p = counting_loop();
        let rm = romem();
        let facts = value_facts_program(&p, &rm);
        let out = vprop(&p, &facts);
        assert!(validate_constprop(&p, &out, &rm).is_empty());
    }

    #[test]
    fn honest_ndce_run_validates_clean_and_deletes_chains() {
        // r2 := r0+1; r3 := r2*2 — a dead chain behind a live return.
        let p = prog(fun(
            "f",
            vec![0],
            vec![
                (0, Inst::Op(RtlOp::BinopImm(MBinop::Add32, 0, Val::Int(1)), 2, 1)),
                (1, Inst::Op(RtlOp::BinopImm(MBinop::Mul32, 2, Val::Int(2)), 3, 2)),
                (2, Inst::Return(Some(0))),
            ],
        ));
        let facts = needed_facts_program(&p);
        let out = ndce(&p, &facts);
        // The whole chain cascades away in one fixpoint.
        assert_eq!(out.functions[0].code[&0], Inst::Nop(1));
        assert_eq!(out.functions[0].code[&1], Inst::Nop(2));
        assert!(validate_deadcode(&p, &out).is_empty());
    }

    #[test]
    fn needed_results_are_transitively_protected() {
        // r2 := r0 & 1; r3 := r2 & 2; return r3 — the masks miss (1 & 2 ==
        // 0) but the floor keeps the chain alive: deleting r2's def would
        // leave r3 computed from Undef.
        let p = prog(fun(
            "f",
            vec![0],
            vec![
                (0, Inst::Op(RtlOp::BinopImm(MBinop::And32, 0, Val::Int(1)), 2, 1)),
                (1, Inst::Op(RtlOp::BinopImm(MBinop::And32, 2, Val::Int(2)), 3, 2)),
                (2, Inst::Return(Some(3))),
            ],
        ));
        let facts = needed_facts_program(&p);
        let out = ndce(&p, &facts);
        assert_eq!(out.functions[0].code, p.functions[0].code);
    }

    #[test]
    fn constant_drift_is_caught_statically() {
        // Simulate the `rtl-constant-drift` fault: the "output" differs
        // from the snapshot by one immediate, with no facts to justify it.
        let p = counting_loop();
        let mut drifted = p.clone();
        drifted.functions[0]
            .code
            .insert(0, Inst::Op(RtlOp::Int(41), 1, 1));
        let diags = validate_deadcode(&p, &drifted);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "deadcode.unjustified-removal");
        let diags = validate_constprop(&p, &drifted, &romem());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "constprop.unjustified-rewrite");
    }

    #[test]
    fn unjustified_branch_fold_is_caught() {
        // Folding a Cond whose scrutinee is *not* definite must be flagged.
        let p = prog(fun(
            "f",
            vec![0],
            vec![
                (0, Inst::Cond(0, 1, 2)),
                (1, Inst::Return(Some(0))),
                (2, Inst::Return(None)),
            ],
        ));
        let mut bad = p.clone();
        bad.functions[0].code.insert(0, Inst::Nop(1));
        let diags = validate_constprop(&p, &bad, &romem());
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn rekeyed_output_fails_shape() {
        let p = counting_loop();
        let mut renumbered = p.clone();
        let f = &mut renumbered.functions[0];
        let code = std::mem::take(&mut f.code);
        f.code = code.into_iter().map(|(n, i)| (n + 10, i)).collect();
        assert!(!validate_deadcode(&p, &renumbered).is_empty());
    }

    #[test]
    fn interval_comparison_folds_the_loop_guard_bound() {
        // i ∈ [0,8] after widening? The guard i < 8 inside the body can't
        // fold (interval spans), but a guard against 1000 can.
        let p = prog(fun(
            "g",
            vec![],
            vec![
                (0, Inst::Op(RtlOp::Int(5), 1, 1)),
                (
                    1,
                    Inst::Op(
                        RtlOp::BinopImm(MBinop::Cmp32(Cmp::Lt), 1, Val::Int(1000)),
                        2,
                        2,
                    ),
                ),
                (2, Inst::Cond(2, 3, 4)),
                (3, Inst::Return(Some(1))),
                (4, Inst::Return(None)),
            ],
        ));
        let rm = romem();
        let facts = value_facts_program(&p, &rm);
        let out = vprop(&p, &facts);
        assert_eq!(out.functions[0].code[&1], Inst::Op(RtlOp::Int(1), 2, 2));
        assert_eq!(out.functions[0].code[&2], Inst::Nop(3));
        assert!(validate_constprop(&p, &out, &rm).is_empty());
        let _ = Itv::point(0); // keep the import exercised
    }
}
