//! Per-pass translation validators.
//!
//! Each validator checks one compiler pass *a posteriori*: it takes the
//! pass's input and output and decides whether the output is a faithful
//! translation, without trusting (or re-running) the pass itself. This is
//! translation validation in the sense of Tristan–Leroy / Rideau–Leroy:
//! the checker is much smaller than the pass and its verdict does not
//! depend on how the output was produced.
//!
//! Three passes are covered:
//!
//! * [`validate_allocation`] — register allocation (RTL → LTL), via an
//!   untrusted *witness* recomputed by [`backend::allocation_witness`] plus
//!   an interference check against RTL liveness;
//! * [`validate_linearize`] — CFG linearization (LTL → Linear), by
//!   re-deriving each basic block's label/payload/flow contract;
//! * [`validate_asmgen`] — Asm emission (Mach → Asm), by a cursor walk that
//!   re-derives the exact instruction sequence each Mach instruction must
//!   expand to.
//!
//! All three return structured [`Diagnostic`]s; an empty vector means the
//! translation is accepted.

use std::collections::{BTreeMap, BTreeSet};

use backend::asm::{AsmFunction, AsmInst};
use backend::linear::{LinFunction, LinInst};
use backend::ltl::{LtlFunction, LtlInst};
use backend::mach::{MOp, MachFunction, MachInst};
use compcerto_core::iface::abi;
use compcerto_core::regs::Loc;
use mem::Chunk;
use rtl::{Inst, RtlFunction};

use crate::cfg::reachable;
use crate::diag::Diagnostic;

const RA_SLOT: i64 = 8;

/// Validate register allocation for one function: `ltl_f` must agree with
/// the untrusted witness recomputed from `rtl_f`, and the assignment must
/// respect the machine's register discipline and RTL liveness.
///
/// The witness ([`backend::allocation_witness`]) is a pure function of the
/// RTL CFG's structure, so it is invariant under node renumbering; checking
/// the emitted LTL against it does not trust the emitter.
pub fn validate_allocation(rtl_f: &RtlFunction, ltl_f: &LtlFunction) -> Vec<Diagnostic> {
    const PASS: &str = "alloc";
    let mut out = Vec::new();
    let mut diag = |node: Option<u32>, rule: &'static str, msg: String| {
        out.push(Diagnostic::new(PASS, &rtl_f.name, node, rule, msg));
    };

    let (assignment, locals_size, used_callee_save) = backend::allocation_witness(rtl_f);

    // Metadata must match the witness exactly.
    if ltl_f.locals_size != locals_size {
        diag(
            None,
            "alloc.metadata-mismatch",
            format!(
                "locals_size {} differs from witness {}",
                ltl_f.locals_size, locals_size
            ),
        );
    }
    if ltl_f.used_callee_save != used_callee_save {
        diag(
            None,
            "alloc.metadata-mismatch",
            format!(
                "used_callee_save {:?} differs from witness {:?}",
                ltl_f.used_callee_save, used_callee_save
            ),
        );
    }

    // Per-pseudo discipline of the assignment itself.
    let mut witness_slots: BTreeSet<i64> = BTreeSet::new();
    for (p, loc) in &assignment {
        match loc {
            Loc::Reg(r) => {
                if abi::PARAM_REGS.contains(r) || abi::SCRATCH.contains(r) {
                    diag(
                        None,
                        "alloc.reserved-register",
                        format!("pseudo x{p} assigned reserved register r{}", r.0),
                    );
                }
                if abi::is_callee_save(*r) && !used_callee_save.contains(r) {
                    diag(
                        None,
                        "alloc.callee-save-undeclared",
                        format!("pseudo x{p} in callee-save r{} not declared used", r.0),
                    );
                }
            }
            Loc::Local(o) => {
                witness_slots.insert(*o);
                if *o < 0 || *o % 8 != 0 || *o + 8 > locals_size {
                    diag(
                        None,
                        "alloc.local-slot-range",
                        format!("pseudo x{p} spilled to Local({o}) outside [0,{locals_size})"),
                    );
                }
            }
            Loc::Incoming(_) | Loc::Outgoing(_) => {
                diag(
                    None,
                    "alloc.bad-location",
                    format!("pseudo x{p} assigned argument-area location {loc:?}"),
                );
            }
        }
    }

    // Every Local slot the LTL code touches must be a slot the witness
    // allocated (Local slots are never invented downstream of alloc).
    for (n, inst) in &ltl_f.code {
        for loc in ltl_locs(inst) {
            if let Loc::Local(o) = loc {
                if !witness_slots.contains(&o) {
                    diag(
                        Some(*n),
                        "alloc.unknown-slot",
                        format!("Local({o}) not allocated by the witness"),
                    );
                }
            }
        }
    }

    // Call-crossing discipline: every pseudo live after a call must sit in
    // a callee-save register or a spill slot, and simultaneously-live
    // pseudos must occupy distinct locations. Only nodes reachable from the
    // entry are checked: `liveness` also produces live sets for dead code,
    // which the allocator (working in DFS order from the entry) rightly
    // never assigns locations for.
    let live_out = rtl::liveness(rtl_f);
    let reach = reachable(rtl_f);
    for (n, inst) in &rtl_f.code {
        if !reach.contains(n) {
            continue;
        }
        let Some(live) = live_out.get(n) else { continue };
        let is_call = matches!(inst, Inst::Call(..) | Inst::Tailcall(..));
        let call_def = match inst {
            Inst::Call(_, _, _, d, _) => *d,
            _ => None,
        };
        let mut seen: BTreeMap<Loc, u32> = BTreeMap::new();
        for p in live {
            let Some(loc) = assignment.get(p) else {
                diag(
                    Some(*n),
                    "alloc.unassigned-live",
                    format!("pseudo x{p} live after node {n} has no location"),
                );
                continue;
            };
            if let Some(q) = seen.insert(*loc, *p) {
                diag(
                    Some(*n),
                    "alloc.location-conflict",
                    format!("pseudos x{q} and x{p} both live in {loc:?}"),
                );
            }
            if is_call && call_def != Some(*p) {
                let survives = match loc {
                    Loc::Reg(r) => abi::is_callee_save(*r),
                    Loc::Local(_) => true,
                    _ => false,
                };
                if !survives {
                    diag(
                        Some(*n),
                        "alloc.clobbered-across-call",
                        format!("pseudo x{p} live across call sits in caller-save {loc:?}"),
                    );
                }
            }
        }
    }
    out
}

/// All locations an LTL instruction mentions (reads or writes).
fn ltl_locs(inst: &LtlInst) -> Vec<Loc> {
    use backend::LOp;
    let mut v = Vec::new();
    let op_locs = |op: &LOp, v: &mut Vec<Loc>| match op {
        LOp::Move(s) => v.push(*s),
        LOp::Unop(_, a) => v.push(*a),
        LOp::Binop(_, a, b) => {
            v.push(*a);
            v.push(*b);
        }
        LOp::BinopImm(_, a, _) => v.push(*a),
        _ => {}
    };
    match inst {
        LtlInst::Op(op, d, _) => {
            op_locs(op, &mut v);
            v.push(*d);
        }
        LtlInst::Load(_, b, _, d, _) => {
            v.push(*b);
            v.push(*d);
        }
        LtlInst::Store(_, b, _, s, _) => {
            v.push(*b);
            v.push(*s);
        }
        LtlInst::Cond(c, _, _) => v.push(*c),
        LtlInst::Call(..) | LtlInst::Nop(_) | LtlInst::Return => {}
    }
    v
}

/// Validate linearization for one function: `lin_f` must be the *raw*
/// `Linearize` output for `ltl_f` (before `CleanupLabels`, which erases the
/// per-block labels this checker keys on).
///
/// The contract checked: every reachable LTL node `n` appears exactly once
/// as `Label(n)`, immediately followed by the translated payload, and
/// control then reaches the LTL successor either by falling through to its
/// label or via an explicit `Goto`.
pub fn validate_linearize(ltl_f: &LtlFunction, lin_f: &LinFunction) -> Vec<Diagnostic> {
    const PASS: &str = "linearize";
    let mut out = Vec::new();
    // Constructor only — callers push, so borrows never overlap.
    let mk = |node: Option<u32>, rule: &'static str, msg: String| {
        Diagnostic::new(PASS, &ltl_f.name, node, rule, msg)
    };

    if ltl_f.code.is_empty() {
        return out;
    }
    // The entry block must come first.
    match lin_f.code.first() {
        Some(LinInst::Label(l)) if *l == ltl_f.entry => {}
        other => out.push(mk(
            Some(ltl_f.entry),
            "linearize.entry-mismatch",
            format!("code must start with Label({}), found {other:?}", ltl_f.entry),
        )),
    }

    // First-occurrence position of each label.
    let mut label_pos: BTreeMap<u32, usize> = BTreeMap::new();
    for (i, inst) in lin_f.code.iter().enumerate() {
        if let LinInst::Label(l) = inst {
            label_pos.entry(*l).or_insert(i);
        }
    }

    // `check_flow(n, pos, target)`: from instruction index `pos`, control
    // must reach the block labelled `target`. Returns the complaint, if any.
    let check_flow = |n: u32, pos: usize, target: u32| -> Option<Diagnostic> {
        match lin_f.code.get(pos) {
            Some(LinInst::Goto(l)) if *l == target => None,
            Some(LinInst::Label(l)) if *l == target => None,
            None => Some(mk(
                Some(n),
                "linearize.truncated",
                format!("code ends before reaching successor {target}"),
            )),
            Some(other) => Some(mk(
                Some(n),
                "linearize.flow-mismatch",
                format!("expected fallthrough or Goto to {target}, found {other:?}"),
            )),
        }
    };

    for n in reachable(ltl_f) {
        let Some(inst) = ltl_f.code.get(&n) else { continue };
        let Some(&p) = label_pos.get(&n) else {
            out.push(mk(
                Some(n),
                "linearize.missing-block",
                format!("no Label({n}) in the linearized code"),
            ));
            continue;
        };
        let payload = lin_f.code.get(p + 1);
        let payload_mismatch = |expected: &str| {
            mk(
                Some(n),
                "linearize.payload-mismatch",
                format!("after Label({n}) expected {expected}, found {payload:?}"),
            )
        };
        let complaint = match inst {
            LtlInst::Nop(t) => check_flow(n, p + 1, *t),
            LtlInst::Op(op, d, t) => {
                if payload != Some(&LinInst::Op(op.clone(), *d)) {
                    Some(payload_mismatch("matching Op"))
                } else {
                    check_flow(n, p + 2, *t)
                }
            }
            LtlInst::Load(c, b, disp, d, t) => {
                if payload != Some(&LinInst::Load(*c, *b, *disp, *d)) {
                    Some(payload_mismatch("matching Load"))
                } else {
                    check_flow(n, p + 2, *t)
                }
            }
            LtlInst::Store(c, b, disp, s, t) => {
                if payload != Some(&LinInst::Store(*c, *b, *disp, *s)) {
                    Some(payload_mismatch("matching Store"))
                } else {
                    check_flow(n, p + 2, *t)
                }
            }
            LtlInst::Call(callee, sig, t) => {
                if payload != Some(&LinInst::Call(callee.clone(), sig.clone())) {
                    Some(payload_mismatch("matching Call"))
                } else {
                    check_flow(n, p + 2, *t)
                }
            }
            LtlInst::Cond(l, t, e) => {
                if payload != Some(&LinInst::CondGoto(*l, *t)) {
                    Some(payload_mismatch("CondGoto to the then-branch"))
                } else {
                    check_flow(n, p + 2, *e)
                }
            }
            LtlInst::Return => {
                if payload != Some(&LinInst::Return) {
                    Some(payload_mismatch("Return"))
                } else {
                    None
                }
            }
        };
        out.extend(complaint);
    }
    out
}

/// The exact Asm sequence one Mach instruction must expand to.
fn asm_expansion(f: &MachFunction, inst: &MachInst) -> Vec<AsmInst> {
    match inst {
        MachInst::Label(l) => vec![AsmInst::Label(*l)],
        MachInst::Goto(l) => vec![AsmInst::Jmp(*l)],
        MachInst::CondGoto(r, l) => vec![AsmInst::Jcc(*r, *l)],
        MachInst::Op(op, dst) => vec![match op {
            MOp::Move(s) => AsmInst::Mov(*dst, *s),
            MOp::Int(n) => AsmInst::MovImm32(*dst, *n),
            MOp::Long(n) => AsmInst::MovImm64(*dst, *n),
            MOp::AddrGlobal(s, d) => AsmInst::LoadSym(*dst, s.clone(), *d),
            MOp::FrameAddr(o) => AsmInst::LeaSp(*dst, *o),
            MOp::Unop(m, a) => AsmInst::Unop(*m, *dst, *a),
            MOp::Binop(m, a, b) => AsmInst::Binop(*m, *dst, *a, *b),
            MOp::BinopImm(m, a, i) => AsmInst::BinopImm(*m, *dst, *a, *i),
        }],
        MachInst::Load(c, base, disp, dst) => vec![AsmInst::Load(*c, *dst, *base, *disp)],
        MachInst::Store(c, base, disp, src) => vec![AsmInst::Store(*c, *src, *base, *disp)],
        MachInst::GetStack(o, dst) => vec![AsmInst::LoadSp(Chunk::Any64, *dst, *o)],
        MachInst::SetStack(src, o) => vec![AsmInst::StoreSp(Chunk::Any64, *src, *o)],
        MachInst::GetParam(o, dst) => vec![
            AsmInst::LoadSp(Chunk::Any64, *dst, 0),
            AsmInst::Load(Chunk::Any64, *dst, *dst, *o),
        ],
        MachInst::Call(callee, _sig) => vec![
            AsmInst::AddSp(f.outgoing_ofs),
            AsmInst::Call(callee.clone()),
            AsmInst::AddSp(-f.outgoing_ofs),
        ],
        MachInst::Return => vec![
            AsmInst::RestoreRa(RA_SLOT),
            AsmInst::FreeFrame(f.frame_size),
            AsmInst::Ret,
        ],
    }
}

/// Validate Asm emission for one function by a cursor walk: the Asm code
/// must be exactly the prologue followed by each Mach instruction's
/// expansion, in order, with nothing extra. The first divergence is
/// reported (at the Mach pc) and the walk stops — everything after a
/// desynchronization would be noise.
pub fn validate_asmgen(mach_f: &MachFunction, asm_f: &AsmFunction) -> Vec<Diagnostic> {
    const PASS: &str = "asmgen";
    let mut out = Vec::new();
    let mut diag = |node: Option<u32>, rule: &'static str, msg: String| {
        out.push(Diagnostic::new(PASS, &mach_f.name, node, rule, msg));
    };

    let prologue = [
        AsmInst::AllocFrame(mach_f.frame_size),
        AsmInst::SaveRa(RA_SLOT),
    ];
    if asm_f.code.len() < 2 || asm_f.code[0] != prologue[0] || asm_f.code[1] != prologue[1] {
        diag(
            None,
            "asmgen.prologue-mismatch",
            format!(
                "expected AllocFrame({})+SaveRa({RA_SLOT}), found {:?}",
                mach_f.frame_size,
                &asm_f.code[..asm_f.code.len().min(2)]
            ),
        );
        return out;
    }
    let mut cursor = 2usize;
    for (mach_pc, inst) in mach_f.code.iter().enumerate() {
        let expected = asm_expansion(mach_f, inst);
        for e in &expected {
            match asm_f.code.get(cursor) {
                Some(a) if a == e => cursor += 1,
                Some(a) => {
                    diag(
                        Some(mach_pc as u32),
                        "asmgen.mismatch",
                        format!("at asm index {cursor}: expected {e:?}, found {a:?}"),
                    );
                    return out;
                }
                None => {
                    diag(
                        Some(mach_pc as u32),
                        "asmgen.truncated",
                        format!("asm code ends at {cursor}, expected {e:?}"),
                    );
                    return out;
                }
            }
        }
    }
    if cursor != asm_f.code.len() {
        diag(
            None,
            "asmgen.trailing-code",
            format!(
                "{} unexpected instruction(s) after the last expansion",
                asm_f.code.len() - cursor
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use backend::ltl::LtlFunction;
    use backend::{allocation, asmgen, linearize, stacking, tunneling};
    use compcerto_core::iface::Signature;
    use rtl::{RtlOp, RtlProgram};
    use std::collections::BTreeMap as Map;

    /// A small RTL program with a call (exercises spills/callee-saves) and
    /// a diamond.
    fn sample_rtl() -> RtlProgram {
        let mut code = Map::new();
        // x1 param; x2 = 7; call g(x1) -> x3; cond x3 {ret x2} {ret x3}
        code.insert(0, rtl::Inst::Op(RtlOp::Int(7), 2, 1));
        code.insert(
            1,
            rtl::Inst::Call(Signature::int_fn(1), "g".into(), vec![1], Some(3), 2),
        );
        code.insert(2, rtl::Inst::Cond(3, 3, 4));
        code.insert(3, rtl::Inst::Return(Some(2)));
        code.insert(4, rtl::Inst::Return(Some(3)));
        let f = RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 4,
        };
        let mut g_code = Map::new();
        g_code.insert(0, rtl::Inst::Return(Some(1)));
        let g = RtlFunction {
            name: "g".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code: g_code,
            next_reg: 2,
        };
        RtlProgram {
            functions: vec![f, g],
            externs: vec![],
        }
    }

    fn pipeline() -> (
        RtlProgram,
        backend::LtlProgram,
        backend::LinProgram,
        backend::MachProgram,
        backend::AsmProgram,
    ) {
        let rtl = sample_rtl();
        let ltl = allocation(&rtl);
        let tun = tunneling(&ltl);
        let lin = linearize(&tun);
        let mach = stacking(&lin).unwrap();
        let (asm, _ra) = asmgen(&mach);
        (rtl, tun, lin, mach, asm)
    }

    #[test]
    fn honest_pipeline_validates_cleanly() {
        let (rtl, tun, lin, mach, asm) = pipeline();
        for (rf, lf) in rtl.functions.iter().zip(&tun.functions) {
            assert_eq!(validate_allocation(rf, lf), vec![]);
        }
        for (tf, nf) in tun.functions.iter().zip(&lin.functions) {
            assert_eq!(validate_linearize(tf, nf), vec![]);
        }
        for (mf, af) in mach.functions.iter().zip(&asm.functions) {
            assert_eq!(validate_asmgen(mf, af), vec![]);
        }
    }

    #[test]
    fn allocation_catches_metadata_tampering() {
        let (rtl, tun, ..) = pipeline();
        let mut bad: LtlFunction = tun.functions[0].clone();
        bad.locals_size += 8;
        let diags = validate_allocation(&rtl.functions[0], &bad);
        assert!(diags.iter().any(|d| d.rule == "alloc.metadata-mismatch"));
    }

    #[test]
    fn linearize_catches_payload_and_flow_tampering() {
        let (_, tun, lin, ..) = pipeline();
        let ltl_f = &tun.functions[0];
        // Drop the last non-label instruction.
        let mut bad = lin.functions[0].clone();
        bad.code.pop();
        let diags = validate_linearize(ltl_f, &bad);
        assert!(!diags.is_empty(), "truncation must be caught");
        // Retarget the first Goto/CondGoto if present.
        let mut bad2 = lin.functions[0].clone();
        let mut tampered = false;
        for inst in &mut bad2.code {
            if let LinInst::CondGoto(_, l) = inst {
                *l = *l + 100;
                tampered = true;
                break;
            }
        }
        if tampered {
            assert!(!validate_linearize(ltl_f, &bad2).is_empty());
        }
    }

    #[test]
    fn asmgen_catches_instruction_tampering() {
        let (.., mach, asm) = pipeline();
        let mf = &mach.functions[0];
        // Corrupt one instruction in the middle.
        let mut bad = asm.functions[0].clone();
        let mid = bad.code.len() / 2;
        bad.code[mid] = AsmInst::AddSp(40);
        let diags = validate_asmgen(mf, &bad);
        assert!(diags
            .iter()
            .any(|d| d.rule.starts_with("asmgen.")), "{diags:?}");
        // Deleting an instruction desynchronizes the walk.
        let mut bad2 = asm.functions[0].clone();
        bad2.code.remove(mid);
        assert!(!validate_asmgen(mf, &bad2).is_empty());
        // Appending junk is trailing code.
        let mut bad3 = asm.functions[0].clone();
        bad3.code.push(AsmInst::Ret);
        assert!(validate_asmgen(mf, &bad3)
            .iter()
            .any(|d| d.rule == "asmgen.trailing-code"));
    }
}
