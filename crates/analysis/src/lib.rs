//! # `compcerto-validate`: static validation for the CompCertO-rs pipeline
//!
//! CompCertO's guarantees are *per-pass* simulation conventions (paper §4,
//! Table 3). The dynamic harnesses in this workspace check those conventions
//! by differential execution, which only covers executed paths; this crate
//! adds the complementary *static* layer in the "verifying compiler" posture
//! of a-posteriori translation validation:
//!
//! 1. **A reusable static-analysis toolkit** over CFG-shaped IRs
//!    ([`cfg::CfgView`]): reverse postorder, dominator trees
//!    (Cooper–Harvey–Kennedy, [`dom`]), and generic worklist dataflow over
//!    the same [`dataflow::JoinSemiLattice`] interface as `rtl::analysis` —
//!    RTL, LTL, Linear and Mach all share one engine.
//! 2. **Per-IR well-formedness lints** ([`lint`]): missing successors,
//!    unreachable entries, use of possibly-undefined registers,
//!    register-class and callee-save discipline, stack-slot bounds and
//!    alignment, label uniqueness.
//! 3. **Per-pass translation validators** ([`validate`]): a register
//!    allocation checker (LTL consistent with an independently recomputed
//!    allocation witness plus RTL liveness), a linearize checker
//!    (branch-target/fallthrough equivalence with the LTL CFG), and an
//!    asmgen checker (cursor-walk equivalence between Mach and Asm).
//!
//! Every finding is a structured [`diag::Diagnostic`] — renderable as text
//! or JSON, and countable by harnesses (the fault-injection campaign reports
//! which injected convention violations are caught *without running* the
//! semantics).

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod dom;
pub mod lint;
pub mod validate;

pub use absint::{
    needed_facts_program, needed_solver_iterations, neededness, validate_constprop,
    validate_deadcode, value_facts, value_facts_program, value_solver_iterations,
};
pub use cfg::{predecessors, reachable, reverse_postorder, CfgView, LinearCfg, MachCfg};
pub use dataflow::{
    backward_solve, forward_solve, live_out, maybe_uninit, solver_iterations, JoinSemiLattice,
    VarSet,
};
pub use diag::Diagnostic;
pub use dom::DomTree;
pub use lint::{lint_asm, lint_linear, lint_ltl, lint_mach, lint_rtl};
pub use validate::{validate_allocation, validate_asmgen, validate_linearize};
