//! Dominator trees via the Cooper–Harvey–Kennedy algorithm.
//!
//! CHK iterates an idom-intersection to a fixpoint over reverse postorder —
//! simple, allocation-light, and near-linear on compiler-shaped CFGs. The
//! toolkit exposes the tree for dominance queries (e.g. loop detection,
//! redundancy arguments); note that *def-before-use* checking on non-SSA IRs
//! deliberately does **not** use dominance (a def on each arm of a diamond
//! dominates neither side of the join) — see [`crate::dataflow::maybe_uninit`].

use std::collections::BTreeMap;

use crate::cfg::{predecessors, reverse_postorder, CfgView};

/// The dominator tree of the reachable part of a CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// Immediate dominators; the entry maps to itself.
    idom: BTreeMap<u32, u32>,
    /// Position of each reachable node in reverse postorder.
    rpo_index: BTreeMap<u32, usize>,
}

/// Walk both fingers up the (partial) idom forest until they meet.
/// Total even on corrupted inputs: missing entries and non-decreasing walks
/// are cut off by the fuel bound.
fn intersect(
    idom: &BTreeMap<u32, u32>,
    rpo_index: &BTreeMap<u32, usize>,
    mut a: u32,
    mut b: u32,
) -> u32 {
    let index = |n: u32| rpo_index.get(&n).copied().unwrap_or(usize::MAX);
    let mut fuel = 2 * rpo_index.len() + 2;
    while a != b {
        if fuel == 0 {
            return a;
        }
        fuel -= 1;
        if index(a) > index(b) {
            a = idom.get(&a).copied().unwrap_or(a);
        } else {
            b = idom.get(&b).copied().unwrap_or(b);
        }
    }
    a
}

impl DomTree {
    /// Compute the dominator tree of `g`.
    pub fn compute<G: CfgView + ?Sized>(g: &G) -> DomTree {
        let rpo = reverse_postorder(g);
        let rpo_index: BTreeMap<u32, usize> =
            rpo.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let preds = predecessors(g);
        let mut idom: BTreeMap<u32, u32> = BTreeMap::new();
        if rpo.is_empty() {
            return DomTree { idom, rpo_index };
        }
        idom.insert(rpo[0], rpo[0]);
        let mut changed = true;
        // |V| sweeps suffice for any reducible CFG; the bound makes the
        // loop total on adversarial inputs.
        let mut sweeps = rpo.len() + 2;
        while changed && sweeps > 0 {
            changed = false;
            sweeps -= 1;
            for &n in rpo.iter().skip(1) {
                let mut new_idom: Option<u32> = None;
                for &p in preds.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                    if !idom.contains_key(&p) {
                        continue; // unprocessed or unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&n) != Some(&ni) {
                        idom.insert(n, ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo_index }
    }

    /// Immediate dominator of `n` (`None` for the entry and for unreachable
    /// nodes).
    pub fn idom(&self, n: u32) -> Option<u32> {
        match self.idom.get(&n) {
            Some(d) if *d != n => Some(*d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive; false if either is
    /// unreachable).
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        if !self.idom.contains_key(&a) || !self.idom.contains_key(&b) {
            return false;
        }
        let mut cur = b;
        let mut fuel = self.idom.len() + 1;
        loop {
            if cur == a {
                return true;
            }
            let Some(next) = self.idom.get(&cur).copied() else {
                return false;
            };
            if next == cur || fuel == 0 {
                return false; // reached the entry (or cut off)
            }
            fuel -= 1;
            cur = next;
        }
    }

    /// The reachable nodes the tree covers.
    pub fn nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.idom.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use rtl::{Inst, RtlFunction, RtlOp};
    use std::collections::BTreeMap as Map;

    fn diamond_with_loop() -> RtlFunction {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> {4,0}; 4: return
        let mut code = Map::new();
        code.insert(0, Inst::Cond(1, 1, 2));
        code.insert(1, Inst::Op(RtlOp::Int(1), 2, 3));
        code.insert(2, Inst::Op(RtlOp::Int(2), 2, 3));
        code.insert(3, Inst::Cond(2, 4, 0));
        code.insert(4, Inst::Return(Some(2)));
        RtlFunction {
            name: "d".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        }
    }

    #[test]
    fn diamond_join_is_dominated_by_branch_only() {
        let t = DomTree::compute(&diamond_with_loop());
        assert_eq!(t.idom(3), Some(0)); // join's idom is the branch
        assert_eq!(t.idom(4), Some(3));
        assert!(t.dominates(0, 4));
        assert!(t.dominates(3, 4));
        assert!(!t.dominates(1, 3)); // one arm does not dominate the join
        assert!(t.dominates(2, 2)); // reflexive
    }

    #[test]
    fn entry_has_no_idom() {
        let t = DomTree::compute(&diamond_with_loop());
        assert_eq!(t.idom(0), None);
    }

    #[test]
    fn recompute_is_idempotent() {
        let f = diamond_with_loop();
        assert_eq!(DomTree::compute(&f), DomTree::compute(&f));
    }
}
